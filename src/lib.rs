//! Umbrella crate: re-exports the whole μ-cuDNN reproduction workspace.
pub use ucudnn;
pub use ucudnn_conv as conv;
pub use ucudnn_cudnn_sim as cudnn_sim;
pub use ucudnn_framework as framework;
pub use ucudnn_gpu_model as gpu_model;
pub use ucudnn_lp as lp;
pub use ucudnn_tensor as tensor;
