//! Observability pipeline tests: logical-clock trace determinism across
//! optimizer thread counts, the JSONL / Chrome trace schemas, plan
//! provenance, and the metrics JSON golden schema.

use std::sync::Mutex;
use ucudnn::json::Value;
use ucudnn::{
    BatchSizePolicy, ClockMode, OptimizerMode, Trace, TraceConfig, UcudnnHandle, UcudnnOptions,
};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_framework::{setup_network, LayerSpec, NetworkDef};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_tensor::Shape4;

const MIB: usize = 1024 * 1024;

/// Trace enablement is process-global: a test that merely runs an optimizer
/// while another test's session is live would leak events into that trace.
/// Every test in this file serializes on this gate.
static GATE: Mutex<()> = Mutex::new(());

fn small_net(n: usize) -> NetworkDef {
    let mut net = NetworkDef::new("small", Shape4::new(n, 3, 32, 32));
    let c1 = net.conv_relu("conv1", net.input(), 16, 5, 1, 2);
    let p1 = net.add(
        "pool1",
        LayerSpec::Pool {
            max: true,
            kernel: 2,
            stride: 2,
            pad: 0,
        },
        &[c1],
    );
    let c2 = net.conv_relu("conv2", p1, 32, 5, 1, 2);
    let c3 = net.conv_relu("conv3", c2, 32, 3, 1, 1);
    net.add("fc", LayerSpec::FullyConnected { out: 10 }, &[c3]);
    net
}

fn handle(mode: OptimizerMode, threads: usize, limit: usize) -> UcudnnHandle {
    UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: limit,
            mode,
            opt_threads: threads,
            ..Default::default()
        },
    )
}

/// Optimize the small net under a logical-clock session; return the
/// serialized trace.
fn traced_setup(mode: OptimizerMode, threads: usize) -> String {
    let session = ucudnn::trace::session(TraceConfig {
        clock: ClockMode::Logical,
        ..TraceConfig::default()
    });
    let h = handle(mode, threads, 64 * MIB);
    setup_network(&h, &small_net(64)).unwrap();
    session.finish().to_jsonl()
}

#[test]
fn wr_logical_traces_are_byte_identical_across_thread_counts() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let one = traced_setup(OptimizerMode::Wr, 1);
    assert!(!one.is_empty());
    for threads in [2, 8] {
        let t = traced_setup(OptimizerMode::Wr, threads);
        assert_eq!(one, t, "WR trace diverged at {threads} threads");
    }
}

#[test]
fn wd_logical_traces_are_byte_identical_across_thread_counts() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let one = traced_setup(OptimizerMode::Wd, 1);
    assert!(!one.is_empty());
    for threads in [2, 8] {
        let t = traced_setup(OptimizerMode::Wd, threads);
        assert_eq!(one, t, "WD trace diverged at {threads} threads");
    }
}

#[test]
fn jsonl_schema_is_stable() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let jsonl = traced_setup(OptimizerMode::Wr, 1);
    let trace = Trace::from_jsonl(&jsonl).expect("trace must re-parse");
    assert!(!trace.events.is_empty());
    // Golden schema: exactly these keys, in this order, on every line.
    for line in jsonl.lines() {
        let v = Value::parse(line).expect("line must be JSON");
        let Value::Obj(pairs) = &v else {
            panic!("line is not an object")
        };
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            vec!["ts_us", "dur_us", "cat", "name", "key", "tid", "args"]
        );
    }
    // Logical clock: ranks 0..n, durations and tids zeroed.
    for (i, e) in trace.events.iter().enumerate() {
        assert_eq!(e.ts_us, i as f64);
        assert_eq!(e.dur_us, 0.0);
        assert_eq!(e.tid, 0);
    }
    // The trace explains plans: every decision carries provenance.
    let plans: Vec<_> = trace
        .events
        .iter()
        .filter(|e| e.cat == "plan" && e.name == "decision")
        .collect();
    assert!(!plans.is_empty(), "no plan decisions traced");
    for p in &plans {
        let prov = p.args.get("provenance").expect("decision lacks provenance");
        assert_eq!(prov.get("optimizer").unwrap().as_str(), Some("wr"));
        assert!(prov.get("candidate_sizes").unwrap().as_usize().unwrap() > 0);
        assert!(p.args.get("config").unwrap().as_str().is_some());
    }
    // Benchmark events ride the single-flight leader: one per kernel miss.
    assert!(trace
        .events
        .iter()
        .any(|e| e.cat == "bench" && e.name == "benchmark"));
}

#[test]
fn chrome_export_is_valid_trace_event_json() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let session = ucudnn::trace::session(TraceConfig::default());
    let h = handle(OptimizerMode::Wr, 2, 64 * MIB);
    setup_network(&h, &small_net(64)).unwrap();
    let trace = session.finish();
    let chrome = trace.to_chrome_json();
    let v = Value::parse(&chrome).expect("chrome export must parse as JSON");
    let events = v
        .get("traceEvents")
        .and_then(Value::as_arr)
        .expect("traceEvents array");
    assert_eq!(events.len(), trace.events.len());
    for e in events {
        assert_eq!(e.get("ph").unwrap().as_str(), Some("X"));
        for k in ["name", "cat", "ts", "dur", "pid", "tid", "args"] {
            assert!(e.get(k).is_some(), "chrome event missing {k}");
        }
    }
    assert_eq!(v.get("displayTimeUnit").unwrap().as_str(), Some("ms"));
}

#[test]
fn metrics_json_golden_schema() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let h = handle(OptimizerMode::Wr, 2, 64 * MIB);
    setup_network(&h, &small_net(64)).unwrap();
    let v = Value::parse(&h.metrics_json()).expect("metrics JSON must parse");
    for k in ["benchmark", "dp", "pareto", "ilp", "total_wall"] {
        assert!(
            v.get("phases_us").unwrap().get(k).is_some(),
            "phases_us.{k} missing"
        );
    }
    assert_eq!(v.get("threads").unwrap().as_usize(), Some(2));
    assert!(v.get("kernels_optimized").unwrap().as_usize().unwrap() > 0);
    for k in ["hits", "misses", "single_flight_waits"] {
        assert!(
            v.get("cache").unwrap().get(k).is_some(),
            "cache.{k} missing"
        );
    }
    for k in [
        "degradations",
        "faults_injected",
        "bench_points_dropped",
        "bench_retries",
        "exec_retries",
        "db_rows_loaded",
        "db_rows_quarantined",
    ] {
        assert!(
            v.get("robustness").unwrap().get(k).is_some(),
            "robustness.{k} missing"
        );
    }
    assert!(v.get("benchmark_counts").is_some());
}

#[test]
fn plan_provenance_explains_normal_and_degraded_decisions() {
    let _g = GATE.lock().unwrap_or_else(|e| e.into_inner());
    let net = small_net(64);

    // Normal WR run: provenance names the optimizer and the search width,
    // and the granted workspace respects the limit.
    let h = handle(OptimizerMode::Wr, 1, 64 * MIB);
    setup_network(&h, &net).unwrap();
    let id = net.conv_layers()[1];
    let g = net.conv_geometry(id);
    let plan = h.plan(ConvOp::Forward, &g).unwrap();
    assert_eq!(plan.provenance.optimizer, "wr");
    assert!(plan.provenance.candidate_sizes > 0);
    assert!(plan.provenance.candidates_kept <= plan.provenance.candidate_sizes);
    assert!(plan.provenance.workspace_granted_bytes <= 64 * MIB);
    assert!(plan.provenance.degradations.is_empty());

    // Every benchmark faulted: the DP has no measurements, so the optimizer
    // has to take the last degradation rung — the undivided zero-workspace
    // configuration — and must say so in the provenance.
    let faults = ucudnn_cudnn_sim::FaultPlan::from_lookup(|k| {
        (k == "UCUDNN_FAULT_EXEC").then(|| "bench@*:*:*".to_string())
    })
    .expect("fault variable is set");
    let h0 = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()).with_faults(faults),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 64 * MIB,
            mode: OptimizerMode::Wr,
            opt_threads: 1,
            ..Default::default()
        },
    );
    setup_network(&h0, &net).unwrap();
    let plan0 = h0.plan(ConvOp::Forward, &g).unwrap();
    assert!(
        plan0
            .provenance
            .degradations
            .contains(&"undivided_fallback".to_string()),
        "degradations: {:?}",
        plan0.provenance.degradations
    );
    assert_eq!(plan0.provenance.workspace_granted_bytes, 0);

    // WD runs attach ILP provenance: the chosen index and the index WR
    // would have taken.
    let hwd = handle(OptimizerMode::Wd, 1, 64 * MIB);
    setup_network(&hwd, &net).unwrap();
    let planwd = hwd.plan(ConvOp::Forward, &g).unwrap();
    assert_eq!(planwd.provenance.optimizer, "wd");
    assert!(planwd.provenance.ilp_choice.is_some());
    assert!(planwd.provenance.wr_choice.is_some());
    assert!(planwd.provenance.pareto_kept <= planwd.provenance.pareto_generated);
}
