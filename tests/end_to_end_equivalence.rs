//! End-to-end numerical-equivalence tests (real CPU arithmetic): a full
//! training step executed through μ-cuDNN — which splits every convolution
//! into micro-batches — must match the undivided plain-cuDNN step.
//!
//! This validates the paper's central safety claim (§II): loop splitting of
//! the mini-batch dimension, with `beta = 1` accumulation for
//! BackwardFilter, leaves computational semantics unchanged.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{BaselineCudnn, ConvProvider, LayerSpec, NetworkDef, Params, RealExecutor};
use ucudnn_tensor::{max_rel_diff, Shape4, Tensor};

fn micro_handle(ws_bytes: usize) -> UcudnnHandle {
    UcudnnHandle::new(
        CudnnHandle::real_cpu(),
        UcudnnOptions {
            policy: BatchSizePolicy::All,
            workspace_limit_bytes: ws_bytes,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    )
}

fn assert_params_close(a: &[Params], b: &[Params], tol: f32) {
    for (pa, pb) in a.iter().zip(b) {
        let (wa, wb): (&[f32], &[f32]) = match (pa, pb) {
            (Params::Conv { w: x, .. }, Params::Conv { w: y, .. }) => (x, y),
            (Params::Fc { w: x, .. }, Params::Fc { w: y, .. }) => (x, y),
            (Params::Bn { gamma: x, .. }, Params::Bn { gamma: y, .. }) => (x, y),
            (Params::None, Params::None) => continue,
            other => panic!("parameter kind mismatch: {other:?}"),
        };
        for (x, y) in wa.iter().zip(wb) {
            let d = (x - y).abs() / x.abs().max(y.abs()).max(1.0);
            assert!(d <= tol, "gradient mismatch {x} vs {y} (rel {d:.3e})");
        }
    }
}

/// Run one training step with both providers and compare everything.
fn check_equivalence(net: NetworkDef, seed: u64, ws_bytes: usize, tol: f32) {
    let exec = RealExecutor::new(net.clone(), seed);
    let x = Tensor::random(net.input_shape(), seed + 1);
    let last = net.len() - 1;
    let dloss = Tensor::random(net.output_shape(last), seed + 2);

    let base = BaselineCudnn::new(CudnnHandle::real_cpu(), 64 << 20);
    let acts_ref = exec.forward(&base, &x).unwrap();
    let (grads_ref, dx_ref) = exec.backward(&base, &acts_ref, &dloss).unwrap();

    let mu = micro_handle(ws_bytes);
    let acts_mu = exec.forward(&mu, &x).unwrap();
    let (grads_mu, dx_mu) = exec.backward(&mu, &acts_mu, &dloss).unwrap();

    // The limit must actually force splitting, or the test proves nothing.
    assert!(
        mu.inner().kernels_launched() > base.handle().kernels_launched(),
        "workspace limit did not force micro-batching"
    );

    assert!(
        max_rel_diff(&acts_ref[last], &acts_mu[last]) <= tol,
        "outputs diverge"
    );
    assert!(
        max_rel_diff(&dx_ref, &dx_mu) <= tol,
        "input gradients diverge"
    );
    assert_params_close(&grads_ref, &grads_mu, tol);
}

#[test]
fn plain_cnn_step_is_preserved() {
    let mut net = NetworkDef::new("cnn", Shape4::new(10, 3, 12, 12));
    let c1 = net.conv_relu("conv1", net.input(), 8, 5, 1, 2);
    let p = net.add(
        "pool",
        LayerSpec::Pool {
            max: true,
            kernel: 2,
            stride: 2,
            pad: 0,
        },
        &[c1],
    );
    let c2 = net.conv_relu("conv2", p, 12, 3, 1, 1);
    net.add("fc", LayerSpec::FullyConnected { out: 7 }, &[c2]);
    check_equivalence(net, 11, 64 << 10, 1e-3);
}

#[test]
fn residual_block_with_batchnorm_is_preserved() {
    // BatchNorm couples samples across the batch — but μ-cuDNN never splits
    // BN, so the step must still match exactly (up to f32 reassociation).
    let mut net = NetworkDef::new("res", Shape4::new(9, 4, 10, 10));
    let c1 = net.conv_bn_relu("conv1", net.input(), 8, 3, 1, 1);
    let c2 = net.add(
        "conv2",
        LayerSpec::Conv {
            out_channels: 8,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        &[c1],
    );
    let b2 = net.add("conv2.bn", LayerSpec::BatchNorm, &[c2]);
    let sum = net.add("add", LayerSpec::Add, &[b2, c1]);
    let r = net.add("relu", LayerSpec::Relu, &[sum]);
    let gap = net.add("gap", LayerSpec::GlobalAvgPool, &[r]);
    net.add("fc", LayerSpec::FullyConnected { out: 4 }, &[gap]);
    check_equivalence(net, 23, 48 << 10, 1e-3);
}

#[test]
fn concat_network_is_preserved() {
    // DenseNet-style concatenation.
    let mut net = NetworkDef::new("dense", Shape4::new(6, 3, 8, 8));
    let c1 = net.add(
        "c1",
        LayerSpec::Conv {
            out_channels: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        &[0],
    );
    let cat1 = net.add("cat1", LayerSpec::Concat, &[0, c1]);
    let c2 = net.add(
        "c2",
        LayerSpec::Conv {
            out_channels: 4,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        &[cat1],
    );
    let cat2 = net.add("cat2", LayerSpec::Concat, &[cat1, c2]);
    net.add("fc", LayerSpec::FullyConnected { out: 3 }, &[cat2]);
    check_equivalence(net, 37, 32 << 10, 1e-3);
}

#[test]
fn odd_batch_sizes_are_tiled_exactly() {
    // A prime batch size cannot be split uniformly; the DP must still tile
    // it exactly and the numerics must hold.
    let mut net = NetworkDef::new("odd", Shape4::new(13, 2, 9, 9));
    let c1 = net.conv_relu("conv1", net.input(), 6, 3, 1, 1);
    net.add("fc", LayerSpec::FullyConnected { out: 5 }, &[c1]);
    check_equivalence(net, 41, 16 << 10, 1e-3);
}

#[test]
fn strided_convolutions_are_preserved() {
    // Stride > 1 excludes FFT/Winograd; only GEMM-family algorithms apply,
    // and splitting must still be exact.
    let mut net = NetworkDef::new("strided", Shape4::new(8, 3, 17, 17));
    let c1 = net.conv_relu("conv1", net.input(), 6, 5, 2, 2);
    let c2 = net.conv_relu("conv2", c1, 8, 3, 2, 1);
    net.add("fc", LayerSpec::FullyConnected { out: 4 }, &[c2]);
    check_equivalence(net, 53, 8 << 10, 1e-3);
}

#[test]
fn repeated_steps_reuse_plans_and_stay_consistent() {
    // Two consecutive steps through the same handle must produce identical
    // results (plans are cached, workspaces reused).
    let mut net = NetworkDef::new("twice", Shape4::new(6, 2, 8, 8));
    let c1 = net.conv_relu("conv1", net.input(), 4, 3, 1, 1);
    net.add("fc", LayerSpec::FullyConnected { out: 3 }, &[c1]);
    let exec = RealExecutor::new(net.clone(), 61);
    let x = Tensor::random(net.input_shape(), 62);
    let mu = micro_handle(16 << 10);
    let a1 = exec.forward(&mu, &x).unwrap();
    let a2 = exec.forward(&mu, &x).unwrap();
    let last = net.len() - 1;
    assert_eq!(
        a1[last], a2[last],
        "repeated execution must be bitwise identical"
    );
    // Optimization ran once: the second pass hit the plan cache.
    let stats = mu.cache_stats();
    assert!(stats.misses > 0);
}
