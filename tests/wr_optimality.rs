//! WR optimality: the dynamic program must find the true optimum over the
//! space it searches. For small mini-batches we verify it against exhaustive
//! enumeration of every composition of the batch.

use ucudnn::{optimize_wr, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

const MIB: usize = 1024 * 1024;

fn kernel(op: ConvOp, n: usize) -> KernelKey {
    let g = ConvGeometry::with_square(
        Shape4::new(n, 32, 27, 27),
        FilterShape::new(64, 32, 5, 5),
        2,
        1,
    );
    KernelKey::new(op, &g)
}

/// Best single-kernel time at micro-batch `m` within the limit.
fn best_time(
    handle: &CudnnHandle,
    cache: &BenchCache,
    key: &KernelKey,
    m: usize,
    limit: usize,
) -> Option<f64> {
    ucudnn::best_micro(handle, cache, key, m, limit).map(|mc| mc.time_us)
}

/// Exhaustive optimum over all compositions of `b` (ordered partitions;
/// order is irrelevant to cost, so this covers every division).
fn exhaustive(
    handle: &CudnnHandle,
    cache: &BenchCache,
    key: &KernelKey,
    b: usize,
    limit: usize,
) -> f64 {
    let per: Vec<Option<f64>> = (0..=b)
        .map(|m| {
            if m == 0 {
                None
            } else {
                best_time(handle, cache, key, m, limit)
            }
        })
        .collect();
    // DP-free recursion with memo-free exponential enumeration (b ≤ 12).
    fn rec(b: usize, per: &[Option<f64>]) -> f64 {
        if b == 0 {
            return 0.0;
        }
        let mut best = f64::INFINITY;
        for first in 1..=b {
            if let Some(t) = per[first] {
                let rest = rec(b - first, per);
                if t + rest < best {
                    best = t + rest;
                }
            }
        }
        best
    }
    rec(b, &per)
}

#[test]
fn dp_matches_exhaustive_for_small_batches() {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    for b in [1usize, 2, 3, 5, 7, 8, 11, 12] {
        for limit in [0, 4 * MIB, 16 * MIB, 64 * MIB] {
            for op in ConvOp::ALL {
                let key = kernel(op, b);
                let dp =
                    optimize_wr(&handle, &cache, &key, limit, BatchSizePolicy::All, false).unwrap();
                let brute = exhaustive(&handle, &cache, &key, b, limit);
                assert!(
                    (dp.config.time_us() - brute).abs() <= 1e-9 * brute.max(1.0),
                    "b={b} limit={limit} op={op}: DP {} vs exhaustive {brute}",
                    dp.config.time_us()
                );
            }
        }
    }
}

#[test]
fn dp_division_always_tiles_the_batch_and_respects_the_limit() {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    for b in [6usize, 9, 16, 33] {
        for limit in [2 * MIB, 32 * MIB] {
            let key = kernel(ConvOp::Forward, b);
            let r = optimize_wr(&handle, &cache, &key, limit, BatchSizePolicy::All, false).unwrap();
            assert_eq!(r.config.batch(), b);
            assert!(r.config.workspace_bytes() <= limit);
            // Each micro-config's cost must match a fresh benchmark lookup
            // (no stale cache corruption).
            for m in &r.config.micros {
                let again =
                    ucudnn::best_micro(&handle, &cache, &key, m.micro_batch, limit).unwrap();
                assert!(
                    m.time_us <= again.time_us + 1e-9,
                    "stored micro worse than best"
                );
            }
        }
    }
}

#[test]
fn power_of_two_is_optimal_within_its_size_menu() {
    // powerOfTwo restricted exhaustive check: enumerate compositions built
    // only from power-of-two parts.
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    let b = 16usize;
    let limit = 16 * MIB;
    let key = kernel(ConvOp::Forward, b);
    let dp = optimize_wr(
        &handle,
        &cache,
        &key,
        limit,
        BatchSizePolicy::PowerOfTwo,
        false,
    )
    .unwrap();
    let sizes = [1usize, 2, 4, 8, 16];
    let per: Vec<Option<f64>> = (0..=b)
        .map(|m| {
            if sizes.contains(&m) {
                ucudnn::best_micro(&handle, &cache, &key, m, limit).map(|mc| mc.time_us)
            } else {
                None
            }
        })
        .collect();
    fn rec(b: usize, per: &[Option<f64>]) -> f64 {
        if b == 0 {
            return 0.0;
        }
        (1..=b)
            .filter_map(|f| per[f].map(|t| t + rec(b - f, per)))
            .fold(f64::INFINITY, f64::min)
    }
    let brute = rec(b, &per);
    assert!((dp.config.time_us() - brute).abs() <= 1e-9 * brute);
}
