//! End-to-end fault injection and graceful degradation.
//!
//! The contract under test: injected substrate faults — failed benchmarks,
//! execution failures, refused allocations — never kill whole-network
//! optimization. The optimizer drops what it cannot measure, falls back
//! toward the undivided zero-workspace configuration, shrinks workspaces it
//! cannot allocate, and reports every concession through
//! [`UcudnnHandle::metrics_json`]'s `robustness` section.

use std::sync::Arc;
use ucudnn::{
    forward_latency_table, rebench_latency_table, BatchSizePolicy, BenchCache, KernelKey,
    OptimizerMode, ServeOptions, UcudnnHandle, UcudnnOptions,
};
use ucudnn_cudnn_sim::{
    ConvOp, ConvolutionDescriptor, CudnnHandle, FaultPlan, FaultSite, FaultTarget,
    FilterDescriptor, TensorDescriptor,
};
use ucudnn_framework::{alexnet, setup_network};
use ucudnn_gpu_model::{p100_sxm2, ConvAlgo};
use ucudnn_serve::{BatchRunner, Server};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

const MIB: usize = 1024 * 1024;

/// The workspace-hungry fast algorithms (§II): the ones worth faulting.
const FAST_ALGOS: [ConvAlgo; 4] = [
    ConvAlgo::Fft,
    ConvAlgo::FftTiling,
    ConvAlgo::Winograd,
    ConvAlgo::WinogradNonfused,
];

/// Fault every FFT/Winograd benchmark, built through the `UCUDNN_FAULT_*`
/// parser so the env surface is exercised end to end (no process-global
/// env mutation: `from_lookup` takes the variables as a closure).
fn all_fast_benchmarks_faulted() -> FaultPlan {
    let plan = FaultPlan::from_lookup(|k| {
        (k == "UCUDNN_FAULT_EXEC").then(|| {
            "bench@*:FFT:*, bench@*:FFT_TILING:*, bench@*:WINOGRAD:*, bench@*:WINOGRAD_NONFUSED:*"
                .to_string()
        })
    })
    .expect("a fault variable is set");
    assert_eq!(plan.targets.len(), 4, "all four patterns must parse");
    plan
}

fn handle_with(plan: FaultPlan, mode: OptimizerMode, threads: usize) -> UcudnnHandle {
    UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()).with_faults(plan),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 64 * MIB,
            mode,
            opt_threads: threads,
            ..Default::default()
        },
    )
}

/// Pull a counter out of the metrics JSON without a JSON parser dependency
/// in the test crate: finds `"name":<digits>`.
fn json_counter(json: &str, name: &str) -> u64 {
    let tag = format!("\"{name}\":");
    let at = json.find(&tag).unwrap_or_else(|| panic!("{tag} in {json}")) + tag.len();
    json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter is an integer")
}

#[test]
fn alexnet_with_every_fast_benchmark_faulted_still_optimizes() {
    // The ISSUE acceptance scenario: every FFT/Winograd benchmark fails,
    // yet whole-network optimization returns a plan under both optimizers.
    for mode in [OptimizerMode::Wr, OptimizerMode::Wd] {
        let h = handle_with(all_fast_benchmarks_faulted(), mode, 4);
        setup_network(&h, &alexnet(256)).unwrap_or_else(|e| panic!("{mode:?} died: {e}"));
        let plans = h.memory_report();
        assert!(!plans.is_empty(), "{mode:?} must still produce plans");
        for (kernel, config, _) in &plans {
            for m in &config.micros {
                assert!(
                    !FAST_ALGOS.contains(&m.algo),
                    "{mode:?} planned faulted algorithm {} for {kernel}",
                    m.algo
                );
            }
        }
        assert!(h.inner().faults_injected() > 0, "faults must have fired");
        let json = h.metrics_json();
        assert!(
            json_counter(&json, "degradations") > 0,
            "{mode:?} metrics must report degradations: {json}"
        );
        assert_eq!(
            json_counter(&json, "faults_injected"),
            h.inner().faults_injected(),
            "metrics and handle must agree on the fault count"
        );
    }
}

#[test]
fn fault_free_runs_report_zero_degradations() {
    let h = handle_with(FaultPlan::default(), OptimizerMode::Wr, 1);
    setup_network(&h, &alexnet(256)).unwrap();
    let json = h.metrics_json();
    assert_eq!(json_counter(&json, "degradations"), 0);
    assert_eq!(json_counter(&json, "faults_injected"), 0);
    assert_eq!(json_counter(&json, "db_rows_quarantined"), 0);
}

#[test]
fn faulted_plans_are_identical_across_thread_counts() {
    // Fault verdicts are pure functions of the fault key, so the
    // plan-determinism guarantee must survive injection: 1, 2, and 8
    // worker threads see identical failures and build identical plans.
    let plans_at = |mode: OptimizerMode, threads: usize| {
        let mut plan = all_fast_benchmarks_faulted();
        plan.exec_rate = 0.05;
        plan.seed = 7;
        let h = handle_with(plan, mode, threads);
        setup_network(&h, &alexnet(256)).unwrap();
        h.memory_report()
    };
    for mode in [OptimizerMode::Wr, OptimizerMode::Wd] {
        let seq = plans_at(mode, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                plans_at(mode, threads),
                seq,
                "{mode:?} plans with {threads} threads diverged under faults"
            );
        }
    }
}

/// AlexNet conv2-shaped descriptors (the layer that splits under 64 MiB).
fn conv2() -> (
    TensorDescriptor,
    FilterDescriptor,
    ConvolutionDescriptor,
    TensorDescriptor,
) {
    let x = TensorDescriptor::new_4d(256, 64, 27, 27).unwrap();
    let w = FilterDescriptor::new_4d(192, 64, 5, 5).unwrap();
    let conv = ConvolutionDescriptor::new_2d(2, 2, 1, 1).unwrap();
    let y = TensorDescriptor::from_shape(conv.forward_output_dim(&x, &w).unwrap()).unwrap();
    (x, w, conv, y)
}

#[test]
fn transient_execution_faults_retry_and_succeed() {
    // Every execution key fails once, then recovers — the wrapper's retry
    // loop must absorb the failure invisibly.
    let h = handle_with(
        FaultPlan {
            targets: vec![FaultTarget {
                site: Some(FaultSite::Execution),
                ..FaultTarget::any()
            }],
            transient_tries: 1,
            ..FaultPlan::default()
        },
        OptimizerMode::Wr,
        1,
    );
    let (x, w, conv, y) = conv2();
    let algo = h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    h.convolution_forward(1.0, &x, &[], &w, &[], &conv, algo, 0.0, &y, &mut [])
        .unwrap();
    assert!(
        h.metrics().exec_retries() > 0,
        "the retry path must be taken"
    );
    assert!(h.inner().faults_injected() > 0);
    let json = h.metrics_json();
    assert_eq!(
        json_counter(&json, "exec_retries"),
        h.metrics().exec_retries()
    );
}

#[test]
fn permanent_execution_faults_surface_as_errors() {
    // Without a transient budget the same fault is permanent; swallowing
    // it would mean silently skipping kernel launches.
    let h = handle_with(
        FaultPlan {
            targets: vec![FaultTarget {
                site: Some(FaultSite::Execution),
                ..FaultTarget::any()
            }],
            ..FaultPlan::default()
        },
        OptimizerMode::Wr,
        1,
    );
    let (x, w, conv, y) = conv2();
    let algo = h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    let err = h
        .convolution_forward(1.0, &x, &[], &w, &[], &conv, algo, 0.0, &y, &mut [])
        .unwrap_err();
    assert!(
        err.to_string().contains("injected fault"),
        "the substrate failure must propagate: {err}"
    );
}

#[test]
fn allocation_faults_shrink_wr_workspaces_until_they_fit() {
    // Allocations above 1 MiB fail. Per-kernel WR plans must land at or
    // below the threshold — large algorithms are refused at benchmark time
    // and any oversized arena triggers shrink-and-reoptimize.
    let h = handle_with(
        FaultPlan {
            alloc_fail_above: Some(MIB),
            ..FaultPlan::default()
        },
        OptimizerMode::Wr,
        2,
    );
    setup_network(&h, &alexnet(256)).unwrap();
    let plans = h.memory_report();
    assert!(!plans.is_empty());
    for (kernel, _, bytes) in &plans {
        assert!(
            *bytes <= MIB,
            "{kernel} workspace {bytes} exceeds the allocatable 1 MiB"
        );
    }
    let json = h.metrics_json();
    assert!(
        json_counter(&json, "degradations") > 0,
        "shrinking is a degradation: {json}"
    );
}

#[test]
fn allocation_faults_shrink_the_wd_global_workspace() {
    let h = handle_with(
        FaultPlan {
            alloc_fail_above: Some(MIB),
            ..FaultPlan::default()
        },
        OptimizerMode::Wd,
        2,
    );
    setup_network(&h, &alexnet(256)).unwrap();
    let plan = h.wd_plan().expect("WD ran at setup");
    assert!(
        plan.total_workspace_bytes <= MIB,
        "WD workspace {} exceeds the allocatable 1 MiB",
        plan.total_workspace_bytes
    );
    assert!(json_counter(&h.metrics_json(), "degradations") > 0);
}

// ---------------------------------------------------------------------------
// Fault × online re-optimization (DESIGN §9 meets §13): a re-benchmark that
// hits injected faults degrades — the old plan stays live, `reopt_failed`
// counts the concession, serving continues — and never crashes.

/// conv2-shaped kernel key for the serving table.
fn conv2_key() -> KernelKey {
    let g = ConvGeometry::with_square(
        Shape4::new(32, 64, 27, 27),
        FilterShape::new(192, 64, 5, 5),
        2,
        1,
    );
    KernelKey::new(ConvOp::Forward, &g)
}

#[test]
fn a_rebench_that_hits_fast_algorithm_faults_degrades_to_a_fallback_table() {
    // Healthy startup benchmark, then every FFT/Winograd re-benchmark fails:
    // the refresh must climb down the §9 ladder to the surviving algorithms
    // and still return a usable table rather than an error.
    let healthy = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    let kernels = [conv2_key()];
    let startup = forward_latency_table(
        &healthy,
        &cache,
        &kernels,
        BatchSizePolicy::PowerOfTwo,
        32,
        512 << 20,
    );
    assert!(!startup.is_empty());

    let faulted = CudnnHandle::simulated(p100_sxm2()).with_faults(all_fast_benchmarks_faulted());
    let refreshed = rebench_latency_table(
        &faulted,
        &cache,
        &kernels,
        &kernels, // every kernel is stale
        BatchSizePolicy::PowerOfTwo,
        32,
        512 << 20,
    )
    .expect("fallback algorithms must keep the re-benchmark feasible");
    assert_eq!(
        refreshed.iter().map(|&(m, _)| m).collect::<Vec<_>>(),
        startup.iter().map(|&(m, _)| m).collect::<Vec<_>>(),
        "the degraded table must cover the same micro-batch sizes"
    );
    assert!(faulted.faults_injected() > 0, "faults must have fired");
}

#[test]
fn a_rebench_with_every_benchmark_faulted_errors_instead_of_crashing() {
    // The bottom of the ladder: nothing is measurable, so the refresh
    // reports NoFeasibleConfiguration — the caller keeps the old plan.
    let plan =
        FaultPlan::from_lookup(|k| (k == "UCUDNN_FAULT_EXEC").then(|| "bench@*:*:*".to_string()))
            .expect("a fault variable is set");
    let handle = CudnnHandle::simulated(p100_sxm2()).with_faults(plan);
    let kernels = [conv2_key()];
    let err = rebench_latency_table(
        &handle,
        &BenchCache::new(),
        &kernels,
        &kernels,
        BatchSizePolicy::PowerOfTwo,
        32,
        512 << 20,
    )
    .expect_err("an unmeasurable device cannot produce a table");
    assert!(
        err.to_string().contains("empty latency table"),
        "unexpected error: {err}"
    );
}

/// A serving model whose re-benchmark always fails — the serve-level stand-in
/// for a device that faults every benchmark mid-flight.
struct FaultedRebenchRunner;

impl BatchRunner for FaultedRebenchRunner {
    fn sample_len(&self) -> usize {
        1
    }
    fn output_len(&self) -> usize {
        1
    }
    fn batch_sizes(&self) -> Vec<usize> {
        vec![1, 2]
    }
    fn run(&self, n: usize, inputs: &[f32]) -> Result<Vec<f32>, String> {
        assert_eq!(inputs.len(), n);
        Ok(inputs.to_vec())
    }
    fn latency_table(&self) -> Vec<(usize, f64)> {
        vec![(1, 100.0), (2, 150.0)]
    }
    fn rebench(&self) -> Result<Vec<(usize, f64)>, String> {
        Err("injected bench fault".to_string())
    }
}

#[test]
fn a_failed_rebench_keeps_the_old_plan_serving() {
    let server = Server::start(
        Arc::new(FaultedRebenchRunner),
        &ServeOptions {
            slo_us: 60_000_000.0,
            queue_cap: 64,
            workers: 1,
            max_batch: 2,
        },
    );
    assert_eq!(server.plan_version(), 1);

    let err = server
        .trigger_rebench()
        .expect_err("the injected bench fault must surface");
    assert!(err.contains("injected bench fault"), "got: {err}");

    // §9 ladder: the failure is a counted concession, not a crash — the
    // startup plan stays live and requests keep completing on it.
    let m = server.metrics();
    assert_eq!(m.reopt_failed.get(), 1);
    assert_eq!(m.plan_swaps.get(), 0);
    assert_eq!(server.plan_version(), 1, "the old plan must stay live");
    assert_eq!(server.plan_provenance().source, "startup");

    let resp = server
        .submit(vec![1.0])
        .expect("admit")
        .wait()
        .expect("serving must continue after the failed refresh");
    assert_eq!(resp.plan_version, 1);

    // Repeated failures keep counting without disturbing the plan.
    server.trigger_rebench().expect_err("still faulted");
    assert_eq!(m.reopt_failed.get(), 2);
    assert_eq!(server.plan_version(), 1);
    server.drain();
}
