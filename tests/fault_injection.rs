//! End-to-end fault injection and graceful degradation.
//!
//! The contract under test: injected substrate faults — failed benchmarks,
//! execution failures, refused allocations — never kill whole-network
//! optimization. The optimizer drops what it cannot measure, falls back
//! toward the undivided zero-workspace configuration, shrinks workspaces it
//! cannot allocate, and reports every concession through
//! [`UcudnnHandle::metrics_json`]'s `robustness` section.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::{
    ConvOp, ConvolutionDescriptor, CudnnHandle, FaultPlan, FaultSite, FaultTarget,
    FilterDescriptor, TensorDescriptor,
};
use ucudnn_framework::{alexnet, setup_network};
use ucudnn_gpu_model::{p100_sxm2, ConvAlgo};

const MIB: usize = 1024 * 1024;

/// The workspace-hungry fast algorithms (§II): the ones worth faulting.
const FAST_ALGOS: [ConvAlgo; 4] = [
    ConvAlgo::Fft,
    ConvAlgo::FftTiling,
    ConvAlgo::Winograd,
    ConvAlgo::WinogradNonfused,
];

/// Fault every FFT/Winograd benchmark, built through the `UCUDNN_FAULT_*`
/// parser so the env surface is exercised end to end (no process-global
/// env mutation: `from_lookup` takes the variables as a closure).
fn all_fast_benchmarks_faulted() -> FaultPlan {
    let plan = FaultPlan::from_lookup(|k| {
        (k == "UCUDNN_FAULT_EXEC").then(|| {
            "bench@*:FFT:*, bench@*:FFT_TILING:*, bench@*:WINOGRAD:*, bench@*:WINOGRAD_NONFUSED:*"
                .to_string()
        })
    })
    .expect("a fault variable is set");
    assert_eq!(plan.targets.len(), 4, "all four patterns must parse");
    plan
}

fn handle_with(plan: FaultPlan, mode: OptimizerMode, threads: usize) -> UcudnnHandle {
    UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()).with_faults(plan),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 64 * MIB,
            mode,
            opt_threads: threads,
            ..Default::default()
        },
    )
}

/// Pull a counter out of the metrics JSON without a JSON parser dependency
/// in the test crate: finds `"name":<digits>`.
fn json_counter(json: &str, name: &str) -> u64 {
    let tag = format!("\"{name}\":");
    let at = json.find(&tag).unwrap_or_else(|| panic!("{tag} in {json}")) + tag.len();
    json[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("counter is an integer")
}

#[test]
fn alexnet_with_every_fast_benchmark_faulted_still_optimizes() {
    // The ISSUE acceptance scenario: every FFT/Winograd benchmark fails,
    // yet whole-network optimization returns a plan under both optimizers.
    for mode in [OptimizerMode::Wr, OptimizerMode::Wd] {
        let h = handle_with(all_fast_benchmarks_faulted(), mode, 4);
        setup_network(&h, &alexnet(256)).unwrap_or_else(|e| panic!("{mode:?} died: {e}"));
        let plans = h.memory_report();
        assert!(!plans.is_empty(), "{mode:?} must still produce plans");
        for (kernel, config, _) in &plans {
            for m in &config.micros {
                assert!(
                    !FAST_ALGOS.contains(&m.algo),
                    "{mode:?} planned faulted algorithm {} for {kernel}",
                    m.algo
                );
            }
        }
        assert!(h.inner().faults_injected() > 0, "faults must have fired");
        let json = h.metrics_json();
        assert!(
            json_counter(&json, "degradations") > 0,
            "{mode:?} metrics must report degradations: {json}"
        );
        assert_eq!(
            json_counter(&json, "faults_injected"),
            h.inner().faults_injected(),
            "metrics and handle must agree on the fault count"
        );
    }
}

#[test]
fn fault_free_runs_report_zero_degradations() {
    let h = handle_with(FaultPlan::default(), OptimizerMode::Wr, 1);
    setup_network(&h, &alexnet(256)).unwrap();
    let json = h.metrics_json();
    assert_eq!(json_counter(&json, "degradations"), 0);
    assert_eq!(json_counter(&json, "faults_injected"), 0);
    assert_eq!(json_counter(&json, "db_rows_quarantined"), 0);
}

#[test]
fn faulted_plans_are_identical_across_thread_counts() {
    // Fault verdicts are pure functions of the fault key, so the
    // plan-determinism guarantee must survive injection: 1, 2, and 8
    // worker threads see identical failures and build identical plans.
    let plans_at = |mode: OptimizerMode, threads: usize| {
        let mut plan = all_fast_benchmarks_faulted();
        plan.exec_rate = 0.05;
        plan.seed = 7;
        let h = handle_with(plan, mode, threads);
        setup_network(&h, &alexnet(256)).unwrap();
        h.memory_report()
    };
    for mode in [OptimizerMode::Wr, OptimizerMode::Wd] {
        let seq = plans_at(mode, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                plans_at(mode, threads),
                seq,
                "{mode:?} plans with {threads} threads diverged under faults"
            );
        }
    }
}

/// AlexNet conv2-shaped descriptors (the layer that splits under 64 MiB).
fn conv2() -> (
    TensorDescriptor,
    FilterDescriptor,
    ConvolutionDescriptor,
    TensorDescriptor,
) {
    let x = TensorDescriptor::new_4d(256, 64, 27, 27).unwrap();
    let w = FilterDescriptor::new_4d(192, 64, 5, 5).unwrap();
    let conv = ConvolutionDescriptor::new_2d(2, 2, 1, 1).unwrap();
    let y = TensorDescriptor::from_shape(conv.forward_output_dim(&x, &w).unwrap()).unwrap();
    (x, w, conv, y)
}

#[test]
fn transient_execution_faults_retry_and_succeed() {
    // Every execution key fails once, then recovers — the wrapper's retry
    // loop must absorb the failure invisibly.
    let h = handle_with(
        FaultPlan {
            targets: vec![FaultTarget {
                site: Some(FaultSite::Execution),
                ..FaultTarget::any()
            }],
            transient_tries: 1,
            ..FaultPlan::default()
        },
        OptimizerMode::Wr,
        1,
    );
    let (x, w, conv, y) = conv2();
    let algo = h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    h.convolution_forward(1.0, &x, &[], &w, &[], &conv, algo, 0.0, &y, &mut [])
        .unwrap();
    assert!(
        h.metrics().exec_retries() > 0,
        "the retry path must be taken"
    );
    assert!(h.inner().faults_injected() > 0);
    let json = h.metrics_json();
    assert_eq!(
        json_counter(&json, "exec_retries"),
        h.metrics().exec_retries()
    );
}

#[test]
fn permanent_execution_faults_surface_as_errors() {
    // Without a transient budget the same fault is permanent; swallowing
    // it would mean silently skipping kernel launches.
    let h = handle_with(
        FaultPlan {
            targets: vec![FaultTarget {
                site: Some(FaultSite::Execution),
                ..FaultTarget::any()
            }],
            ..FaultPlan::default()
        },
        OptimizerMode::Wr,
        1,
    );
    let (x, w, conv, y) = conv2();
    let algo = h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    let err = h
        .convolution_forward(1.0, &x, &[], &w, &[], &conv, algo, 0.0, &y, &mut [])
        .unwrap_err();
    assert!(
        err.to_string().contains("injected fault"),
        "the substrate failure must propagate: {err}"
    );
}

#[test]
fn allocation_faults_shrink_wr_workspaces_until_they_fit() {
    // Allocations above 1 MiB fail. Per-kernel WR plans must land at or
    // below the threshold — large algorithms are refused at benchmark time
    // and any oversized arena triggers shrink-and-reoptimize.
    let h = handle_with(
        FaultPlan {
            alloc_fail_above: Some(MIB),
            ..FaultPlan::default()
        },
        OptimizerMode::Wr,
        2,
    );
    setup_network(&h, &alexnet(256)).unwrap();
    let plans = h.memory_report();
    assert!(!plans.is_empty());
    for (kernel, _, bytes) in &plans {
        assert!(
            *bytes <= MIB,
            "{kernel} workspace {bytes} exceeds the allocatable 1 MiB"
        );
    }
    let json = h.metrics_json();
    assert!(
        json_counter(&json, "degradations") > 0,
        "shrinking is a degradation: {json}"
    );
}

#[test]
fn allocation_faults_shrink_the_wd_global_workspace() {
    let h = handle_with(
        FaultPlan {
            alloc_fail_above: Some(MIB),
            ..FaultPlan::default()
        },
        OptimizerMode::Wd,
        2,
    );
    setup_network(&h, &alexnet(256)).unwrap();
    let plan = h.wd_plan().expect("WD ran at setup");
    assert!(
        plan.total_workspace_bytes <= MIB,
        "WD workspace {} exceeds the allocatable 1 MiB",
        plan.total_workspace_bytes
    );
    assert!(json_counter(&h.metrics_json(), "degradations") > 0);
}
