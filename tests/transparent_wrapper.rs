//! Contract tests for the transparent wrapper (`UcudnnHandle`): the
//! integration surface a deep learning framework sees (§III-D/E).

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions, VIRTUAL_ALGO};
use ucudnn_cudnn_sim::{
    ConvOp, ConvolutionDescriptor, CudnnHandle, FilterDescriptor, TensorDescriptor,
};
use ucudnn_gpu_model::p100_sxm2;

const MIB: usize = 1024 * 1024;

fn descs(
    n: usize,
    c: usize,
    hw: usize,
    k: usize,
    r: usize,
    pad: usize,
) -> (
    TensorDescriptor,
    FilterDescriptor,
    ConvolutionDescriptor,
    TensorDescriptor,
) {
    let x = TensorDescriptor::new_4d(n, c, hw, hw).unwrap();
    let w = FilterDescriptor::new_4d(k, c, r, r).unwrap();
    let conv = ConvolutionDescriptor::new_2d(pad, pad, 1, 1).unwrap();
    let y = TensorDescriptor::from_shape(conv.forward_output_dim(&x, &w).unwrap()).unwrap();
    (x, w, conv, y)
}

fn wr_handle(limit: usize, policy: BatchSizePolicy) -> UcudnnHandle {
    UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy,
            workspace_limit_bytes: limit,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    )
}

#[test]
fn get_algorithm_returns_virtual_id_and_zero_workspace() {
    let h = wr_handle(64 * MIB, BatchSizePolicy::PowerOfTwo);
    let (x, w, conv, _) = descs(256, 64, 27, 192, 5, 2);
    let algo = h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    assert_eq!(algo, VIRTUAL_ALGO);
    assert_eq!(
        h.get_workspace_size(ConvOp::Forward, &x, &w, &conv, algo)
            .unwrap(),
        0
    );
}

#[test]
fn deref_delegates_non_convolution_calls() {
    // "All other functions" go straight to the wrapped handle: the Deref
    // impl is the cast-operator analogue.
    let h = wr_handle(64 * MIB, BatchSizePolicy::PowerOfTwo);
    let (x, w, conv, _) = descs(32, 8, 16, 8, 3, 1);
    // find_algorithms is not intercepted — resolves on the inner handle.
    let perfs = h.find_algorithms(ConvOp::Forward, &x, &w, &conv).unwrap();
    assert!(!perfs.is_empty());
    assert_eq!(h.device().unwrap().name, "P100-SXM2");
}

#[test]
fn execution_replays_the_planned_micro_batches() {
    let h = wr_handle(64 * MIB, BatchSizePolicy::PowerOfTwo);
    let (x, w, conv, y) = descs(256, 64, 27, 192, 5, 2);
    let algo = h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    let g = conv.geometry(&x, &w).unwrap();
    let plan = h.plan(ConvOp::Forward, &g).unwrap();
    assert!(plan.config.micros.len() > 1, "64 MiB conv2 must split");
    h.convolution_forward(1.0, &x, &[], &w, &[], &conv, algo, 0.0, &y, &mut [])
        .unwrap();
    assert_eq!(
        h.inner().kernels_launched() as usize,
        plan.config.micros.len()
    );
    // The virtual clock advanced by exactly the plan's predicted time.
    assert!((h.inner().elapsed_us() - plan.config.time_us()).abs() < 1e-6);
}

#[test]
fn unregistered_kernels_are_optimized_lazily() {
    // A framework that skips get_algorithm still works: the first
    // convolution call optimizes on the fly.
    let h = wr_handle(16 * MIB, BatchSizePolicy::PowerOfTwo);
    let (x, w, conv, y) = descs(64, 32, 27, 64, 5, 2);
    h.convolution_forward(1.0, &x, &[], &w, &[], &conv, VIRTUAL_ALGO, 0.0, &y, &mut [])
        .unwrap();
    let g = conv.geometry(&x, &w).unwrap();
    assert!(h.plan(ConvOp::Forward, &g).is_some());
}

#[test]
fn replicated_layers_hit_the_benchmark_cache() {
    // ResNet-style: registering the same shape twice must not re-benchmark.
    let h = wr_handle(64 * MIB, BatchSizePolicy::PowerOfTwo);
    let (x, w, conv, _) = descs(128, 64, 28, 64, 3, 1);
    h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    let misses_after_first = h.cache_stats().misses;
    h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    assert_eq!(
        h.cache_stats().misses,
        misses_after_first,
        "second registration re-benchmarked"
    );
}

#[test]
fn wd_mode_defers_optimization_until_first_execution() {
    let h = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 120 * MIB,
            mode: OptimizerMode::Wd,
            ..Default::default()
        },
    );
    let (x1, w1, c1, y1) = descs(64, 64, 27, 192, 5, 2);
    let (x2, w2, c2, _) = descs(64, 192, 13, 384, 3, 1);
    h.get_algorithm(ConvOp::Forward, &x1, &w1, &c1).unwrap();
    h.get_algorithm(ConvOp::Forward, &x2, &w2, &c2).unwrap();
    assert!(h.wd_plan().is_none(), "WD must not run during registration");
    h.convolution_forward(
        1.0,
        &x1,
        &[],
        &w1,
        &[],
        &c1,
        VIRTUAL_ALGO,
        0.0,
        &y1,
        &mut [],
    )
    .unwrap();
    let plan = h.wd_plan().expect("first convolution triggers WD");
    assert_eq!(plan.assignments.len(), 2);
    assert!(plan.total_workspace_bytes <= 120 * MIB);
}

#[test]
fn finalize_network_is_the_explicit_caffe_hook() {
    let h = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 64 * MIB,
            mode: OptimizerMode::Wd,
            ..Default::default()
        },
    );
    let (x, w, conv, _) = descs(64, 64, 27, 192, 5, 2);
    h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    h.finalize_network().unwrap();
    assert!(h.wd_plan().is_some());
    // Registrations after finalization fall back to per-kernel WR plans.
    let (x2, w2, c2, _) = descs(64, 192, 13, 384, 3, 1);
    h.get_algorithm(ConvOp::Forward, &x2, &w2, &c2).unwrap();
    let g2 = c2.geometry(&x2, &w2).unwrap();
    assert!(h.plan(ConvOp::Forward, &g2).is_some());
}

#[test]
fn undivided_policy_reproduces_baseline_cudnn_timing() {
    // μ-cuDNN with `undivided` must behave exactly like plain cuDNN under
    // the same limit (the paper uses this as its overhead control).
    let limit = 64 * MIB;
    let (x, w, conv, y) = descs(256, 64, 27, 192, 5, 2);

    let baseline = CudnnHandle::simulated(p100_sxm2());
    let algo = baseline
        .get_algorithm(
            ConvOp::Forward,
            &x,
            &w,
            &conv,
            ucudnn_cudnn_sim::AlgoPreference::SpecifyWorkspaceLimit(limit),
        )
        .unwrap();
    let ws_bytes = baseline
        .get_workspace_size(ConvOp::Forward, &x, &w, &conv, algo)
        .unwrap();
    let mut ws = vec![0.0f32; ws_bytes.div_ceil(4)];
    baseline
        .convolution_forward(
            1.0,
            &x,
            &[],
            &w,
            &[],
            &conv,
            algo,
            &mut ws,
            0.0,
            &y,
            &mut [],
        )
        .unwrap();

    let h = wr_handle(limit, BatchSizePolicy::Undivided);
    let va = h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    h.convolution_forward(1.0, &x, &[], &w, &[], &conv, va, 0.0, &y, &mut [])
        .unwrap();

    assert!((h.inner().elapsed_us() - baseline.elapsed_us()).abs() < 1e-9);
}

#[test]
fn memory_report_reflects_workspace_limits() {
    let h = wr_handle(32 * MIB, BatchSizePolicy::PowerOfTwo);
    let (x, w, conv, _) = descs(128, 64, 27, 192, 5, 2);
    h.get_algorithm(ConvOp::Forward, &x, &w, &conv).unwrap();
    for (_, config, bytes) in h.memory_report() {
        assert!(bytes <= 32 * MIB);
        assert_eq!(config.workspace_bytes(), bytes);
    }
    assert!(h.total_workspace_bytes() <= 32 * MIB);
}
