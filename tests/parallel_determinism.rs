//! Regression: parallel whole-network optimization is plan-deterministic.
//!
//! The optimizer's guarantee (DESIGN.md §parallel): for any worker thread
//! count, the installed plans — micro-batch divisions, algorithm choices,
//! workspace assignments — are identical to the sequential result, because
//! benchmarks are pure functions of (device, kernel) and worker results are
//! installed in registration order. These tests pin that guarantee for
//! AlexNet and ResNet-18 under both WR and WD.

use ucudnn::{
    BatchSizePolicy, Configuration, KernelKey, OptimizerMode, UcudnnHandle, UcudnnOptions,
};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{alexnet, resnet18, setup_network, time_iteration, NetworkDef};
use ucudnn_gpu_model::p100_sxm2;

const MIB: usize = 1024 * 1024;

/// Optimize `net` with `threads` workers and return the full plan table
/// (sorted by kernel) plus the predicted time of one training iteration.
fn optimize(
    net: &NetworkDef,
    mode: OptimizerMode,
    threads: usize,
) -> (Vec<(KernelKey, Configuration, usize)>, f64) {
    let handle = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 64 * MIB,
            mode,
            opt_threads: threads,
            ..Default::default()
        },
    );
    setup_network(&handle, net).unwrap();
    let plans = handle.memory_report();
    handle.inner().reset_clock();
    let timing = time_iteration(&handle, net).unwrap();
    (plans, timing.total_us())
}

/// Assert plan tables and predicted times are exactly equal (f64 bit-for-bit:
/// the virtual clock is deterministic, so no tolerance is needed).
fn assert_deterministic(net: &NetworkDef, mode: OptimizerMode) {
    let (seq_plans, seq_time) = optimize(net, mode, 1);
    assert!(!seq_plans.is_empty(), "network must produce plans");
    for threads in [2usize, 8] {
        let (plans, time) = optimize(net, mode, threads);
        assert_eq!(
            plans, seq_plans,
            "{mode:?} plans with {threads} threads differ from sequential"
        );
        assert_eq!(
            time, seq_time,
            "{mode:?} predicted iteration time with {threads} threads differs"
        );
    }
}

#[test]
fn alexnet_wr_plans_identical_across_thread_counts() {
    assert_deterministic(&alexnet(256), OptimizerMode::Wr);
}

#[test]
fn alexnet_wd_plans_identical_across_thread_counts() {
    assert_deterministic(&alexnet(256), OptimizerMode::Wd);
}

#[test]
fn resnet18_wr_plans_identical_across_thread_counts() {
    assert_deterministic(&resnet18(64), OptimizerMode::Wr);
}

#[test]
fn resnet18_wd_plans_identical_across_thread_counts() {
    assert_deterministic(&resnet18(64), OptimizerMode::Wd);
}

#[test]
fn wd_segment_offsets_identical_across_thread_counts() {
    // memory_report drops workspace offsets; pin them via the WD plan.
    let net = alexnet(256);
    let seq = wd_assignments(&net, 1);
    for threads in [2usize, 8] {
        assert_eq!(
            wd_assignments(&net, threads),
            seq,
            "{threads}-thread WD offsets differ"
        );
    }
}

fn wd_assignments(net: &NetworkDef, threads: usize) -> Vec<(KernelKey, Configuration, usize)> {
    let handle = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 64 * MIB,
            mode: OptimizerMode::Wd,
            opt_threads: threads,
            ..Default::default()
        },
    );
    setup_network(&handle, net).unwrap();
    let plan = handle.wd_plan().expect("WD ran at setup");
    plan.assignments
        .into_iter()
        .map(|a| (a.kernel, a.config, a.offset_bytes))
        .collect()
}

#[test]
fn parallel_run_reports_thread_count_in_metrics() {
    let net = alexnet(256);
    let handle = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            workspace_limit_bytes: 64 * MIB,
            opt_threads: 4,
            ..Default::default()
        },
    );
    setup_network(&handle, &net).unwrap();
    assert_eq!(handle.metrics().threads(), 4);
    let json = handle.metrics_json();
    assert!(
        json.contains("\"threads\":4"),
        "metrics JSON must report the thread count: {json}"
    );
}
