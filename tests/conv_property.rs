//! Property-based tests (proptest) on the convolution engines and the
//! micro-batching invariants, over randomized geometries.

use proptest::prelude::*;
use ucudnn_conv::{exec, supports, workspace_floats, ConvOp, EngineKind};
use ucudnn_tensor::{max_rel_diff, ConvGeometry, FilterShape, Shape4, Tensor};

/// Random small-but-nontrivial convolution geometries.
fn geometries() -> impl Strategy<Value = ConvGeometry> {
    (
        1usize..=6,
        1usize..=4,
        4usize..=10,
        1usize..=4,
        1usize..=3,
        0usize..=2,
        1usize..=2,
    )
        .prop_map(|(n, c, hw, k, half_r, pad, stride)| {
            let r = 2 * half_r - 1; // odd kernels 1/3/5
            let pad = pad.min(r - 1);
            ConvGeometry::with_square(
                Shape4::new(n, c, hw.max(r), hw.max(r)),
                FilterShape::new(k, c, r, r),
                pad,
                stride,
            )
        })
}

fn run_engine(
    engine: EngineKind,
    op: ConvOp,
    g: &ConvGeometry,
    a: &Tensor,
    b: &Tensor,
    out_shape: Shape4,
) -> Tensor {
    let mut out = Tensor::zeros(out_shape);
    let mut ws = vec![0.0f32; workspace_floats(engine, op, g)];
    exec(
        engine,
        op,
        g,
        a.as_slice(),
        b.as_slice(),
        out.as_mut_slice(),
        1.0,
        0.0,
        &mut ws,
    )
    .unwrap();
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// All supported engines agree with the direct reference on all ops.
    #[test]
    fn engines_agree(g in geometries(), seed in 0u64..1000) {
        let x = Tensor::random(g.input, seed);
        let w = Tensor::random(g.filter.as_shape4(), seed + 1);
        let dy = Tensor::random(g.output(), seed + 2);
        for op in ConvOp::ALL {
            let (a, b, out_shape) = match op {
                ConvOp::Forward => (&x, &w, g.output()),
                ConvOp::BackwardData => (&dy, &w, g.input),
                ConvOp::BackwardFilter => (&x, &dy, g.filter.as_shape4()),
            };
            let reference = run_engine(EngineKind::Direct, op, &g, a, b, out_shape);
            for engine in [EngineKind::Gemm, EngineKind::Fft, EngineKind::Winograd] {
                if supports(engine, op, &g) {
                    let got = run_engine(engine, op, &g, a, b, out_shape);
                    prop_assert!(
                        max_rel_diff(&reference, &got) < 1e-2,
                        "{engine:?} {op} diverges on {g}"
                    );
                }
            }
        }
    }

    /// Splitting the batch at any point and concatenating reproduces the
    /// undivided forward result exactly (bitwise, since per-sample
    /// arithmetic is identical), for every engine.
    #[test]
    fn forward_split_is_exact(g in geometries(), split_frac in 0.0f64..1.0, seed in 0u64..1000) {
        prop_assume!(g.input.n >= 2);
        let split = 1 + ((g.input.n - 1) as f64 * split_frac) as usize;
        let x = Tensor::random(g.input, seed);
        let w = Tensor::random(g.filter.as_shape4(), seed + 1);
        for engine in EngineKind::ALL {
            if !supports(engine, ConvOp::Forward, &g) {
                continue;
            }
            let full = run_engine(engine, ConvOp::Forward, &g, &x, &w, g.output());
            let mut pieces = Tensor::zeros(g.output());
            for (lo, hi) in [(0, split), (split, g.input.n)] {
                let mg = g.with_batch(hi - lo);
                let mut ws = vec![0.0f32; workspace_floats(engine, ConvOp::Forward, &mg)];
                exec(
                    engine,
                    ConvOp::Forward,
                    &mg,
                    x.batch_slice(lo, hi),
                    w.as_slice(),
                    pieces.batch_slice_mut(lo, hi),
                    1.0,
                    0.0,
                    &mut ws,
                )
                .unwrap();
            }
            prop_assert_eq!(full.as_slice(), pieces.as_slice(), "{:?} split mismatch", engine);
        }
    }

    /// BackwardFilter with beta=1 accumulation over any 2-way split matches
    /// the undivided gradient within f32 reassociation error.
    #[test]
    fn backward_filter_accumulation(g in geometries(), split_frac in 0.0f64..1.0, seed in 0u64..1000) {
        prop_assume!(g.input.n >= 2);
        let split = 1 + ((g.input.n - 1) as f64 * split_frac) as usize;
        let x = Tensor::random(g.input, seed);
        let dy = Tensor::random(g.output(), seed + 3);
        let full = run_engine(EngineKind::Direct, ConvOp::BackwardFilter, &g, &x, &dy, g.filter.as_shape4());
        let mut acc = Tensor::zeros(g.filter.as_shape4());
        for (i, (lo, hi)) in [(0, split), (split, g.input.n)].into_iter().enumerate() {
            let mg = g.with_batch(hi - lo);
            exec(
                EngineKind::Direct,
                ConvOp::BackwardFilter,
                &mg,
                x.batch_slice(lo, hi),
                dy.batch_slice(lo, hi),
                acc.as_mut_slice(),
                1.0,
                if i == 0 { 0.0 } else { 1.0 },
                &mut [],
            )
            .unwrap();
        }
        prop_assert!(max_rel_diff(&full, &acc) < 1e-3);
    }

    /// alpha/beta output scaling is uniform across engines.
    #[test]
    fn alpha_beta_uniform(g in geometries(), alpha in -2.0f32..2.0, beta in -2.0f32..2.0, seed in 0u64..1000) {
        let x = Tensor::random(g.input, seed);
        let w = Tensor::random(g.filter.as_shape4(), seed + 1);
        let init = Tensor::random(g.output(), seed + 2);
        let mut reference = init.clone();
        exec(EngineKind::Direct, ConvOp::Forward, &g, x.as_slice(), w.as_slice(), reference.as_mut_slice(), alpha, beta, &mut []).unwrap();
        for engine in [EngineKind::Gemm, EngineKind::Fft, EngineKind::Winograd] {
            if supports(engine, ConvOp::Forward, &g) {
                let mut out = init.clone();
                let mut ws = vec![0.0f32; workspace_floats(engine, ConvOp::Forward, &g)];
                exec(engine, ConvOp::Forward, &g, x.as_slice(), w.as_slice(), out.as_mut_slice(), alpha, beta, &mut ws).unwrap();
                prop_assert!(max_rel_diff(&reference, &out) < 2e-2, "{engine:?} alpha/beta mismatch");
            }
        }
    }
}
