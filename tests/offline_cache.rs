//! The file-based benchmark database (§III-D): offline benchmarking and
//! result sharing across homogeneous nodes through the transparent handle.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::{
    ConvOp, ConvolutionDescriptor, CudnnHandle, FilterDescriptor, TensorDescriptor,
};
use ucudnn_gpu_model::{p100_sxm2, v100_sxm2};

const MIB: usize = 1024 * 1024;

fn tmp_db(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ucudnn-offline-{}-{}", tag, std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("bench.json")
}

fn opts(db: &std::path::Path) -> UcudnnOptions {
    UcudnnOptions {
        policy: BatchSizePolicy::PowerOfTwo,
        workspace_limit_bytes: 64 * MIB,
        mode: OptimizerMode::Wr,
        cache_file: Some(db.to_path_buf()),
        parallel_benchmark: false,
        opt_threads: 1,
    }
}

fn conv2_descs() -> (TensorDescriptor, FilterDescriptor, ConvolutionDescriptor) {
    (
        TensorDescriptor::new_4d(128, 64, 27, 27).unwrap(),
        FilterDescriptor::new_4d(192, 64, 5, 5).unwrap(),
        ConvolutionDescriptor::new_2d(2, 2, 1, 1).unwrap(),
    )
}

#[test]
fn second_handle_reuses_the_file_database() {
    let db = tmp_db("reuse");
    let (x, w, c) = conv2_descs();

    // "Offline" pass: benchmark, optimize, persist.
    let plan_a = {
        let h = UcudnnHandle::new(CudnnHandle::simulated(p100_sxm2()), opts(&db));
        h.get_algorithm(ConvOp::Forward, &x, &w, &c).unwrap();
        assert!(h.cache_stats().misses > 0, "cold cache must benchmark");
        h.save_cache().unwrap();
        let g = c.geometry(&x, &w).unwrap();
        h.plan(ConvOp::Forward, &g).unwrap()
    };

    // "Online" pass on another handle (another process/node in the paper's
    // NFS-sharing scenario): zero benchmarks, identical plan.
    let h2 = UcudnnHandle::new(CudnnHandle::simulated(p100_sxm2()), opts(&db));
    h2.get_algorithm(ConvOp::Forward, &x, &w, &c).unwrap();
    assert_eq!(
        h2.cache_stats().misses,
        0,
        "warm cache must not re-benchmark"
    );
    let g = c.geometry(&x, &w).unwrap();
    let plan_b = h2.plan(ConvOp::Forward, &g).unwrap();
    assert_eq!(plan_a.config.describe(), plan_b.config.describe());
    assert_eq!(
        plan_a.config.workspace_bytes(),
        plan_b.config.workspace_bytes()
    );

    std::fs::remove_dir_all(db.parent().unwrap()).ok();
}

#[test]
fn different_devices_never_share_cached_results() {
    let db = tmp_db("devices");
    let (x, w, c) = conv2_descs();
    {
        let h = UcudnnHandle::new(CudnnHandle::simulated(p100_sxm2()), opts(&db));
        h.get_algorithm(ConvOp::Forward, &x, &w, &c).unwrap();
        h.save_cache().unwrap();
    }
    // A V100 handle with the P100's database must still benchmark.
    let h2 = UcudnnHandle::new(CudnnHandle::simulated(v100_sxm2()), opts(&db));
    h2.get_algorithm(ConvOp::Forward, &x, &w, &c).unwrap();
    assert!(
        h2.cache_stats().misses > 0,
        "a different device must re-benchmark"
    );

    std::fs::remove_dir_all(db.parent().unwrap()).ok();
}

#[test]
fn parallel_and_serial_benchmarking_agree() {
    let (x, w, c) = conv2_descs();
    let g = c.geometry(&x, &w).unwrap();
    let serial = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            parallel_benchmark: false,
            ..opts(std::path::Path::new("/nonexistent"))
        },
    );
    let parallel = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            parallel_benchmark: true,
            ..opts(std::path::Path::new("/nonexistent2"))
        },
    );
    serial.get_algorithm(ConvOp::Forward, &x, &w, &c).unwrap();
    parallel.get_algorithm(ConvOp::Forward, &x, &w, &c).unwrap();
    let ps = serial.plan(ConvOp::Forward, &g).unwrap();
    let pp = parallel.plan(ConvOp::Forward, &g).unwrap();
    assert_eq!(
        ps.config, pp.config,
        "parallel evaluation must not change the plan"
    );
}
