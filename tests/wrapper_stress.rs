//! Stateful stress test: drive the transparent wrapper through randomized
//! sequences of API calls (registration, workspace queries, execution of
//! all three ops, repeated layers, WD finalization at arbitrary points) and
//! check its invariants after every step.

use proptest::prelude::*;
use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions, VIRTUAL_ALGO};
use ucudnn_cudnn_sim::{
    ConvOp, ConvolutionDescriptor, CudnnHandle, FilterDescriptor, TensorDescriptor,
};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_tensor::ConvGeometry;

const MIB: usize = 1024 * 1024;

/// A small menu of layer shapes the random walk draws from.
fn menu() -> Vec<ConvGeometry> {
    use ucudnn_tensor::{FilterShape, Shape4};
    vec![
        ConvGeometry::with_square(
            Shape4::new(32, 16, 27, 27),
            FilterShape::new(32, 16, 5, 5),
            2,
            1,
        ),
        ConvGeometry::with_square(
            Shape4::new(32, 32, 14, 14),
            FilterShape::new(32, 32, 3, 3),
            1,
            1,
        ),
        ConvGeometry::with_square(
            Shape4::new(32, 8, 56, 56),
            FilterShape::new(16, 8, 1, 1),
            0,
            1,
        ),
        ConvGeometry::with_square(
            Shape4::new(32, 3, 32, 32),
            FilterShape::new(8, 3, 7, 7),
            3,
            2,
        ),
    ]
}

#[derive(Debug, Clone)]
enum Action {
    Register { layer: usize, op: usize },
    QueryWorkspace { layer: usize, op: usize },
    Execute { layer: usize, op: usize },
    Finalize,
}

fn actions() -> impl Strategy<Value = Vec<Action>> {
    prop::collection::vec(
        prop_oneof![
            (0usize..4, 0usize..3).prop_map(|(layer, op)| Action::Register { layer, op }),
            (0usize..4, 0usize..3).prop_map(|(layer, op)| Action::QueryWorkspace { layer, op }),
            (0usize..4, 0usize..3).prop_map(|(layer, op)| Action::Execute { layer, op }),
            Just(Action::Finalize),
        ],
        1..24,
    )
}

fn descriptors(
    g: &ConvGeometry,
) -> (
    TensorDescriptor,
    FilterDescriptor,
    ConvolutionDescriptor,
    TensorDescriptor,
) {
    (
        TensorDescriptor::from_shape(g.input).unwrap(),
        FilterDescriptor::from_shape(g.filter).unwrap(),
        ConvolutionDescriptor::new_2d(g.pad_h, g.pad_w, g.stride_h, g.stride_w).unwrap(),
        TensorDescriptor::from_shape(g.output()).unwrap(),
    )
}

fn run_walk(mode: OptimizerMode, limit: usize, walk: &[Action]) {
    let layers = menu();
    let h = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: limit,
            mode,
            ..Default::default()
        },
    );
    for a in walk {
        match a {
            Action::Register { layer, op } => {
                let g = &layers[*layer];
                let (x, w, c, _) = descriptors(g);
                let algo = h.get_algorithm(ConvOp::ALL[*op], &x, &w, &c).unwrap();
                assert_eq!(algo, VIRTUAL_ALGO);
            }
            Action::QueryWorkspace { layer, op } => {
                let g = &layers[*layer];
                let (x, w, c, _) = descriptors(g);
                let ws = h
                    .get_workspace_size(ConvOp::ALL[*op], &x, &w, &c, VIRTUAL_ALGO)
                    .unwrap();
                assert_eq!(ws, 0, "the wrapper always reports zero workspace");
            }
            Action::Execute { layer, op } => {
                let g = &layers[*layer];
                let (x, w, c, y) = descriptors(g);
                let before = h.inner().kernels_launched();
                match ConvOp::ALL[*op] {
                    ConvOp::Forward => h
                        .convolution_forward(
                            1.0,
                            &x,
                            &[],
                            &w,
                            &[],
                            &c,
                            VIRTUAL_ALGO,
                            0.0,
                            &y,
                            &mut [],
                        )
                        .unwrap(),
                    ConvOp::BackwardData => h
                        .convolution_backward_data(
                            1.0,
                            &w,
                            &[],
                            &y,
                            &[],
                            &c,
                            VIRTUAL_ALGO,
                            0.0,
                            &x,
                            &mut [],
                        )
                        .unwrap(),
                    ConvOp::BackwardFilter => h
                        .convolution_backward_filter(
                            1.0,
                            &x,
                            &[],
                            &y,
                            &[],
                            &c,
                            VIRTUAL_ALGO,
                            0.0,
                            &w,
                            &mut [],
                        )
                        .unwrap(),
                }
                // The execution replayed exactly the installed plan.
                let plan = h
                    .plan(ConvOp::ALL[*op], g)
                    .expect("plan exists after execution");
                assert_eq!(
                    h.inner().kernels_launched() - before,
                    plan.config.micros.len() as u64
                );
                assert_eq!(plan.config.batch(), g.input.n);
                assert!(plan.config.workspace_bytes() <= limit);
            }
            Action::Finalize => h.finalize_network().unwrap(),
        }
        // Global invariants after every action.
        for (_, config, bytes) in h.memory_report() {
            assert!(bytes <= limit);
            assert_eq!(config.workspace_bytes(), bytes);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn wr_wrapper_survives_random_walks(walk in actions(), limit_mib in 1usize..128) {
        run_walk(OptimizerMode::Wr, limit_mib * MIB, &walk);
    }

    #[test]
    fn wd_wrapper_survives_random_walks(walk in actions(), limit_mib in 8usize..256) {
        run_walk(OptimizerMode::Wd, limit_mib * MIB, &walk);
    }
}
