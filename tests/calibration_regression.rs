//! Calibration regression: the headline shapes recorded in EXPERIMENTS.md,
//! pinned as assertions so model changes that silently break the
//! reproduction fail loudly. Bands are deliberately wide — the claim is the
//! *shape* (who wins, roughly by how much), not a fragile constant.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_framework::{alexnet, setup_network, time_command};
use ucudnn_gpu_model::{enumerate, fastest_within, p100_sxm2};

const MIB: usize = 1024 * 1024;

fn conv2_geometry() -> ucudnn_tensor::ConvGeometry {
    let net = alexnet(256);
    net.conv_geometry(net.conv_layers()[1])
}

fn alexnet_speedup(limit: usize, policy: BatchSizePolicy) -> (f64, f64) {
    let net = alexnet(256);
    let undiv = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::Undivided,
            workspace_limit_bytes: limit,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    );
    let ru = time_command(&undiv, &net, 1).unwrap();
    let opt = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy,
            workspace_limit_bytes: limit,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    );
    let ro = time_command(&opt, &net, 1).unwrap();
    (
        ru.timing.total_us() / ro.timing.total_us(),
        ru.timing.conv_us() / ro.timing.conv_us(),
    )
}

/// Fig. 1: conv2's "-1 byte" cliff is large (paper: 4.51×; band: ≥ 2×).
#[test]
fn conv2_cliff_band() {
    let d = p100_sxm2();
    let g = conv2_geometry();
    let best = enumerate(&d, ConvOp::Forward, &g)[0];
    let constrained = fastest_within(&d, ConvOp::Forward, &g, best.workspace_bytes - 1).unwrap();
    let cliff = constrained.time_us / best.time_us;
    assert!(
        (2.0..8.0).contains(&cliff),
        "conv2 cliff {cliff:.2} left the band"
    );
}

/// Fig. 10 @ P100: `all` vs `undivided` at 64 MiB lands near the paper's
/// 1.40× iteration / 1.63× convolution speedups.
#[test]
fn alexnet_p100_64mib_band() {
    let (iter, conv) = alexnet_speedup(64 * MIB, BatchSizePolicy::All);
    assert!(
        (1.2..1.8).contains(&iter),
        "iteration speedup {iter:.2} left the band"
    );
    assert!(
        (1.3..2.2).contains(&conv),
        "convolution speedup {conv:.2} left the band"
    );
}

/// Fig. 10: no gain at 8 MiB, parity at 512 MiB (P100, batch 256).
#[test]
fn alexnet_p100_extremes_band() {
    let (iter8, _) = alexnet_speedup(8 * MIB, BatchSizePolicy::All);
    assert!(
        (0.99..1.1).contains(&iter8),
        "8 MiB speedup {iter8:.3} should be ~1"
    );
    let (iter512, _) = alexnet_speedup(512 * MIB, BatchSizePolicy::All);
    assert!(
        (0.99..1.05).contains(&iter512),
        "512 MiB speedup {iter512:.3} should be ~1"
    );
}

/// §IV-A: conv2 `all` beats `undivided` by a large factor at 64 MiB
/// (paper: 2.33×).
#[test]
fn conv2_wr_band() {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = ucudnn::BenchCache::new();
    let key = ucudnn::KernelKey::new(ConvOp::Forward, &conv2_geometry());
    let u = ucudnn::optimize_wr(
        &handle,
        &cache,
        &key,
        64 * MIB,
        BatchSizePolicy::Undivided,
        false,
    )
    .unwrap();
    let a =
        ucudnn::optimize_wr(&handle, &cache, &key, 64 * MIB, BatchSizePolicy::All, false).unwrap();
    let speedup = u.config.time_us() / a.config.time_us();
    assert!(
        (1.8..3.5).contains(&speedup),
        "conv2 speedup {speedup:.2} left the band"
    );
}

/// Fig. 14: under a tight total budget WD concentrates the workspace on
/// conv2/conv3 (paper: 93.7% of 120 MiB).
#[test]
fn wd_concentrates_on_conv2_conv3() {
    let net = alexnet(256);
    let handle = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 120 * MIB,
            mode: OptimizerMode::Wd,
            ..Default::default()
        },
    );
    setup_network(&handle, &net).unwrap();
    let plan = handle.wd_plan().unwrap();
    let conv23: usize = plan
        .assignments
        .iter()
        .filter(|a| {
            let g = a.kernel.geometry();
            // conv2 reads 64ch 27x27; conv3 reads 192ch 13x13.
            (g.input.c == 64 && g.input.h == 27) || (g.input.c == 192 && g.input.h == 13)
        })
        .map(|a| a.config.workspace_bytes())
        .sum();
    let share = conv23 as f64 / plan.total_workspace_bytes.max(1) as f64;
    assert!(
        share > 0.8,
        "conv2+conv3 share {share:.2} should dominate (paper 0.937)"
    );
}

/// The workspace-memory claim of Fig. 10: `all` at 64 MiB uses several
/// times less workspace than `undivided` at 512 MiB while being at least
/// as fast.
#[test]
fn all_64_dominates_undivided_512_on_memory() {
    let net = alexnet(256);
    let roomy = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::Undivided,
            workspace_limit_bytes: 512 * MIB,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    );
    let rr = time_command(&roomy, &net, 1).unwrap();
    let lean = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::All,
            workspace_limit_bytes: 64 * MIB,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    );
    let rl = time_command(&lean, &net, 1).unwrap();
    let mem_ratio = rr.workspace_bytes as f64 / rl.workspace_bytes as f64;
    assert!(mem_ratio > 3.0, "memory ratio {mem_ratio:.2} (paper ~4.1x)");
    let slowdown = rl.timing.total_us() / rr.timing.total_us();
    assert!(
        slowdown < 1.35,
        "lean config too slow: {slowdown:.2}x (paper 1.04x)"
    );
}
