//! Online re-optimization regression suite (DESIGN.md §13).
//!
//! The deterministic drift-and-recover simulation is the proof artifact
//! behind the re-optimization headline, so its behavior is pinned here at
//! the serve_bench scale: same seed ⇒ byte-identical fire/shed/drift/swap
//! log; a 2× mid-run slowdown ⇒ the detector fires within its window
//! budget, a re-benchmarked plan hot-swaps in, and the re-optimized lane
//! serves violation-free after convergence while the frozen baseline breaks
//! its deadline promises; no drift ⇒ zero false-positive detections or
//! swaps across seeds.
//!
//! The latency table is the real pipeline's — AlexNet conv2 forward,
//! benchmarked on the simulated P100 through the Pareto-front cache — not a
//! synthetic stand-in, so the regression also covers the bench→plan→serve
//! seam.

use ucudnn::{forward_latency_table, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::{p100_sxm2, Perturbation};
use ucudnn_serve::{run_reopt_sim, ReoptConfig, ReoptSimConfig};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

const SLO_US: f64 = 20_000.0;
const MAX_BATCH: usize = 32;
const PERTURB_AT_US: f64 = 50_000.0;

/// The serve_bench serving table: AlexNet conv2 forward on the simulated
/// P100, power-of-two sizes up to 32.
fn p100_conv2_table() -> Vec<(usize, f64)> {
    let g = ConvGeometry::with_square(
        Shape4::new(MAX_BATCH, 64, 27, 27),
        FilterShape::new(192, 64, 5, 5),
        2,
        1,
    );
    let handle = CudnnHandle::simulated(p100_sxm2());
    let table = forward_latency_table(
        &handle,
        &BenchCache::new(),
        &[KernelKey::new(ConvOp::Forward, &g)],
        BatchSizePolicy::PowerOfTwo,
        MAX_BATCH,
        512 << 20,
    );
    assert!(
        !table.is_empty(),
        "the demo kernel must have feasible sizes"
    );
    table
}

/// The serve_bench reopt experiment config: one worker at 20k rps under a
/// 20ms SLO, deep queue, 2× slowdown at t=50ms.
fn experiment(seed: u64, reopt: Option<ReoptConfig>) -> ReoptSimConfig {
    ReoptSimConfig {
        seed,
        slo_us: SLO_US,
        queue_cap: 1024,
        workers: 1,
        max_batch: MAX_BATCH,
        arrival_rate_rps: 20_000.0,
        requests: 4_000,
        base_table: p100_conv2_table(),
        perturb: Perturbation::new(PERTURB_AT_US, 2.0),
        reopt,
        rebench_latency_us: 5_000.0,
        burn: None,
    }
}

#[test]
fn same_seed_gives_a_byte_identical_swap_and_shed_log() {
    for reopt in [None, Some(ReoptConfig::default())] {
        let cfg = experiment(2018, reopt);
        let a = run_reopt_sim(&cfg);
        let b = run_reopt_sim(&cfg);
        assert_eq!(a.log, b.log, "reopt={}: log diverged", reopt.is_some());
        assert_eq!(a.batch_sizes, b.batch_sizes);
        assert_eq!(a.shed, b.shed);
        assert_eq!(
            (a.violations, a.swaps, a.stale_detections, a.final_version),
            (b.violations, b.swaps, b.stale_detections, b.final_version),
        );
        assert_eq!(a.swap_time_us, b.swap_time_us);
    }
}

#[test]
fn a_2x_slowdown_is_detected_within_the_window_budget_and_reconverges() {
    let cfg = experiment(2018, Some(ReoptConfig::default()));
    let out = run_reopt_sim(&cfg);

    assert!(out.stale_detections >= 1, "the drift must be detected");
    let detect = out.detect_time_us.expect("a detection timestamp");
    assert!(
        detect >= PERTURB_AT_US,
        "no detection before the drift exists (got t={detect})"
    );
    // Window budget: the detector needs at most one partially-pre-drift
    // window plus `consecutive` fully-drifted windows of post-drift
    // micro-batches. The slowest micro is t*(32)·2, so bound the detection
    // lag by (1 + consecutive) · window_samples · that time, with 2x slack
    // for scheduling gaps.
    let d = ReoptConfig::default();
    let worst_micro_us = 2.0
        * cfg
            .base_table
            .iter()
            .map(|&(_, t)| t)
            .fold(0.0f64, f64::max);
    let budget = 2.0 * (1 + d.consecutive) as f64 * d.window_samples as f64 * worst_micro_us;
    assert!(
        detect - PERTURB_AT_US <= budget,
        "detection lag {:.0}us exceeds the window budget {budget:.0}us",
        detect - PERTURB_AT_US
    );

    // The re-benchmark lands after its modeled latency and re-converges.
    assert!(out.swaps >= 1, "a refreshed plan must hot-swap in");
    let swap = out.swap_time_us.expect("a swap timestamp");
    assert!(swap >= detect + cfg.rebench_latency_us);
    assert_eq!(out.final_version, 1 + out.swaps);
    assert_eq!(
        out.violations_post_swap, 0,
        "after re-convergence the plan and the device agree — violations must stop"
    );
    assert_eq!(out.completed + out.shed.total(), cfg.requests as u64);
}

#[test]
fn the_frozen_baseline_sheds_and_violates_where_reopt_stays_clean() {
    let frozen = run_reopt_sim(&experiment(2018, None));
    let reopt = run_reopt_sim(&experiment(2018, Some(ReoptConfig::default())));

    // Frozen: never notices the device halved; keeps promising 20ms
    // deadlines the device cannot meet.
    assert_eq!(frozen.swaps, 0);
    assert_eq!(frozen.stale_detections, 0);
    assert_eq!(frozen.final_version, 1);
    assert!(frozen.shed.total() > 0, "overload must shed");
    assert!(
        frozen.violations > 0,
        "the stale plan must break deadline promises"
    );

    // Re-optimized: same load, same drift — zero violations after the swap,
    // and strictly fewer violations than the frozen lane overall.
    assert_eq!(reopt.violations_post_swap, 0);
    assert!(
        reopt.violations < frozen.violations,
        "re-optimization must reduce violations ({} vs frozen {})",
        reopt.violations,
        frozen.violations
    );
    for out in [&frozen, &reopt] {
        assert_eq!(out.completed + out.shed.total(), 4_000);
    }
}

#[test]
fn no_drift_means_zero_false_positive_swaps_across_seeds() {
    for seed in [1u64, 7, 2018] {
        let mut cfg = experiment(seed, Some(ReoptConfig::default()));
        cfg.perturb = Perturbation::new(f64::INFINITY, 2.0); // never fires
        let out = run_reopt_sim(&cfg);
        assert_eq!(
            out.stale_detections, 0,
            "seed {seed}: detector false-positived on an on-table device"
        );
        assert_eq!(out.swaps, 0, "seed {seed}: spurious swap");
        assert_eq!(out.violations, 0, "seed {seed}: healthy lane violated");
        assert_eq!(out.final_version, 1);
        // And with the detector observing but never firing, the reopt lane
        // is byte-identical to the frozen lane on the same seed.
        let mut frozen_cfg = experiment(seed, None);
        frozen_cfg.perturb = Perturbation::new(f64::INFINITY, 2.0);
        let frozen = run_reopt_sim(&frozen_cfg);
        assert_eq!(
            out.log, frozen.log,
            "seed {seed}: observation perturbed serving"
        );
    }
}
