//! The statistical-efficiency claim, end to end: an entire SGD training
//! run — forward, loss, backward, parameter updates, across many steps —
//! produces the same loss trajectory whether convolutions are micro-batched
//! or not. μ-cuDNN improves hardware efficiency only.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{
    train, BaselineCudnn, LayerSpec, NetworkDef, RealExecutor, SyntheticDataset,
};
use ucudnn_tensor::Shape4;

fn classifier(n: usize) -> NetworkDef {
    let mut net = NetworkDef::new("clf", Shape4::new(n, 2, 10, 10));
    let c1 = net.conv_relu("conv1", net.input(), 6, 5, 1, 2);
    let p = net.add(
        "pool",
        LayerSpec::Pool {
            max: true,
            kernel: 2,
            stride: 2,
            pad: 0,
        },
        &[c1],
    );
    let c2 = net.conv_relu("conv2", p, 8, 3, 1, 1);
    let gap = net.add("gap", LayerSpec::GlobalAvgPool, &[c2]);
    net.add("fc", LayerSpec::FullyConnected { out: 4 }, &[gap]);
    net
}

#[test]
fn micro_batched_training_matches_undivided_trajectory() {
    let net = classifier(9); // odd batch: uneven micro-batches guaranteed
    let steps = 12;
    let lr = 0.3;

    // Baseline trajectory.
    let mut exec_a = RealExecutor::new(net.clone(), 1234);
    let base = BaselineCudnn::new(CudnnHandle::real_cpu(), 8 << 20);
    let mut data_a = SyntheticDataset::new(Shape4::new(1, 2, 10, 10), 4, 77);
    let losses_a = train(&mut exec_a, &base, &mut data_a, steps, lr).unwrap();

    // μ-cuDNN trajectory with a limit tight enough to force splitting.
    let mut exec_b = RealExecutor::new(net.clone(), 1234);
    let mu = UcudnnHandle::new(
        CudnnHandle::real_cpu(),
        UcudnnOptions {
            policy: BatchSizePolicy::All,
            workspace_limit_bytes: 24 << 10,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    );
    let mut data_b = SyntheticDataset::new(Shape4::new(1, 2, 10, 10), 4, 77);
    let losses_b = train(&mut exec_b, &mu, &mut data_b, steps, lr).unwrap();

    assert!(
        mu.inner().kernels_launched() > (3 * net.conv_layers().len() * steps) as u64,
        "limit did not force micro-batching"
    );

    // Loss trajectories must coincide step by step (small f32 drift is
    // allowed to compound slightly over steps).
    for (step, (a, b)) in losses_a.iter().zip(&losses_b).enumerate() {
        let tol = 1e-4 * (step as f64 + 1.0);
        assert!(
            (a - b).abs() <= tol.max(1e-6) * a.abs().max(1.0),
            "step {step}: loss {a} vs {b}"
        );
    }

    // And the final parameters must match too.
    for (pa, pb) in exec_a.params.iter().zip(&exec_b.params) {
        use ucudnn_framework::Params;
        let (wa, wb): (&[f32], &[f32]) = match (pa, pb) {
            (Params::Conv { w: a, .. }, Params::Conv { w: b, .. })
            | (Params::Fc { w: a, .. }, Params::Fc { w: b, .. })
            | (Params::Bn { gamma: a, .. }, Params::Bn { gamma: b, .. }) => (a, b),
            (Params::None, Params::None) => continue,
            other => panic!("kind mismatch {other:?}"),
        };
        for (x, y) in wa.iter().zip(wb) {
            let d = (x - y).abs() / x.abs().max(y.abs()).max(1.0);
            assert!(d < 5e-3, "final weights diverged: {x} vs {y}");
        }
    }

    // Sanity: the losses are meaningful numbers (convergence itself is
    // covered by `ucudnn-framework`'s `sgd_reduces_the_loss_on_the_
    // synthetic_task` over a longer run; 12 steps only need to *match*).
    let chance = (4.0f64).ln();
    for l in &losses_a {
        assert!(
            l.is_finite() && *l > 0.0 && *l < 3.0 * chance,
            "implausible loss {l}"
        );
    }
}
