//! Edge-of-the-envelope cases across the whole stack: degenerate shapes,
//! single-sample batches, empty kernel sets — places where off-by-ones and
//! unchecked divisions like to hide.

use ucudnn::{optimize_wd, optimize_wr, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_conv::{exec, supports, workspace_floats, ConvOp, EngineKind};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4, Tensor};

/// The smallest possible convolution: 1×1×1×1 input, 1×1 kernel.
#[test]
fn one_by_one_everything() {
    let g = ConvGeometry::with_square(Shape4::new(1, 1, 1, 1), FilterShape::new(1, 1, 1, 1), 0, 1);
    let x = Tensor::full(g.input, 3.0);
    let w = Tensor::full(g.filter.as_shape4(), 2.0);
    for engine in EngineKind::ALL {
        if !supports(engine, ConvOp::Forward, &g) {
            continue;
        }
        let mut y = Tensor::zeros(g.output());
        let mut ws = vec![0.0; workspace_floats(engine, ConvOp::Forward, &g)];
        exec(
            engine,
            ConvOp::Forward,
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        )
        .unwrap();
        assert!(
            (y.as_slice()[0] - 6.0).abs() < 1e-5,
            "{engine:?} got {}",
            y.as_slice()[0]
        );
    }
}

/// A kernel exactly the size of the (unpadded) image: one output pixel.
#[test]
fn kernel_equals_image() {
    let g = ConvGeometry::with_square(Shape4::new(2, 2, 5, 5), FilterShape::new(3, 2, 5, 5), 0, 1);
    assert_eq!(g.output(), Shape4::new(2, 3, 1, 1));
    let x = Tensor::random(g.input, 1);
    let w = Tensor::random(g.filter.as_shape4(), 2);
    let mut direct = Tensor::zeros(g.output());
    exec(
        EngineKind::Direct,
        ConvOp::Forward,
        &g,
        x.as_slice(),
        w.as_slice(),
        direct.as_mut_slice(),
        1.0,
        0.0,
        &mut [],
    )
    .unwrap();
    let mut fft = Tensor::zeros(g.output());
    let mut ws = vec![0.0; workspace_floats(EngineKind::Fft, ConvOp::Forward, &g)];
    exec(
        EngineKind::Fft,
        ConvOp::Forward,
        &g,
        x.as_slice(),
        w.as_slice(),
        fft.as_mut_slice(),
        1.0,
        0.0,
        &mut ws,
    )
    .unwrap();
    ucudnn_tensor::assert_all_close(&direct, &fft, 5e-3);
}

/// WR on a batch of one: the only division is no division.
#[test]
fn wr_batch_of_one() {
    let g = ConvGeometry::with_square(
        Shape4::new(1, 8, 14, 14),
        FilterShape::new(8, 8, 3, 3),
        1,
        1,
    );
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    for policy in [
        BatchSizePolicy::All,
        BatchSizePolicy::PowerOfTwo,
        BatchSizePolicy::Undivided,
    ] {
        let r = optimize_wr(
            &handle,
            &cache,
            &KernelKey::new(ucudnn_cudnn_sim::ConvOp::Forward, &g),
            64 << 20,
            policy,
            false,
        )
        .unwrap();
        assert!(r.config.is_undivided());
        assert_eq!(r.config.batch(), 1);
    }
}

/// WD with no kernels: a trivially empty, feasible plan.
#[test]
fn wd_with_no_kernels() {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    let plan = optimize_wd(&handle, &cache, &[], 64 << 20, BatchSizePolicy::PowerOfTwo).unwrap();
    assert!(plan.assignments.is_empty());
    assert_eq!(plan.total_workspace_bytes, 0);
}

/// Huge-kernel geometry where padding pushes FFT off its support envelope.
#[test]
fn oversized_padding_falls_back_cleanly() {
    // pad == filter size would alias in the frequency domain; the engine and
    // the model must both refuse, and the optimizer must still produce a
    // plan from the remaining algorithms.
    let g = ConvGeometry::with_square(Shape4::new(4, 4, 9, 9), FilterShape::new(4, 4, 3, 3), 2, 1);
    assert!(supports(EngineKind::Fft, ConvOp::Forward, &g)); // pad 2 < 3: fine
    let g_bad = ConvGeometry::new(
        Shape4::new(4, 4, 9, 9),
        FilterShape::new(4, 4, 3, 3),
        3,
        3,
        1,
        1,
    );
    assert!(!supports(EngineKind::Fft, ConvOp::Forward, &g_bad));
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    let r = optimize_wr(
        &handle,
        &cache,
        &KernelKey::new(ucudnn_cudnn_sim::ConvOp::Forward, &g_bad),
        64 << 20,
        BatchSizePolicy::PowerOfTwo,
        false,
    )
    .unwrap();
    assert_eq!(r.config.batch(), 4);
}

/// Non-square images and non-square strides through every engine.
#[test]
fn rectangular_geometry_agreement() {
    let g = ConvGeometry::new(
        Shape4::new(3, 2, 7, 15),
        FilterShape::new(4, 2, 3, 3),
        1,
        2,
        1,
        1,
    );
    let x = Tensor::random(g.input, 5);
    let w = Tensor::random(g.filter.as_shape4(), 6);
    let mut reference = Tensor::zeros(g.output());
    exec(
        EngineKind::Direct,
        ConvOp::Forward,
        &g,
        x.as_slice(),
        w.as_slice(),
        reference.as_mut_slice(),
        1.0,
        0.0,
        &mut [],
    )
    .unwrap();
    for engine in [EngineKind::Gemm, EngineKind::Fft] {
        if !supports(engine, ConvOp::Forward, &g) {
            continue;
        }
        let mut y = Tensor::zeros(g.output());
        let mut ws = vec![0.0; workspace_floats(engine, ConvOp::Forward, &g)];
        exec(
            engine,
            ConvOp::Forward,
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        )
        .unwrap();
        ucudnn_tensor::assert_all_close(&reference, &y, 5e-3);
    }
}
