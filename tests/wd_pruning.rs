//! Validation of the paper's Pareto-pruning theorem (§III-C1): solving the
//! WD ILP over the *pruned* desirable sets yields the same optimum as
//! solving it over the *full* configuration space.
//!
//! For small mini-batches we can enumerate every configuration — every
//! multiset of (micro-batch size, algorithm) pairs that tiles the batch —
//! and compare optima.

use std::collections::BTreeMap;
use ucudnn::{desirable_set, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_lp::{Item, MckInstance};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

const MIB: usize = 1024 * 1024;

fn kernel(n: usize, c: usize, k: usize, r: usize, pad: usize) -> KernelKey {
    let g = ConvGeometry::with_square(
        Shape4::new(n, c, 14, 14),
        FilterShape::new(k, c, r, r),
        pad,
        1,
    );
    KernelKey::new(ConvOp::Forward, &g)
}

/// Every (time, workspace) pair achievable by *any* configuration of the
/// kernel within the cap, deduplicated. Exponential; `b` must be tiny.
fn full_configuration_costs(
    handle: &CudnnHandle,
    cache: &BenchCache,
    key: &KernelKey,
    cap: usize,
) -> Vec<(f64, usize)> {
    let b = key.batch();
    // Per-size menus of (time, ws).
    let menus: Vec<Vec<(f64, usize)>> = (0..=b)
        .map(|m| {
            if m == 0 {
                return Vec::new();
            }
            let micro_key = KernelKey {
                input: key.input.with_batch(m),
                ..*key
            };
            cache
                .get_or_bench(handle, &micro_key)
                .into_iter()
                .filter(|e| e.memory_bytes <= cap)
                .map(|e| (e.time_us, e.memory_bytes))
                .collect()
        })
        .collect();
    // DP over remaining batch accumulating (time, max-ws) pairs, dedup via
    // a map keyed by quantized cost to keep the set finite.
    let mut states: Vec<BTreeMap<(u64, usize), ()>> = vec![BTreeMap::new(); b + 1];
    let mut times: Vec<Vec<(f64, usize)>> = vec![Vec::new(); b + 1];
    times[0].push((0.0, 0));
    states[0].insert((0, 0), ());
    for n in 1..=b {
        let mut acc: Vec<(f64, usize)> = Vec::new();
        for m in 1..=n {
            for &(mt, mw) in &menus[m] {
                for &(pt, pw) in &times[n - m] {
                    acc.push((pt + mt, pw.max(mw)));
                }
            }
        }
        // Dedup exact duplicates to bound growth (no Pareto pruning!).
        let mut seen = BTreeMap::new();
        for (t, w) in acc {
            seen.entry(((t * 1e6) as u64, w)).or_insert((t, w));
        }
        times[n] = seen.into_values().collect();
    }
    times[b].clone()
}

#[test]
fn pruned_ilp_matches_full_space_ilp() {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    // Three small kernels with different algorithm menus: a 5×5 (FFT
    // territory), a 3×3 (Winograd territory) and a 1×1 (GEMM only wins).
    let kernels = [
        kernel(4, 16, 32, 5, 2),
        kernel(4, 32, 32, 3, 1),
        kernel(4, 64, 16, 1, 0),
    ];
    for cap_mib in [1usize, 4, 16, 64] {
        let cap = cap_mib * MIB;
        // Pruned path: the production desirable sets.
        let pruned_groups: Vec<Vec<Item>> = kernels
            .iter()
            .map(|k| {
                desirable_set(&handle, &cache, k, cap, BatchSizePolicy::All)
                    .iter()
                    .map(|c| Item {
                        cost: c.time_us(),
                        weight: c.workspace_bytes() as f64,
                    })
                    .collect()
            })
            .collect();
        // Full path: every configuration.
        let full_groups: Vec<Vec<Item>> = kernels
            .iter()
            .map(|k| {
                full_configuration_costs(&handle, &cache, k, cap)
                    .into_iter()
                    .map(|(t, w)| Item {
                        cost: t,
                        weight: w as f64,
                    })
                    .collect()
            })
            .collect();
        let sizes: Vec<usize> = full_groups.iter().map(Vec::len).collect();
        let pruned_sizes: Vec<usize> = pruned_groups.iter().map(Vec::len).collect();
        assert!(
            pruned_sizes.iter().zip(&sizes).all(|(p, f)| p <= f),
            "pruning must not grow the sets"
        );

        let budget = (cap / 2) as f64; // a binding global budget
        let pruned = MckInstance {
            groups: pruned_groups,
            capacity: budget,
        }
        .solve()
        .map(|(_, v)| v);
        let full = MckInstance {
            groups: full_groups,
            capacity: budget,
        }
        .solve()
        .map(|(_, v)| v);
        match (pruned, full) {
            (Some(p), Some(f)) => assert!(
                (p - f).abs() <= 1e-6 * f.max(1.0),
                "cap {cap_mib} MiB: pruned optimum {p} != full optimum {f}"
            ),
            (None, None) => {}
            other => panic!("feasibility mismatch at cap {cap_mib} MiB: {other:?}"),
        }
    }
}

#[test]
fn desirable_set_is_a_subset_of_the_full_space() {
    // Every pruned configuration's (time, ws) must be achievable in the
    // full enumeration (no fabricated points).
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    let key = kernel(4, 16, 32, 5, 2);
    let cap = 32 * MIB;
    let full = full_configuration_costs(&handle, &cache, &key, cap);
    let pruned = desirable_set(&handle, &cache, &key, cap, BatchSizePolicy::All);
    for c in &pruned {
        let found = full.iter().any(|&(t, w)| {
            (t - c.time_us()).abs() <= 1e-6 * t.max(1.0) && w == c.workspace_bytes()
        });
        assert!(found, "pruned config {c} not found in the full space");
    }
}

#[test]
fn no_pruned_configuration_is_dominated() {
    // The definitional property of the desirable set: no member is both
    // slower and at least as large as another member of the full space.
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    let key = kernel(4, 32, 32, 3, 1);
    let cap = 16 * MIB;
    let full = full_configuration_costs(&handle, &cache, &key, cap);
    let pruned = desirable_set(&handle, &cache, &key, cap, BatchSizePolicy::All);
    for c in &pruned {
        let dominated = full
            .iter()
            .any(|&(t, w)| t < c.time_us() - 1e-6 && w < c.workspace_bytes());
        assert!(!dominated, "{c} is dominated by a full-space configuration");
    }
}
