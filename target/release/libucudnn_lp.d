/root/repo/target/release/libucudnn_lp.rlib: /root/repo/crates/lp/src/ilp.rs /root/repo/crates/lp/src/lib.rs /root/repo/crates/lp/src/mck.rs /root/repo/crates/lp/src/simplex.rs
