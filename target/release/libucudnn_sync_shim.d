/root/repo/target/release/libucudnn_sync_shim.rlib: /root/repo/crates/sync-shim/src/lib.rs
