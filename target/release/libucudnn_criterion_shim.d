/root/repo/target/release/libucudnn_criterion_shim.rlib: /root/repo/crates/criterion-shim/src/lib.rs
