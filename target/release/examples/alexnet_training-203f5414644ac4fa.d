/root/repo/target/release/examples/alexnet_training-203f5414644ac4fa.d: examples/alexnet_training.rs Cargo.toml

/root/repo/target/release/examples/libalexnet_training-203f5414644ac4fa.rmeta: examples/alexnet_training.rs Cargo.toml

examples/alexnet_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
