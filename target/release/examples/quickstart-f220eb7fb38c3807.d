/root/repo/target/release/examples/quickstart-f220eb7fb38c3807.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-f220eb7fb38c3807: examples/quickstart.rs

examples/quickstart.rs:
