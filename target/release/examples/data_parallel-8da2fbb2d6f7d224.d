/root/repo/target/release/examples/data_parallel-8da2fbb2d6f7d224.d: examples/data_parallel.rs Cargo.toml

/root/repo/target/release/examples/libdata_parallel-8da2fbb2d6f7d224.rmeta: examples/data_parallel.rs Cargo.toml

examples/data_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
