/root/repo/target/release/examples/inception_wd-9294e638ea7fd842.d: examples/inception_wd.rs Cargo.toml

/root/repo/target/release/examples/libinception_wd-9294e638ea7fd842.rmeta: examples/inception_wd.rs Cargo.toml

examples/inception_wd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
