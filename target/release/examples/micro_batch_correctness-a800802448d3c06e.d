/root/repo/target/release/examples/micro_batch_correctness-a800802448d3c06e.d: examples/micro_batch_correctness.rs Cargo.toml

/root/repo/target/release/examples/libmicro_batch_correctness-a800802448d3c06e.rmeta: examples/micro_batch_correctness.rs Cargo.toml

examples/micro_batch_correctness.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
