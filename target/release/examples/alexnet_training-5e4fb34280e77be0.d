/root/repo/target/release/examples/alexnet_training-5e4fb34280e77be0.d: examples/alexnet_training.rs

/root/repo/target/release/examples/alexnet_training-5e4fb34280e77be0: examples/alexnet_training.rs

examples/alexnet_training.rs:
