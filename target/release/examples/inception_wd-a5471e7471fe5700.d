/root/repo/target/release/examples/inception_wd-a5471e7471fe5700.d: examples/inception_wd.rs Cargo.toml

/root/repo/target/release/examples/libinception_wd-a5471e7471fe5700.rmeta: examples/inception_wd.rs Cargo.toml

examples/inception_wd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
