/root/repo/target/release/examples/data_parallel-3d25ea6c0a62acd1.d: examples/data_parallel.rs

/root/repo/target/release/examples/data_parallel-3d25ea6c0a62acd1: examples/data_parallel.rs

examples/data_parallel.rs:
