/root/repo/target/release/examples/micro_batch_correctness-79953a84e819f932.d: examples/micro_batch_correctness.rs

/root/repo/target/release/examples/micro_batch_correctness-79953a84e819f932: examples/micro_batch_correctness.rs

examples/micro_batch_correctness.rs:
