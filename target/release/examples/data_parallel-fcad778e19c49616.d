/root/repo/target/release/examples/data_parallel-fcad778e19c49616.d: examples/data_parallel.rs Cargo.toml

/root/repo/target/release/examples/libdata_parallel-fcad778e19c49616.rmeta: examples/data_parallel.rs Cargo.toml

examples/data_parallel.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
