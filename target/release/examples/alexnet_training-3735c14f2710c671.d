/root/repo/target/release/examples/alexnet_training-3735c14f2710c671.d: examples/alexnet_training.rs Cargo.toml

/root/repo/target/release/examples/libalexnet_training-3735c14f2710c671.rmeta: examples/alexnet_training.rs Cargo.toml

examples/alexnet_training.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
