/root/repo/target/release/examples/quickstart-be49fa5de7b0aa22.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-be49fa5de7b0aa22.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
