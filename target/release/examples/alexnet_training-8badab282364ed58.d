/root/repo/target/release/examples/alexnet_training-8badab282364ed58.d: examples/alexnet_training.rs

/root/repo/target/release/examples/alexnet_training-8badab282364ed58: examples/alexnet_training.rs

examples/alexnet_training.rs:
