/root/repo/target/release/examples/quickstart-d9abf8cbff0bc8d7.d: examples/quickstart.rs Cargo.toml

/root/repo/target/release/examples/libquickstart-d9abf8cbff0bc8d7.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
