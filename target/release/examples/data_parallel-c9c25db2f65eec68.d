/root/repo/target/release/examples/data_parallel-c9c25db2f65eec68.d: examples/data_parallel.rs

/root/repo/target/release/examples/data_parallel-c9c25db2f65eec68: examples/data_parallel.rs

examples/data_parallel.rs:
