/root/repo/target/release/examples/inception_wd-7e6457f3396a77a6.d: examples/inception_wd.rs

/root/repo/target/release/examples/inception_wd-7e6457f3396a77a6: examples/inception_wd.rs

examples/inception_wd.rs:
