/root/repo/target/release/examples/quickstart-30509fd38f4630e1.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-30509fd38f4630e1: examples/quickstart.rs

examples/quickstart.rs:
