/root/repo/target/release/examples/micro_batch_correctness-ee12dfd5a1b21e0f.d: examples/micro_batch_correctness.rs

/root/repo/target/release/examples/micro_batch_correctness-ee12dfd5a1b21e0f: examples/micro_batch_correctness.rs

examples/micro_batch_correctness.rs:
