/root/repo/target/release/examples/inception_wd-4227129cad5d5e47.d: examples/inception_wd.rs

/root/repo/target/release/examples/inception_wd-4227129cad5d5e47: examples/inception_wd.rs

examples/inception_wd.rs:
