/root/repo/target/release/deps/fig14_wd_division-df12e78005eb540b.d: crates/bench/src/bin/fig14_wd_division.rs

/root/repo/target/release/deps/fig14_wd_division-df12e78005eb540b: crates/bench/src/bin/fig14_wd_division.rs

crates/bench/src/bin/fig14_wd_division.rs:
