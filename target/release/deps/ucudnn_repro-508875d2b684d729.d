/root/repo/target/release/deps/ucudnn_repro-508875d2b684d729.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_repro-508875d2b684d729.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
