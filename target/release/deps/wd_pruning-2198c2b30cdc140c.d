/root/repo/target/release/deps/wd_pruning-2198c2b30cdc140c.d: tests/wd_pruning.rs

/root/repo/target/release/deps/wd_pruning-2198c2b30cdc140c: tests/wd_pruning.rs

tests/wd_pruning.rs:
