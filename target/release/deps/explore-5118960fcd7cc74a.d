/root/repo/target/release/deps/explore-5118960fcd7cc74a.d: crates/bench/src/bin/explore.rs Cargo.toml

/root/repo/target/release/deps/libexplore-5118960fcd7cc74a.rmeta: crates/bench/src/bin/explore.rs Cargo.toml

crates/bench/src/bin/explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
