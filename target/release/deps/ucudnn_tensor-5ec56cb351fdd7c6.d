/root/repo/target/release/deps/ucudnn_tensor-5ec56cb351fdd7c6.d: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libucudnn_tensor-5ec56cb351fdd7c6.rlib: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libucudnn_tensor-5ec56cb351fdd7c6.rmeta: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/compare.rs:
crates/tensor/src/fill.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
