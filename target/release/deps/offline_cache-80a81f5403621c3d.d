/root/repo/target/release/deps/offline_cache-80a81f5403621c3d.d: tests/offline_cache.rs

/root/repo/target/release/deps/offline_cache-80a81f5403621c3d: tests/offline_cache.rs

tests/offline_cache.rs:
