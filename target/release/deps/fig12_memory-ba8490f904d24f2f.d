/root/repo/target/release/deps/fig12_memory-ba8490f904d24f2f.d: crates/bench/src/bin/fig12_memory.rs Cargo.toml

/root/repo/target/release/deps/libfig12_memory-ba8490f904d24f2f.rmeta: crates/bench/src/bin/fig12_memory.rs Cargo.toml

crates/bench/src/bin/fig12_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
