/root/repo/target/release/deps/offline_cache-2f137bdffbfc857f.d: tests/offline_cache.rs Cargo.toml

/root/repo/target/release/deps/liboffline_cache-2f137bdffbfc857f.rmeta: tests/offline_cache.rs Cargo.toml

tests/offline_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
