/root/repo/target/release/deps/wrapper_stress-498fbb54d024a303.d: tests/wrapper_stress.rs Cargo.toml

/root/repo/target/release/deps/libwrapper_stress-498fbb54d024a303.rmeta: tests/wrapper_stress.rs Cargo.toml

tests/wrapper_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
