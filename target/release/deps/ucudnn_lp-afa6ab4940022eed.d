/root/repo/target/release/deps/ucudnn_lp-afa6ab4940022eed.d: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_lp-afa6ab4940022eed.rmeta: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs Cargo.toml

crates/lp/src/lib.rs:
crates/lp/src/ilp.rs:
crates/lp/src/mck.rs:
crates/lp/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
