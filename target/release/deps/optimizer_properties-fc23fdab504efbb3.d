/root/repo/target/release/deps/optimizer_properties-fc23fdab504efbb3.d: crates/core/tests/optimizer_properties.rs

/root/repo/target/release/deps/optimizer_properties-fc23fdab504efbb3: crates/core/tests/optimizer_properties.rs

crates/core/tests/optimizer_properties.rs:
