/root/repo/target/release/deps/conv_kernels-abb66f0e65f41492.d: crates/bench/benches/conv_kernels.rs

/root/repo/target/release/deps/conv_kernels-abb66f0e65f41492: crates/bench/benches/conv_kernels.rs

crates/bench/benches/conv_kernels.rs:
