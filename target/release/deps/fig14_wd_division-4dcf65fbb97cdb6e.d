/root/repo/target/release/deps/fig14_wd_division-4dcf65fbb97cdb6e.d: crates/bench/src/bin/fig14_wd_division.rs

/root/repo/target/release/deps/fig14_wd_division-4dcf65fbb97cdb6e: crates/bench/src/bin/fig14_wd_division.rs

crates/bench/src/bin/fig14_wd_division.rs:
