/root/repo/target/release/deps/parallel_determinism-873438dcbdbc0ec1.d: tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-873438dcbdbc0ec1: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
