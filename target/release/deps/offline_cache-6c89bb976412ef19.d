/root/repo/target/release/deps/offline_cache-6c89bb976412ef19.d: tests/offline_cache.rs

/root/repo/target/release/deps/offline_cache-6c89bb976412ef19: tests/offline_cache.rs

tests/offline_cache.rs:
