/root/repo/target/release/deps/fig01_workspace_cliff-727e97f8bb6f5620.d: crates/bench/src/bin/fig01_workspace_cliff.rs

/root/repo/target/release/deps/fig01_workspace_cliff-727e97f8bb6f5620: crates/bench/src/bin/fig01_workspace_cliff.rs

crates/bench/src/bin/fig01_workspace_cliff.rs:
