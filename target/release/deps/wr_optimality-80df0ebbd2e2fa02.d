/root/repo/target/release/deps/wr_optimality-80df0ebbd2e2fa02.d: tests/wr_optimality.rs

/root/repo/target/release/deps/wr_optimality-80df0ebbd2e2fa02: tests/wr_optimality.rs

tests/wr_optimality.rs:
