/root/repo/target/release/deps/parallel_determinism-68d435821354a41c.d: tests/parallel_determinism.rs

/root/repo/target/release/deps/parallel_determinism-68d435821354a41c: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
