/root/repo/target/release/deps/fig12_memory-d196467f087092bd.d: crates/bench/src/bin/fig12_memory.rs

/root/repo/target/release/deps/fig12_memory-d196467f087092bd: crates/bench/src/bin/fig12_memory.rs

crates/bench/src/bin/fig12_memory.rs:
