/root/repo/target/release/deps/tensor_property-6655c0f830784f49.d: crates/tensor/tests/tensor_property.rs Cargo.toml

/root/repo/target/release/deps/libtensor_property-6655c0f830784f49.rmeta: crates/tensor/tests/tensor_property.rs Cargo.toml

crates/tensor/tests/tensor_property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
