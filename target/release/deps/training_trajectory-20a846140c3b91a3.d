/root/repo/target/release/deps/training_trajectory-20a846140c3b91a3.d: tests/training_trajectory.rs

/root/repo/target/release/deps/training_trajectory-20a846140c3b91a3: tests/training_trajectory.rs

tests/training_trajectory.rs:
