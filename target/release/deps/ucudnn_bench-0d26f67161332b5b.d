/root/repo/target/release/deps/ucudnn_bench-0d26f67161332b5b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libucudnn_bench-0d26f67161332b5b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libucudnn_bench-0d26f67161332b5b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
