/root/repo/target/release/deps/end_to_end-da0fa1386d8af0b3.d: crates/bench/benches/end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end-da0fa1386d8af0b3.rmeta: crates/bench/benches/end_to_end.rs Cargo.toml

crates/bench/benches/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
