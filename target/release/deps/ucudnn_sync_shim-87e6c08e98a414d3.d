/root/repo/target/release/deps/ucudnn_sync_shim-87e6c08e98a414d3.d: crates/sync-shim/src/lib.rs

/root/repo/target/release/deps/ucudnn_sync_shim-87e6c08e98a414d3: crates/sync-shim/src/lib.rs

crates/sync-shim/src/lib.rs:
