/root/repo/target/release/deps/explore-5de31542f30c21ba.d: crates/bench/src/bin/explore.rs

/root/repo/target/release/deps/explore-5de31542f30c21ba: crates/bench/src/bin/explore.rs

crates/bench/src/bin/explore.rs:
