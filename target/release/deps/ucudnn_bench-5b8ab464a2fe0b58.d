/root/repo/target/release/deps/ucudnn_bench-5b8ab464a2fe0b58.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_bench-5b8ab464a2fe0b58.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
