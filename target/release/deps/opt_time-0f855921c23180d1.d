/root/repo/target/release/deps/opt_time-0f855921c23180d1.d: crates/bench/src/bin/opt_time.rs

/root/repo/target/release/deps/opt_time-0f855921c23180d1: crates/bench/src/bin/opt_time.rs

crates/bench/src/bin/opt_time.rs:
