/root/repo/target/release/deps/calibration_regression-f82fe75e3f7b7b61.d: tests/calibration_regression.rs Cargo.toml

/root/repo/target/release/deps/libcalibration_regression-f82fe75e3f7b7b61.rmeta: tests/calibration_regression.rs Cargo.toml

tests/calibration_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
