/root/repo/target/release/deps/ablation_overhead-cda32df1da6d5c4c.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/release/deps/ablation_overhead-cda32df1da6d5c4c: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
