/root/repo/target/release/deps/end_to_end-7554ab8c592d38ab.d: crates/bench/benches/end_to_end.rs

/root/repo/target/release/deps/end_to_end-7554ab8c592d38ab: crates/bench/benches/end_to_end.rs

crates/bench/benches/end_to_end.rs:
