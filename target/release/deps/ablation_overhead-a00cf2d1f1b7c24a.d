/root/repo/target/release/deps/ablation_overhead-a00cf2d1f1b7c24a.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/release/deps/ablation_overhead-a00cf2d1f1b7c24a: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
