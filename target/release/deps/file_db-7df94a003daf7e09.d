/root/repo/target/release/deps/file_db-7df94a003daf7e09.d: crates/core/tests/file_db.rs

/root/repo/target/release/deps/file_db-7df94a003daf7e09: crates/core/tests/file_db.rs

crates/core/tests/file_db.rs:
