/root/repo/target/release/deps/fig11_tensorflow_wr-2a82bada508131f2.d: crates/bench/src/bin/fig11_tensorflow_wr.rs Cargo.toml

/root/repo/target/release/deps/libfig11_tensorflow_wr-2a82bada508131f2.rmeta: crates/bench/src/bin/fig11_tensorflow_wr.rs Cargo.toml

crates/bench/src/bin/fig11_tensorflow_wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
