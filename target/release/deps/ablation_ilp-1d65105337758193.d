/root/repo/target/release/deps/ablation_ilp-1d65105337758193.d: crates/bench/src/bin/ablation_ilp.rs

/root/repo/target/release/deps/ablation_ilp-1d65105337758193: crates/bench/src/bin/ablation_ilp.rs

crates/bench/src/bin/ablation_ilp.rs:
