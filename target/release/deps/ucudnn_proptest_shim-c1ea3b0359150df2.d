/root/repo/target/release/deps/ucudnn_proptest_shim-c1ea3b0359150df2.d: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/ucudnn_proptest_shim-c1ea3b0359150df2: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
