/root/repo/target/release/deps/wrapper_stress-b89c01dc056bb2b1.d: tests/wrapper_stress.rs

/root/repo/target/release/deps/wrapper_stress-b89c01dc056bb2b1: tests/wrapper_stress.rs

tests/wrapper_stress.rs:
