/root/repo/target/release/deps/ucudnn_conv-136eed1e1435c5d5.d: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs

/root/repo/target/release/deps/ucudnn_conv-136eed1e1435c5d5: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs

crates/conv/src/lib.rs:
crates/conv/src/direct.rs:
crates/conv/src/fft.rs:
crates/conv/src/fft_conv.rs:
crates/conv/src/gemm.rs:
crates/conv/src/im2col.rs:
crates/conv/src/im2col_gemm.rs:
crates/conv/src/parallel.rs:
crates/conv/src/winograd.rs:
crates/conv/src/winograd_f4.rs:
