/root/repo/target/release/deps/ablation_pruning-1e10fc457287e8ee.d: crates/bench/src/bin/ablation_pruning.rs Cargo.toml

/root/repo/target/release/deps/libablation_pruning-1e10fc457287e8ee.rmeta: crates/bench/src/bin/ablation_pruning.rs Cargo.toml

crates/bench/src/bin/ablation_pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
