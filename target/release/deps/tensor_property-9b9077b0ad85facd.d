/root/repo/target/release/deps/tensor_property-9b9077b0ad85facd.d: crates/tensor/tests/tensor_property.rs

/root/repo/target/release/deps/tensor_property-9b9077b0ad85facd: crates/tensor/tests/tensor_property.rs

crates/tensor/tests/tensor_property.rs:
