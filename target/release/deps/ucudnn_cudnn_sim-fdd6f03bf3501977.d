/root/repo/target/release/deps/ucudnn_cudnn_sim-fdd6f03bf3501977.d: crates/cudnn-sim/src/lib.rs crates/cudnn-sim/src/descriptor.rs crates/cudnn-sim/src/error.rs crates/cudnn-sim/src/exec.rs crates/cudnn-sim/src/find.rs crates/cudnn-sim/src/handle.rs crates/cudnn-sim/src/map.rs crates/cudnn-sim/src/ops/mod.rs crates/cudnn-sim/src/ops/activation.rs crates/cudnn-sim/src/ops/batchnorm.rs crates/cudnn-sim/src/ops/pooling.rs crates/cudnn-sim/src/ops/tensor_ops.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_cudnn_sim-fdd6f03bf3501977.rmeta: crates/cudnn-sim/src/lib.rs crates/cudnn-sim/src/descriptor.rs crates/cudnn-sim/src/error.rs crates/cudnn-sim/src/exec.rs crates/cudnn-sim/src/find.rs crates/cudnn-sim/src/handle.rs crates/cudnn-sim/src/map.rs crates/cudnn-sim/src/ops/mod.rs crates/cudnn-sim/src/ops/activation.rs crates/cudnn-sim/src/ops/batchnorm.rs crates/cudnn-sim/src/ops/pooling.rs crates/cudnn-sim/src/ops/tensor_ops.rs Cargo.toml

crates/cudnn-sim/src/lib.rs:
crates/cudnn-sim/src/descriptor.rs:
crates/cudnn-sim/src/error.rs:
crates/cudnn-sim/src/exec.rs:
crates/cudnn-sim/src/find.rs:
crates/cudnn-sim/src/handle.rs:
crates/cudnn-sim/src/map.rs:
crates/cudnn-sim/src/ops/mod.rs:
crates/cudnn-sim/src/ops/activation.rs:
crates/cudnn-sim/src/ops/batchnorm.rs:
crates/cudnn-sim/src/ops/pooling.rs:
crates/cudnn-sim/src/ops/tensor_ops.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
