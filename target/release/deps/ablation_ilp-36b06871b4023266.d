/root/repo/target/release/deps/ablation_ilp-36b06871b4023266.d: crates/bench/src/bin/ablation_ilp.rs Cargo.toml

/root/repo/target/release/deps/libablation_ilp-36b06871b4023266.rmeta: crates/bench/src/bin/ablation_ilp.rs Cargo.toml

crates/bench/src/bin/ablation_ilp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
