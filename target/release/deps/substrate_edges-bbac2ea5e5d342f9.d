/root/repo/target/release/deps/substrate_edges-bbac2ea5e5d342f9.d: tests/substrate_edges.rs Cargo.toml

/root/repo/target/release/deps/libsubstrate_edges-bbac2ea5e5d342f9.rmeta: tests/substrate_edges.rs Cargo.toml

tests/substrate_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
