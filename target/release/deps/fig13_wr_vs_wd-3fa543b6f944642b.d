/root/repo/target/release/deps/fig13_wr_vs_wd-3fa543b6f944642b.d: crates/bench/src/bin/fig13_wr_vs_wd.rs

/root/repo/target/release/deps/fig13_wr_vs_wd-3fa543b6f944642b: crates/bench/src/bin/fig13_wr_vs_wd.rs

crates/bench/src/bin/fig13_wr_vs_wd.rs:
