/root/repo/target/release/deps/opt_time-0566f1e67d3641a0.d: crates/bench/src/bin/opt_time.rs Cargo.toml

/root/repo/target/release/deps/libopt_time-0566f1e67d3641a0.rmeta: crates/bench/src/bin/opt_time.rs Cargo.toml

crates/bench/src/bin/opt_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
