/root/repo/target/release/deps/transparent_wrapper-d10a35bdd49d4d6a.d: tests/transparent_wrapper.rs Cargo.toml

/root/repo/target/release/deps/libtransparent_wrapper-d10a35bdd49d4d6a.rmeta: tests/transparent_wrapper.rs Cargo.toml

tests/transparent_wrapper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
