/root/repo/target/release/deps/file_db-11cfb6b0470a983c.d: crates/core/tests/file_db.rs Cargo.toml

/root/repo/target/release/deps/libfile_db-11cfb6b0470a983c.rmeta: crates/core/tests/file_db.rs Cargo.toml

crates/core/tests/file_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
