/root/repo/target/release/deps/wrapper_stress-4dfcc1d154c4e307.d: tests/wrapper_stress.rs Cargo.toml

/root/repo/target/release/deps/libwrapper_stress-4dfcc1d154c4e307.rmeta: tests/wrapper_stress.rs Cargo.toml

tests/wrapper_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
