/root/repo/target/release/deps/ucudnn_bench-bbb74b72d51d15f4.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_bench-bbb74b72d51d15f4.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
