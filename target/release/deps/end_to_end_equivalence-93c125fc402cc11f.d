/root/repo/target/release/deps/end_to_end_equivalence-93c125fc402cc11f.d: tests/end_to_end_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end_equivalence-93c125fc402cc11f.rmeta: tests/end_to_end_equivalence.rs Cargo.toml

tests/end_to_end_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
