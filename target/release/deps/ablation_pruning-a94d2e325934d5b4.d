/root/repo/target/release/deps/ablation_pruning-a94d2e325934d5b4.d: crates/bench/src/bin/ablation_pruning.rs

/root/repo/target/release/deps/ablation_pruning-a94d2e325934d5b4: crates/bench/src/bin/ablation_pruning.rs

crates/bench/src/bin/ablation_pruning.rs:
