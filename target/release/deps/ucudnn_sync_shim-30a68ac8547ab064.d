/root/repo/target/release/deps/ucudnn_sync_shim-30a68ac8547ab064.d: crates/sync-shim/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_sync_shim-30a68ac8547ab064.rmeta: crates/sync-shim/src/lib.rs Cargo.toml

crates/sync-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
