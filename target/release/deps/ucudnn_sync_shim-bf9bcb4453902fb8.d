/root/repo/target/release/deps/ucudnn_sync_shim-bf9bcb4453902fb8.d: crates/sync-shim/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_sync_shim-bf9bcb4453902fb8.rmeta: crates/sync-shim/src/lib.rs Cargo.toml

crates/sync-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
