/root/repo/target/release/deps/conv_property-1cf7244449e19b1f.d: tests/conv_property.rs

/root/repo/target/release/deps/conv_property-1cf7244449e19b1f: tests/conv_property.rs

tests/conv_property.rs:
