/root/repo/target/release/deps/fig09_conv2_wr-a8b126cf66709631.d: crates/bench/src/bin/fig09_conv2_wr.rs Cargo.toml

/root/repo/target/release/deps/libfig09_conv2_wr-a8b126cf66709631.rmeta: crates/bench/src/bin/fig09_conv2_wr.rs Cargo.toml

crates/bench/src/bin/fig09_conv2_wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
