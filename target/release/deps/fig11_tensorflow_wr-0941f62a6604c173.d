/root/repo/target/release/deps/fig11_tensorflow_wr-0941f62a6604c173.d: crates/bench/src/bin/fig11_tensorflow_wr.rs

/root/repo/target/release/deps/fig11_tensorflow_wr-0941f62a6604c173: crates/bench/src/bin/fig11_tensorflow_wr.rs

crates/bench/src/bin/fig11_tensorflow_wr.rs:
