/root/repo/target/release/deps/optimizer_properties-4a325a5cb590d1e6.d: crates/core/tests/optimizer_properties.rs

/root/repo/target/release/deps/optimizer_properties-4a325a5cb590d1e6: crates/core/tests/optimizer_properties.rs

crates/core/tests/optimizer_properties.rs:
