/root/repo/target/release/deps/fig13_wr_vs_wd-e0ed5fe382788765.d: crates/bench/src/bin/fig13_wr_vs_wd.rs

/root/repo/target/release/deps/fig13_wr_vs_wd-e0ed5fe382788765: crates/bench/src/bin/fig13_wr_vs_wd.rs

crates/bench/src/bin/fig13_wr_vs_wd.rs:
