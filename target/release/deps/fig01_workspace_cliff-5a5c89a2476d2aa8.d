/root/repo/target/release/deps/fig01_workspace_cliff-5a5c89a2476d2aa8.d: crates/bench/src/bin/fig01_workspace_cliff.rs

/root/repo/target/release/deps/fig01_workspace_cliff-5a5c89a2476d2aa8: crates/bench/src/bin/fig01_workspace_cliff.rs

crates/bench/src/bin/fig01_workspace_cliff.rs:
