/root/repo/target/release/deps/ablation_overhead-918f08d8ca62e407.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/release/deps/ablation_overhead-918f08d8ca62e407: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
