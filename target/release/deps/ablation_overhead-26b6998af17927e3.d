/root/repo/target/release/deps/ablation_overhead-26b6998af17927e3.d: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

/root/repo/target/release/deps/libablation_overhead-26b6998af17927e3.rmeta: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

crates/bench/src/bin/ablation_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
