/root/repo/target/release/deps/ucudnn_conv-d1f9c226833f2fcd.d: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_conv-d1f9c226833f2fcd.rmeta: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs Cargo.toml

crates/conv/src/lib.rs:
crates/conv/src/direct.rs:
crates/conv/src/fft.rs:
crates/conv/src/fft_conv.rs:
crates/conv/src/gemm.rs:
crates/conv/src/im2col.rs:
crates/conv/src/im2col_gemm.rs:
crates/conv/src/parallel.rs:
crates/conv/src/winograd.rs:
crates/conv/src/winograd_f4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
