/root/repo/target/release/deps/table1_devices-8200703e674a86ad.d: crates/bench/src/bin/table1_devices.rs Cargo.toml

/root/repo/target/release/deps/libtable1_devices-8200703e674a86ad.rmeta: crates/bench/src/bin/table1_devices.rs Cargo.toml

crates/bench/src/bin/table1_devices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
