/root/repo/target/release/deps/transparent_wrapper-83976e619c2db3ad.d: tests/transparent_wrapper.rs

/root/repo/target/release/deps/transparent_wrapper-83976e619c2db3ad: tests/transparent_wrapper.rs

tests/transparent_wrapper.rs:
