/root/repo/target/release/deps/substrate_edges-64adc93910b9dbb4.d: tests/substrate_edges.rs

/root/repo/target/release/deps/substrate_edges-64adc93910b9dbb4: tests/substrate_edges.rs

tests/substrate_edges.rs:
