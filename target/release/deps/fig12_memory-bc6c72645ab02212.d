/root/repo/target/release/deps/fig12_memory-bc6c72645ab02212.d: crates/bench/src/bin/fig12_memory.rs

/root/repo/target/release/deps/fig12_memory-bc6c72645ab02212: crates/bench/src/bin/fig12_memory.rs

crates/bench/src/bin/fig12_memory.rs:
