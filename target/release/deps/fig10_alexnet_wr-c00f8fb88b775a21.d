/root/repo/target/release/deps/fig10_alexnet_wr-c00f8fb88b775a21.d: crates/bench/src/bin/fig10_alexnet_wr.rs Cargo.toml

/root/repo/target/release/deps/libfig10_alexnet_wr-c00f8fb88b775a21.rmeta: crates/bench/src/bin/fig10_alexnet_wr.rs Cargo.toml

crates/bench/src/bin/fig10_alexnet_wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
