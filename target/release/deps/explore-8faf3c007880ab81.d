/root/repo/target/release/deps/explore-8faf3c007880ab81.d: crates/bench/src/bin/explore.rs

/root/repo/target/release/deps/explore-8faf3c007880ab81: crates/bench/src/bin/explore.rs

crates/bench/src/bin/explore.rs:
