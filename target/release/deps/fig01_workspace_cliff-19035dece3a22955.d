/root/repo/target/release/deps/fig01_workspace_cliff-19035dece3a22955.d: crates/bench/src/bin/fig01_workspace_cliff.rs

/root/repo/target/release/deps/fig01_workspace_cliff-19035dece3a22955: crates/bench/src/bin/fig01_workspace_cliff.rs

crates/bench/src/bin/fig01_workspace_cliff.rs:
