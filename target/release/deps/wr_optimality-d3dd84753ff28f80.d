/root/repo/target/release/deps/wr_optimality-d3dd84753ff28f80.d: tests/wr_optimality.rs Cargo.toml

/root/repo/target/release/deps/libwr_optimality-d3dd84753ff28f80.rmeta: tests/wr_optimality.rs Cargo.toml

tests/wr_optimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
