/root/repo/target/release/deps/ucudnn_tensor-42048e5134ec6420.d: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/ucudnn_tensor-42048e5134ec6420: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/compare.rs:
crates/tensor/src/fill.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
