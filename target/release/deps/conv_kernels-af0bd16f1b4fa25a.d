/root/repo/target/release/deps/conv_kernels-af0bd16f1b4fa25a.d: crates/bench/benches/conv_kernels.rs Cargo.toml

/root/repo/target/release/deps/libconv_kernels-af0bd16f1b4fa25a.rmeta: crates/bench/benches/conv_kernels.rs Cargo.toml

crates/bench/benches/conv_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
