/root/repo/target/release/deps/fig14_wd_division-53f508e06b8d049b.d: crates/bench/src/bin/fig14_wd_division.rs Cargo.toml

/root/repo/target/release/deps/libfig14_wd_division-53f508e06b8d049b.rmeta: crates/bench/src/bin/fig14_wd_division.rs Cargo.toml

crates/bench/src/bin/fig14_wd_division.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
