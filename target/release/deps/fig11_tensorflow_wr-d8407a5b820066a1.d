/root/repo/target/release/deps/fig11_tensorflow_wr-d8407a5b820066a1.d: crates/bench/src/bin/fig11_tensorflow_wr.rs

/root/repo/target/release/deps/fig11_tensorflow_wr-d8407a5b820066a1: crates/bench/src/bin/fig11_tensorflow_wr.rs

crates/bench/src/bin/fig11_tensorflow_wr.rs:
