/root/repo/target/release/deps/opt_time-117640810eaddf14.d: crates/bench/src/bin/opt_time.rs

/root/repo/target/release/deps/opt_time-117640810eaddf14: crates/bench/src/bin/opt_time.rs

crates/bench/src/bin/opt_time.rs:
