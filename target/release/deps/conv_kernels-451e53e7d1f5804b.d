/root/repo/target/release/deps/conv_kernels-451e53e7d1f5804b.d: crates/bench/benches/conv_kernels.rs Cargo.toml

/root/repo/target/release/deps/libconv_kernels-451e53e7d1f5804b.rmeta: crates/bench/benches/conv_kernels.rs Cargo.toml

crates/bench/benches/conv_kernels.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
