/root/repo/target/release/deps/conv_property-504715cda18c799e.d: tests/conv_property.rs Cargo.toml

/root/repo/target/release/deps/libconv_property-504715cda18c799e.rmeta: tests/conv_property.rs Cargo.toml

tests/conv_property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
