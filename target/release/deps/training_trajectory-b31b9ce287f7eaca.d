/root/repo/target/release/deps/training_trajectory-b31b9ce287f7eaca.d: tests/training_trajectory.rs

/root/repo/target/release/deps/training_trajectory-b31b9ce287f7eaca: tests/training_trajectory.rs

tests/training_trajectory.rs:
