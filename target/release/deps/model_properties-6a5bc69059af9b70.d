/root/repo/target/release/deps/model_properties-6a5bc69059af9b70.d: crates/gpu-model/tests/model_properties.rs

/root/repo/target/release/deps/model_properties-6a5bc69059af9b70: crates/gpu-model/tests/model_properties.rs

crates/gpu-model/tests/model_properties.rs:
