/root/repo/target/release/deps/ucudnn_proptest_shim-ca885c286bcc6b16.d: crates/proptest-shim/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_proptest_shim-ca885c286bcc6b16.rmeta: crates/proptest-shim/src/lib.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
