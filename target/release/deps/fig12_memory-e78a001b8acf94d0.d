/root/repo/target/release/deps/fig12_memory-e78a001b8acf94d0.d: crates/bench/src/bin/fig12_memory.rs

/root/repo/target/release/deps/fig12_memory-e78a001b8acf94d0: crates/bench/src/bin/fig12_memory.rs

crates/bench/src/bin/fig12_memory.rs:
