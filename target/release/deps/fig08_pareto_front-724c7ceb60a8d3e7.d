/root/repo/target/release/deps/fig08_pareto_front-724c7ceb60a8d3e7.d: crates/bench/src/bin/fig08_pareto_front.rs

/root/repo/target/release/deps/fig08_pareto_front-724c7ceb60a8d3e7: crates/bench/src/bin/fig08_pareto_front.rs

crates/bench/src/bin/fig08_pareto_front.rs:
