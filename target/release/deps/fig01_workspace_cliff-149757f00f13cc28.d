/root/repo/target/release/deps/fig01_workspace_cliff-149757f00f13cc28.d: crates/bench/src/bin/fig01_workspace_cliff.rs Cargo.toml

/root/repo/target/release/deps/libfig01_workspace_cliff-149757f00f13cc28.rmeta: crates/bench/src/bin/fig01_workspace_cliff.rs Cargo.toml

crates/bench/src/bin/fig01_workspace_cliff.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
