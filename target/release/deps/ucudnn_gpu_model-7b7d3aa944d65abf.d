/root/repo/target/release/deps/ucudnn_gpu_model-7b7d3aa944d65abf.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs

/root/repo/target/release/deps/ucudnn_gpu_model-7b7d3aa944d65abf: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/algo.rs:
crates/gpu-model/src/device.rs:
crates/gpu-model/src/time.rs:
crates/gpu-model/src/workspace.rs:
