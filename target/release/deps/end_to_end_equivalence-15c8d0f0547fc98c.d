/root/repo/target/release/deps/end_to_end_equivalence-15c8d0f0547fc98c.d: tests/end_to_end_equivalence.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end_equivalence-15c8d0f0547fc98c.rmeta: tests/end_to_end_equivalence.rs Cargo.toml

tests/end_to_end_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
