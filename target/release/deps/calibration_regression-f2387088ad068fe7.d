/root/repo/target/release/deps/calibration_regression-f2387088ad068fe7.d: tests/calibration_regression.rs

/root/repo/target/release/deps/calibration_regression-f2387088ad068fe7: tests/calibration_regression.rs

tests/calibration_regression.rs:
