/root/repo/target/release/deps/ucudnn_repro-37420e5026382dd8.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_repro-37420e5026382dd8.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
