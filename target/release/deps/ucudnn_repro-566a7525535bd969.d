/root/repo/target/release/deps/ucudnn_repro-566a7525535bd969.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_repro-566a7525535bd969.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
