/root/repo/target/release/deps/fig13_wr_vs_wd-307a6c6c0bf8ed7c.d: crates/bench/src/bin/fig13_wr_vs_wd.rs

/root/repo/target/release/deps/fig13_wr_vs_wd-307a6c6c0bf8ed7c: crates/bench/src/bin/fig13_wr_vs_wd.rs

crates/bench/src/bin/fig13_wr_vs_wd.rs:
