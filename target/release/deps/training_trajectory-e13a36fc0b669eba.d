/root/repo/target/release/deps/training_trajectory-e13a36fc0b669eba.d: tests/training_trajectory.rs Cargo.toml

/root/repo/target/release/deps/libtraining_trajectory-e13a36fc0b669eba.rmeta: tests/training_trajectory.rs Cargo.toml

tests/training_trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
