/root/repo/target/release/deps/ucudnn_bench-1082d1ce4b93ba17.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_bench-1082d1ce4b93ba17.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
