/root/repo/target/release/deps/fig12_memory-9bab439056577e52.d: crates/bench/src/bin/fig12_memory.rs Cargo.toml

/root/repo/target/release/deps/libfig12_memory-9bab439056577e52.rmeta: crates/bench/src/bin/fig12_memory.rs Cargo.toml

crates/bench/src/bin/fig12_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
