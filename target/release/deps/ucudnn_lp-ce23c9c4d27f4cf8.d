/root/repo/target/release/deps/ucudnn_lp-ce23c9c4d27f4cf8.d: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs

/root/repo/target/release/deps/libucudnn_lp-ce23c9c4d27f4cf8.rlib: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs

/root/repo/target/release/deps/libucudnn_lp-ce23c9c4d27f4cf8.rmeta: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/ilp.rs:
crates/lp/src/mck.rs:
crates/lp/src/simplex.rs:
