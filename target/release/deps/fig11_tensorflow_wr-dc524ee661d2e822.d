/root/repo/target/release/deps/fig11_tensorflow_wr-dc524ee661d2e822.d: crates/bench/src/bin/fig11_tensorflow_wr.rs

/root/repo/target/release/deps/fig11_tensorflow_wr-dc524ee661d2e822: crates/bench/src/bin/fig11_tensorflow_wr.rs

crates/bench/src/bin/fig11_tensorflow_wr.rs:
