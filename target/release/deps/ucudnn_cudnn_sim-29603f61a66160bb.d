/root/repo/target/release/deps/ucudnn_cudnn_sim-29603f61a66160bb.d: crates/cudnn-sim/src/lib.rs crates/cudnn-sim/src/descriptor.rs crates/cudnn-sim/src/error.rs crates/cudnn-sim/src/exec.rs crates/cudnn-sim/src/find.rs crates/cudnn-sim/src/handle.rs crates/cudnn-sim/src/map.rs crates/cudnn-sim/src/ops/mod.rs crates/cudnn-sim/src/ops/activation.rs crates/cudnn-sim/src/ops/batchnorm.rs crates/cudnn-sim/src/ops/pooling.rs crates/cudnn-sim/src/ops/tensor_ops.rs

/root/repo/target/release/deps/libucudnn_cudnn_sim-29603f61a66160bb.rlib: crates/cudnn-sim/src/lib.rs crates/cudnn-sim/src/descriptor.rs crates/cudnn-sim/src/error.rs crates/cudnn-sim/src/exec.rs crates/cudnn-sim/src/find.rs crates/cudnn-sim/src/handle.rs crates/cudnn-sim/src/map.rs crates/cudnn-sim/src/ops/mod.rs crates/cudnn-sim/src/ops/activation.rs crates/cudnn-sim/src/ops/batchnorm.rs crates/cudnn-sim/src/ops/pooling.rs crates/cudnn-sim/src/ops/tensor_ops.rs

/root/repo/target/release/deps/libucudnn_cudnn_sim-29603f61a66160bb.rmeta: crates/cudnn-sim/src/lib.rs crates/cudnn-sim/src/descriptor.rs crates/cudnn-sim/src/error.rs crates/cudnn-sim/src/exec.rs crates/cudnn-sim/src/find.rs crates/cudnn-sim/src/handle.rs crates/cudnn-sim/src/map.rs crates/cudnn-sim/src/ops/mod.rs crates/cudnn-sim/src/ops/activation.rs crates/cudnn-sim/src/ops/batchnorm.rs crates/cudnn-sim/src/ops/pooling.rs crates/cudnn-sim/src/ops/tensor_ops.rs

crates/cudnn-sim/src/lib.rs:
crates/cudnn-sim/src/descriptor.rs:
crates/cudnn-sim/src/error.rs:
crates/cudnn-sim/src/exec.rs:
crates/cudnn-sim/src/find.rs:
crates/cudnn-sim/src/handle.rs:
crates/cudnn-sim/src/map.rs:
crates/cudnn-sim/src/ops/mod.rs:
crates/cudnn-sim/src/ops/activation.rs:
crates/cudnn-sim/src/ops/batchnorm.rs:
crates/cudnn-sim/src/ops/pooling.rs:
crates/cudnn-sim/src/ops/tensor_ops.rs:
