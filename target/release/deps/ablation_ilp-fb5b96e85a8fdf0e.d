/root/repo/target/release/deps/ablation_ilp-fb5b96e85a8fdf0e.d: crates/bench/src/bin/ablation_ilp.rs Cargo.toml

/root/repo/target/release/deps/libablation_ilp-fb5b96e85a8fdf0e.rmeta: crates/bench/src/bin/ablation_ilp.rs Cargo.toml

crates/bench/src/bin/ablation_ilp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
