/root/repo/target/release/deps/ablation_overhead-3feef56fcd56310a.d: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

/root/repo/target/release/deps/libablation_overhead-3feef56fcd56310a.rmeta: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

crates/bench/src/bin/ablation_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
