/root/repo/target/release/deps/model_properties-a6c8c90465078f32.d: crates/gpu-model/tests/model_properties.rs Cargo.toml

/root/repo/target/release/deps/libmodel_properties-a6c8c90465078f32.rmeta: crates/gpu-model/tests/model_properties.rs Cargo.toml

crates/gpu-model/tests/model_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
