/root/repo/target/release/deps/ucudnn_bench-a713df871d3f245e.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/ucudnn_bench-a713df871d3f245e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
