/root/repo/target/release/deps/end_to_end_equivalence-4282dfdddd24658f.d: tests/end_to_end_equivalence.rs

/root/repo/target/release/deps/end_to_end_equivalence-4282dfdddd24658f: tests/end_to_end_equivalence.rs

tests/end_to_end_equivalence.rs:
