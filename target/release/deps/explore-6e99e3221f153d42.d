/root/repo/target/release/deps/explore-6e99e3221f153d42.d: crates/bench/src/bin/explore.rs

/root/repo/target/release/deps/explore-6e99e3221f153d42: crates/bench/src/bin/explore.rs

crates/bench/src/bin/explore.rs:
