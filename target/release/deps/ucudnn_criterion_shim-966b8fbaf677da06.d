/root/repo/target/release/deps/ucudnn_criterion_shim-966b8fbaf677da06.d: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libucudnn_criterion_shim-966b8fbaf677da06.rlib: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/libucudnn_criterion_shim-966b8fbaf677da06.rmeta: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
