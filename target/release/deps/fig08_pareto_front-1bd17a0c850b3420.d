/root/repo/target/release/deps/fig08_pareto_front-1bd17a0c850b3420.d: crates/bench/src/bin/fig08_pareto_front.rs

/root/repo/target/release/deps/fig08_pareto_front-1bd17a0c850b3420: crates/bench/src/bin/fig08_pareto_front.rs

crates/bench/src/bin/fig08_pareto_front.rs:
