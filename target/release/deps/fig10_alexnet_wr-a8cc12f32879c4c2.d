/root/repo/target/release/deps/fig10_alexnet_wr-a8cc12f32879c4c2.d: crates/bench/src/bin/fig10_alexnet_wr.rs

/root/repo/target/release/deps/fig10_alexnet_wr-a8cc12f32879c4c2: crates/bench/src/bin/fig10_alexnet_wr.rs

crates/bench/src/bin/fig10_alexnet_wr.rs:
