/root/repo/target/release/deps/fig12_memory-8c9c3a12223960c8.d: crates/bench/src/bin/fig12_memory.rs Cargo.toml

/root/repo/target/release/deps/libfig12_memory-8c9c3a12223960c8.rmeta: crates/bench/src/bin/fig12_memory.rs Cargo.toml

crates/bench/src/bin/fig12_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
