/root/repo/target/release/deps/fig10_alexnet_wr-289c8ab9f18773b6.d: crates/bench/src/bin/fig10_alexnet_wr.rs Cargo.toml

/root/repo/target/release/deps/libfig10_alexnet_wr-289c8ab9f18773b6.rmeta: crates/bench/src/bin/fig10_alexnet_wr.rs Cargo.toml

crates/bench/src/bin/fig10_alexnet_wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
