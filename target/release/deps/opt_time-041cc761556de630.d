/root/repo/target/release/deps/opt_time-041cc761556de630.d: crates/bench/src/bin/opt_time.rs Cargo.toml

/root/repo/target/release/deps/libopt_time-041cc761556de630.rmeta: crates/bench/src/bin/opt_time.rs Cargo.toml

crates/bench/src/bin/opt_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
