/root/repo/target/release/deps/fig09_conv2_wr-b3cfb8c59909dc0d.d: crates/bench/src/bin/fig09_conv2_wr.rs

/root/repo/target/release/deps/fig09_conv2_wr-b3cfb8c59909dc0d: crates/bench/src/bin/fig09_conv2_wr.rs

crates/bench/src/bin/fig09_conv2_wr.rs:
