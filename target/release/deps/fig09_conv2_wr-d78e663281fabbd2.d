/root/repo/target/release/deps/fig09_conv2_wr-d78e663281fabbd2.d: crates/bench/src/bin/fig09_conv2_wr.rs

/root/repo/target/release/deps/fig09_conv2_wr-d78e663281fabbd2: crates/bench/src/bin/fig09_conv2_wr.rs

crates/bench/src/bin/fig09_conv2_wr.rs:
