/root/repo/target/release/deps/ucudnn_repro-31fc7b8f157af1f2.d: src/lib.rs

/root/repo/target/release/deps/libucudnn_repro-31fc7b8f157af1f2.rlib: src/lib.rs

/root/repo/target/release/deps/libucudnn_repro-31fc7b8f157af1f2.rmeta: src/lib.rs

src/lib.rs:
