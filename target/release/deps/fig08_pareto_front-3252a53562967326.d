/root/repo/target/release/deps/fig08_pareto_front-3252a53562967326.d: crates/bench/src/bin/fig08_pareto_front.rs

/root/repo/target/release/deps/fig08_pareto_front-3252a53562967326: crates/bench/src/bin/fig08_pareto_front.rs

crates/bench/src/bin/fig08_pareto_front.rs:
