/root/repo/target/release/deps/ablation_ilp-0f562010b88bc06c.d: crates/bench/src/bin/ablation_ilp.rs

/root/repo/target/release/deps/ablation_ilp-0f562010b88bc06c: crates/bench/src/bin/ablation_ilp.rs

crates/bench/src/bin/ablation_ilp.rs:
