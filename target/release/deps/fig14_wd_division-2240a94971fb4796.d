/root/repo/target/release/deps/fig14_wd_division-2240a94971fb4796.d: crates/bench/src/bin/fig14_wd_division.rs

/root/repo/target/release/deps/fig14_wd_division-2240a94971fb4796: crates/bench/src/bin/fig14_wd_division.rs

crates/bench/src/bin/fig14_wd_division.rs:
