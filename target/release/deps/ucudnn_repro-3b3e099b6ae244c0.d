/root/repo/target/release/deps/ucudnn_repro-3b3e099b6ae244c0.d: src/lib.rs

/root/repo/target/release/deps/libucudnn_repro-3b3e099b6ae244c0.rlib: src/lib.rs

/root/repo/target/release/deps/libucudnn_repro-3b3e099b6ae244c0.rmeta: src/lib.rs

src/lib.rs:
