/root/repo/target/release/deps/optimizer_properties-88a78a98ea934842.d: crates/core/tests/optimizer_properties.rs Cargo.toml

/root/repo/target/release/deps/liboptimizer_properties-88a78a98ea934842.rmeta: crates/core/tests/optimizer_properties.rs Cargo.toml

crates/core/tests/optimizer_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
