/root/repo/target/release/deps/ucudnn-88715e2f558e64cf.d: crates/core/src/lib.rs crates/core/src/bench_cache.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/handle.rs crates/core/src/json.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/pareto.rs crates/core/src/policy.rs crates/core/src/wd.rs crates/core/src/wr.rs Cargo.toml

/root/repo/target/release/deps/libucudnn-88715e2f558e64cf.rmeta: crates/core/src/lib.rs crates/core/src/bench_cache.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/handle.rs crates/core/src/json.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/pareto.rs crates/core/src/policy.rs crates/core/src/wd.rs crates/core/src/wr.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/bench_cache.rs:
crates/core/src/config.rs:
crates/core/src/env.rs:
crates/core/src/error.rs:
crates/core/src/handle.rs:
crates/core/src/json.rs:
crates/core/src/kernel.rs:
crates/core/src/metrics.rs:
crates/core/src/pareto.rs:
crates/core/src/policy.rs:
crates/core/src/wd.rs:
crates/core/src/wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
