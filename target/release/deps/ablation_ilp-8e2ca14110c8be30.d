/root/repo/target/release/deps/ablation_ilp-8e2ca14110c8be30.d: crates/bench/src/bin/ablation_ilp.rs

/root/repo/target/release/deps/ablation_ilp-8e2ca14110c8be30: crates/bench/src/bin/ablation_ilp.rs

crates/bench/src/bin/ablation_ilp.rs:
