/root/repo/target/release/deps/ucudnn_lp-62c8d2d30fe6c42b.d: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs

/root/repo/target/release/deps/ucudnn_lp-62c8d2d30fe6c42b: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/ilp.rs:
crates/lp/src/mck.rs:
crates/lp/src/simplex.rs:
