/root/repo/target/release/deps/fig12_memory-3fb0d94f12ff1de9.d: crates/bench/src/bin/fig12_memory.rs Cargo.toml

/root/repo/target/release/deps/libfig12_memory-3fb0d94f12ff1de9.rmeta: crates/bench/src/bin/fig12_memory.rs Cargo.toml

crates/bench/src/bin/fig12_memory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
