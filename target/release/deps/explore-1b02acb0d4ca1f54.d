/root/repo/target/release/deps/explore-1b02acb0d4ca1f54.d: crates/bench/src/bin/explore.rs Cargo.toml

/root/repo/target/release/deps/libexplore-1b02acb0d4ca1f54.rmeta: crates/bench/src/bin/explore.rs Cargo.toml

crates/bench/src/bin/explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
