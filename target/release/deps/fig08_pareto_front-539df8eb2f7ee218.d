/root/repo/target/release/deps/fig08_pareto_front-539df8eb2f7ee218.d: crates/bench/src/bin/fig08_pareto_front.rs Cargo.toml

/root/repo/target/release/deps/libfig08_pareto_front-539df8eb2f7ee218.rmeta: crates/bench/src/bin/fig08_pareto_front.rs Cargo.toml

crates/bench/src/bin/fig08_pareto_front.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
