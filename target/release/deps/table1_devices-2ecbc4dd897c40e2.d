/root/repo/target/release/deps/table1_devices-2ecbc4dd897c40e2.d: crates/bench/src/bin/table1_devices.rs

/root/repo/target/release/deps/table1_devices-2ecbc4dd897c40e2: crates/bench/src/bin/table1_devices.rs

crates/bench/src/bin/table1_devices.rs:
