/root/repo/target/release/deps/end_to_end-86882153540d7245.d: crates/bench/benches/end_to_end.rs Cargo.toml

/root/repo/target/release/deps/libend_to_end-86882153540d7245.rmeta: crates/bench/benches/end_to_end.rs Cargo.toml

crates/bench/benches/end_to_end.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
