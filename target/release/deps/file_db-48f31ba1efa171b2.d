/root/repo/target/release/deps/file_db-48f31ba1efa171b2.d: crates/core/tests/file_db.rs Cargo.toml

/root/repo/target/release/deps/libfile_db-48f31ba1efa171b2.rmeta: crates/core/tests/file_db.rs Cargo.toml

crates/core/tests/file_db.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
