/root/repo/target/release/deps/ablation_ilp-7ac3739586454b69.d: crates/bench/src/bin/ablation_ilp.rs

/root/repo/target/release/deps/ablation_ilp-7ac3739586454b69: crates/bench/src/bin/ablation_ilp.rs

crates/bench/src/bin/ablation_ilp.rs:
