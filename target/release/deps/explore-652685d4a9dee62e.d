/root/repo/target/release/deps/explore-652685d4a9dee62e.d: crates/bench/src/bin/explore.rs Cargo.toml

/root/repo/target/release/deps/libexplore-652685d4a9dee62e.rmeta: crates/bench/src/bin/explore.rs Cargo.toml

crates/bench/src/bin/explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
