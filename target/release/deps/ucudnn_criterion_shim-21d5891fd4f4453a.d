/root/repo/target/release/deps/ucudnn_criterion_shim-21d5891fd4f4453a.d: crates/criterion-shim/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_criterion_shim-21d5891fd4f4453a.rmeta: crates/criterion-shim/src/lib.rs Cargo.toml

crates/criterion-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
