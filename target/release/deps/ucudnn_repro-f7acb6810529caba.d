/root/repo/target/release/deps/ucudnn_repro-f7acb6810529caba.d: src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_repro-f7acb6810529caba.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
