/root/repo/target/release/deps/simplex_property-b344682804e25f49.d: crates/lp/tests/simplex_property.rs Cargo.toml

/root/repo/target/release/deps/libsimplex_property-b344682804e25f49.rmeta: crates/lp/tests/simplex_property.rs Cargo.toml

crates/lp/tests/simplex_property.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
