/root/repo/target/release/deps/fig10_alexnet_wr-2883347a6d0817c3.d: crates/bench/src/bin/fig10_alexnet_wr.rs

/root/repo/target/release/deps/fig10_alexnet_wr-2883347a6d0817c3: crates/bench/src/bin/fig10_alexnet_wr.rs

crates/bench/src/bin/fig10_alexnet_wr.rs:
