/root/repo/target/release/deps/ablation_ilp-a2b7787b6e5f2ee3.d: crates/bench/src/bin/ablation_ilp.rs Cargo.toml

/root/repo/target/release/deps/libablation_ilp-a2b7787b6e5f2ee3.rmeta: crates/bench/src/bin/ablation_ilp.rs Cargo.toml

crates/bench/src/bin/ablation_ilp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
