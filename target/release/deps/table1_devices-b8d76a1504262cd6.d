/root/repo/target/release/deps/table1_devices-b8d76a1504262cd6.d: crates/bench/src/bin/table1_devices.rs

/root/repo/target/release/deps/table1_devices-b8d76a1504262cd6: crates/bench/src/bin/table1_devices.rs

crates/bench/src/bin/table1_devices.rs:
