/root/repo/target/release/deps/fig10_alexnet_wr-87bfa5c945d5d078.d: crates/bench/src/bin/fig10_alexnet_wr.rs

/root/repo/target/release/deps/fig10_alexnet_wr-87bfa5c945d5d078: crates/bench/src/bin/fig10_alexnet_wr.rs

crates/bench/src/bin/fig10_alexnet_wr.rs:
