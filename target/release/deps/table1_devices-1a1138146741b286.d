/root/repo/target/release/deps/table1_devices-1a1138146741b286.d: crates/bench/src/bin/table1_devices.rs Cargo.toml

/root/repo/target/release/deps/libtable1_devices-1a1138146741b286.rmeta: crates/bench/src/bin/table1_devices.rs Cargo.toml

crates/bench/src/bin/table1_devices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
