/root/repo/target/release/deps/substrate_edges-0cf859be282f0559.d: tests/substrate_edges.rs Cargo.toml

/root/repo/target/release/deps/libsubstrate_edges-0cf859be282f0559.rmeta: tests/substrate_edges.rs Cargo.toml

tests/substrate_edges.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
