/root/repo/target/release/deps/parallel_determinism-b632d91605708b43.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/release/deps/libparallel_determinism-b632d91605708b43.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
