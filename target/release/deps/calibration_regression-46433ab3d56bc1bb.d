/root/repo/target/release/deps/calibration_regression-46433ab3d56bc1bb.d: tests/calibration_regression.rs Cargo.toml

/root/repo/target/release/deps/libcalibration_regression-46433ab3d56bc1bb.rmeta: tests/calibration_regression.rs Cargo.toml

tests/calibration_regression.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
