/root/repo/target/release/deps/fig14_wd_division-2d1c343aad205b9e.d: crates/bench/src/bin/fig14_wd_division.rs

/root/repo/target/release/deps/fig14_wd_division-2d1c343aad205b9e: crates/bench/src/bin/fig14_wd_division.rs

crates/bench/src/bin/fig14_wd_division.rs:
