/root/repo/target/release/deps/ucudnn_sync_shim-4af0d9e7c800715e.d: crates/sync-shim/src/lib.rs

/root/repo/target/release/deps/libucudnn_sync_shim-4af0d9e7c800715e.rlib: crates/sync-shim/src/lib.rs

/root/repo/target/release/deps/libucudnn_sync_shim-4af0d9e7c800715e.rmeta: crates/sync-shim/src/lib.rs

crates/sync-shim/src/lib.rs:
