/root/repo/target/release/deps/wd_pruning-81059dbb9244d097.d: tests/wd_pruning.rs

/root/repo/target/release/deps/wd_pruning-81059dbb9244d097: tests/wd_pruning.rs

tests/wd_pruning.rs:
