/root/repo/target/release/deps/wrapper_stress-453aa65de343a538.d: tests/wrapper_stress.rs

/root/repo/target/release/deps/wrapper_stress-453aa65de343a538: tests/wrapper_stress.rs

tests/wrapper_stress.rs:
