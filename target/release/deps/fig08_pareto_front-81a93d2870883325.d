/root/repo/target/release/deps/fig08_pareto_front-81a93d2870883325.d: crates/bench/src/bin/fig08_pareto_front.rs Cargo.toml

/root/repo/target/release/deps/libfig08_pareto_front-81a93d2870883325.rmeta: crates/bench/src/bin/fig08_pareto_front.rs Cargo.toml

crates/bench/src/bin/fig08_pareto_front.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
