/root/repo/target/release/deps/fig10_alexnet_wr-d1635355a46b3efc.d: crates/bench/src/bin/fig10_alexnet_wr.rs

/root/repo/target/release/deps/fig10_alexnet_wr-d1635355a46b3efc: crates/bench/src/bin/fig10_alexnet_wr.rs

crates/bench/src/bin/fig10_alexnet_wr.rs:
