/root/repo/target/release/deps/ucudnn-c99a643db9c964b6.d: crates/core/src/lib.rs crates/core/src/bench_cache.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/handle.rs crates/core/src/json.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/pareto.rs crates/core/src/policy.rs crates/core/src/wd.rs crates/core/src/wr.rs

/root/repo/target/release/deps/ucudnn-c99a643db9c964b6: crates/core/src/lib.rs crates/core/src/bench_cache.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/handle.rs crates/core/src/json.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/pareto.rs crates/core/src/policy.rs crates/core/src/wd.rs crates/core/src/wr.rs

crates/core/src/lib.rs:
crates/core/src/bench_cache.rs:
crates/core/src/config.rs:
crates/core/src/env.rs:
crates/core/src/error.rs:
crates/core/src/handle.rs:
crates/core/src/json.rs:
crates/core/src/kernel.rs:
crates/core/src/metrics.rs:
crates/core/src/pareto.rs:
crates/core/src/policy.rs:
crates/core/src/wd.rs:
crates/core/src/wr.rs:
