/root/repo/target/release/deps/optimizer-38bcbfe3d1da4ce9.d: crates/bench/benches/optimizer.rs

/root/repo/target/release/deps/optimizer-38bcbfe3d1da4ce9: crates/bench/benches/optimizer.rs

crates/bench/benches/optimizer.rs:
