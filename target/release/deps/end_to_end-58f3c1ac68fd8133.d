/root/repo/target/release/deps/end_to_end-58f3c1ac68fd8133.d: crates/bench/benches/end_to_end.rs

/root/repo/target/release/deps/end_to_end-58f3c1ac68fd8133: crates/bench/benches/end_to_end.rs

crates/bench/benches/end_to_end.rs:
