/root/repo/target/release/deps/optimizer-c4fb3a56a79f7e51.d: crates/bench/benches/optimizer.rs

/root/repo/target/release/deps/optimizer-c4fb3a56a79f7e51: crates/bench/benches/optimizer.rs

crates/bench/benches/optimizer.rs:
