/root/repo/target/release/deps/fig13_wr_vs_wd-1be236d89af1c668.d: crates/bench/src/bin/fig13_wr_vs_wd.rs Cargo.toml

/root/repo/target/release/deps/libfig13_wr_vs_wd-1be236d89af1c668.rmeta: crates/bench/src/bin/fig13_wr_vs_wd.rs Cargo.toml

crates/bench/src/bin/fig13_wr_vs_wd.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
