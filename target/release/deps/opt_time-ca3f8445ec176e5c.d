/root/repo/target/release/deps/opt_time-ca3f8445ec176e5c.d: crates/bench/src/bin/opt_time.rs Cargo.toml

/root/repo/target/release/deps/libopt_time-ca3f8445ec176e5c.rmeta: crates/bench/src/bin/opt_time.rs Cargo.toml

crates/bench/src/bin/opt_time.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
