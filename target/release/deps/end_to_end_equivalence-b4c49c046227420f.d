/root/repo/target/release/deps/end_to_end_equivalence-b4c49c046227420f.d: tests/end_to_end_equivalence.rs

/root/repo/target/release/deps/end_to_end_equivalence-b4c49c046227420f: tests/end_to_end_equivalence.rs

tests/end_to_end_equivalence.rs:
