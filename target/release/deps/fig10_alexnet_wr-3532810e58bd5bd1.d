/root/repo/target/release/deps/fig10_alexnet_wr-3532810e58bd5bd1.d: crates/bench/src/bin/fig10_alexnet_wr.rs Cargo.toml

/root/repo/target/release/deps/libfig10_alexnet_wr-3532810e58bd5bd1.rmeta: crates/bench/src/bin/fig10_alexnet_wr.rs Cargo.toml

crates/bench/src/bin/fig10_alexnet_wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
