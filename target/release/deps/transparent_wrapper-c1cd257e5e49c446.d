/root/repo/target/release/deps/transparent_wrapper-c1cd257e5e49c446.d: tests/transparent_wrapper.rs

/root/repo/target/release/deps/transparent_wrapper-c1cd257e5e49c446: tests/transparent_wrapper.rs

tests/transparent_wrapper.rs:
