/root/repo/target/release/deps/ucudnn_conv-254ea47759d8c86b.d: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs

/root/repo/target/release/deps/libucudnn_conv-254ea47759d8c86b.rlib: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs

/root/repo/target/release/deps/libucudnn_conv-254ea47759d8c86b.rmeta: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs

crates/conv/src/lib.rs:
crates/conv/src/direct.rs:
crates/conv/src/fft.rs:
crates/conv/src/fft_conv.rs:
crates/conv/src/gemm.rs:
crates/conv/src/im2col.rs:
crates/conv/src/im2col_gemm.rs:
crates/conv/src/parallel.rs:
crates/conv/src/winograd.rs:
crates/conv/src/winograd_f4.rs:
