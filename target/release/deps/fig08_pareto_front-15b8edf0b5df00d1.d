/root/repo/target/release/deps/fig08_pareto_front-15b8edf0b5df00d1.d: crates/bench/src/bin/fig08_pareto_front.rs

/root/repo/target/release/deps/fig08_pareto_front-15b8edf0b5df00d1: crates/bench/src/bin/fig08_pareto_front.rs

crates/bench/src/bin/fig08_pareto_front.rs:
