/root/repo/target/release/deps/wd_pruning-b0bb292436343f8f.d: tests/wd_pruning.rs Cargo.toml

/root/repo/target/release/deps/libwd_pruning-b0bb292436343f8f.rmeta: tests/wd_pruning.rs Cargo.toml

tests/wd_pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
