/root/repo/target/release/deps/file_db-3d8766cf0736821a.d: crates/core/tests/file_db.rs

/root/repo/target/release/deps/file_db-3d8766cf0736821a: crates/core/tests/file_db.rs

crates/core/tests/file_db.rs:
