/root/repo/target/release/deps/concurrent_cache-6992654ee545efab.d: crates/core/tests/concurrent_cache.rs

/root/repo/target/release/deps/concurrent_cache-6992654ee545efab: crates/core/tests/concurrent_cache.rs

crates/core/tests/concurrent_cache.rs:
