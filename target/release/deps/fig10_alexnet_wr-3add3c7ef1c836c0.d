/root/repo/target/release/deps/fig10_alexnet_wr-3add3c7ef1c836c0.d: crates/bench/src/bin/fig10_alexnet_wr.rs Cargo.toml

/root/repo/target/release/deps/libfig10_alexnet_wr-3add3c7ef1c836c0.rmeta: crates/bench/src/bin/fig10_alexnet_wr.rs Cargo.toml

crates/bench/src/bin/fig10_alexnet_wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
