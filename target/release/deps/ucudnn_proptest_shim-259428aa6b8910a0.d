/root/repo/target/release/deps/ucudnn_proptest_shim-259428aa6b8910a0.d: crates/proptest-shim/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_proptest_shim-259428aa6b8910a0.rmeta: crates/proptest-shim/src/lib.rs Cargo.toml

crates/proptest-shim/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
