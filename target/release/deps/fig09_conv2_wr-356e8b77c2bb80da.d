/root/repo/target/release/deps/fig09_conv2_wr-356e8b77c2bb80da.d: crates/bench/src/bin/fig09_conv2_wr.rs

/root/repo/target/release/deps/fig09_conv2_wr-356e8b77c2bb80da: crates/bench/src/bin/fig09_conv2_wr.rs

crates/bench/src/bin/fig09_conv2_wr.rs:
