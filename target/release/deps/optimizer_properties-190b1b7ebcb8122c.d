/root/repo/target/release/deps/optimizer_properties-190b1b7ebcb8122c.d: crates/core/tests/optimizer_properties.rs Cargo.toml

/root/repo/target/release/deps/liboptimizer_properties-190b1b7ebcb8122c.rmeta: crates/core/tests/optimizer_properties.rs Cargo.toml

crates/core/tests/optimizer_properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
