/root/repo/target/release/deps/fig11_tensorflow_wr-aafe2fd0f40bb80e.d: crates/bench/src/bin/fig11_tensorflow_wr.rs

/root/repo/target/release/deps/fig11_tensorflow_wr-aafe2fd0f40bb80e: crates/bench/src/bin/fig11_tensorflow_wr.rs

crates/bench/src/bin/fig11_tensorflow_wr.rs:
