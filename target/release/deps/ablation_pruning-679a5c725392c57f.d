/root/repo/target/release/deps/ablation_pruning-679a5c725392c57f.d: crates/bench/src/bin/ablation_pruning.rs

/root/repo/target/release/deps/ablation_pruning-679a5c725392c57f: crates/bench/src/bin/ablation_pruning.rs

crates/bench/src/bin/ablation_pruning.rs:
