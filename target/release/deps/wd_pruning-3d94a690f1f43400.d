/root/repo/target/release/deps/wd_pruning-3d94a690f1f43400.d: tests/wd_pruning.rs Cargo.toml

/root/repo/target/release/deps/libwd_pruning-3d94a690f1f43400.rmeta: tests/wd_pruning.rs Cargo.toml

tests/wd_pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
