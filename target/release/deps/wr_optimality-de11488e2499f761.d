/root/repo/target/release/deps/wr_optimality-de11488e2499f761.d: tests/wr_optimality.rs Cargo.toml

/root/repo/target/release/deps/libwr_optimality-de11488e2499f761.rmeta: tests/wr_optimality.rs Cargo.toml

tests/wr_optimality.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
