/root/repo/target/release/deps/fig09_conv2_wr-c8094894d06a9b2d.d: crates/bench/src/bin/fig09_conv2_wr.rs Cargo.toml

/root/repo/target/release/deps/libfig09_conv2_wr-c8094894d06a9b2d.rmeta: crates/bench/src/bin/fig09_conv2_wr.rs Cargo.toml

crates/bench/src/bin/fig09_conv2_wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
