/root/repo/target/release/deps/explore-75646e0b3788e5b0.d: crates/bench/src/bin/explore.rs Cargo.toml

/root/repo/target/release/deps/libexplore-75646e0b3788e5b0.rmeta: crates/bench/src/bin/explore.rs Cargo.toml

crates/bench/src/bin/explore.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
