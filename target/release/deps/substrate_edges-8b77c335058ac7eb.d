/root/repo/target/release/deps/substrate_edges-8b77c335058ac7eb.d: tests/substrate_edges.rs

/root/repo/target/release/deps/substrate_edges-8b77c335058ac7eb: tests/substrate_edges.rs

tests/substrate_edges.rs:
