/root/repo/target/release/deps/conv_kernels-9cc926817aeafddc.d: crates/bench/benches/conv_kernels.rs

/root/repo/target/release/deps/conv_kernels-9cc926817aeafddc: crates/bench/benches/conv_kernels.rs

crates/bench/benches/conv_kernels.rs:
