/root/repo/target/release/deps/fig09_conv2_wr-081c62103db47ced.d: crates/bench/src/bin/fig09_conv2_wr.rs Cargo.toml

/root/repo/target/release/deps/libfig09_conv2_wr-081c62103db47ced.rmeta: crates/bench/src/bin/fig09_conv2_wr.rs Cargo.toml

crates/bench/src/bin/fig09_conv2_wr.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
