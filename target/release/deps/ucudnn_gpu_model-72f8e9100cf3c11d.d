/root/repo/target/release/deps/ucudnn_gpu_model-72f8e9100cf3c11d.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs

/root/repo/target/release/deps/libucudnn_gpu_model-72f8e9100cf3c11d.rlib: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs

/root/repo/target/release/deps/libucudnn_gpu_model-72f8e9100cf3c11d.rmeta: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/algo.rs:
crates/gpu-model/src/device.rs:
crates/gpu-model/src/time.rs:
crates/gpu-model/src/workspace.rs:
