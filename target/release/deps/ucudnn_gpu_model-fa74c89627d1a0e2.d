/root/repo/target/release/deps/ucudnn_gpu_model-fa74c89627d1a0e2.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_gpu_model-fa74c89627d1a0e2.rmeta: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs Cargo.toml

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/algo.rs:
crates/gpu-model/src/device.rs:
crates/gpu-model/src/time.rs:
crates/gpu-model/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
