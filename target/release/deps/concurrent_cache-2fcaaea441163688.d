/root/repo/target/release/deps/concurrent_cache-2fcaaea441163688.d: crates/core/tests/concurrent_cache.rs

/root/repo/target/release/deps/concurrent_cache-2fcaaea441163688: crates/core/tests/concurrent_cache.rs

crates/core/tests/concurrent_cache.rs:
