/root/repo/target/release/deps/transparent_wrapper-c022758fa598723c.d: tests/transparent_wrapper.rs Cargo.toml

/root/repo/target/release/deps/libtransparent_wrapper-c022758fa598723c.rmeta: tests/transparent_wrapper.rs Cargo.toml

tests/transparent_wrapper.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
