/root/repo/target/release/deps/concurrent_cache-931a70dbff106fd7.d: crates/core/tests/concurrent_cache.rs Cargo.toml

/root/repo/target/release/deps/libconcurrent_cache-931a70dbff106fd7.rmeta: crates/core/tests/concurrent_cache.rs Cargo.toml

crates/core/tests/concurrent_cache.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
