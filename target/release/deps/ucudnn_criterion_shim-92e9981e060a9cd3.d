/root/repo/target/release/deps/ucudnn_criterion_shim-92e9981e060a9cd3.d: crates/criterion-shim/src/lib.rs

/root/repo/target/release/deps/ucudnn_criterion_shim-92e9981e060a9cd3: crates/criterion-shim/src/lib.rs

crates/criterion-shim/src/lib.rs:
