/root/repo/target/release/deps/ucudnn_conv-a898b0324a7dbbdc.d: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_conv-a898b0324a7dbbdc.rmeta: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs Cargo.toml

crates/conv/src/lib.rs:
crates/conv/src/direct.rs:
crates/conv/src/fft.rs:
crates/conv/src/fft_conv.rs:
crates/conv/src/gemm.rs:
crates/conv/src/im2col.rs:
crates/conv/src/im2col_gemm.rs:
crates/conv/src/parallel.rs:
crates/conv/src/winograd.rs:
crates/conv/src/winograd_f4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
