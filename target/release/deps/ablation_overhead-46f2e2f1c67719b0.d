/root/repo/target/release/deps/ablation_overhead-46f2e2f1c67719b0.d: crates/bench/src/bin/ablation_overhead.rs

/root/repo/target/release/deps/ablation_overhead-46f2e2f1c67719b0: crates/bench/src/bin/ablation_overhead.rs

crates/bench/src/bin/ablation_overhead.rs:
