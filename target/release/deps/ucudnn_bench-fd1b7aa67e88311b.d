/root/repo/target/release/deps/ucudnn_bench-fd1b7aa67e88311b.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libucudnn_bench-fd1b7aa67e88311b.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libucudnn_bench-fd1b7aa67e88311b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
