/root/repo/target/release/deps/ucudnn_tensor-2012a264cbbcf815.d: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_tensor-2012a264cbbcf815.rmeta: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/compare.rs:
crates/tensor/src/fill.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
