/root/repo/target/release/deps/table1_devices-ced9e4b140cabdd4.d: crates/bench/src/bin/table1_devices.rs

/root/repo/target/release/deps/table1_devices-ced9e4b140cabdd4: crates/bench/src/bin/table1_devices.rs

crates/bench/src/bin/table1_devices.rs:
