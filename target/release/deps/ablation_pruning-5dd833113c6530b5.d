/root/repo/target/release/deps/ablation_pruning-5dd833113c6530b5.d: crates/bench/src/bin/ablation_pruning.rs

/root/repo/target/release/deps/ablation_pruning-5dd833113c6530b5: crates/bench/src/bin/ablation_pruning.rs

crates/bench/src/bin/ablation_pruning.rs:
