/root/repo/target/release/deps/fig13_wr_vs_wd-d0c77d4d87b39f9e.d: crates/bench/src/bin/fig13_wr_vs_wd.rs

/root/repo/target/release/deps/fig13_wr_vs_wd-d0c77d4d87b39f9e: crates/bench/src/bin/fig13_wr_vs_wd.rs

crates/bench/src/bin/fig13_wr_vs_wd.rs:
