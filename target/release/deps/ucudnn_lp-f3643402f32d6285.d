/root/repo/target/release/deps/ucudnn_lp-f3643402f32d6285.d: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_lp-f3643402f32d6285.rmeta: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs Cargo.toml

crates/lp/src/lib.rs:
crates/lp/src/ilp.rs:
crates/lp/src/mck.rs:
crates/lp/src/simplex.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
