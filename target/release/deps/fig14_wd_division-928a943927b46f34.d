/root/repo/target/release/deps/fig14_wd_division-928a943927b46f34.d: crates/bench/src/bin/fig14_wd_division.rs Cargo.toml

/root/repo/target/release/deps/libfig14_wd_division-928a943927b46f34.rmeta: crates/bench/src/bin/fig14_wd_division.rs Cargo.toml

crates/bench/src/bin/fig14_wd_division.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
