/root/repo/target/release/deps/wr_optimality-8b174f1e45defa0b.d: tests/wr_optimality.rs

/root/repo/target/release/deps/wr_optimality-8b174f1e45defa0b: tests/wr_optimality.rs

tests/wr_optimality.rs:
