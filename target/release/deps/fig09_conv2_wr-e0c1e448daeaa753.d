/root/repo/target/release/deps/fig09_conv2_wr-e0c1e448daeaa753.d: crates/bench/src/bin/fig09_conv2_wr.rs

/root/repo/target/release/deps/fig09_conv2_wr-e0c1e448daeaa753: crates/bench/src/bin/fig09_conv2_wr.rs

crates/bench/src/bin/fig09_conv2_wr.rs:
