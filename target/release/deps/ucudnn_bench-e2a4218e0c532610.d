/root/repo/target/release/deps/ucudnn_bench-e2a4218e0c532610.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/ucudnn_bench-e2a4218e0c532610: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
