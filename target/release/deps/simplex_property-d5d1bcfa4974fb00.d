/root/repo/target/release/deps/simplex_property-d5d1bcfa4974fb00.d: crates/lp/tests/simplex_property.rs

/root/repo/target/release/deps/simplex_property-d5d1bcfa4974fb00: crates/lp/tests/simplex_property.rs

crates/lp/tests/simplex_property.rs:
