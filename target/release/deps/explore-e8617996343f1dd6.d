/root/repo/target/release/deps/explore-e8617996343f1dd6.d: crates/bench/src/bin/explore.rs

/root/repo/target/release/deps/explore-e8617996343f1dd6: crates/bench/src/bin/explore.rs

crates/bench/src/bin/explore.rs:
