/root/repo/target/release/deps/ucudnn_bench-a54dba832b8a8673.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_bench-a54dba832b8a8673.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
