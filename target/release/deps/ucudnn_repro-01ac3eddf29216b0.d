/root/repo/target/release/deps/ucudnn_repro-01ac3eddf29216b0.d: src/lib.rs

/root/repo/target/release/deps/ucudnn_repro-01ac3eddf29216b0: src/lib.rs

src/lib.rs:
