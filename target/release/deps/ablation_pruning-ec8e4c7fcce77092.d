/root/repo/target/release/deps/ablation_pruning-ec8e4c7fcce77092.d: crates/bench/src/bin/ablation_pruning.rs Cargo.toml

/root/repo/target/release/deps/libablation_pruning-ec8e4c7fcce77092.rmeta: crates/bench/src/bin/ablation_pruning.rs Cargo.toml

crates/bench/src/bin/ablation_pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
