/root/repo/target/release/deps/ablation_overhead-e9d071d56cdfcf21.d: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

/root/repo/target/release/deps/libablation_overhead-e9d071d56cdfcf21.rmeta: crates/bench/src/bin/ablation_overhead.rs Cargo.toml

crates/bench/src/bin/ablation_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
