/root/repo/target/release/deps/training_trajectory-e9756ca8ece8173e.d: tests/training_trajectory.rs Cargo.toml

/root/repo/target/release/deps/libtraining_trajectory-e9756ca8ece8173e.rmeta: tests/training_trajectory.rs Cargo.toml

tests/training_trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
