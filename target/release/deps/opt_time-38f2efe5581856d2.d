/root/repo/target/release/deps/opt_time-38f2efe5581856d2.d: crates/bench/src/bin/opt_time.rs

/root/repo/target/release/deps/opt_time-38f2efe5581856d2: crates/bench/src/bin/opt_time.rs

crates/bench/src/bin/opt_time.rs:
