/root/repo/target/release/deps/ucudnn_repro-b42f40d8b32f80e5.d: src/lib.rs

/root/repo/target/release/deps/ucudnn_repro-b42f40d8b32f80e5: src/lib.rs

src/lib.rs:
