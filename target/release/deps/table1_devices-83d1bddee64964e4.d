/root/repo/target/release/deps/table1_devices-83d1bddee64964e4.d: crates/bench/src/bin/table1_devices.rs

/root/repo/target/release/deps/table1_devices-83d1bddee64964e4: crates/bench/src/bin/table1_devices.rs

crates/bench/src/bin/table1_devices.rs:
