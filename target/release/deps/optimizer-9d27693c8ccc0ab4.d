/root/repo/target/release/deps/optimizer-9d27693c8ccc0ab4.d: crates/bench/benches/optimizer.rs Cargo.toml

/root/repo/target/release/deps/liboptimizer-9d27693c8ccc0ab4.rmeta: crates/bench/benches/optimizer.rs Cargo.toml

crates/bench/benches/optimizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
