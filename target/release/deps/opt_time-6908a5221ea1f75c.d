/root/repo/target/release/deps/opt_time-6908a5221ea1f75c.d: crates/bench/src/bin/opt_time.rs

/root/repo/target/release/deps/opt_time-6908a5221ea1f75c: crates/bench/src/bin/opt_time.rs

crates/bench/src/bin/opt_time.rs:
