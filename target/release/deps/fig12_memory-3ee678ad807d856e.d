/root/repo/target/release/deps/fig12_memory-3ee678ad807d856e.d: crates/bench/src/bin/fig12_memory.rs

/root/repo/target/release/deps/fig12_memory-3ee678ad807d856e: crates/bench/src/bin/fig12_memory.rs

crates/bench/src/bin/fig12_memory.rs:
