/root/repo/target/release/deps/fig01_workspace_cliff-c111d1cc347d2e9b.d: crates/bench/src/bin/fig01_workspace_cliff.rs

/root/repo/target/release/deps/fig01_workspace_cliff-c111d1cc347d2e9b: crates/bench/src/bin/fig01_workspace_cliff.rs

crates/bench/src/bin/fig01_workspace_cliff.rs:
