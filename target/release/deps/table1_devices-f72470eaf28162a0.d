/root/repo/target/release/deps/table1_devices-f72470eaf28162a0.d: crates/bench/src/bin/table1_devices.rs Cargo.toml

/root/repo/target/release/deps/libtable1_devices-f72470eaf28162a0.rmeta: crates/bench/src/bin/table1_devices.rs Cargo.toml

crates/bench/src/bin/table1_devices.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
