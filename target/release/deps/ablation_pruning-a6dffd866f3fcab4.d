/root/repo/target/release/deps/ablation_pruning-a6dffd866f3fcab4.d: crates/bench/src/bin/ablation_pruning.rs

/root/repo/target/release/deps/ablation_pruning-a6dffd866f3fcab4: crates/bench/src/bin/ablation_pruning.rs

crates/bench/src/bin/ablation_pruning.rs:
