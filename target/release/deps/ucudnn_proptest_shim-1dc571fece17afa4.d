/root/repo/target/release/deps/ucudnn_proptest_shim-1dc571fece17afa4.d: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/libucudnn_proptest_shim-1dc571fece17afa4.rlib: crates/proptest-shim/src/lib.rs

/root/repo/target/release/deps/libucudnn_proptest_shim-1dc571fece17afa4.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
