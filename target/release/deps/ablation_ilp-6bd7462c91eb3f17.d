/root/repo/target/release/deps/ablation_ilp-6bd7462c91eb3f17.d: crates/bench/src/bin/ablation_ilp.rs Cargo.toml

/root/repo/target/release/deps/libablation_ilp-6bd7462c91eb3f17.rmeta: crates/bench/src/bin/ablation_ilp.rs Cargo.toml

crates/bench/src/bin/ablation_ilp.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
