/root/repo/target/release/deps/fig08_pareto_front-f544b3bb3a59dd29.d: crates/bench/src/bin/fig08_pareto_front.rs Cargo.toml

/root/repo/target/release/deps/libfig08_pareto_front-f544b3bb3a59dd29.rmeta: crates/bench/src/bin/fig08_pareto_front.rs Cargo.toml

crates/bench/src/bin/fig08_pareto_front.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
