/root/repo/target/release/deps/conv_property-79aa8b1a1c4704d7.d: tests/conv_property.rs

/root/repo/target/release/deps/conv_property-79aa8b1a1c4704d7: tests/conv_property.rs

tests/conv_property.rs:
