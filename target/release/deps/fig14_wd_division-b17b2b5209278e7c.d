/root/repo/target/release/deps/fig14_wd_division-b17b2b5209278e7c.d: crates/bench/src/bin/fig14_wd_division.rs Cargo.toml

/root/repo/target/release/deps/libfig14_wd_division-b17b2b5209278e7c.rmeta: crates/bench/src/bin/fig14_wd_division.rs Cargo.toml

crates/bench/src/bin/fig14_wd_division.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
