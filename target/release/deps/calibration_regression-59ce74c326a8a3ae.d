/root/repo/target/release/deps/calibration_regression-59ce74c326a8a3ae.d: tests/calibration_regression.rs

/root/repo/target/release/deps/calibration_regression-59ce74c326a8a3ae: tests/calibration_regression.rs

tests/calibration_regression.rs:
