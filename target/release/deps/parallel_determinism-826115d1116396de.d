/root/repo/target/release/deps/parallel_determinism-826115d1116396de.d: tests/parallel_determinism.rs Cargo.toml

/root/repo/target/release/deps/libparallel_determinism-826115d1116396de.rmeta: tests/parallel_determinism.rs Cargo.toml

tests/parallel_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
