/root/repo/target/release/deps/ablation_pruning-a92371600d66b4fa.d: crates/bench/src/bin/ablation_pruning.rs Cargo.toml

/root/repo/target/release/deps/libablation_pruning-a92371600d66b4fa.rmeta: crates/bench/src/bin/ablation_pruning.rs Cargo.toml

crates/bench/src/bin/ablation_pruning.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
