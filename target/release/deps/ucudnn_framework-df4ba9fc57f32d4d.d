/root/repo/target/release/deps/ucudnn_framework-df4ba9fc57f32d4d.d: crates/framework/src/lib.rs crates/framework/src/concurrency.rs crates/framework/src/cost.rs crates/framework/src/data_parallel.rs crates/framework/src/exec_real.rs crates/framework/src/exec_sim.rs crates/framework/src/graph.rs crates/framework/src/memory.rs crates/framework/src/models.rs crates/framework/src/provider.rs crates/framework/src/timing.rs crates/framework/src/train.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_framework-df4ba9fc57f32d4d.rmeta: crates/framework/src/lib.rs crates/framework/src/concurrency.rs crates/framework/src/cost.rs crates/framework/src/data_parallel.rs crates/framework/src/exec_real.rs crates/framework/src/exec_sim.rs crates/framework/src/graph.rs crates/framework/src/memory.rs crates/framework/src/models.rs crates/framework/src/provider.rs crates/framework/src/timing.rs crates/framework/src/train.rs Cargo.toml

crates/framework/src/lib.rs:
crates/framework/src/concurrency.rs:
crates/framework/src/cost.rs:
crates/framework/src/data_parallel.rs:
crates/framework/src/exec_real.rs:
crates/framework/src/exec_sim.rs:
crates/framework/src/graph.rs:
crates/framework/src/memory.rs:
crates/framework/src/models.rs:
crates/framework/src/provider.rs:
crates/framework/src/timing.rs:
crates/framework/src/train.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
