/root/repo/target/release/deps/ucudnn_gpu_model-3f2222e142fd80bd.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs Cargo.toml

/root/repo/target/release/deps/libucudnn_gpu_model-3f2222e142fd80bd.rmeta: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs Cargo.toml

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/algo.rs:
crates/gpu-model/src/device.rs:
crates/gpu-model/src/time.rs:
crates/gpu-model/src/workspace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
