/root/repo/target/release/deps/optimizer-e1c99442d721e73e.d: crates/bench/benches/optimizer.rs Cargo.toml

/root/repo/target/release/deps/liboptimizer-e1c99442d721e73e.rmeta: crates/bench/benches/optimizer.rs Cargo.toml

crates/bench/benches/optimizer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=
# env-dep:CLIPPY_CONF_DIR
