/root/repo/target/release/libucudnn_proptest_shim.rlib: /root/repo/crates/proptest-shim/src/lib.rs
