/root/repo/target/debug/deps/ucudnn_proptest_shim-d0cda0449f7f3e08.d: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libucudnn_proptest_shim-d0cda0449f7f3e08.rlib: crates/proptest-shim/src/lib.rs

/root/repo/target/debug/deps/libucudnn_proptest_shim-d0cda0449f7f3e08.rmeta: crates/proptest-shim/src/lib.rs

crates/proptest-shim/src/lib.rs:
