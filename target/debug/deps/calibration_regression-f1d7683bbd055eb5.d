/root/repo/target/debug/deps/calibration_regression-f1d7683bbd055eb5.d: tests/calibration_regression.rs

/root/repo/target/debug/deps/calibration_regression-f1d7683bbd055eb5: tests/calibration_regression.rs

tests/calibration_regression.rs:
