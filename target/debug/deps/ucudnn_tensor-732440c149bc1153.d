/root/repo/target/debug/deps/ucudnn_tensor-732440c149bc1153.d: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libucudnn_tensor-732440c149bc1153.rlib: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libucudnn_tensor-732440c149bc1153.rmeta: crates/tensor/src/lib.rs crates/tensor/src/compare.rs crates/tensor/src/fill.rs crates/tensor/src/shape.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/compare.rs:
crates/tensor/src/fill.rs:
crates/tensor/src/shape.rs:
crates/tensor/src/tensor.rs:
