/root/repo/target/debug/deps/conv_property-e74755c527b07f59.d: tests/conv_property.rs

/root/repo/target/debug/deps/conv_property-e74755c527b07f59: tests/conv_property.rs

tests/conv_property.rs:
