/root/repo/target/debug/deps/wd_pruning-addb1eaa19f9e282.d: tests/wd_pruning.rs

/root/repo/target/debug/deps/wd_pruning-addb1eaa19f9e282: tests/wd_pruning.rs

tests/wd_pruning.rs:
