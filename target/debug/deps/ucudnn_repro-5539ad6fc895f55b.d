/root/repo/target/debug/deps/ucudnn_repro-5539ad6fc895f55b.d: src/lib.rs

/root/repo/target/debug/deps/libucudnn_repro-5539ad6fc895f55b.rlib: src/lib.rs

/root/repo/target/debug/deps/libucudnn_repro-5539ad6fc895f55b.rmeta: src/lib.rs

src/lib.rs:
