/root/repo/target/debug/deps/ucudnn_sync_shim-53e4c5ee6b1255de.d: crates/sync-shim/src/lib.rs

/root/repo/target/debug/deps/libucudnn_sync_shim-53e4c5ee6b1255de.rlib: crates/sync-shim/src/lib.rs

/root/repo/target/debug/deps/libucudnn_sync_shim-53e4c5ee6b1255de.rmeta: crates/sync-shim/src/lib.rs

crates/sync-shim/src/lib.rs:
