/root/repo/target/debug/deps/parallel_determinism-7ce6a5936392ced7.d: tests/parallel_determinism.rs

/root/repo/target/debug/deps/parallel_determinism-7ce6a5936392ced7: tests/parallel_determinism.rs

tests/parallel_determinism.rs:
