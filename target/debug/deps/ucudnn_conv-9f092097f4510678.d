/root/repo/target/debug/deps/ucudnn_conv-9f092097f4510678.d: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs

/root/repo/target/debug/deps/libucudnn_conv-9f092097f4510678.rlib: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs

/root/repo/target/debug/deps/libucudnn_conv-9f092097f4510678.rmeta: crates/conv/src/lib.rs crates/conv/src/direct.rs crates/conv/src/fft.rs crates/conv/src/fft_conv.rs crates/conv/src/gemm.rs crates/conv/src/im2col.rs crates/conv/src/im2col_gemm.rs crates/conv/src/parallel.rs crates/conv/src/winograd.rs crates/conv/src/winograd_f4.rs

crates/conv/src/lib.rs:
crates/conv/src/direct.rs:
crates/conv/src/fft.rs:
crates/conv/src/fft_conv.rs:
crates/conv/src/gemm.rs:
crates/conv/src/im2col.rs:
crates/conv/src/im2col_gemm.rs:
crates/conv/src/parallel.rs:
crates/conv/src/winograd.rs:
crates/conv/src/winograd_f4.rs:
