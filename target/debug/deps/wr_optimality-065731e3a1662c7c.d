/root/repo/target/debug/deps/wr_optimality-065731e3a1662c7c.d: tests/wr_optimality.rs

/root/repo/target/debug/deps/wr_optimality-065731e3a1662c7c: tests/wr_optimality.rs

tests/wr_optimality.rs:
