/root/repo/target/debug/deps/ucudnn_lp-c151284258d871d2.d: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libucudnn_lp-c151284258d871d2.rlib: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs

/root/repo/target/debug/deps/libucudnn_lp-c151284258d871d2.rmeta: crates/lp/src/lib.rs crates/lp/src/ilp.rs crates/lp/src/mck.rs crates/lp/src/simplex.rs

crates/lp/src/lib.rs:
crates/lp/src/ilp.rs:
crates/lp/src/mck.rs:
crates/lp/src/simplex.rs:
