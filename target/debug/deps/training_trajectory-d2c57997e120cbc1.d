/root/repo/target/debug/deps/training_trajectory-d2c57997e120cbc1.d: tests/training_trajectory.rs

/root/repo/target/debug/deps/training_trajectory-d2c57997e120cbc1: tests/training_trajectory.rs

tests/training_trajectory.rs:
