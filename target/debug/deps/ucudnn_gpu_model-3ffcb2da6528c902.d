/root/repo/target/debug/deps/ucudnn_gpu_model-3ffcb2da6528c902.d: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs

/root/repo/target/debug/deps/libucudnn_gpu_model-3ffcb2da6528c902.rlib: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs

/root/repo/target/debug/deps/libucudnn_gpu_model-3ffcb2da6528c902.rmeta: crates/gpu-model/src/lib.rs crates/gpu-model/src/algo.rs crates/gpu-model/src/device.rs crates/gpu-model/src/time.rs crates/gpu-model/src/workspace.rs

crates/gpu-model/src/lib.rs:
crates/gpu-model/src/algo.rs:
crates/gpu-model/src/device.rs:
crates/gpu-model/src/time.rs:
crates/gpu-model/src/workspace.rs:
