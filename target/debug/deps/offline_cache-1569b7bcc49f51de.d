/root/repo/target/debug/deps/offline_cache-1569b7bcc49f51de.d: tests/offline_cache.rs

/root/repo/target/debug/deps/offline_cache-1569b7bcc49f51de: tests/offline_cache.rs

tests/offline_cache.rs:
