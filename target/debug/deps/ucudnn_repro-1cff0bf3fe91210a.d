/root/repo/target/debug/deps/ucudnn_repro-1cff0bf3fe91210a.d: src/lib.rs

/root/repo/target/debug/deps/ucudnn_repro-1cff0bf3fe91210a: src/lib.rs

src/lib.rs:
