/root/repo/target/debug/deps/end_to_end_equivalence-8ecbae5ac82b9113.d: tests/end_to_end_equivalence.rs

/root/repo/target/debug/deps/end_to_end_equivalence-8ecbae5ac82b9113: tests/end_to_end_equivalence.rs

tests/end_to_end_equivalence.rs:
