/root/repo/target/debug/deps/ucudnn_cudnn_sim-6e1baf21d67af434.d: crates/cudnn-sim/src/lib.rs crates/cudnn-sim/src/descriptor.rs crates/cudnn-sim/src/error.rs crates/cudnn-sim/src/exec.rs crates/cudnn-sim/src/find.rs crates/cudnn-sim/src/handle.rs crates/cudnn-sim/src/map.rs crates/cudnn-sim/src/ops/mod.rs crates/cudnn-sim/src/ops/activation.rs crates/cudnn-sim/src/ops/batchnorm.rs crates/cudnn-sim/src/ops/pooling.rs crates/cudnn-sim/src/ops/tensor_ops.rs

/root/repo/target/debug/deps/libucudnn_cudnn_sim-6e1baf21d67af434.rlib: crates/cudnn-sim/src/lib.rs crates/cudnn-sim/src/descriptor.rs crates/cudnn-sim/src/error.rs crates/cudnn-sim/src/exec.rs crates/cudnn-sim/src/find.rs crates/cudnn-sim/src/handle.rs crates/cudnn-sim/src/map.rs crates/cudnn-sim/src/ops/mod.rs crates/cudnn-sim/src/ops/activation.rs crates/cudnn-sim/src/ops/batchnorm.rs crates/cudnn-sim/src/ops/pooling.rs crates/cudnn-sim/src/ops/tensor_ops.rs

/root/repo/target/debug/deps/libucudnn_cudnn_sim-6e1baf21d67af434.rmeta: crates/cudnn-sim/src/lib.rs crates/cudnn-sim/src/descriptor.rs crates/cudnn-sim/src/error.rs crates/cudnn-sim/src/exec.rs crates/cudnn-sim/src/find.rs crates/cudnn-sim/src/handle.rs crates/cudnn-sim/src/map.rs crates/cudnn-sim/src/ops/mod.rs crates/cudnn-sim/src/ops/activation.rs crates/cudnn-sim/src/ops/batchnorm.rs crates/cudnn-sim/src/ops/pooling.rs crates/cudnn-sim/src/ops/tensor_ops.rs

crates/cudnn-sim/src/lib.rs:
crates/cudnn-sim/src/descriptor.rs:
crates/cudnn-sim/src/error.rs:
crates/cudnn-sim/src/exec.rs:
crates/cudnn-sim/src/find.rs:
crates/cudnn-sim/src/handle.rs:
crates/cudnn-sim/src/map.rs:
crates/cudnn-sim/src/ops/mod.rs:
crates/cudnn-sim/src/ops/activation.rs:
crates/cudnn-sim/src/ops/batchnorm.rs:
crates/cudnn-sim/src/ops/pooling.rs:
crates/cudnn-sim/src/ops/tensor_ops.rs:
