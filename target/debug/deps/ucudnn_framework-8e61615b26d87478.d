/root/repo/target/debug/deps/ucudnn_framework-8e61615b26d87478.d: crates/framework/src/lib.rs crates/framework/src/concurrency.rs crates/framework/src/cost.rs crates/framework/src/data_parallel.rs crates/framework/src/exec_real.rs crates/framework/src/exec_sim.rs crates/framework/src/graph.rs crates/framework/src/memory.rs crates/framework/src/models.rs crates/framework/src/provider.rs crates/framework/src/timing.rs crates/framework/src/train.rs

/root/repo/target/debug/deps/libucudnn_framework-8e61615b26d87478.rlib: crates/framework/src/lib.rs crates/framework/src/concurrency.rs crates/framework/src/cost.rs crates/framework/src/data_parallel.rs crates/framework/src/exec_real.rs crates/framework/src/exec_sim.rs crates/framework/src/graph.rs crates/framework/src/memory.rs crates/framework/src/models.rs crates/framework/src/provider.rs crates/framework/src/timing.rs crates/framework/src/train.rs

/root/repo/target/debug/deps/libucudnn_framework-8e61615b26d87478.rmeta: crates/framework/src/lib.rs crates/framework/src/concurrency.rs crates/framework/src/cost.rs crates/framework/src/data_parallel.rs crates/framework/src/exec_real.rs crates/framework/src/exec_sim.rs crates/framework/src/graph.rs crates/framework/src/memory.rs crates/framework/src/models.rs crates/framework/src/provider.rs crates/framework/src/timing.rs crates/framework/src/train.rs

crates/framework/src/lib.rs:
crates/framework/src/concurrency.rs:
crates/framework/src/cost.rs:
crates/framework/src/data_parallel.rs:
crates/framework/src/exec_real.rs:
crates/framework/src/exec_sim.rs:
crates/framework/src/graph.rs:
crates/framework/src/memory.rs:
crates/framework/src/models.rs:
crates/framework/src/provider.rs:
crates/framework/src/timing.rs:
crates/framework/src/train.rs:
