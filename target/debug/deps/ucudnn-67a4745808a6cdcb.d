/root/repo/target/debug/deps/ucudnn-67a4745808a6cdcb.d: crates/core/src/lib.rs crates/core/src/bench_cache.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/handle.rs crates/core/src/json.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/pareto.rs crates/core/src/policy.rs crates/core/src/wd.rs crates/core/src/wr.rs

/root/repo/target/debug/deps/libucudnn-67a4745808a6cdcb.rlib: crates/core/src/lib.rs crates/core/src/bench_cache.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/handle.rs crates/core/src/json.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/pareto.rs crates/core/src/policy.rs crates/core/src/wd.rs crates/core/src/wr.rs

/root/repo/target/debug/deps/libucudnn-67a4745808a6cdcb.rmeta: crates/core/src/lib.rs crates/core/src/bench_cache.rs crates/core/src/config.rs crates/core/src/env.rs crates/core/src/error.rs crates/core/src/handle.rs crates/core/src/json.rs crates/core/src/kernel.rs crates/core/src/metrics.rs crates/core/src/pareto.rs crates/core/src/policy.rs crates/core/src/wd.rs crates/core/src/wr.rs

crates/core/src/lib.rs:
crates/core/src/bench_cache.rs:
crates/core/src/config.rs:
crates/core/src/env.rs:
crates/core/src/error.rs:
crates/core/src/handle.rs:
crates/core/src/json.rs:
crates/core/src/kernel.rs:
crates/core/src/metrics.rs:
crates/core/src/pareto.rs:
crates/core/src/policy.rs:
crates/core/src/wd.rs:
crates/core/src/wr.rs:
