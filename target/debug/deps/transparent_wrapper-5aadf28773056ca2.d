/root/repo/target/debug/deps/transparent_wrapper-5aadf28773056ca2.d: tests/transparent_wrapper.rs

/root/repo/target/debug/deps/transparent_wrapper-5aadf28773056ca2: tests/transparent_wrapper.rs

tests/transparent_wrapper.rs:
