/root/repo/target/debug/deps/substrate_edges-0cc86a51058813d0.d: tests/substrate_edges.rs

/root/repo/target/debug/deps/substrate_edges-0cc86a51058813d0: tests/substrate_edges.rs

tests/substrate_edges.rs:
