/root/repo/target/debug/deps/wrapper_stress-9fcabec1d30842ce.d: tests/wrapper_stress.rs

/root/repo/target/debug/deps/wrapper_stress-9fcabec1d30842ce: tests/wrapper_stress.rs

tests/wrapper_stress.rs:
