/root/repo/target/debug/examples/micro_batch_correctness-6f83e634376c05db.d: examples/micro_batch_correctness.rs

/root/repo/target/debug/examples/micro_batch_correctness-6f83e634376c05db: examples/micro_batch_correctness.rs

examples/micro_batch_correctness.rs:
