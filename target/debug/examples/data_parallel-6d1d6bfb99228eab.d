/root/repo/target/debug/examples/data_parallel-6d1d6bfb99228eab.d: examples/data_parallel.rs

/root/repo/target/debug/examples/data_parallel-6d1d6bfb99228eab: examples/data_parallel.rs

examples/data_parallel.rs:
