/root/repo/target/debug/examples/quickstart-593864f15baeb467.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-593864f15baeb467: examples/quickstart.rs

examples/quickstart.rs:
