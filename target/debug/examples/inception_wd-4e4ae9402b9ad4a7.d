/root/repo/target/debug/examples/inception_wd-4e4ae9402b9ad4a7.d: examples/inception_wd.rs

/root/repo/target/debug/examples/inception_wd-4e4ae9402b9ad4a7: examples/inception_wd.rs

examples/inception_wd.rs:
