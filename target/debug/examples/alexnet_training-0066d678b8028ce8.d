/root/repo/target/debug/examples/alexnet_training-0066d678b8028ce8.d: examples/alexnet_training.rs

/root/repo/target/debug/examples/alexnet_training-0066d678b8028ce8: examples/alexnet_training.rs

examples/alexnet_training.rs:
