//! A std-only stand-in for the `proptest` property-testing API.
//!
//! The workspace builds fully offline, so the real `proptest` crate is
//! replaced (via Cargo dependency renaming) with this deterministic
//! re-implementation of the subset of its API the workspace's property
//! tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, implemented for integer/float
//!   ranges and tuples of strategies;
//! * [`Just`], [`prop_oneof!`], and [`collection::vec`];
//! * the [`proptest!`] macro with optional `#![proptest_config(..)]`;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` / `prop_assume!`.
//!
//! Unlike the real proptest there is no shrinking and no failure
//! persistence: every test runs a fixed number of cases drawn from a
//! deterministic per-test RNG (seeded by the test's name), so failures are
//! reproducible by construction — the reported case index pinpoints the
//! input.

use std::ops::{Range, RangeInclusive};

/// Deterministic splitmix64 generator driving all value generation.
#[derive(Debug, Clone)]
pub struct TestRng(u64);

impl TestRng {
    /// Seed directly.
    pub fn new(seed: u64) -> Self {
        Self(seed)
    }

    /// Seed from a test's name, so every test gets a stable, distinct
    /// stream regardless of execution order.
    pub fn for_test(name: &str) -> Self {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        Self(h)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the input; the case is skipped.
    Reject,
    /// An assertion failed.
    Fail(String),
}

/// How many cases each property runs (the real crate's default is 256).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erase the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// [`Strategy::prop_map`] adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

/// Uniform choice among boxed strategies — the engine behind
/// [`prop_oneof!`].
pub struct Union<T>(Vec<BoxedStrategy<T>>);

impl<T> Union<T> {
    /// Build from the alternatives; must be non-empty.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Self {
        assert!(
            !alternatives.is_empty(),
            "prop_oneof! needs at least one alternative"
        );
        Self(alternatives)
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.below(self.0.len() as u64) as usize;
        self.0[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64 + 1;
                if span == 0 {
                    // Full-width range: any value works.
                    return rng.next_u64() as $t;
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(usize, u8, u16, u32, u64);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (rng.next_f64() as $t) * (self.end - self.start)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                // Treat the closed upper bound as reachable by sampling on
                // a slightly widened open interval and clamping.
                let (lo, hi) = (*self.start(), *self.end());
                (lo + (rng.next_f64() as $t) * (hi - lo) * (1.0 + 1e-9)).min(hi)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! tuple_strategy {
    ($(($($s:ident),+))*) => {$(
        #[allow(non_snake_case)]
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($s,)+) = self;
                ($($s.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
    (A, B, C, D, E, F, G)
    (A, B, C, D, E, F, G, H)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Permitted length range for a generated collection.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                lo: n,
                hi_inclusive: n,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty collection size range");
            Self {
                lo: r.start,
                hi_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            Self {
                lo: *r.start(),
                hi_inclusive: *r.end(),
            }
        }
    }

    /// Strategy for `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with lengths drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64 + 1;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($a), stringify!($b), a, b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "{}\n  left: {:?}\n right: {:?}", format!($($fmt)*), a, b);
    }};
}

/// Assert inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($a), stringify!($b), a
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "{}\n  both: {:?}", format!($($fmt)*), a);
    }};
}

/// Reject inputs that don't satisfy a precondition (skips the case).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($alt:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($alt)),+])
    };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal muncher for [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                let outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    { $body }
                    ::std::result::Result::Ok(())
                })();
                match outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("property `{}` failed at case {}/{}:\n{}",
                               stringify!($name), case, cfg.cases, msg);
                    }
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = crate::TestRng::for_test("x");
        let mut b = crate::TestRng::for_test("x");
        let mut c = crate::TestRng::for_test("y");
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..1000 {
            let v = (3usize..10).generate(&mut rng);
            assert!((3..10).contains(&v));
            let f = (-2.0f64..2.0).generate(&mut rng);
            assert!((-2.0..2.0).contains(&f));
            let i = (1usize..=4).generate(&mut rng);
            assert!((1..=4).contains(&i));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let s = (1usize..5, 10usize..20).prop_map(|(a, b)| a + b);
        let mut rng = crate::TestRng::new(1);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((11..24).contains(&v));
        }
    }

    #[test]
    fn vec_strategy_len_in_range() {
        let s = prop::collection::vec(0usize..3, 2..6);
        let mut rng = crate::TestRng::new(2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((2..6).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 3));
        }
    }

    #[test]
    fn oneof_draws_every_alternative() {
        let s = prop_oneof![Just(1u32), Just(2u32), (5u32..7).prop_map(|x| x)];
        let mut rng = crate::TestRng::new(3);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(s.generate(&mut rng));
        }
        assert!(seen.contains(&1) && seen.contains(&2) && seen.contains(&5));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// The macro wires strategies, assume and asserts together.
        #[test]
        fn macro_end_to_end(a in 1usize..50, b in 1usize..50) {
            prop_assume!(a != b);
            prop_assert_ne!(a, b);
            prop_assert!(a + b >= 2, "sum too small: {} + {}", a, b);
            prop_assert_eq!(a + b, b + a);
        }
    }

    proptest! {
        /// Default config path (no explicit proptest_config).
        #[test]
        fn macro_default_config(x in 0u64..10) {
            prop_assert!(x < 10);
        }
    }
}
