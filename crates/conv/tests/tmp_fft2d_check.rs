//! Throwaway review check: fft2d on a non-square grid vs a naive 2-D DFT.

use ucudnn_conv::fft::{fft2d, C32};

fn naive_dft2d(x: &[C32], fh: usize, fw: usize) -> Vec<C32> {
    let mut out = vec![C32::default(); fh * fw];
    for u in 0..fh {
        for v in 0..fw {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for i in 0..fh {
                for j in 0..fw {
                    let ang = -2.0
                        * std::f64::consts::PI
                        * (u as f64 * i as f64 / fh as f64 + v as f64 * j as f64 / fw as f64);
                    let (c, s) = (ang.cos(), ang.sin());
                    let xv = x[i * fw + j];
                    re += xv.re as f64 * c - xv.im as f64 * s;
                    im += xv.re as f64 * s + xv.im as f64 * c;
                }
            }
            out[u * fw + v] = C32::new(re as f32, im as f32);
        }
    }
    out
}

#[test]
fn fft2d_nonsquare_matches_naive() {
    let (fh, fw) = (4usize, 8usize);
    let x: Vec<C32> = (0..fh * fw)
        .map(|i| C32::new((i as f32 * 0.37).sin(), (i as f32 * 0.11).cos()))
        .collect();
    let want = naive_dft2d(&x, fh, fw);
    let mut got = x.clone();
    fft2d(&mut got, fh, fw, false);
    for (i, (g, w)) in got.iter().zip(&want).enumerate() {
        assert!(
            (g.re - w.re).abs() < 1e-3 && (g.im - w.im).abs() < 1e-3,
            "mismatch at {i}: got ({}, {}), want ({}, {})",
            g.re,
            g.im,
            w.re,
            w.im
        );
    }
}
