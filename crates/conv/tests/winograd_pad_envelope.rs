//! Exhaustive oracle sweep of the Winograd pad envelope.
//!
//! `supports()` advertises pad ≤ 2 for both F(2×2,3×3) and F(4×4,3×3); this
//! suite pins every combination of `pad_h × pad_w ∈ 0..=2`, odd and even
//! spatial sizes (edge tiles clip on one or both axes), Forward and
//! BackwardData, against the direct seven-loop reference — for the fast
//! strip-vectorized path *and* the retained scalar baseline. A tile-edge
//! indexing bug anywhere inside the advertised envelope fails here before
//! it can ship behind `supports()`.

use ucudnn_conv::{direct, winograd, winograd_f4};
use ucudnn_tensor::{assert_all_close, ConvGeometry, FilterShape, Shape4, Tensor};

/// Spatial sizes chosen so tile grids clip differently per axis: even/even,
/// odd/odd, odd/even, and a sub-tile-size edge case.
const SPATIALS: [(usize, usize); 4] = [(6, 6), (7, 9), (9, 8), (5, 11)];

fn envelope() -> Vec<ConvGeometry> {
    let mut gs = Vec::new();
    for pad_h in 0..=2 {
        for pad_w in 0..=2 {
            for (h, w) in SPATIALS {
                gs.push(ConvGeometry::new(
                    Shape4::new(2, 3, h, w),
                    FilterShape::new(4, 3, 3, 3),
                    pad_h,
                    pad_w,
                    1,
                    1,
                ));
            }
        }
    }
    gs
}

fn check_forward(
    g: &ConvGeometry,
    ws_len: usize,
    tol: f32,
    fast: impl Fn(&ConvGeometry, &[f32], &[f32], &mut [f32], f32, f32, &mut [f32]),
    naive: impl Fn(&ConvGeometry, &[f32], &[f32], &mut [f32], f32, f32, &mut [f32]),
) {
    let x = Tensor::random(g.input, 11);
    let w = Tensor::random(g.filter.as_shape4(), 12);
    let mut y_ref = Tensor::zeros(g.output());
    direct::forward(
        g,
        x.as_slice(),
        w.as_slice(),
        y_ref.as_mut_slice(),
        1.0,
        0.0,
    );
    let mut ws = vec![0.0; ws_len];
    let mut y = Tensor::zeros(g.output());
    fast(
        g,
        x.as_slice(),
        w.as_slice(),
        y.as_mut_slice(),
        1.0,
        0.0,
        &mut ws,
    );
    assert_all_close(&y_ref, &y, tol);
    let mut y_naive = Tensor::zeros(g.output());
    naive(
        g,
        x.as_slice(),
        w.as_slice(),
        y_naive.as_mut_slice(),
        1.0,
        0.0,
        &mut ws,
    );
    assert_all_close(&y_ref, &y_naive, tol);
}

fn check_backward(
    g: &ConvGeometry,
    ws_len: usize,
    tol: f32,
    fast: impl Fn(&ConvGeometry, &[f32], &[f32], &mut [f32], f32, f32, &mut [f32]),
    naive: impl Fn(&ConvGeometry, &[f32], &[f32], &mut [f32], f32, f32, &mut [f32]),
) {
    let dy = Tensor::random(g.output(), 13);
    let w = Tensor::random(g.filter.as_shape4(), 14);
    let mut dx_ref = Tensor::zeros(g.input);
    direct::backward_data(
        g,
        dy.as_slice(),
        w.as_slice(),
        dx_ref.as_mut_slice(),
        1.0,
        0.0,
    );
    let mut ws = vec![0.0; ws_len];
    let mut dx = Tensor::zeros(g.input);
    fast(
        g,
        dy.as_slice(),
        w.as_slice(),
        dx.as_mut_slice(),
        1.0,
        0.0,
        &mut ws,
    );
    assert_all_close(&dx_ref, &dx, tol);
    let mut dx_naive = Tensor::zeros(g.input);
    naive(
        g,
        dy.as_slice(),
        w.as_slice(),
        dx_naive.as_mut_slice(),
        1.0,
        0.0,
        &mut ws,
    );
    assert_all_close(&dx_ref, &dx_naive, tol);
}

#[test]
fn f2_forward_covers_full_pad_envelope() {
    for g in envelope() {
        assert!(winograd::supports(&g), "{g} must be inside the envelope");
        check_forward(
            &g,
            winograd::workspace_floats(&g),
            1e-3,
            winograd::forward,
            winograd::forward_ref,
        );
    }
}

#[test]
fn f2_backward_data_covers_full_pad_envelope() {
    for g in envelope() {
        check_backward(
            &g,
            winograd::workspace_floats_backward_data(&g),
            1e-3,
            winograd::backward_data,
            winograd::backward_data_ref,
        );
    }
}

#[test]
fn f4_forward_covers_full_pad_envelope() {
    for g in envelope() {
        assert!(winograd_f4::supports(&g), "{g} must be inside the envelope");
        check_forward(
            &g,
            winograd_f4::workspace_floats(&g),
            5e-3,
            winograd_f4::forward,
            winograd_f4::forward_ref,
        );
    }
}

#[test]
fn f4_backward_data_covers_full_pad_envelope() {
    for g in envelope() {
        check_backward(
            &g,
            winograd_f4::workspace_floats_backward_data(&g),
            5e-3,
            winograd_f4::backward_data,
            winograd_f4::backward_data_ref,
        );
    }
}

/// Everything the envelope promises and nothing more: pad 3 is rejected.
#[test]
fn pad_three_is_outside_the_envelope() {
    let g = ConvGeometry::with_square(Shape4::new(1, 2, 8, 8), FilterShape::new(2, 2, 3, 3), 3, 1);
    assert!(!winograd::supports(&g));
    assert!(!winograd_f4::supports(&g));
}
