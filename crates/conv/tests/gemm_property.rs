//! Property tests pinning the register-blocked packed GEMM to a plain
//! triple-loop oracle across the whole call surface: all four transpose
//! combinations, odd/tail-heavy shapes, and the alpha/beta values the
//! engines actually use.

use proptest::prelude::*;
use ucudnn_conv::gemm::{
    pack_a, pack_b_into, packed_b_len, sgemm, sgemm_prepacked, sgemm_prepacked_a,
    sgemm_prepacked_batch, sgemm_ref, Trans,
};

/// Unblocked triple-loop oracle, deliberately independent of the library's
/// own `sgemm_ref` blocking. `op(A)` is `m x k`, `op(B)` is `k x n`,
/// row-major.
#[allow(clippy::too_many_arguments)]
fn gemm_oracle(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for l in 0..k {
                let av = match trans_a {
                    Trans::No => a[i * k + l],
                    Trans::Yes => a[l * m + i],
                };
                let bv = match trans_b {
                    Trans::No => b[l * n + j],
                    Trans::Yes => b[j * k + l],
                };
                acc += f64::from(av) * f64::from(bv);
            }
            let prior = if beta == 0.0 {
                0.0
            } else {
                beta * c[i * n + j]
            };
            c[i * n + j] = alpha * acc as f32 + prior;
        }
    }
}

fn trans() -> impl Strategy<Value = Trans> {
    prop_oneof![Just(Trans::No), Just(Trans::Yes)]
}

/// The scale values the conv engines pass: identity, accumulate, halve,
/// negate — including the beta == 0 "do not read C" case.
fn scale() -> impl Strategy<Value = f32> {
    prop_oneof![Just(0.0f32), Just(1.0f32), Just(0.5f32), Just(-1.0f32)]
}

/// Odd, deliberately non-tile-aligned dimensions so every case exercises
/// the masked tail paths of the micro-kernel.
fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..40, 1usize..40, 1usize..40).prop_map(|(m, n, k)| (m | 1, n | 1, k | 1))
}

fn filled(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = proptest::TestRng::new(seed.max(1));
    (0..len)
        .map(|_| (rng.next_f64() as f32) * 2.0 - 1.0)
        .collect()
}

/// Absolute-plus-relative closeness against the f64 oracle: the packed
/// kernel reassociates sums (and may fuse multiplies), so exact equality
/// with a sequential f32 loop is not the contract — agreement to f32
/// rounding is.
fn assert_close(got: &[f32], want: &[f32], k: usize) {
    let tol = 1e-5 * (k as f32).sqrt().max(1.0);
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        let scale = w.abs().max(1.0);
        assert!(
            (g - w).abs() <= tol * scale,
            "element {i}: got {g}, oracle {w} (tol {tol})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Packed GEMM matches the triple loop on every transpose combination,
    /// odd shape, and engine scale value.
    #[test]
    fn sgemm_matches_triple_loop(
        mnk in dims(),
        ta in trans(),
        tb in trans(),
        alpha in scale(),
        beta in scale(),
        seed in 1u64..1_000_000,
    ) {
        let (m, n, k) = mnk;
        let a = filled(m * k, seed);
        let b = filled(k * n, seed ^ 0x9e37_79b9);
        // Seed C with garbage when beta == 0: cuDNN semantics say it must
        // be overwritten, never read.
        let c_init: Vec<f32> = if beta == 0.0 {
            vec![f32::NAN; m * n]
        } else {
            filled(m * n, seed ^ 0x5bd1_e995)
        };
        let mut want = c_init.clone();
        gemm_oracle(ta, tb, m, n, k, alpha, &a, &b, beta, &mut want);

        let mut got = c_init.clone();
        sgemm(ta, tb, m, n, k, alpha, &a, &b, beta, &mut got);
        assert_close(&got, &want, k);

        let mut refr = c_init.clone();
        sgemm_ref(ta, tb, m, n, k, alpha, &a, &b, beta, &mut refr);
        assert_close(&refr, &want, k);
    }

    /// Pre-packing A (the micro-batch filter-reuse path) is bit-identical
    /// to packing inside the call, and repeated calls are deterministic.
    #[test]
    fn prepacked_a_is_bit_identical_and_deterministic(
        mnk in dims(),
        ta in trans(),
        tb in trans(),
        seed in 1u64..1_000_000,
    ) {
        let (m, n, k) = mnk;
        let a = filled(m * k, seed);
        let b = filled(k * n, seed ^ 0xc2b2_ae35);
        let mut fresh = vec![0.0f32; m * n];
        sgemm(ta, tb, m, n, k, 1.0, &a, &b, 0.0, &mut fresh);

        let pa = pack_a(ta, m, k, &a);
        for round in 0..2 {
            let mut warm = vec![f32::NAN; m * n];
            sgemm_prepacked_a(&pa, tb, n, 1.0, &b, 0.0, &mut warm);
            for (i, (f, w)) in fresh.iter().zip(&warm).enumerate() {
                prop_assert_eq!(
                    f.to_bits(),
                    w.to_bits(),
                    "element {} differs on round {}",
                    i,
                    round
                );
            }
        }
    }

    /// The fully-prepacked call (both operands packed — the Winograd fast
    /// path) is bit-identical to packing B inside the call, and beta == 0
    /// never reads the NaN-seeded output.
    #[test]
    fn prepacked_b_is_bit_identical_and_nan_safe(
        mnk in dims(),
        ta in trans(),
        tb in trans(),
        alpha in scale(),
        seed in 1u64..1_000_000,
    ) {
        let (m, n, k) = mnk;
        let a = filled(m * k, seed);
        let b = filled(k * n, seed ^ 0xc2b2_ae35);
        let mut fresh = vec![0.0f32; m * n];
        sgemm(ta, tb, m, n, k, alpha, &a, &b, 0.0, &mut fresh);

        let pa = pack_a(ta, m, k, &a);
        let mut pb = Vec::new();
        pack_b_into(tb, k, n, &b, &mut pb);
        let mut got = vec![f32::NAN; m * n];
        sgemm_prepacked(&pa, n, alpha, &pb, 0.0, &mut got);
        for (i, (f, g)) in fresh.iter().zip(&got).enumerate() {
            prop_assert!(!g.is_nan(), "element {} read NaN-seeded C at beta == 0", i);
            prop_assert_eq!(f.to_bits(), g.to_bits(), "element {} differs", i);
        }
    }

    /// The batched multi-RHS call over a ξ-major packed layout is
    /// bit-identical to looping `sgemm_prepacked` per ξ — slab offsets,
    /// edge panels, and the beta == 0 NaN contract all included.
    #[test]
    fn batched_multi_rhs_matches_per_xi_loop(
        mnk in dims(),
        xis in 1usize..6,
        alpha in scale(),
        beta in scale(),
        seed in 1u64..1_000_000,
    ) {
        let (m, n, k) = mnk;
        let pbl = packed_b_len(k, n);
        let mut pas = Vec::new();
        let mut pb = vec![0.0f32; xis * pbl];
        for xi in 0..xis {
            let a = filled(m * k, seed.wrapping_add(xi as u64 * 7919));
            let b = filled(k * n, seed ^ (0x9e37_79b9 + xi as u64));
            pas.push(pack_a(Trans::No, m, k, &a));
            let mut slab = Vec::new();
            pack_b_into(Trans::No, k, n, &b, &mut slab);
            pb[xi * pbl..(xi + 1) * pbl].copy_from_slice(&slab);
        }
        let c_init: Vec<f32> = if beta == 0.0 {
            vec![f32::NAN; xis * m * n]
        } else {
            filled(xis * m * n, seed ^ 0x5bd1_e995)
        };

        let mut want = c_init.clone();
        for xi in 0..xis {
            sgemm_prepacked(
                &pas[xi],
                n,
                alpha,
                &pb[xi * pbl..(xi + 1) * pbl],
                beta,
                &mut want[xi * m * n..(xi + 1) * m * n],
            );
        }

        let mut got = c_init.clone();
        sgemm_prepacked_batch(&pas, n, alpha, &pb, beta, &mut got);
        for (i, (w, g)) in want.iter().zip(&got).enumerate() {
            if beta == 0.0 {
                prop_assert!(!g.is_nan(), "element {} read NaN-seeded C at beta == 0", i);
            }
            prop_assert_eq!(w.to_bits(), g.to_bits(), "element {} differs", i);
        }
    }
}
