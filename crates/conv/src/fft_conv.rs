//! FFT-based convolution engine (cuDNN `ALGO_FFT` analogue).
//!
//! All three operations are computed in the frequency domain via the
//! convolution/correlation theorems. Like cuDNN's FFT algorithms, this engine
//! supports only unit stride and padding smaller than the filter, and its
//! workspace must hold full transformed copies of the activations and filters
//! — which is exactly the "fast but workspace-hungry" profile that motivates
//! micro-batching (the activation spectra scale with the batch size, the
//! filter spectra do not).
//!
//! Derivations (1-D notation, stride 1, `pad < R`; 2-D is the tensor product):
//!
//! * Forward:   `y[p] = Σ_r x[p + r - pad] w[r]` is cross-correlation, so
//!   `y[p] = IFFT(X ⊙ conj(W))[(p - pad) mod F]` with `F ≥ H + R - 1`.
//! * BwdData:   `dx[t] = Σ_r dy[t - r + pad] w[r]` is convolution, so
//!   `dx[t] = IFFT(DY ⊙ W)[t + pad]` with `F ≥ Ho + R - 1 = H + 2·pad`.
//! * BwdFilter: `dw[r] = Σ_p x[r - pad + p] dy[p]` is cross-correlation of
//!   the input with the output gradient, so
//!   `dw[r] = IFFT(X ⊙ conj(DY))[(r - pad) mod F]` with `F ≥ H + Ho - 1`.

use crate::fft::{next_pow2, FftTables, C32};
use crate::plan::{fingerprint_f32, FftPlan};
use crate::{ConvError, EngineKind};
use ucudnn_tensor::ConvGeometry;

/// Why the FFT engine refuses a geometry.
fn unsupported_reason(g: &ConvGeometry) -> Option<&'static str> {
    if g.stride_h != 1 || g.stride_w != 1 {
        Some("FFT convolution requires unit stride")
    } else if g.pad_h >= g.filter.r || g.pad_w >= g.filter.s {
        Some("FFT convolution requires padding smaller than the filter")
    } else {
        None
    }
}

/// True when this engine can run the given geometry.
pub fn supports(g: &ConvGeometry) -> bool {
    unsupported_reason(g).is_none()
}

fn assert_supported(g: &ConvGeometry) {
    if let Some(r) = unsupported_reason(g) {
        panic!("{r} (geometry {g})");
    }
}

/// Transform grid sizes per operation.
fn grid(g: &ConvGeometry, op: FftOp) -> (usize, usize) {
    let (ho, wo) = (g.out_h(), g.out_w());
    match op {
        FftOp::Forward => (
            next_pow2(g.input.h + g.filter.r - 1),
            next_pow2(g.input.w + g.filter.s - 1),
        ),
        FftOp::BackwardData => (
            next_pow2(ho + g.filter.r - 1),
            next_pow2(wo + g.filter.s - 1),
        ),
        FftOp::BackwardFilter => (next_pow2(g.input.h + ho - 1), next_pow2(g.input.w + wo - 1)),
    }
}

/// Which convolution operation a workspace query refers to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FftOp {
    /// Forward cross-correlation.
    Forward,
    /// Data gradient.
    BackwardData,
    /// Filter gradient.
    BackwardFilter,
}

/// Workspace in `f32` elements. Two planes (re, im) per transformed image:
/// one spectrum per (batch, channel) pair of each operand plus one scratch
/// grid for the inverse transforms.
pub fn workspace_floats(g: &ConvGeometry, op: FftOp) -> usize {
    let (fh, fw) = grid(g, op);
    let (n, c, k) = (g.input.n, g.input.c, g.filter.k);
    let images = match op {
        FftOp::Forward => n * c + k * c + 1,
        FftOp::BackwardData => n * k + k * c + 1,
        FftOp::BackwardFilter => n * c + n * k + 1,
    };
    2 * fh * fw * images
}

/// Borrow the (column, row) FFT tables out of a plan, verifying they exist
/// and were built for this grid. A plan checked out in the wrong state (no
/// tables, or tables for another geometry's grid) degrades to a typed
/// [`ConvError::PlanState`] — the §9 degradation ladder turns that into a
/// failed-execution status instead of aborting the worker.
fn checked_tables(
    tables: &Option<((usize, usize), FftTables, FftTables)>,
    fh: usize,
    fw: usize,
) -> Result<(&FftTables, &FftTables), ConvError> {
    match tables {
        Some((dims, th, tw)) if *dims == (fh, fw) => Ok((th, tw)),
        Some(_) => Err(ConvError::PlanState {
            engine: EngineKind::Fft,
            reason: "FFT plan tables were built for a different grid",
        }),
        None => Err(ConvError::PlanState {
            engine: EngineKind::Fft,
            reason: "FFT plan has no precomputed tables",
        }),
    }
}

/// Load a (h × w) real image into the top-left of an (fh × fw) complex grid.
fn load(grid: &mut [C32], img: &[f32], h: usize, w: usize, fw: usize) {
    grid.fill(C32::default());
    for i in 0..h {
        for j in 0..w {
            grid[i * fw + j].re = img[i * w + j];
        }
    }
}

/// Grid `i` of a flat spectra buffer.
fn spec(buf: &[C32], i: usize, gl: usize) -> &[C32] {
    &buf[i * gl..(i + 1) * gl]
}

/// Mutable grid `i` of a flat spectra buffer.
fn spec_mut(buf: &mut [C32], i: usize, gl: usize) -> &mut [C32] {
    &mut buf[i * gl..(i + 1) * gl]
}

/// `y = alpha * conv(x, w) + beta * y` via the correlation theorem.
///
/// The `ws` slice is checked against [`workspace_floats`] to mirror the
/// cuDNN contract even though grids are staged through a typed buffer.
pub fn forward(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) -> Result<(), ConvError> {
    forward_with_plan(g, x, w, y, alpha, beta, ws, &mut FftPlan::default())
}

/// [`forward`] with a reusable plan: FFT tables, scratch grids, and the
/// filter spectra (revalidated by fingerprint) persist across calls, so
/// every micro-batch after the first skips the `K*C` filter transforms.
/// Bit-identical to the plan-free path.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn forward_with_plan(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut FftPlan,
) -> Result<(), ConvError> {
    assert_supported(g);
    assert!(
        ws.len() >= workspace_floats(g, FftOp::Forward),
        "workspace too small"
    );
    let (fh, fw) = grid(g, FftOp::Forward);
    let gl = fh * fw;
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let (k, r, s) = (g.filter.k, g.filter.r, g.filter.s);
    let (ho, wo) = (g.out_h(), g.out_w());
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(y.len(), g.output().len(), "y buffer mismatch");

    plan.ensure_tables(fh, fw);
    let w_fp = fingerprint_f32(w);
    let refresh_b = plan.b_fp != Some(w_fp) || plan.b_spec.len() != k * c * gl;
    let FftPlan {
        tables,
        col,
        a_spec,
        b_spec,
        acc,
        b_fp,
    } = plan;
    let (th, tw) = checked_tables(tables, fh, fw)?;

    // Spectra of every input channel-plane (per-call) ...
    a_spec.resize(n * c * gl, C32::default());
    for ni in 0..n {
        for ci in 0..c {
            let img = &x[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
            let gbuf = spec_mut(a_spec, ni * c + ci, gl);
            load(gbuf, img, h, wd, fw);
            crate::fft::fft2d_with_tables(gbuf, tw, th, false, col);
        }
    }
    // ... and of every filter plane (reused while the filter bits hold).
    if refresh_b {
        b_spec.resize(k * c * gl, C32::default());
        for ki in 0..k {
            for ci in 0..c {
                let img = &w[(ki * c + ci) * r * s..(ki * c + ci + 1) * r * s];
                let gbuf = spec_mut(b_spec, ki * c + ci, gl);
                load(gbuf, img, r, s, fw);
                crate::fft::fft2d_with_tables(gbuf, tw, th, false, col);
            }
        }
        *b_fp = Some(w_fp);
    }

    acc.resize(gl, C32::default());
    for ni in 0..n {
        for ki in 0..k {
            acc.fill(C32::default());
            for ci in 0..c {
                let xg = spec(a_spec, ni * c + ci, gl);
                let wg = spec(b_spec, ki * c + ci, gl);
                for (a, (xv, wv)) in acc.iter_mut().zip(xg.iter().zip(wg)) {
                    *a = a.add(xv.mul_conj(*wv));
                }
            }
            crate::fft::fft2d_with_tables(acc, tw, th, true, col);
            for p in 0..ho {
                let ti = (p + fh - g.pad_h) % fh; // (p - pad) mod fh
                for q in 0..wo {
                    let tj = (q + fw - g.pad_w) % fw;
                    let o = ((ni * k + ki) * ho + p) * wo + q;
                    y[o] = alpha * acc[ti * fw + tj].re + beta * y[o];
                }
            }
        }
    }
    Ok(())
}

/// `dx = alpha * grad_x + beta * dx` via the convolution theorem.
pub fn backward_data(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) -> Result<(), ConvError> {
    backward_data_with_plan(g, dy, w, dx, alpha, beta, ws, &mut FftPlan::default())
}

/// [`backward_data`] with a reusable plan (tables, scratch, filter spectra).
/// Bit-identical to the plan-free path.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn backward_data_with_plan(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut FftPlan,
) -> Result<(), ConvError> {
    assert_supported(g);
    assert!(
        ws.len() >= workspace_floats(g, FftOp::BackwardData),
        "workspace too small"
    );
    let (fh, fw) = grid(g, FftOp::BackwardData);
    let gl = fh * fw;
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let (k, r, s) = (g.filter.k, g.filter.r, g.filter.s);
    let (ho, wo) = (g.out_h(), g.out_w());
    assert_eq!(dy.len(), g.output().len(), "dy buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(dx.len(), g.input.len(), "dx buffer mismatch");

    plan.ensure_tables(fh, fw);
    let w_fp = fingerprint_f32(w);
    let refresh_b = plan.b_fp != Some(w_fp) || plan.b_spec.len() != k * c * gl;
    let FftPlan {
        tables,
        col,
        a_spec,
        b_spec,
        acc,
        b_fp,
    } = plan;
    let (th, tw) = checked_tables(tables, fh, fw)?;

    a_spec.resize(n * k * gl, C32::default());
    for ni in 0..n {
        for ki in 0..k {
            let img = &dy[(ni * k + ki) * ho * wo..(ni * k + ki + 1) * ho * wo];
            let gbuf = spec_mut(a_spec, ni * k + ki, gl);
            load(gbuf, img, ho, wo, fw);
            crate::fft::fft2d_with_tables(gbuf, tw, th, false, col);
        }
    }
    if refresh_b {
        b_spec.resize(k * c * gl, C32::default());
        for ki in 0..k {
            for ci in 0..c {
                let img = &w[(ki * c + ci) * r * s..(ki * c + ci + 1) * r * s];
                let gbuf = spec_mut(b_spec, ki * c + ci, gl);
                load(gbuf, img, r, s, fw);
                crate::fft::fft2d_with_tables(gbuf, tw, th, false, col);
            }
        }
        *b_fp = Some(w_fp);
    }

    acc.resize(gl, C32::default());
    for ni in 0..n {
        for ci in 0..c {
            acc.fill(C32::default());
            for ki in 0..k {
                let dg = spec(a_spec, ni * k + ki, gl);
                let wg = spec(b_spec, ki * c + ci, gl);
                for (a, (dv, wv)) in acc.iter_mut().zip(dg.iter().zip(wg)) {
                    *a = a.add(dv.mul(*wv));
                }
            }
            crate::fft::fft2d_with_tables(acc, tw, th, true, col);
            for ih in 0..h {
                let ui = ih + g.pad_h; // < fh by construction
                for iw in 0..wd {
                    let uj = iw + g.pad_w;
                    let o = ((ni * c + ci) * h + ih) * wd + iw;
                    dx[o] = alpha * acc[ui * fw + uj].re + beta * dx[o];
                }
            }
        }
    }
    Ok(())
}

/// `dw = alpha * grad_w + beta * dw` via the correlation theorem, reducing
/// over the batch in the frequency domain.
pub fn backward_filter(
    g: &ConvGeometry,
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) -> Result<(), ConvError> {
    backward_filter_with_plan(g, x, dy, dw, alpha, beta, ws, &mut FftPlan::default())
}

/// [`backward_filter`] with a reusable plan. Both operands vary per call, so
/// only the tables and scratch grids are reused (no spectra caching).
/// Bit-identical to the plan-free path.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn backward_filter_with_plan(
    g: &ConvGeometry,
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut FftPlan,
) -> Result<(), ConvError> {
    assert_supported(g);
    assert!(
        ws.len() >= workspace_floats(g, FftOp::BackwardFilter),
        "workspace too small"
    );
    let (fh, fw) = grid(g, FftOp::BackwardFilter);
    let gl = fh * fw;
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let (k, r, s) = (g.filter.k, g.filter.r, g.filter.s);
    let (ho, wo) = (g.out_h(), g.out_w());
    assert!(
        g.pad_h < ho && g.pad_w < wo,
        "FFT backward-filter requires pad < output size"
    );
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(dy.len(), g.output().len(), "dy buffer mismatch");
    assert_eq!(dw.len(), g.filter.len(), "dw buffer mismatch");

    plan.ensure_tables(fh, fw);
    let FftPlan {
        tables,
        col,
        a_spec,
        b_spec,
        acc,
        b_fp,
    } = plan;
    let (th, tw) = checked_tables(tables, fh, fw)?;
    // Both spectra sets are per-call here; make sure a half-filled cache from
    // a mistakenly shared plan can never alias as valid filter spectra.
    *b_fp = None;

    a_spec.resize(n * c * gl, C32::default());
    for ni in 0..n {
        for ci in 0..c {
            let img = &x[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
            let gbuf = spec_mut(a_spec, ni * c + ci, gl);
            load(gbuf, img, h, wd, fw);
            crate::fft::fft2d_with_tables(gbuf, tw, th, false, col);
        }
    }
    b_spec.resize(n * k * gl, C32::default());
    for ni in 0..n {
        for ki in 0..k {
            let img = &dy[(ni * k + ki) * ho * wo..(ni * k + ki + 1) * ho * wo];
            let gbuf = spec_mut(b_spec, ni * k + ki, gl);
            load(gbuf, img, ho, wo, fw);
            crate::fft::fft2d_with_tables(gbuf, tw, th, false, col);
        }
    }

    acc.resize(gl, C32::default());
    for ki in 0..k {
        for ci in 0..c {
            acc.fill(C32::default());
            for ni in 0..n {
                let xg = spec(a_spec, ni * c + ci, gl);
                let dg = spec(b_spec, ni * k + ki, gl);
                for (a, (xv, dv)) in acc.iter_mut().zip(xg.iter().zip(dg)) {
                    *a = a.add(xv.mul_conj(*dv));
                }
            }
            crate::fft::fft2d_with_tables(acc, tw, th, true, col);
            for ri in 0..r {
                let ti = (ri + fh - g.pad_h) % fh;
                for si in 0..s {
                    let tj = (si + fw - g.pad_w) % fw;
                    let o = ((ki * c + ci) * r + ri) * s + si;
                    dw[o] = alpha * acc[ti * fw + tj].re + beta * dw[o];
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use ucudnn_tensor::{assert_all_close, FilterShape, Shape4, Tensor};

    fn geoms() -> Vec<ConvGeometry> {
        vec![
            ConvGeometry::with_square(Shape4::new(2, 3, 8, 8), FilterShape::new(4, 3, 3, 3), 1, 1),
            ConvGeometry::with_square(Shape4::new(2, 2, 9, 9), FilterShape::new(3, 2, 5, 5), 2, 1),
            ConvGeometry::with_square(Shape4::new(1, 1, 6, 10), FilterShape::new(2, 1, 3, 3), 0, 1),
            // AlexNet conv2 shape (scaled down in batch) — the paper's pet layer.
            ConvGeometry::with_square(
                Shape4::new(2, 8, 27, 27),
                FilterShape::new(4, 8, 5, 5),
                2,
                1,
            ),
        ]
    }

    #[test]
    fn forward_matches_direct() {
        for g in geoms() {
            let x = Tensor::random(g.input, 1);
            let w = Tensor::random(g.filter.as_shape4(), 2);
            let mut y_ref = Tensor::zeros(g.output());
            direct::forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut y = Tensor::zeros(g.output());
            let mut ws = vec![0.0; workspace_floats(&g, FftOp::Forward)];
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            )
            .unwrap();
            assert_all_close(&y_ref, &y, 2e-3);
        }
    }

    #[test]
    fn backward_data_matches_direct() {
        for g in geoms() {
            let dy = Tensor::random(g.output(), 3);
            let w = Tensor::random(g.filter.as_shape4(), 4);
            let mut dx_ref = Tensor::zeros(g.input);
            direct::backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut dx = Tensor::zeros(g.input);
            let mut ws = vec![0.0; workspace_floats(&g, FftOp::BackwardData)];
            backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            )
            .unwrap();
            assert_all_close(&dx_ref, &dx, 2e-3);
        }
    }

    #[test]
    fn backward_filter_matches_direct() {
        for g in geoms() {
            let x = Tensor::random(g.input, 5);
            let dy = Tensor::random(g.output(), 6);
            let mut dw_ref = Tensor::zeros(g.filter.as_shape4());
            direct::backward_filter(
                &g,
                x.as_slice(),
                dy.as_slice(),
                dw_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut dw = Tensor::zeros(g.filter.as_shape4());
            let mut ws = vec![0.0; workspace_floats(&g, FftOp::BackwardFilter)];
            backward_filter(
                &g,
                x.as_slice(),
                dy.as_slice(),
                dw.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            )
            .unwrap();
            assert_all_close(&dw_ref, &dw, 5e-3);
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 7);
        let w = Tensor::random(g.filter.as_shape4(), 8);
        let init = Tensor::random(g.output(), 9);
        let mut y_ref = init.clone();
        direct::forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y_ref.as_mut_slice(),
            0.5,
            2.0,
        );
        let mut y = init.clone();
        let mut ws = vec![0.0; workspace_floats(&g, FftOp::Forward)];
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            0.5,
            2.0,
            &mut ws,
        )
        .unwrap();
        assert_all_close(&y_ref, &y, 2e-3);
    }

    #[test]
    fn warm_plan_is_bit_identical_and_skips_filter_transforms() {
        for g in geoms() {
            let x = Tensor::random(g.input, 31);
            let w = Tensor::random(g.filter.as_shape4(), 32);
            let dy = Tensor::random(g.output(), 33);
            let mut ws = vec![0.0; workspace_floats(&g, FftOp::Forward)];

            let mut cold = Tensor::zeros(g.output());
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                cold.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            )
            .unwrap();

            let mut plan = FftPlan::default();
            for _ in 0..3 {
                let mut warm = Tensor::zeros(g.output());
                forward_with_plan(
                    &g,
                    x.as_slice(),
                    w.as_slice(),
                    warm.as_mut_slice(),
                    1.0,
                    0.0,
                    &mut ws,
                    &mut plan,
                )
                .unwrap();
                for (a, b) in cold.as_slice().iter().zip(warm.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "plan path diverged ({g})");
                }
            }
            assert!(plan.bytes() > 0, "warm plan should hold cached state");

            // Backward-data with its own plan, same bit-identity contract.
            let mut ws = vec![0.0; workspace_floats(&g, FftOp::BackwardData)];
            let mut cold_dx = Tensor::zeros(g.input);
            backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                cold_dx.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            )
            .unwrap();
            let mut plan = FftPlan::default();
            for _ in 0..2 {
                let mut warm_dx = Tensor::zeros(g.input);
                backward_data_with_plan(
                    &g,
                    dy.as_slice(),
                    w.as_slice(),
                    warm_dx.as_mut_slice(),
                    1.0,
                    0.0,
                    &mut ws,
                    &mut plan,
                )
                .unwrap();
                for (a, b) in cold_dx.as_slice().iter().zip(warm_dx.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "bwd-data plan diverged ({g})");
                }
            }
        }
    }

    #[test]
    fn plan_revalidates_on_filter_update() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 41);
        let w1 = Tensor::random(g.filter.as_shape4(), 42);
        let w2 = Tensor::random(g.filter.as_shape4(), 43);
        let mut ws = vec![0.0; workspace_floats(&g, FftOp::Forward)];
        let mut plan = FftPlan::default();
        // Warm the plan on w1, then run with w2: the fingerprint must force a
        // re-transform, matching a cold w2 run exactly.
        let mut scratch = Tensor::zeros(g.output());
        forward_with_plan(
            &g,
            x.as_slice(),
            w1.as_slice(),
            scratch.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
            &mut plan,
        )
        .unwrap();
        let mut cold = Tensor::zeros(g.output());
        forward(
            &g,
            x.as_slice(),
            w2.as_slice(),
            cold.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        )
        .unwrap();
        let mut warm = Tensor::zeros(g.output());
        forward_with_plan(
            &g,
            x.as_slice(),
            w2.as_slice(),
            warm.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
            &mut plan,
        )
        .unwrap();
        for (a, b) in cold.as_slice().iter().zip(warm.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits(), "stale filter spectra reused");
        }
    }

    #[test]
    fn missing_or_mismatched_tables_degrade_not_panic() {
        // A plan checked out in the wrong state must surface a typed
        // PlanState error (the degradation ladder's input), never panic.
        let err = checked_tables(&None, 8, 8).unwrap_err();
        assert!(matches!(
            err,
            ConvError::PlanState {
                engine: EngineKind::Fft,
                ..
            }
        ));
        assert!(err.to_string().contains("no precomputed tables"));

        let mut plan = FftPlan::default();
        plan.ensure_tables(8, 8);
        assert!(checked_tables(&plan.tables, 8, 8).is_ok());
        let err = checked_tables(&plan.tables, 16, 16).unwrap_err();
        assert!(err.to_string().contains("different grid"));
    }

    #[test]
    fn rejects_strided_geometry() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 8, 8), FilterShape::new(1, 1, 3, 3), 1, 2);
        assert!(!supports(&g));
    }

    #[test]
    fn rejects_oversized_padding() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 8, 8), FilterShape::new(1, 1, 3, 3), 3, 1);
        assert!(!supports(&g));
    }

    #[test]
    fn workspace_grows_with_batch_but_has_fixed_filter_term() {
        // The shape behind Fig. 9: activation spectra scale with N, the
        // filter spectra do not — so per-sample workspace shrinks as the
        // batch grows, and micro-batching shrinks the absolute requirement.
        let base = ConvGeometry::with_square(
            Shape4::new(256, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        );
        let w256 = workspace_floats(&base, FftOp::Forward);
        let w32 = workspace_floats(&base.with_batch(32), FftOp::Forward);
        assert!(w32 < w256);
        // The fixed K*C term means w32 > w256/8.
        assert!(w32 > w256 / 8, "w32={w32} w256={w256}");
    }
}
