//! Direct (seven-loop) convolution — the reference implementation.
//!
//! This is Algorithm 1 of the paper, computed exactly as written, in
//! cross-correlation form (the mode every deep learning framework uses).
//! It needs zero workspace, like cuDNN's `IMPLICIT_GEMM`, and serves as the
//! ground truth every other engine is validated against.

use crate::parallel::par_batch_chunks;
use ucudnn_tensor::ConvGeometry;

/// `y = alpha * conv(x, w) + beta * y`.
///
/// `x` is `(N, C, H, W)`, `w` is `(K, C, R, S)`, `y` is `(N, K, Ho, Wo)`,
/// all dense NCHW/KCRS row-major.
///
/// # Panics
/// Panics when any buffer does not match the geometry.
pub fn forward(g: &ConvGeometry, x: &[f32], w: &[f32], y: &mut [f32], alpha: f32, beta: f32) {
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let (k, r, s) = (g.filter.k, g.filter.r, g.filter.s);
    let (ho, wo) = (g.out_h(), g.out_w());
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(y.len(), g.output().len(), "y buffer mismatch");

    let out_sample = k * ho * wo;
    let in_sample = c * h * wd;
    par_batch_chunks(n, out_sample, y, |lo, hi, ychunk| {
        for ni in lo..hi {
            let xs = &x[ni * in_sample..(ni + 1) * in_sample];
            let ys = &mut ychunk[(ni - lo) * out_sample..(ni - lo + 1) * out_sample];
            for ki in 0..k {
                for p in 0..ho {
                    for q in 0..wo {
                        let mut acc = 0.0f32;
                        for ci in 0..c {
                            for ri in 0..r {
                                let ih = (p * g.stride_h + ri) as isize - g.pad_h as isize;
                                if ih < 0 || ih >= h as isize {
                                    continue;
                                }
                                for si in 0..s {
                                    let iw = (q * g.stride_w + si) as isize - g.pad_w as isize;
                                    if iw < 0 || iw >= wd as isize {
                                        continue;
                                    }
                                    acc += xs[(ci * h + ih as usize) * wd + iw as usize]
                                        * w[((ki * c + ci) * r + ri) * s + si];
                                }
                            }
                        }
                        let o = (ki * ho + p) * wo + q;
                        ys[o] = alpha * acc + beta * ys[o];
                    }
                }
            }
        }
    });
}

/// `dx = alpha * corr_transpose(dy, w) + beta * dx` — the data gradient.
pub fn backward_data(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
) {
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let (k, r, s) = (g.filter.k, g.filter.r, g.filter.s);
    let (ho, wo) = (g.out_h(), g.out_w());
    assert_eq!(dy.len(), g.output().len(), "dy buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(dx.len(), g.input.len(), "dx buffer mismatch");

    let in_sample = c * h * wd;
    let out_sample = k * ho * wo;
    par_batch_chunks(n, in_sample, dx, |lo, hi, dxchunk| {
        for ni in lo..hi {
            let dys = &dy[ni * out_sample..(ni + 1) * out_sample];
            let dxs = &mut dxchunk[(ni - lo) * in_sample..(ni - lo + 1) * in_sample];
            // Scatter form inverted into gather form: for each input element,
            // sum the output positions whose receptive field covers it.
            for ci in 0..c {
                for ih in 0..h {
                    for iw in 0..wd {
                        let mut acc = 0.0f32;
                        for ki in 0..k {
                            for ri in 0..r {
                                let ph = ih + g.pad_h;
                                if ph < ri || !(ph - ri).is_multiple_of(g.stride_h) {
                                    continue;
                                }
                                let p = (ph - ri) / g.stride_h;
                                if p >= ho {
                                    continue;
                                }
                                for si in 0..s {
                                    let pw = iw + g.pad_w;
                                    if pw < si || !(pw - si).is_multiple_of(g.stride_w) {
                                        continue;
                                    }
                                    let q = (pw - si) / g.stride_w;
                                    if q >= wo {
                                        continue;
                                    }
                                    acc += dys[(ki * ho + p) * wo + q]
                                        * w[((ki * c + ci) * r + ri) * s + si];
                                }
                            }
                        }
                        let o = (ci * h + ih) * wd + iw;
                        dxs[o] = alpha * acc + beta * dxs[o];
                    }
                }
            }
        }
    });
}

/// `dw = alpha * grad_w(x, dy) + beta * dw` — the filter gradient.
///
/// With `beta = 1` this is exactly the accumulation mode μ-cuDNN uses to sum
/// filter-gradient contributions across sequential micro-batches.
pub fn backward_filter(
    g: &ConvGeometry,
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    alpha: f32,
    beta: f32,
) {
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let (k, r, s) = (g.filter.k, g.filter.r, g.filter.s);
    let (ho, wo) = (g.out_h(), g.out_w());
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(dy.len(), g.output().len(), "dy buffer mismatch");
    assert_eq!(dw.len(), g.filter.len(), "dw buffer mismatch");

    let in_sample = c * h * wd;
    let out_sample = k * ho * wo;
    // The filter gradient reduces over the batch, so parallelise over the
    // K dimension of dw instead of over samples.
    let per_k = c * r * s;
    par_batch_chunks(k, per_k, dw, |klo, khi, dwchunk| {
        for ki in klo..khi {
            for ci in 0..c {
                for ri in 0..r {
                    for si in 0..s {
                        let mut acc = 0.0f32;
                        for ni in 0..n {
                            let xs = &x[ni * in_sample..(ni + 1) * in_sample];
                            let dys = &dy[ni * out_sample..(ni + 1) * out_sample];
                            for p in 0..ho {
                                let ih = (p * g.stride_h + ri) as isize - g.pad_h as isize;
                                if ih < 0 || ih >= h as isize {
                                    continue;
                                }
                                for q in 0..wo {
                                    let iw = (q * g.stride_w + si) as isize - g.pad_w as isize;
                                    if iw < 0 || iw >= wd as isize {
                                        continue;
                                    }
                                    acc += xs[(ci * h + ih as usize) * wd + iw as usize]
                                        * dys[(ki * ho + p) * wo + q];
                                }
                            }
                        }
                        let o = ((ki - klo) * c + ci) * r * s + ri * s + si;
                        dwchunk[o] = alpha * acc + beta * dwchunk[o];
                    }
                }
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_tensor::{FilterShape, Shape4, Tensor};

    fn small_geom() -> ConvGeometry {
        ConvGeometry::with_square(Shape4::new(2, 3, 6, 6), FilterShape::new(4, 3, 3, 3), 1, 1)
    }

    #[test]
    fn forward_identity_kernel_recovers_input() {
        // A 1x1 kernel with weight 1 on the diagonal channel map copies input.
        let g =
            ConvGeometry::with_square(Shape4::new(1, 2, 4, 4), FilterShape::new(2, 2, 1, 1), 0, 1);
        let x = Tensor::random(g.input, 11);
        let mut w = Tensor::zeros(g.filter.as_shape4());
        w.set(0, 0, 0, 0, 1.0);
        w.set(1, 1, 0, 0, 1.0);
        let mut y = Tensor::zeros(g.output());
        forward(&g, x.as_slice(), w.as_slice(), y.as_mut_slice(), 1.0, 0.0);
        ucudnn_tensor::assert_all_close(&x, &y, 0.0);
    }

    #[test]
    fn forward_known_small_case() {
        // 1x1x3x3 input, 1x1x2x2 kernel, no pad, stride 1.
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 3, 3), FilterShape::new(1, 1, 2, 2), 0, 1);
        let x = Tensor::from_vec(g.input, vec![1., 2., 3., 4., 5., 6., 7., 8., 9.]);
        let w = Tensor::from_vec(g.filter.as_shape4(), vec![1., 0., 0., 1.]);
        let mut y = Tensor::zeros(g.output());
        forward(&g, x.as_slice(), w.as_slice(), y.as_mut_slice(), 1.0, 0.0);
        // Cross-correlation: y[p,q] = x[p,q] + x[p+1,q+1].
        assert_eq!(y.as_slice(), &[1. + 5., 2. + 6., 4. + 8., 5. + 9.]);
    }

    #[test]
    fn forward_beta_accumulates() {
        let g = small_geom();
        let x = Tensor::random(g.input, 1);
        let w = Tensor::random(g.filter.as_shape4(), 2);
        let mut y0 = Tensor::zeros(g.output());
        forward(&g, x.as_slice(), w.as_slice(), y0.as_mut_slice(), 1.0, 0.0);
        let mut y1 = y0.clone();
        forward(&g, x.as_slice(), w.as_slice(), y1.as_mut_slice(), 1.0, 1.0);
        let mut want = y0.clone();
        want.axpby(1.0, &y0, 1.0);
        ucudnn_tensor::assert_all_close(&y1, &want, 1e-6);
    }

    /// Finite-difference check: backward_data must be the adjoint of forward.
    /// <conv(x, w), dy> == <x, conv_bwd_data(dy, w)> for any x, w, dy.
    #[test]
    fn backward_data_is_adjoint_of_forward() {
        for (pad, stride) in [(0usize, 1usize), (1, 1), (2, 2), (1, 3)] {
            let g = ConvGeometry::with_square(
                Shape4::new(2, 3, 8, 8),
                FilterShape::new(4, 3, 3, 3),
                pad,
                stride,
            );
            let x = Tensor::random(g.input, 1);
            let w = Tensor::random(g.filter.as_shape4(), 2);
            let dy = Tensor::random(g.output(), 3);
            let mut y = Tensor::zeros(g.output());
            forward(&g, x.as_slice(), w.as_slice(), y.as_mut_slice(), 1.0, 0.0);
            let mut dx = Tensor::zeros(g.input);
            backward_data(&g, dy.as_slice(), w.as_slice(), dx.as_mut_slice(), 1.0, 0.0);
            let lhs: f64 = y
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            let rhs: f64 = x
                .as_slice()
                .iter()
                .zip(dx.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            assert!(
                (lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0),
                "adjoint mismatch at pad={pad} stride={stride}: {lhs} vs {rhs}"
            );
        }
    }

    /// <conv(x, w), dy> == <w, grad_w(x, dy)> — backward_filter adjoint check.
    #[test]
    fn backward_filter_is_adjoint_in_w() {
        for (pad, stride) in [(0usize, 1usize), (1, 1), (2, 2)] {
            let g = ConvGeometry::with_square(
                Shape4::new(2, 3, 7, 7),
                FilterShape::new(4, 3, 3, 3),
                pad,
                stride,
            );
            let x = Tensor::random(g.input, 4);
            let w = Tensor::random(g.filter.as_shape4(), 5);
            let dy = Tensor::random(g.output(), 6);
            let mut y = Tensor::zeros(g.output());
            forward(&g, x.as_slice(), w.as_slice(), y.as_mut_slice(), 1.0, 0.0);
            let mut dw = Tensor::zeros(g.filter.as_shape4());
            backward_filter(&g, x.as_slice(), dy.as_slice(), dw.as_mut_slice(), 1.0, 0.0);
            let lhs: f64 = y
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            let rhs: f64 = w
                .as_slice()
                .iter()
                .zip(dw.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            assert!(
                (lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0),
                "adjoint mismatch at pad={pad} stride={stride}: {lhs} vs {rhs}"
            );
        }
    }

    #[test]
    fn backward_filter_beta_one_accumulates_micro_batches() {
        // The core μ-cuDNN BackwardFilter claim: splitting the batch and
        // accumulating with beta=1 equals the undivided gradient.
        let g =
            ConvGeometry::with_square(Shape4::new(8, 3, 6, 6), FilterShape::new(4, 3, 3, 3), 1, 1);
        let x = Tensor::random(g.input, 7);
        let dy = Tensor::random(g.output(), 8);
        let mut dw_full = Tensor::zeros(g.filter.as_shape4());
        backward_filter(
            &g,
            x.as_slice(),
            dy.as_slice(),
            dw_full.as_mut_slice(),
            1.0,
            0.0,
        );

        let mut dw_micro = Tensor::zeros(g.filter.as_shape4());
        let mut first = true;
        for (lo, hi) in [(0usize, 3usize), (3, 5), (5, 8)] {
            let mg = g.with_batch(hi - lo);
            backward_filter(
                &mg,
                x.batch_slice(lo, hi),
                dy.batch_slice(lo, hi),
                dw_micro.as_mut_slice(),
                1.0,
                if first { 0.0 } else { 1.0 },
            );
            first = false;
        }
        ucudnn_tensor::assert_all_close(&dw_full, &dw_micro, 1e-4);
    }

    #[test]
    fn forward_micro_batch_equals_undivided() {
        let g =
            ConvGeometry::with_square(Shape4::new(6, 3, 6, 6), FilterShape::new(4, 3, 3, 3), 1, 2);
        let x = Tensor::random(g.input, 9);
        let w = Tensor::random(g.filter.as_shape4(), 10);
        let mut y_full = Tensor::zeros(g.output());
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y_full.as_mut_slice(),
            1.0,
            0.0,
        );

        let mut y_micro = Tensor::zeros(g.output());
        for (lo, hi) in [(0usize, 4usize), (4, 6)] {
            let mg = g.with_batch(hi - lo);
            forward(
                &mg,
                x.batch_slice(lo, hi),
                w.as_slice(),
                y_micro.batch_slice_mut(lo, hi),
                1.0,
                0.0,
            );
        }
        // Bitwise equal: same operations in the same order per sample.
        assert_eq!(y_full.as_slice(), y_micro.as_slice());
    }

    #[test]
    #[should_panic(expected = "x buffer mismatch")]
    fn forward_rejects_wrong_input_size() {
        let g = small_geom();
        let mut y = vec![0.0; g.output().len()];
        forward(&g, &[0.0; 3], &vec![0.0; g.filter.len()], &mut y, 1.0, 0.0);
    }
}
