//! CPU convolution engines for the μ-cuDNN reproduction.
//!
//! Four interchangeable engines compute the same mathematical operation with
//! different algorithm/workspace trade-offs, mirroring cuDNN's algorithm
//! families:
//!
//! | Engine       | cuDNN analogue           | workspace               | constraints |
//! |--------------|--------------------------|-------------------------|-------------|
//! | [`direct`]   | `IMPLICIT_GEMM`          | zero                    | none        |
//! | [`im2col_gemm`] | `GEMM`                | per-sample column matrix| none        |
//! | [`fft_conv`] | `FFT` / `FFT_TILING`     | activation+filter spectra (∝ batch) | stride 1, pad < filter |
//! | [`winograd`] | `WINOGRAD`               | transformed tiles (∝ batch) | 3×3, stride 1, pad ≤ 2; fwd & bwd-data only |
//! | [`winograd_f4`] | `WINOGRAD_NONFUSED`   | transformed 6×6 tiles (∝ batch) | 3×3, stride 1, pad ≤ 2; fwd & bwd-data only |
//!
//! The [`exec`] dispatcher gives the cuDNN-simulation layer one entry point
//! with uniform (alpha, beta, workspace) semantics and explicit
//! `NotSupported` errors, exactly like `cudnnConvolution*` status codes.

pub mod direct;
pub mod fft;
pub mod fft_conv;
pub mod gemm;
pub mod im2col;
pub mod im2col_gemm;
pub mod parallel;
pub mod plan;
pub mod winograd;
pub mod winograd_f4;

pub use plan::EnginePlan;
use ucudnn_tensor::ConvGeometry;

/// Which of the three convolution operations to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvOp {
    /// `y = conv(x, w)`.
    Forward,
    /// `dx = grad_x(dy, w)`.
    BackwardData,
    /// `dw = grad_w(x, dy)`.
    BackwardFilter,
}

impl ConvOp {
    /// All three operations, in the paper's order.
    pub const ALL: [ConvOp; 3] = [
        ConvOp::Forward,
        ConvOp::BackwardData,
        ConvOp::BackwardFilter,
    ];
}

impl core::fmt::Display for ConvOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            ConvOp::Forward => "Forward",
            ConvOp::BackwardData => "BackwardData",
            ConvOp::BackwardFilter => "BackwardFilter",
        };
        f.write_str(s)
    }
}

/// The CPU compute engine behind a cuDNN-level algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EngineKind {
    /// Seven-loop reference convolution, zero workspace.
    Direct,
    /// im2col + GEMM.
    Gemm,
    /// Frequency-domain convolution.
    Fft,
    /// Winograd F(2×2, 3×3) (fused).
    Winograd,
    /// Winograd F(4×4, 3×3) (non-fused, larger tiles).
    WinogradF4,
}

impl EngineKind {
    /// All engines.
    pub const ALL: [EngineKind; 5] = [
        EngineKind::Direct,
        EngineKind::Gemm,
        EngineKind::Fft,
        EngineKind::Winograd,
        EngineKind::WinogradF4,
    ];
}

/// Errors surfaced by [`exec`], mirroring cuDNN status codes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConvError {
    /// The engine cannot run this (op, geometry) combination.
    NotSupported {
        /// Engine that refused.
        engine: EngineKind,
        /// Operation requested.
        op: ConvOp,
        /// Human-readable constraint that failed.
        reason: &'static str,
    },
    /// The provided workspace is smaller than required.
    WorkspaceTooSmall {
        /// Elements required.
        need: usize,
        /// Elements provided.
        got: usize,
    },
    /// A caller-held plan arrived in a state the engine cannot execute
    /// (e.g. an FFT plan without tables for this grid). Callers should
    /// degrade to planless execution rather than abort.
    PlanState {
        /// Engine that refused the plan.
        engine: EngineKind,
        /// Human-readable description of the bad state.
        reason: &'static str,
    },
}

impl core::fmt::Display for ConvError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConvError::NotSupported { engine, op, reason } => {
                write!(f, "{engine:?} does not support {op}: {reason}")
            }
            ConvError::WorkspaceTooSmall { need, got } => {
                write!(f, "workspace too small: need {need} floats, got {got}")
            }
            ConvError::PlanState { engine, reason } => {
                write!(f, "{engine:?} plan unusable: {reason}")
            }
        }
    }
}

impl std::error::Error for ConvError {}

fn support_reason(engine: EngineKind, op: ConvOp, g: &ConvGeometry) -> Option<&'static str> {
    match engine {
        EngineKind::Direct | EngineKind::Gemm => None,
        EngineKind::Fft => {
            if !fft_conv::supports(g) {
                Some("requires unit stride and pad < filter size")
            } else if op == ConvOp::BackwardFilter && (g.pad_h >= g.out_h() || g.pad_w >= g.out_w())
            {
                Some("backward-filter requires pad < output size")
            } else {
                None
            }
        }
        EngineKind::Winograd | EngineKind::WinogradF4 => {
            if !winograd::supports(g) {
                Some("requires 3x3 filter, unit stride, pad <= 2")
            } else if op == ConvOp::BackwardFilter {
                Some("Winograd backward-filter is not implemented on the CPU engines")
            } else {
                None
            }
        }
    }
}

/// True when `engine` can execute `op` on geometry `g`.
pub fn supports(engine: EngineKind, op: ConvOp, g: &ConvGeometry) -> bool {
    support_reason(engine, op, g).is_none()
}

/// Required workspace in `f32` elements for `engine` running `op` on `g`.
/// Returns 0 for unsupported combinations (query-then-check like cuDNN).
pub fn workspace_floats(engine: EngineKind, op: ConvOp, g: &ConvGeometry) -> usize {
    if !supports(engine, op, g) {
        return 0;
    }
    match engine {
        EngineKind::Direct => 0,
        EngineKind::Gemm => im2col_gemm::workspace_floats(g),
        EngineKind::Fft => {
            let fop = match op {
                ConvOp::Forward => fft_conv::FftOp::Forward,
                ConvOp::BackwardData => fft_conv::FftOp::BackwardData,
                ConvOp::BackwardFilter => fft_conv::FftOp::BackwardFilter,
            };
            fft_conv::workspace_floats(g, fop)
        }
        EngineKind::Winograd => match op {
            ConvOp::Forward => winograd::workspace_floats(g),
            ConvOp::BackwardData => winograd::workspace_floats_backward_data(g),
            ConvOp::BackwardFilter => 0,
        },
        EngineKind::WinogradF4 => match op {
            ConvOp::Forward => winograd_f4::workspace_floats(g),
            ConvOp::BackwardData => winograd_f4::workspace_floats_backward_data(g),
            ConvOp::BackwardFilter => 0,
        },
    }
}

/// Execute one convolution operation.
///
/// Buffer roles by op (all dense NCHW/KCRS):
/// * `Forward`:        `a = x`, `b = w`,  `out = y`
/// * `BackwardData`:   `a = dy`, `b = w`, `out = dx`
/// * `BackwardFilter`: `a = x`, `b = dy`, `out = dw`
///
/// `out = alpha * op(a, b) + beta * out` in every case.
#[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
pub fn exec(
    engine: EngineKind,
    op: ConvOp,
    g: &ConvGeometry,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) -> Result<(), ConvError> {
    // Delegating through a fresh plan guarantees the cached and uncached
    // paths are the same code — plans can never change results.
    let mut plan = EnginePlan::for_engine(engine);
    exec_with_plan(engine, op, g, a, b, out, alpha, beta, ws, &mut plan)
}

/// [`exec`] with a caller-held [`EnginePlan`] that caches call-invariant
/// state (packed filter panels, FFT tables and filter spectra, transformed
/// Winograd filters) across invocations. Reusing one plan for a layer's
/// micro-batches — and across training iterations — skips the per-call
/// re-derivation; results are bit-identical to [`exec`].
///
/// The plan variant must match `engine` (pass
/// [`EnginePlan::for_engine`]`(engine)`); a mismatch returns `NotSupported`.
#[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
pub fn exec_with_plan(
    engine: EngineKind,
    op: ConvOp,
    g: &ConvGeometry,
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut EnginePlan,
) -> Result<(), ConvError> {
    if let Some(reason) = support_reason(engine, op, g) {
        return Err(ConvError::NotSupported { engine, op, reason });
    }
    let need = workspace_floats(engine, op, g);
    if ws.len() < need {
        return Err(ConvError::WorkspaceTooSmall {
            need,
            got: ws.len(),
        });
    }
    match (engine, op, plan) {
        (EngineKind::Direct, ConvOp::Forward, EnginePlan::Direct) => {
            direct::forward(g, a, b, out, alpha, beta)
        }
        (EngineKind::Direct, ConvOp::BackwardData, EnginePlan::Direct) => {
            direct::backward_data(g, a, b, out, alpha, beta)
        }
        (EngineKind::Direct, ConvOp::BackwardFilter, EnginePlan::Direct) => {
            direct::backward_filter(g, a, b, out, alpha, beta)
        }
        (EngineKind::Gemm, ConvOp::Forward, EnginePlan::Gemm(p)) => {
            im2col_gemm::forward_with_plan(g, a, b, out, alpha, beta, ws, p)
        }
        (EngineKind::Gemm, ConvOp::BackwardData, EnginePlan::Gemm(p)) => {
            im2col_gemm::backward_data_with_plan(g, a, b, out, alpha, beta, ws, p)
        }
        (EngineKind::Gemm, ConvOp::BackwardFilter, EnginePlan::Gemm(_)) => {
            // Both GEMM operands vary per call here; nothing to cache.
            im2col_gemm::backward_filter(g, a, b, out, alpha, beta, ws)
        }
        (EngineKind::Fft, ConvOp::Forward, EnginePlan::Fft(p)) => {
            return fft_conv::forward_with_plan(g, a, b, out, alpha, beta, ws, p)
        }
        (EngineKind::Fft, ConvOp::BackwardData, EnginePlan::Fft(p)) => {
            return fft_conv::backward_data_with_plan(g, a, b, out, alpha, beta, ws, p)
        }
        (EngineKind::Fft, ConvOp::BackwardFilter, EnginePlan::Fft(p)) => {
            return fft_conv::backward_filter_with_plan(g, a, b, out, alpha, beta, ws, p)
        }
        (EngineKind::Winograd, ConvOp::Forward, EnginePlan::Winograd(p)) => {
            winograd::forward_with_plan(g, a, b, out, alpha, beta, ws, p)
        }
        (EngineKind::Winograd, ConvOp::BackwardData, EnginePlan::Winograd(p)) => {
            winograd::backward_data_with_plan(g, a, b, out, alpha, beta, ws, p)
        }
        (EngineKind::WinogradF4, ConvOp::Forward, EnginePlan::WinogradF4(p)) => {
            winograd_f4::forward_with_plan(g, a, b, out, alpha, beta, ws, p)
        }
        (EngineKind::WinogradF4, ConvOp::BackwardData, EnginePlan::WinogradF4(p)) => {
            winograd_f4::backward_data_with_plan(g, a, b, out, alpha, beta, ws, p)
        }
        (EngineKind::Winograd | EngineKind::WinogradF4, ConvOp::BackwardFilter, _) => {
            unreachable!("rejected above")
        }
        _ => {
            return Err(ConvError::NotSupported {
                engine,
                op,
                reason: "plan variant does not match the engine",
            })
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_tensor::{assert_all_close, FilterShape, Shape4, Tensor};

    fn g33() -> ConvGeometry {
        ConvGeometry::with_square(Shape4::new(2, 3, 8, 8), FilterShape::new(4, 3, 3, 3), 1, 1)
    }

    /// Every supported (engine, op) pair agrees with the direct reference.
    #[test]
    fn all_engines_agree_on_all_ops() {
        let g = g33();
        let x = Tensor::random(g.input, 1);
        let w = Tensor::random(g.filter.as_shape4(), 2);
        let dy = Tensor::random(g.output(), 3);
        for op in ConvOp::ALL {
            let (a, b, out_shape) = match op {
                ConvOp::Forward => (x.as_slice(), w.as_slice(), g.output()),
                ConvOp::BackwardData => (dy.as_slice(), w.as_slice(), g.input),
                ConvOp::BackwardFilter => (x.as_slice(), dy.as_slice(), g.filter.as_shape4()),
            };
            let mut reference = Tensor::zeros(out_shape);
            exec(
                EngineKind::Direct,
                op,
                &g,
                a,
                b,
                reference.as_mut_slice(),
                1.0,
                0.0,
                &mut [],
            )
            .unwrap();
            for engine in EngineKind::ALL {
                if !supports(engine, op, &g) {
                    continue;
                }
                let mut out = Tensor::zeros(out_shape);
                let mut ws = vec![0.0; workspace_floats(engine, op, &g)];
                exec(engine, op, &g, a, b, out.as_mut_slice(), 1.0, 0.0, &mut ws).unwrap();
                assert_all_close(&reference, &out, 5e-3);
            }
        }
    }

    #[test]
    fn unsupported_combinations_error_cleanly() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 8, 8), FilterShape::new(1, 1, 3, 3), 1, 2);
        let x = Tensor::zeros(g.input);
        let w = Tensor::zeros(g.filter.as_shape4());
        let mut y = Tensor::zeros(g.output());
        let err = exec(
            EngineKind::Fft,
            ConvOp::Forward,
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            1.0,
            0.0,
            &mut [],
        )
        .unwrap_err();
        assert!(matches!(
            err,
            ConvError::NotSupported {
                engine: EngineKind::Fft,
                ..
            }
        ));
        assert!(err.to_string().contains("stride"));
    }

    #[test]
    fn workspace_too_small_is_reported_not_panicked() {
        let g = g33();
        let x = Tensor::zeros(g.input);
        let w = Tensor::zeros(g.filter.as_shape4());
        let mut y = Tensor::zeros(g.output());
        let err = exec(
            EngineKind::Gemm,
            ConvOp::Forward,
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            1.0,
            0.0,
            &mut [],
        )
        .unwrap_err();
        match err {
            ConvError::WorkspaceTooSmall { need, got } => {
                assert_eq!(need, im2col_gemm::workspace_floats(&g));
                assert_eq!(got, 0);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    /// A warm plan yields byte-identical output to the plan-free entry point
    /// for every supported (engine, op) pair — the determinism contract the
    /// cuDNN-sim plan cache relies on.
    #[test]
    fn warm_plans_are_bit_identical_across_engines() {
        let g = g33();
        let x = Tensor::random(g.input, 71);
        let w = Tensor::random(g.filter.as_shape4(), 72);
        let dy = Tensor::random(g.output(), 73);
        for engine in EngineKind::ALL {
            let mut plan = EnginePlan::for_engine(engine);
            for op in ConvOp::ALL {
                if !supports(engine, op, &g) {
                    continue;
                }
                let (a, b, out_shape) = match op {
                    ConvOp::Forward => (x.as_slice(), w.as_slice(), g.output()),
                    ConvOp::BackwardData => (dy.as_slice(), w.as_slice(), g.input),
                    ConvOp::BackwardFilter => (x.as_slice(), dy.as_slice(), g.filter.as_shape4()),
                };
                let mut ws = vec![0.0; workspace_floats(engine, op, &g)];
                let mut cold = Tensor::zeros(out_shape);
                exec(engine, op, &g, a, b, cold.as_mut_slice(), 1.0, 0.0, &mut ws).unwrap();
                for round in 0..3 {
                    let mut warm = Tensor::zeros(out_shape);
                    exec_with_plan(
                        engine,
                        op,
                        &g,
                        a,
                        b,
                        warm.as_mut_slice(),
                        1.0,
                        0.0,
                        &mut ws,
                        &mut plan,
                    )
                    .unwrap();
                    for (c, h) in cold.as_slice().iter().zip(warm.as_slice()) {
                        assert_eq!(
                            c.to_bits(),
                            h.to_bits(),
                            "{engine:?}/{op} diverged on round {round}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn mismatched_plan_variant_is_rejected() {
        let g = g33();
        let x = Tensor::zeros(g.input);
        let w = Tensor::zeros(g.filter.as_shape4());
        let mut y = Tensor::zeros(g.output());
        let mut ws = vec![0.0; workspace_floats(EngineKind::Gemm, ConvOp::Forward, &g)];
        let mut plan = EnginePlan::for_engine(EngineKind::Fft);
        let err = exec_with_plan(
            EngineKind::Gemm,
            ConvOp::Forward,
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
            &mut plan,
        )
        .unwrap_err();
        assert!(err.to_string().contains("plan variant"));
    }

    #[test]
    fn winograd_rejects_backward_filter() {
        let g = g33();
        assert!(!supports(EngineKind::Winograd, ConvOp::BackwardFilter, &g));
        assert!(supports(EngineKind::Winograd, ConvOp::BackwardData, &g));
    }

    #[test]
    fn direct_needs_no_workspace() {
        let g = g33();
        for op in ConvOp::ALL {
            assert_eq!(workspace_floats(EngineKind::Direct, op, &g), 0);
        }
    }
}
