//! Per-(engine, op, geometry) execution plans.
//!
//! Every engine re-derives call-invariant state on each invocation: the GEMM
//! engine packs the filter panels, the FFT engine rebuilds twiddle and
//! bit-reversal tables and re-transforms the filter spectra, the Winograd
//! engines re-transform (and re-pack) the filters. A [`EnginePlan`] owns that
//! state so it can be derived once and reused — across the micro-batches of
//! one layer execution (the filter operand is identical for all of them, the
//! packed-weight analogue of WR's workspace reuse) and across training
//! iterations (the cuDNN-simulation layer keys plans by geometry and keeps
//! them in an LRU cache).
//!
//! Filter-dependent state is revalidated by a cheap 64-bit FNV fingerprint
//! of the filter bits: within an iteration every micro-batch hits; after an
//! SGD step the fingerprint changes and the state is re-derived once.
//! Plans never change numerical results — the cached state is bit-identical
//! to what the uncached path would recompute, so execution with and without
//! plans (or with a cold vs. warm plan) produces byte-identical outputs.

use crate::fft::{FftTables, C32};
use crate::gemm::{pack_a, PackedA, Trans};
use crate::EngineKind;

/// 64-bit FNV-1a-style fingerprint over the raw bits of an `f32` slice.
/// Used to revalidate filter-derived plan state; collisions only cost
/// correctness if two distinct filters collide *and* share a geometry key,
/// which FNV makes vanishingly unlikely for non-adversarial training data.
pub fn fingerprint_f32(data: &[f32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in data {
        h = (h ^ u64::from(v.to_bits())).wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Cached state for the im2col+GEMM engine: the filter packed as the `A`
/// operand of the forward (`W`, `K x CRS`) and backward-data (`Wᵀ`,
/// `CRS x K`) GEMMs.
#[derive(Debug, Default)]
pub struct GemmPlan {
    fp: Option<u64>,
    fwd: Option<PackedA>,
    bwd: Option<PackedA>,
}

impl GemmPlan {
    /// Drop filter-derived state when the filter bits changed.
    fn revalidate(&mut self, w: &[f32]) {
        let fp = fingerprint_f32(w);
        if self.fp != Some(fp) {
            self.fp = Some(fp);
            self.fwd = None;
            self.bwd = None;
        }
    }

    /// Packed `W` (`K x CRS`) for the forward GEMM, repacking only when the
    /// filter bits changed since the last call. A plan checked out with the
    /// wrong shape (or for the wrong direction) is repacked in place rather
    /// than trusted — there is no panicking checkout path.
    pub(crate) fn packed_forward(&mut self, k: usize, crs: usize, w: &[f32]) -> &PackedA {
        self.revalidate(w);
        if self.fwd.as_ref().is_none_or(|p| p.m() != k || p.k() != crs) {
            self.fwd = None;
        }
        self.fwd.get_or_insert_with(|| pack_a(Trans::No, k, crs, w))
    }

    /// Packed `Wᵀ` (`CRS x K`) for the backward-data GEMM.
    pub(crate) fn packed_backward_data(&mut self, crs: usize, k: usize, w: &[f32]) -> &PackedA {
        self.revalidate(w);
        if self.bwd.as_ref().is_none_or(|p| p.m() != crs || p.k() != k) {
            self.bwd = None;
        }
        self.bwd
            .get_or_insert_with(|| pack_a(Trans::Yes, crs, k, w))
    }

    /// Heap bytes held.
    pub fn bytes(&self) -> usize {
        self.fwd.as_ref().map_or(0, PackedA::bytes) + self.bwd.as_ref().map_or(0, PackedA::bytes)
    }
}

/// Cached state for the FFT engine: twiddle/bit-reversal tables for the
/// transform grid, reusable complex scratch, and — for forward and
/// backward-data, whose `b` operand is the filter — the filter spectra.
#[derive(Debug, Default)]
pub struct FftPlan {
    /// Tables for the row (width `fw`) and column (height `fh`) transforms,
    /// tagged with the grid they were built for.
    pub(crate) tables: Option<((usize, usize), FftTables, FftTables)>,
    /// Column-gather scratch for the 2-D transforms.
    pub(crate) col: Vec<C32>,
    /// Spectra of the per-call operand (activations / gradients).
    pub(crate) a_spec: Vec<C32>,
    /// Spectra of the reusable operand (filter), cached under `b_fp`.
    pub(crate) b_spec: Vec<C32>,
    /// Product accumulator grid.
    pub(crate) acc: Vec<C32>,
    /// Fingerprint of the filter bits `b_spec` was derived from, when valid.
    pub(crate) b_fp: Option<u64>,
}

impl FftPlan {
    /// Make sure tables exist for an `fh x fw` grid, rebuilding only when
    /// the grid changed (callers then borrow `self.tables` directly so the
    /// scratch fields stay independently borrowable).
    pub(crate) fn ensure_tables(&mut self, fh: usize, fw: usize) {
        if self.tables.as_ref().is_none_or(|(g, ..)| *g != (fh, fw)) {
            self.tables = Some(((fh, fw), FftTables::new(fh), FftTables::new(fw)));
            self.b_fp = None; // spectra were for the old grid
        }
    }

    /// Heap bytes held (vector capacities, not lengths — the scratch grows
    /// to the largest micro-batch and stays).
    pub fn bytes(&self) -> usize {
        let c32 = core::mem::size_of::<C32>();
        let tables = self
            .tables
            .as_ref()
            .map_or(0, |(_, th, tw)| th.bytes() + tw.bytes());
        tables
            + (self.col.capacity()
                + self.a_spec.capacity()
                + self.b_spec.capacity()
                + self.acc.capacity())
                * c32
    }
}

/// Which use of a Winograd plan a checkout is for. Forward transforms the
/// filter as stored; backward-data transforms the rotated, channel-transposed
/// filter — different bits, different fingerprint, so the two directions get
/// separate slots instead of thrashing (or worse, serving) each other.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum WinogradDir {
    /// Forward convolution on the filter as stored.
    Fwd,
    /// Backward-data on the flipped filter.
    Bwd,
}

/// One direction's cached state: the transformed filter `U`, packed per ξ as
/// the `A` operand of the batched per-ξ GEMM. `tiles` is 16 for F(2×2, 3×3)
/// and 36 for F(4×4, 3×3).
#[derive(Debug, Default)]
struct WinogradSlot {
    fp: Option<u64>,
    tiles: usize,
    u_packed: Vec<PackedA>,
}

impl WinogradSlot {
    fn packed_u(
        &mut self,
        tiles: usize,
        k: usize,
        c: usize,
        w: &[f32],
        transform: impl FnOnce(&mut [f32]),
    ) -> &[PackedA] {
        let fp = fingerprint_f32(w);
        let stale = self.fp != Some(fp)
            || self.tiles != tiles
            || self.u_packed.len() != tiles
            || self
                .u_packed
                .first()
                .is_some_and(|p| p.m() != k || p.k() != c);
        if stale {
            let mut u = vec![0.0f32; tiles * k * c];
            transform(&mut u);
            self.u_packed = (0..tiles)
                .map(|xi| pack_a(Trans::No, k, c, &u[xi * k * c..(xi + 1) * k * c]))
                .collect();
            self.fp = Some(fp);
            self.tiles = tiles;
        }
        &self.u_packed
    }

    fn bytes(&self) -> usize {
        self.u_packed.iter().map(PackedA::bytes).sum()
    }
}

/// Cached state for the Winograd engines, one [`WinogradSlot`] per direction.
/// A plan checked out for the "wrong" direction simply fills the other slot —
/// every checkout path degrades to re-deriving state, never to a panic.
#[derive(Debug, Default)]
pub struct WinogradPlan {
    fwd: WinogradSlot,
    bwd: WinogradSlot,
}

impl WinogradPlan {
    /// Packed `U[ξ]` panels for a filter in direction `dir`, re-deriving them
    /// via `transform` (which must fill a `tiles*k*c` buffer in ξ-major
    /// `[ξ][k][c]` layout) only when the filter bits changed.
    pub(crate) fn packed_u(
        &mut self,
        dir: WinogradDir,
        tiles: usize,
        k: usize,
        c: usize,
        w: &[f32],
        transform: impl FnOnce(&mut [f32]),
    ) -> &[PackedA] {
        let slot = match dir {
            WinogradDir::Fwd => &mut self.fwd,
            WinogradDir::Bwd => &mut self.bwd,
        };
        slot.packed_u(tiles, k, c, w, transform)
    }

    /// Heap bytes held across both direction slots (LRU byte accounting).
    pub fn bytes(&self) -> usize {
        self.fwd.bytes() + self.bwd.bytes()
    }
}

/// The cached execution state of one (engine, op, geometry) key. Constructed
/// empty; engines lazily populate it on first use and revalidate
/// filter-derived entries by fingerprint.
#[derive(Debug)]
pub enum EnginePlan {
    /// The direct engine has no reusable state.
    Direct,
    /// im2col+GEMM packed filter panels.
    Gemm(GemmPlan),
    /// FFT tables, scratch grids, and filter spectra.
    Fft(FftPlan),
    /// F(2×2, 3×3) packed transformed filters.
    Winograd(WinogradPlan),
    /// F(4×4, 3×3) packed transformed filters.
    WinogradF4(WinogradPlan),
}

impl EnginePlan {
    /// An empty plan for `engine`.
    pub fn for_engine(engine: EngineKind) -> Self {
        match engine {
            EngineKind::Direct => EnginePlan::Direct,
            EngineKind::Gemm => EnginePlan::Gemm(GemmPlan::default()),
            EngineKind::Fft => EnginePlan::Fft(FftPlan::default()),
            EngineKind::Winograd => EnginePlan::Winograd(WinogradPlan::default()),
            EngineKind::WinogradF4 => EnginePlan::WinogradF4(WinogradPlan::default()),
        }
    }

    /// Heap bytes held by the cached state (for LRU byte accounting).
    pub fn bytes(&self) -> usize {
        match self {
            EnginePlan::Direct => 0,
            EnginePlan::Gemm(p) => p.bytes(),
            EnginePlan::Fft(p) => p.bytes(),
            EnginePlan::Winograd(p) | EnginePlan::WinogradF4(p) => p.bytes(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_distinguishes_values_and_orders() {
        let a = [1.0f32, 2.0, 3.0];
        let b = [1.0f32, 2.0, 4.0];
        let c = [3.0f32, 2.0, 1.0];
        assert_eq!(fingerprint_f32(&a), fingerprint_f32(&a));
        assert_ne!(fingerprint_f32(&a), fingerprint_f32(&b));
        assert_ne!(fingerprint_f32(&a), fingerprint_f32(&c));
        // 0.0 and -0.0 have different bits — fingerprint sees raw bits.
        assert_ne!(fingerprint_f32(&[0.0]), fingerprint_f32(&[-0.0]));
    }

    #[test]
    fn gemm_plan_repacks_only_on_filter_change() {
        let w1 = vec![1.0f32; 12];
        let w2 = vec![2.0f32; 12];
        let mut plan = GemmPlan::default();
        let p1 = plan.packed_forward(3, 4, &w1) as *const PackedA;
        let p1b = plan.packed_forward(3, 4, &w1) as *const PackedA;
        assert_eq!(p1, p1b, "unchanged filter must not repack");
        plan.packed_forward(3, 4, &w2);
        assert!(plan.bytes() > 0);
        // Changing the filter invalidates both directions.
        plan.packed_backward_data(4, 3, &w2);
        let before = plan.bytes();
        plan.packed_forward(3, 4, &w1);
        assert!(plan.bytes() < before, "stale backward pack must be dropped");
    }

    #[test]
    fn gemm_plan_survives_wrong_shape_checkout() {
        // A plan checked out with a mismatched shape (e.g. reused across
        // geometries or directions) must repack, not panic.
        let w = vec![1.0f32; 24];
        let mut plan = GemmPlan::default();
        plan.packed_forward(4, 6, &w);
        let p = plan.packed_forward(2, 12, &w);
        assert_eq!((p.m(), p.k()), (2, 12));
        let p = plan.packed_backward_data(12, 2, &w);
        assert_eq!((p.m(), p.k()), (12, 2));
    }

    #[test]
    fn winograd_plan_keeps_both_directions_warm() {
        // Forward and backward-data transform different filter bits; with
        // per-direction slots, alternating directions must not thrash.
        let wf = vec![1.0f32; 2 * 3 * 9];
        let wb = vec![2.0f32; 3 * 2 * 9];
        let mut plan = WinogradPlan::default();
        let mut derived = 0u32;
        for _ in 0..3 {
            plan.packed_u(WinogradDir::Fwd, 16, 2, 3, &wf, |u| {
                derived += 1;
                u.fill(1.0);
            });
            plan.packed_u(WinogradDir::Bwd, 16, 3, 2, &wb, |u| {
                derived += 1;
                u.fill(2.0);
            });
        }
        assert_eq!(derived, 2, "each direction derives once, then stays warm");
        assert!(plan.bytes() > 0);
    }

    #[test]
    fn engine_plan_variants_report_bytes() {
        for e in EngineKind::ALL {
            let plan = EnginePlan::for_engine(e);
            assert_eq!(plan.bytes(), 0, "fresh plans hold no heap state");
        }
    }
}
