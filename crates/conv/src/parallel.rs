//! Batch-parallel execution helper.
//!
//! The mini-batch loop of a convolution has no cross-sample dependencies
//! (the observation μ-cuDNN itself is built on), so the CPU engines can run
//! disjoint batch ranges on scoped threads. Each worker gets an exclusive
//! `&mut` slice of the output, so the parallelism is data-race free by
//! construction.

use std::num::NonZeroUsize;

/// Number of worker threads to use for a batch of `n` samples.
fn worker_count(n: usize) -> usize {
    let hw = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1);
    hw.min(n).max(1)
}

/// Run `body(batch_lo, batch_hi, out_chunk)` over disjoint, contiguous batch
/// ranges in parallel. `out` must have exactly `n * sample_len` elements; the
/// chunk passed to `body` covers samples `[batch_lo, batch_hi)`.
///
/// Falls back to a single inline call for tiny batches so tests and
/// micro-batches of size 1 don't pay thread-spawn costs.
pub fn par_batch_chunks<F>(n: usize, sample_len: usize, out: &mut [f32], body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    assert_eq!(
        out.len(),
        n * sample_len,
        "output length must be n * sample_len"
    );
    if n == 0 {
        return;
    }
    let workers = worker_count(n);
    if workers == 1 || n < 4 {
        body(0, n, out);
        return;
    }
    // Split the batch into `workers` nearly-equal contiguous ranges.
    let base = n / workers;
    let extra = n % workers;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut lo = 0;
        for widx in 0..workers {
            let take = base + usize::from(widx < extra);
            let (chunk, tail) = rest.split_at_mut(take * sample_len);
            rest = tail;
            let hi = lo + take;
            let body = &body;
            scope.spawn(move || body(lo, hi, chunk));
            lo = hi;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_sample_exactly_once() {
        let n = 37;
        let sample_len = 5;
        let mut out = vec![0.0f32; n * sample_len];
        par_batch_chunks(n, sample_len, &mut out, |lo, hi, chunk| {
            assert_eq!(chunk.len(), (hi - lo) * sample_len);
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (lo * sample_len + i) as f32;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(
                *v, i as f32,
                "sample element {i} touched wrong number of times"
            );
        }
    }

    #[test]
    fn handles_empty_batch() {
        let mut out: Vec<f32> = vec![];
        par_batch_chunks(0, 7, &mut out, |_, _, _| panic!("must not be called"));
    }

    #[test]
    fn handles_single_sample() {
        let mut out = vec![0.0f32; 3];
        par_batch_chunks(1, 3, &mut out, |lo, hi, chunk| {
            assert_eq!((lo, hi), (0, 1));
            chunk.fill(2.0);
        });
        assert_eq!(out, vec![2.0; 3]);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn rejects_bad_output_length() {
        let mut out = vec![0.0f32; 5];
        par_batch_chunks(2, 3, &mut out, |_, _, _| {});
    }
}
