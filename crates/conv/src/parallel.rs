//! Batch-parallel execution helper.
//!
//! The mini-batch loop of a convolution has no cross-sample dependencies
//! (the observation μ-cuDNN itself is built on), so the CPU engines can run
//! disjoint batch ranges on scoped threads. Each worker gets an exclusive
//! `&mut` slice of the output, so the parallelism is data-race free by
//! construction.

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Hardware parallelism, probed once per process (`available_parallelism`
/// takes a syscall on some platforms — too hot for a per-GEMM query).
fn hardware_threads() -> usize {
    static HW: OnceLock<usize> = OnceLock::new();
    *HW.get_or_init(|| {
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    })
}

/// Process-wide execution-thread cap: 0 = unset (use `UCUDNN_EXEC_THREADS`
/// or the hardware count).
static THREAD_CAP: AtomicUsize = AtomicUsize::new(0);

/// Cap from the `UCUDNN_EXEC_THREADS` environment variable, read once.
fn env_thread_cap() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("UCUDNN_EXEC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&v| v > 0)
    })
}

/// Override the execution-thread cap programmatically (e.g. from tests or a
/// framework sweep). `Some(t)` caps workers at `t`; `None` restores the
/// default (`UCUDNN_EXEC_THREADS` env var, else hardware parallelism).
/// Returns the previous override. Process-global, like the env var.
pub fn set_thread_cap(cap: Option<usize>) -> Option<usize> {
    let prev = THREAD_CAP.swap(cap.unwrap_or(0), Ordering::SeqCst);
    (prev > 0).then_some(prev)
}

/// Effective maximum number of execution worker threads: the programmatic
/// override, else `UCUDNN_EXEC_THREADS`, else hardware parallelism.
pub fn max_workers() -> usize {
    let cap = THREAD_CAP.load(Ordering::SeqCst);
    if cap > 0 {
        return cap;
    }
    env_thread_cap().unwrap_or_else(hardware_threads)
}

/// Number of worker threads to use for a batch of `n` samples.
fn worker_count(n: usize) -> usize {
    max_workers().min(n).max(1)
}

/// Run `body(batch_lo, batch_hi, out_chunk)` over disjoint, contiguous batch
/// ranges in parallel. `out` must have exactly `n * sample_len` elements; the
/// chunk passed to `body` covers samples `[batch_lo, batch_hi)`.
///
/// Falls back to a single inline call for tiny batches so tests and
/// micro-batches of size 1 don't pay thread-spawn costs.
pub fn par_batch_chunks<F>(n: usize, sample_len: usize, out: &mut [f32], body: F)
where
    F: Fn(usize, usize, &mut [f32]) + Sync,
{
    assert_eq!(
        out.len(),
        n * sample_len,
        "output length must be n * sample_len"
    );
    if n == 0 {
        return;
    }
    let workers = worker_count(n);
    if workers == 1 || n < 4 {
        body(0, n, out);
        return;
    }
    // Split the batch into `workers` nearly-equal contiguous ranges.
    let base = n / workers;
    let extra = n % workers;
    std::thread::scope(|scope| {
        let mut rest = out;
        let mut lo = 0;
        for widx in 0..workers {
            let take = base + usize::from(widx < extra);
            let (chunk, tail) = rest.split_at_mut(take * sample_len);
            rest = tail;
            let hi = lo + take;
            let body = &body;
            scope.spawn(move || body(lo, hi, chunk));
            lo = hi;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_sample_exactly_once() {
        let n = 37;
        let sample_len = 5;
        let mut out = vec![0.0f32; n * sample_len];
        par_batch_chunks(n, sample_len, &mut out, |lo, hi, chunk| {
            assert_eq!(chunk.len(), (hi - lo) * sample_len);
            for (i, v) in chunk.iter_mut().enumerate() {
                *v += (lo * sample_len + i) as f32;
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(
                *v, i as f32,
                "sample element {i} touched wrong number of times"
            );
        }
    }

    #[test]
    fn handles_empty_batch() {
        let mut out: Vec<f32> = vec![];
        par_batch_chunks(0, 7, &mut out, |_, _, _| panic!("must not be called"));
    }

    #[test]
    fn handles_single_sample() {
        let mut out = vec![0.0f32; 3];
        par_batch_chunks(1, 3, &mut out, |lo, hi, chunk| {
            assert_eq!((lo, hi), (0, 1));
            chunk.fill(2.0);
        });
        assert_eq!(out, vec![2.0; 3]);
    }

    #[test]
    #[should_panic(expected = "output length")]
    fn rejects_bad_output_length() {
        let mut out = vec![0.0f32; 5];
        par_batch_chunks(2, 3, &mut out, |_, _, _| {});
    }

    /// Thread-cap override wins over env/hardware and results stay correct
    /// at every cap (the split only changes chunk boundaries, not coverage).
    #[test]
    fn thread_cap_override_bounds_workers_and_preserves_results() {
        let n = 16;
        let sample_len = 3;
        let run = |cap: Option<usize>| {
            let prev = set_thread_cap(cap);
            let mut out = vec![0.0f32; n * sample_len];
            par_batch_chunks(n, sample_len, &mut out, |lo, _hi, chunk| {
                for (i, v) in chunk.iter_mut().enumerate() {
                    *v = (lo * sample_len + i) as f32 * 2.0;
                }
            });
            set_thread_cap(prev);
            out
        };
        let baseline = run(Some(1));
        for cap in [2, 8, 64] {
            assert_eq!(run(Some(cap)), baseline, "cap={cap} changed results");
        }
        assert!(worker_count(4) <= max_workers());
        let prev = set_thread_cap(Some(2));
        assert_eq!(max_workers(), 2);
        assert_eq!(worker_count(100), 2);
        set_thread_cap(prev);
    }
}
