//! A small single-precision GEMM.
//!
//! `C = alpha * op(A) * op(B) + beta * C`, row-major, with optional
//! transposition of either operand. This is the compute core of the
//! im2col-based convolution engine (the analogue of cuDNN's `ALGO_GEMM`).
//!
//! The kernel is a cache-blocked ikj loop: modest, but the reproduction's
//! timing claims come from the GPU performance model, not from this code —
//! the CPU engines exist to validate numerical semantics.

/// Whether an operand is used as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

const BLOCK: usize = 64;

/// `C = alpha * op(A) * op(B) + beta * C` where `op(A)` is `m x k` and
/// `op(B)` is `k x n`; `C` is `m x n`. All matrices are dense row-major with
/// no padding (leading dimension equals the stored row width).
///
/// # Panics
/// Panics when a buffer is smaller than its shape requires.
#[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
pub fn sgemm(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert!(a.len() >= m * k, "A too small: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too small: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too small: {} < {}", c.len(), m * n);

    if beta != 1.0 {
        for x in c[..m * n].iter_mut() {
            *x *= beta;
        }
    }
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }

    // Index helpers for the four transpose combinations.
    let at = |i: usize, p: usize| match trans_a {
        Trans::No => a[i * k + p],
        Trans::Yes => a[p * m + i],
    };
    let bt = |p: usize, j: usize| match trans_b {
        Trans::No => b[p * n + j],
        Trans::Yes => b[j * k + p],
    };

    // Fast path: A as stored, B as stored — ikj with blocking so the inner
    // loop is a contiguous saxpy over C and B rows.
    if trans_a == Trans::No && trans_b == Trans::No {
        for pb in (0..k).step_by(BLOCK) {
            let pe = (pb + BLOCK).min(k);
            for i in 0..m {
                let crow = &mut c[i * n..i * n + n];
                for p in pb..pe {
                    let aip = alpha * a[i * k + p];
                    if aip == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..p * n + n];
                    for (cv, bv) in crow.iter_mut().zip(brow) {
                        *cv += aip * *bv;
                    }
                }
            }
        }
        return;
    }

    // General path for transposed operands.
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += at(i, p) * bt(p, j);
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(
        trans_a: Trans,
        trans_b: Trans,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let at = |i: usize, p: usize| match trans_a {
            Trans::No => a[i * k + p],
            Trans::Yes => a[p * m + i],
        };
        let bt = |p: usize, j: usize| match trans_b {
            Trans::No => b[p * n + j],
            Trans::Yes => b[j * k + p],
        };
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += at(i, p) * bt(p, j);
                }
            }
        }
        c
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = ucudnn_tensor::DeterministicRng::new(seed);
        (0..len).map(|_| rng.next_uniform() * 2.0 - 1.0).collect()
    }

    fn check(trans_a: Trans, trans_b: Trans, m: usize, n: usize, k: usize) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let mut c = vec![0.0; m * n];
        sgemm(trans_a, trans_b, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        let want = naive(trans_a, trans_b, m, n, k, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_no_trans() {
        check(Trans::No, Trans::No, 17, 23, 129);
    }

    #[test]
    fn matches_naive_a_trans() {
        check(Trans::Yes, Trans::No, 17, 23, 31);
    }

    #[test]
    fn matches_naive_b_trans() {
        check(Trans::No, Trans::Yes, 17, 23, 31);
    }

    #[test]
    fn matches_naive_both_trans() {
        check(Trans::Yes, Trans::Yes, 9, 11, 13);
    }

    #[test]
    fn alpha_beta_scaling() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        sgemm(Trans::No, Trans::No, 2, 2, 2, 2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c, vec![2.0 + 5.0, 4.0 + 5.0, 6.0 + 5.0, 8.0 + 5.0]);
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        let a = vec![1.0];
        let b = vec![1.0];
        let mut c = vec![f32::NAN];
        // beta=0 must still clear NaN per "overwrite" semantics? cuDNN's
        // beta=0 means the prior value is not read; we multiply, so NaN*0=NaN.
        // Mirror BLAS semantics instead: scale then accumulate.
        sgemm(Trans::No, Trans::No, 1, 1, 1, 1.0, &a, &b, 0.0, &mut c);
        // BLAS-style: 0 * NaN = NaN. Document the behaviour by asserting it.
        assert!(c[0].is_nan());
        let mut c2 = vec![3.0];
        sgemm(Trans::No, Trans::No, 1, 1, 1, 1.0, &a, &b, 0.0, &mut c2);
        assert_eq!(c2[0], 1.0);
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![5.0; 4];
        sgemm(
            Trans::No,
            Trans::No,
            0,
            4,
            3,
            1.0,
            &[],
            &[0.0; 12],
            1.0,
            &mut c,
        );
        assert_eq!(c, vec![5.0; 4]);
    }

    #[test]
    #[should_panic(expected = "A too small")]
    fn rejects_undersized_a() {
        let mut c = vec![0.0; 4];
        sgemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &[0.0; 3],
            &[0.0; 4],
            0.0,
            &mut c,
        );
    }
}
