//! A single-precision GEMM built around a register-blocked micro-kernel.
//!
//! `C = alpha * op(A) * op(B) + beta * C`, row-major, with optional
//! transposition of either operand. This is the compute core of the
//! im2col-based convolution engine (the analogue of cuDNN's `ALGO_GEMM`)
//! and of the Winograd engines' per-ξ batched products.
//!
//! # Structure
//!
//! [`sgemm`] follows the classic BLIS decomposition:
//!
//! 1. **Pack** `op(A)` into row panels of [`MR`] rows ([`pack_a`]) and
//!    `op(B)` into column panels of [`NR`] columns ([`pack_b_into`]). Panels
//!    are k-major, so the micro-kernel reads both operands with unit stride
//!    regardless of the original transpose; edge panels are zero-padded to
//!    full width.
//! 2. **Micro-kernel**: an `MR x NR` tile of C is accumulated in a local
//!    `[[f32; NR]; MR]` array whose fixed-trip-count loops the
//!    autovectorizer unrolls and keeps in vector registers for the whole
//!    k loop (baseline x86-64 SSE2: two 4-lane registers per row).
//! 3. **Masked tail**: edge tiles run the same full-width kernel over the
//!    zero-padded panels, then write back only the `rows x cols` valid
//!    corner.
//!
//! Filters are the `A` operand of every im2col GEMM and are identical across
//! a layer's micro-batches, so [`pack_a`] / [`sgemm_prepacked_a`] expose the
//! packing step: pack the filter once per layer execution and reuse the
//! panels for every micro-batch (the packed-weight analogue of the paper's
//! WR workspace reuse). [`sgemm_ref`], the previous cache-blocked ikj
//! kernel, is retained as the naive reference the property tests and the
//! `hotpath` benchmark compare against.
//!
//! # beta semantics
//!
//! Like cuDNN (and unlike BLAS), `beta == 0` means the prior contents of
//! `C` are *not read*: NaN or Inf garbage in an uninitialized output buffer
//! is overwritten, not propagated.

use core::cell::RefCell;

/// Whether an operand is used as stored or transposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trans {
    /// Use the matrix as stored.
    No,
    /// Use the transpose of the stored matrix.
    Yes,
}

/// Micro-kernel tile rows. With AVX, 6 rows x 16 columns keeps 12 ymm
/// accumulators plus broadcast and B registers inside the 16 vector
/// registers (empirically the best shape on AVX2 and AVX-512 hosts).
#[cfg(target_feature = "avx")]
pub const MR: usize = 6;
/// Micro-kernel tile columns.
#[cfg(target_feature = "avx")]
pub const NR: usize = 16;

/// Micro-kernel tile rows. On baseline x86-64 (SSE2) 4 rows x 8 columns =
/// 8 four-lane accumulator registers plus one broadcast and two B registers
/// — comfortably inside the 16 xmm registers.
#[cfg(not(target_feature = "avx"))]
pub const MR: usize = 4;
/// Micro-kernel tile columns.
#[cfg(not(target_feature = "avx"))]
pub const NR: usize = 8;

/// One fused (or mul+add) step of the accumulator update. `mul_add` maps to
/// a single hardware instruction only when the target has FMA; without it
/// LLVM calls libm per lane, so the plain two-op form is used instead.
#[inline(always)]
fn madd(acc: f32, a: f32, b: f32) -> f32 {
    if cfg!(target_feature = "fma") {
        a.mul_add(b, acc)
    } else {
        acc + a * b
    }
}

const BLOCK: usize = 64;

/// Scale `c` by `beta` with cuDNN semantics: `beta == 0` writes zeros
/// without reading the prior contents.
fn scale_beta(c: &mut [f32], beta: f32) {
    if beta == 0.0 {
        c.fill(0.0);
    } else if beta != 1.0 {
        for x in c.iter_mut() {
            *x *= beta;
        }
    }
}

/// `op(A)` (`m x k`) packed into `ceil(m/MR)` zero-padded row panels,
/// k-major within each panel: element `(r, p)` of panel `pi` lives at
/// `pi*MR*k + p*MR + r`. Pack once per layer execution and reuse across
/// micro-batches via [`sgemm_prepacked_a`].
#[derive(Debug, Clone)]
pub struct PackedA {
    m: usize,
    k: usize,
    buf: Vec<f32>,
}

impl PackedA {
    /// Rows of `op(A)`.
    pub fn m(&self) -> usize {
        self.m
    }

    /// Inner (reduction) dimension.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Heap bytes held by the packed panels (for cache accounting).
    pub fn bytes(&self) -> usize {
        self.buf.len() * core::mem::size_of::<f32>()
    }
}

fn packed_a_len(m: usize, k: usize) -> usize {
    m.div_ceil(MR) * MR * k
}

/// Length in `f32` elements of a packed `op(B)` (`k x n`) operand:
/// `ceil(n/NR)` zero-padded column panels, k-major within each panel —
/// element `(p, j)` of panel `pj` lives at `pj*NR*k + p*NR + j`. Callers
/// that produce the packed layout directly (the Winograd input transform,
/// the fused im2col pack) size their buffers with this.
pub fn packed_b_len(k: usize, n: usize) -> usize {
    n.div_ceil(NR) * NR * k
}

fn pack_a_into(trans_a: Trans, m: usize, k: usize, a: &[f32], buf: &mut Vec<f32>) {
    buf.clear();
    buf.resize(packed_a_len(m, k), 0.0);
    for pi in 0..m.div_ceil(MR) {
        let rows = MR.min(m - pi * MR);
        let panel = &mut buf[pi * MR * k..(pi + 1) * MR * k];
        match trans_a {
            // op(A)[i][p] = a[i*k + p]: copy each source row at stride MR.
            Trans::No => {
                for r in 0..rows {
                    let arow = &a[(pi * MR + r) * k..][..k];
                    for (p, &v) in arow.iter().enumerate() {
                        panel[p * MR + r] = v;
                    }
                }
            }
            // op(A)[i][p] = a[p*m + i]: rows of a panel are contiguous in
            // the source, so each k step is a short memcpy.
            Trans::Yes => {
                for p in 0..k {
                    let src = &a[p * m + pi * MR..][..rows];
                    panel[p * MR..p * MR + rows].copy_from_slice(src);
                }
            }
        }
    }
}

/// Pack `op(B)` (`k x n`) into the [`packed_b_len`] panel layout. Exposed so
/// producers that write the packed layout directly (and the property tests
/// pinning them) can compare against the canonical packing of a dense matrix.
pub fn pack_b_into(trans_b: Trans, k: usize, n: usize, b: &[f32], buf: &mut Vec<f32>) {
    buf.clear();
    buf.resize(packed_b_len(k, n), 0.0);
    for pj in 0..n.div_ceil(NR) {
        let cols = NR.min(n - pj * NR);
        let panel = &mut buf[pj * NR * k..(pj + 1) * NR * k];
        match trans_b {
            // op(B)[p][j] = b[p*n + j]: each k step is a short memcpy.
            Trans::No => {
                for p in 0..k {
                    let src = &b[p * n + pj * NR..][..cols];
                    panel[p * NR..p * NR + cols].copy_from_slice(src);
                }
            }
            // op(B)[p][j] = b[j*k + p]: copy each source row at stride NR.
            Trans::Yes => {
                for c in 0..cols {
                    let src = &b[(pj * NR + c) * k..][..k];
                    for (p, &v) in src.iter().enumerate() {
                        panel[p * NR + c] = v;
                    }
                }
            }
        }
    }
}

/// Pack `op(A)` for reuse across multiple [`sgemm_prepacked_a`] calls.
///
/// # Panics
/// Panics when `a` is smaller than `m * k`.
pub fn pack_a(trans_a: Trans, m: usize, k: usize, a: &[f32]) -> PackedA {
    assert!(a.len() >= m * k, "A too small: {} < {}", a.len(), m * k);
    let mut buf = Vec::new();
    pack_a_into(trans_a, m, k, a, &mut buf);
    PackedA { m, k, buf }
}

/// The `MR x NR` register tile: accumulate `alpha * panelA . panelB` into
/// the tile of C at `(i0, j0)`, writing back only `rows x cols` (edge tiles
/// run full-width over the zero padding and mask on writeback).
#[inline(always)]
#[allow(clippy::too_many_arguments)]
fn microkernel(
    k: usize,
    ap: &[f32],
    bp: &[f32],
    alpha: f32,
    c: &mut [f32],
    ldc: usize,
    i0: usize,
    j0: usize,
    rows: usize,
    cols: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    // chunks_exact gives the optimizer fixed-size slices, so the r/j loops
    // fully unroll and `acc` stays in vector registers across the k loop.
    for (arow, brow) in ap.chunks_exact(MR).zip(bp.chunks_exact(NR)).take(k) {
        for r in 0..MR {
            let av = arow[r];
            for j in 0..NR {
                acc[r][j] = madd(acc[r][j], av, brow[j]);
            }
        }
    }
    if rows == MR && cols == NR {
        for r in 0..MR {
            let crow = &mut c[(i0 + r) * ldc + j0..][..NR];
            for (cv, av) in crow.iter_mut().zip(acc[r]) {
                *cv += alpha * av;
            }
        }
    } else {
        for r in 0..rows {
            let crow = &mut c[(i0 + r) * ldc + j0..][..cols];
            for (cv, av) in crow.iter_mut().zip(acc[r]) {
                *cv += alpha * av;
            }
        }
    }
}

/// Macro-loop over packed panels. B panels are the outer loop so each one
/// stays cache-hot while every A panel streams past it.
#[allow(clippy::too_many_arguments)]
fn gemm_packed(
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    pa: &[f32],
    pb: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    scale_beta(&mut c[..m * n], beta);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        return;
    }
    for pj in 0..n.div_ceil(NR) {
        let cols = NR.min(n - pj * NR);
        let bp = &pb[pj * NR * k..(pj + 1) * NR * k];
        for pi in 0..m.div_ceil(MR) {
            let rows = MR.min(m - pi * MR);
            let ap = &pa[pi * MR * k..(pi + 1) * MR * k];
            microkernel(k, ap, bp, alpha, c, n, pi * MR, pj * NR, rows, cols);
        }
    }
}

struct Scratch {
    a: Vec<f32>,
    b: Vec<f32>,
}

thread_local! {
    // Reusable pack buffers: sgemm is called per sample / per ξ inside the
    // engines, so per-call allocation would dominate small problems.
    static SCRATCH: RefCell<Scratch> = const {
        RefCell::new(Scratch {
            a: Vec::new(),
            b: Vec::new(),
        })
    };
}

/// `C = alpha * op(A) * op(B) + beta * C` where `op(A)` is `m x k` and
/// `op(B)` is `k x n`; `C` is `m x n`. All matrices are dense row-major with
/// no padding (leading dimension equals the stored row width).
///
/// `beta == 0` overwrites `C` without reading it (cuDNN semantics — NaN in
/// an uninitialized output buffer does not propagate).
///
/// # Panics
/// Panics when a buffer is smaller than its shape requires.
#[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
pub fn sgemm(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert!(a.len() >= m * k, "A too small: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too small: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too small: {} < {}", c.len(), m * n);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        scale_beta(&mut c[..m * n], beta);
        return;
    }
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        pack_a_into(trans_a, m, k, a, &mut s.a);
        pack_b_into(trans_b, k, n, b, &mut s.b);
        gemm_packed(m, n, k, alpha, &s.a, &s.b, beta, c);
    });
}

/// [`sgemm`] with `op(A)` already packed by [`pack_a`]: `m` and `k` come
/// from the packed operand. The filter operand of a convolution layer is
/// identical across its micro-batches, so the engines pack it once and call
/// this per micro-batch.
///
/// # Panics
/// Panics when `b` or `c` is smaller than its shape requires.
pub fn sgemm_prepacked_a(
    pa: &PackedA,
    trans_b: Trans,
    n: usize,
    alpha: f32,
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    let (m, k) = (pa.m, pa.k);
    assert!(b.len() >= k * n, "B too small: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too small: {} < {}", c.len(), m * n);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        scale_beta(&mut c[..m * n], beta);
        return;
    }
    SCRATCH.with(|s| {
        let s = &mut *s.borrow_mut();
        pack_b_into(trans_b, k, n, b, &mut s.b);
        gemm_packed(m, n, k, alpha, &pa.buf, &s.b, beta, c);
    });
}

/// [`sgemm`] with *both* operands pre-packed: `op(A)` by [`pack_a`] and
/// `op(B)` already laid out in [`packed_b_len`] panels (by [`pack_b_into`]
/// or by a producer that writes panels directly, like the fused im2col
/// lowering). Skips the per-call B packing pass and its scratch copy;
/// bit-identical to the pack-then-multiply path because the macro loop and
/// micro-kernel are the same code.
///
/// # Panics
/// Panics when `pb` or `c` is smaller than its shape requires.
pub fn sgemm_prepacked(pa: &PackedA, n: usize, alpha: f32, pb: &[f32], beta: f32, c: &mut [f32]) {
    let (m, k) = (pa.m, pa.k);
    assert!(
        pb.len() >= packed_b_len(k, n),
        "packed B too small: {} < {}",
        pb.len(),
        packed_b_len(k, n)
    );
    assert!(c.len() >= m * n, "C too small: {} < {}", c.len(), m * n);
    if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
        scale_beta(&mut c[..m * n], beta);
        return;
    }
    gemm_packed(m, n, k, alpha, &pa.buf, pb, beta, c);
}

/// One batched multi-RHS GEMM over a ξ-major packed layout: for each ξ,
/// `C[ξ] = alpha * A[ξ] @ B[ξ] + beta * C[ξ]` where `pas[ξ]` is a packed
/// `m x k` operand (all ξ's must share `m` and `k`), `pb` holds `pas.len()`
/// consecutive [`packed_b_len`]`(k, n)` slabs, and `c` holds `pas.len()`
/// consecutive `m x n` result slabs.
///
/// This is the Winograd engines' execution shape: the 16/36 per-ξ tile
/// products run as one call over panels the input transform wrote in place,
/// with the packed filter panels (`pas`) replayed across micro-batches.
/// Bit-identical to looping [`sgemm_prepacked`] per ξ.
///
/// # Panics
/// Panics when the ξ's disagree on `m`/`k` or a buffer is undersized.
pub fn sgemm_prepacked_batch(
    pas: &[PackedA],
    n: usize,
    alpha: f32,
    pb: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    let Some(first) = pas.first() else { return };
    let (m, k) = (first.m, first.k);
    assert!(
        pas.iter().all(|p| p.m == m && p.k == k),
        "batched A operands must share m and k"
    );
    let pbl = packed_b_len(k, n);
    assert!(
        pb.len() >= pas.len() * pbl,
        "packed B too small: {} < {}",
        pb.len(),
        pas.len() * pbl
    );
    assert!(
        c.len() >= pas.len() * m * n,
        "C too small: {} < {}",
        c.len(),
        pas.len() * m * n
    );
    for (xi, pa) in pas.iter().enumerate() {
        if alpha == 0.0 || m == 0 || n == 0 || k == 0 {
            scale_beta(&mut c[xi * m * n..(xi + 1) * m * n], beta);
            continue;
        }
        gemm_packed(
            m,
            n,
            k,
            alpha,
            &pa.buf,
            &pb[xi * pbl..(xi + 1) * pbl],
            beta,
            &mut c[xi * m * n..(xi + 1) * m * n],
        );
    }
}

/// The retained naive reference: the cache-blocked ikj kernel that predates
/// the packed micro-kernel. Property tests pin [`sgemm`] against it and the
/// `hotpath` benchmark reports speedup over it. Same cuDNN beta semantics.
///
/// # Panics
/// Panics when a buffer is smaller than its shape requires.
#[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
pub fn sgemm_ref(
    trans_a: Trans,
    trans_b: Trans,
    m: usize,
    n: usize,
    k: usize,
    alpha: f32,
    a: &[f32],
    b: &[f32],
    beta: f32,
    c: &mut [f32],
) {
    assert!(a.len() >= m * k, "A too small: {} < {}", a.len(), m * k);
    assert!(b.len() >= k * n, "B too small: {} < {}", b.len(), k * n);
    assert!(c.len() >= m * n, "C too small: {} < {}", c.len(), m * n);

    scale_beta(&mut c[..m * n], beta);
    if alpha == 0.0 || m == 0 || n == 0 {
        return;
    }

    // Index helpers for the four transpose combinations.
    let at = |i: usize, p: usize| match trans_a {
        Trans::No => a[i * k + p],
        Trans::Yes => a[p * m + i],
    };
    let bt = |p: usize, j: usize| match trans_b {
        Trans::No => b[p * n + j],
        Trans::Yes => b[j * k + p],
    };

    // Fast path: A as stored, B as stored — ikj with blocking so the inner
    // loop is a contiguous saxpy over C and B rows.
    if trans_a == Trans::No && trans_b == Trans::No {
        for pb in (0..k).step_by(BLOCK) {
            let pe = (pb + BLOCK).min(k);
            for i in 0..m {
                let crow = &mut c[i * n..i * n + n];
                for p in pb..pe {
                    let aip = alpha * a[i * k + p];
                    if aip == 0.0 {
                        continue;
                    }
                    let brow = &b[p * n..p * n + n];
                    for (cv, bv) in crow.iter_mut().zip(brow) {
                        *cv += aip * *bv;
                    }
                }
            }
        }
        return;
    }

    // General path for transposed operands.
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f32;
            for p in 0..k {
                acc += at(i, p) * bt(p, j);
            }
            c[i * n + j] += alpha * acc;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive(
        trans_a: Trans,
        trans_b: Trans,
        m: usize,
        n: usize,
        k: usize,
        a: &[f32],
        b: &[f32],
    ) -> Vec<f32> {
        let at = |i: usize, p: usize| match trans_a {
            Trans::No => a[i * k + p],
            Trans::Yes => a[p * m + i],
        };
        let bt = |p: usize, j: usize| match trans_b {
            Trans::No => b[p * n + j],
            Trans::Yes => b[j * k + p],
        };
        let mut c = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                for p in 0..k {
                    c[i * n + j] += at(i, p) * bt(p, j);
                }
            }
        }
        c
    }

    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut rng = ucudnn_tensor::DeterministicRng::new(seed);
        (0..len).map(|_| rng.next_uniform() * 2.0 - 1.0).collect()
    }

    fn check(trans_a: Trans, trans_b: Trans, m: usize, n: usize, k: usize) {
        let a = fill(m * k, 1);
        let b = fill(k * n, 2);
        let want = naive(trans_a, trans_b, m, n, k, &a, &b);
        let mut c = vec![0.0; m * n];
        sgemm(trans_a, trans_b, m, n, k, 1.0, &a, &b, 0.0, &mut c);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
        let mut cr = vec![0.0; m * n];
        sgemm_ref(trans_a, trans_b, m, n, k, 1.0, &a, &b, 0.0, &mut cr);
        for (x, y) in cr.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4, "ref: {x} vs {y}");
        }
    }

    #[test]
    fn matches_naive_no_trans() {
        check(Trans::No, Trans::No, 17, 23, 129);
    }

    #[test]
    fn matches_naive_a_trans() {
        check(Trans::Yes, Trans::No, 17, 23, 31);
    }

    #[test]
    fn matches_naive_b_trans() {
        check(Trans::No, Trans::Yes, 17, 23, 31);
    }

    #[test]
    fn matches_naive_both_trans() {
        check(Trans::Yes, Trans::Yes, 9, 11, 13);
    }

    #[test]
    fn tile_edges_are_masked() {
        // One past / one short of every tile boundary around MR and NR.
        for m in [1, MR - 1, MR, MR + 1, 2 * MR + 3] {
            for n in [1, NR - 1, NR, NR + 1, 2 * NR + 5] {
                for k in [1, 2, 7, 64] {
                    check(Trans::No, Trans::No, m, n, k);
                }
            }
        }
    }

    #[test]
    fn alpha_beta_scaling() {
        let a = vec![1.0, 2.0, 3.0, 4.0]; // 2x2
        let b = vec![1.0, 0.0, 0.0, 1.0]; // identity
        let mut c = vec![10.0, 10.0, 10.0, 10.0];
        sgemm(Trans::No, Trans::No, 2, 2, 2, 2.0, &a, &b, 0.5, &mut c);
        assert_eq!(c, vec![2.0 + 5.0, 4.0 + 5.0, 6.0 + 5.0, 8.0 + 5.0]);
    }

    #[test]
    fn beta_zero_overwrites_garbage() {
        // cuDNN semantics: beta=0 means the prior contents of C are never
        // read, so NaN/Inf in an uninitialized buffer must not propagate.
        let a = vec![1.0];
        let b = vec![1.0];
        let mut c = vec![f32::NAN];
        sgemm(Trans::No, Trans::No, 1, 1, 1, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c[0], 1.0);
        let mut c = vec![f32::INFINITY];
        sgemm_ref(Trans::No, Trans::No, 1, 1, 1, 1.0, &a, &b, 0.0, &mut c);
        assert_eq!(c[0], 1.0);
        // Even alpha=0 with beta=0 must clear garbage, not multiply it.
        let mut c = vec![f32::NAN; 4];
        sgemm(
            Trans::No,
            Trans::No,
            2,
            2,
            1,
            0.0,
            &[1.0; 2],
            &[1.0; 2],
            0.0,
            &mut c,
        );
        assert_eq!(c, vec![0.0; 4]);
    }

    #[test]
    fn prepacked_a_matches_fresh_pack() {
        let (m, n, k) = (13, 21, 37);
        let a = fill(m * k, 3);
        let pa = pack_a(Trans::No, m, k, &a);
        assert_eq!(pa.m(), m);
        assert_eq!(pa.k(), k);
        assert!(pa.bytes() >= m * k * 4);
        for (seed, trans_b) in [(4u64, Trans::No), (5, Trans::Yes)] {
            let b = fill(k * n, seed);
            let mut c = vec![1.0; m * n];
            let mut want = vec![1.0; m * n];
            sgemm(Trans::No, trans_b, m, n, k, 0.5, &a, &b, 2.0, &mut want);
            sgemm_prepacked_a(&pa, trans_b, n, 0.5, &b, 2.0, &mut c);
            assert_eq!(c, want, "prepacked path must be bit-identical");
        }
    }

    #[test]
    fn prepacked_transposed_a() {
        let (m, n, k) = (9, 14, 11);
        let a = fill(k * m, 6); // stored k x m, used transposed
        let b = fill(k * n, 7);
        let pa = pack_a(Trans::Yes, m, k, &a);
        let mut c = vec![0.0; m * n];
        sgemm_prepacked_a(&pa, Trans::No, n, 1.0, &b, 0.0, &mut c);
        let want = naive(Trans::Yes, Trans::No, m, n, k, &a, &b);
        for (x, y) in c.iter().zip(&want) {
            assert!((x - y).abs() < 1e-4, "{x} vs {y}");
        }
    }

    #[test]
    fn prepacked_b_matches_pack_then_multiply() {
        let (m, n, k) = (11, 19, 23);
        let a = fill(m * k, 8);
        let b = fill(k * n, 9);
        let pa = pack_a(Trans::No, m, k, &a);
        let mut pb = Vec::new();
        pack_b_into(Trans::No, k, n, &b, &mut pb);
        assert_eq!(pb.len(), packed_b_len(k, n));
        let mut c = vec![3.0; m * n];
        let mut want = vec![3.0; m * n];
        sgemm_prepacked_a(&pa, Trans::No, n, 0.5, &b, 2.0, &mut want);
        sgemm_prepacked(&pa, n, 0.5, &pb, 2.0, &mut c);
        assert_eq!(c, want, "caller-packed B must be bit-identical");
    }

    #[test]
    fn batched_matches_per_xi_loop() {
        let (m, n, k, xis) = (7, 18, 5, 4);
        let pbl = packed_b_len(k, n);
        let mut pas = Vec::new();
        let mut pb_all = vec![0.0f32; xis * pbl];
        for xi in 0..xis {
            let a = fill(m * k, 100 + xi as u64);
            pas.push(pack_a(Trans::No, m, k, &a));
            let b = fill(k * n, 200 + xi as u64);
            let mut pb = Vec::new();
            pack_b_into(Trans::No, k, n, &b, &mut pb);
            pb_all[xi * pbl..(xi + 1) * pbl].copy_from_slice(&pb);
        }
        let mut want = vec![f32::NAN; xis * m * n];
        for (xi, pa) in pas.iter().enumerate() {
            sgemm_prepacked(
                pa,
                n,
                1.0,
                &pb_all[xi * pbl..(xi + 1) * pbl],
                0.0,
                &mut want[xi * m * n..(xi + 1) * m * n],
            );
        }
        let mut c = vec![f32::NAN; xis * m * n];
        sgemm_prepacked_batch(&pas, n, 1.0, &pb_all, 0.0, &mut c);
        assert!(c.iter().all(|v| v.is_finite()), "beta=0 must not read C");
        for (x, y) in c.iter().zip(&want) {
            assert_eq!(x.to_bits(), y.to_bits(), "batched path diverged");
        }
    }

    #[test]
    fn empty_dims_are_noops() {
        let mut c = vec![5.0; 4];
        sgemm(
            Trans::No,
            Trans::No,
            0,
            4,
            3,
            1.0,
            &[],
            &[0.0; 12],
            1.0,
            &mut c,
        );
        assert_eq!(c, vec![5.0; 4]);
        // k == 0 still applies beta.
        let mut c = vec![5.0; 4];
        sgemm(Trans::No, Trans::No, 2, 2, 0, 1.0, &[], &[], 0.5, &mut c);
        assert_eq!(c, vec![2.5; 4]);
    }

    #[test]
    #[should_panic(expected = "A too small")]
    fn rejects_undersized_a() {
        let mut c = vec![0.0; 4];
        sgemm(
            Trans::No,
            Trans::No,
            2,
            2,
            2,
            1.0,
            &[0.0; 3],
            &[0.0; 4],
            0.0,
            &mut c,
        );
    }
}
