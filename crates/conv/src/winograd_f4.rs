//! Winograd F(4×4, 3×3) convolution engine (cuDNN `WINOGRAD_NONFUSED`
//! analogue).
//!
//! The larger output tile (4×4 from a 6×6 input tile, 36 multiplies instead
//! of 144 — a 4× reduction) needs fewer tiles and GEMMs than F(2×2) but has
//! larger transform constants, i.e. the classic speed-vs-precision step up
//! the Winograd ladder. Transform matrices follow Lavin & Gray (2016):
//!
//! ```text
//! Bᵀ = ⎡ 4  0 −5  0  1  0⎤   G = ⎡ 1/4     0     0 ⎤   Aᵀ = ⎡1  1  1  1  1  0⎤
//!      ⎢ 0 −4 −4  1  1  0⎥       ⎢−1/6  −1/6  −1/6 ⎥        ⎢0  1 −1  2 −2  0⎥
//!      ⎢ 0  4 −4 −1  1  0⎥       ⎢−1/6   1/6  −1/6 ⎥        ⎢0  1  1  4  4  0⎥
//!      ⎢ 0 −2 −1  2  1  0⎥       ⎢ 1/24  1/12  1/6 ⎥        ⎣0  1 −1  8 −8  1⎦
//!      ⎢ 0  2 −1 −2  1  0⎥       ⎢ 1/24 −1/12  1/6 ⎥
//!      ⎣ 0  4  0 −5  0  1⎦       ⎣ 0      0     1  ⎦
//! ```
//!
//! Same support envelope as the fused engine: 3×3 filters, unit stride,
//! pad ≤ 2; Forward and BackwardData (flipped-filter trick).

use crate::gemm::{sgemm_prepacked_a, Trans};
use crate::plan::WinogradPlan;
use crate::winograd::supports;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

const BT: [[f32; 6]; 6] = [
    [4.0, 0.0, -5.0, 0.0, 1.0, 0.0],
    [0.0, -4.0, -4.0, 1.0, 1.0, 0.0],
    [0.0, 4.0, -4.0, -1.0, 1.0, 0.0],
    [0.0, -2.0, -1.0, 2.0, 1.0, 0.0],
    [0.0, 2.0, -1.0, -2.0, 1.0, 0.0],
    [0.0, 4.0, 0.0, -5.0, 0.0, 1.0],
];

const G: [[f32; 3]; 6] = [
    [0.25, 0.0, 0.0],
    [-1.0 / 6.0, -1.0 / 6.0, -1.0 / 6.0],
    [-1.0 / 6.0, 1.0 / 6.0, -1.0 / 6.0],
    [1.0 / 24.0, 1.0 / 12.0, 1.0 / 6.0],
    [1.0 / 24.0, -1.0 / 12.0, 1.0 / 6.0],
    [0.0, 0.0, 1.0],
];

const AT: [[f32; 6]; 4] = [
    [1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
    [0.0, 1.0, -1.0, 2.0, -2.0, 0.0],
    [0.0, 1.0, 1.0, 4.0, 4.0, 0.0],
    [0.0, 1.0, -1.0, 8.0, -8.0, 1.0],
];

/// Output tile grid: `ceil(Ho/4) x ceil(Wo/4)` tiles per image.
fn tiles(g: &ConvGeometry) -> (usize, usize) {
    (g.out_h().div_ceil(4), g.out_w().div_ceil(4))
}

/// Workspace in `f32` elements: `36·(K·C + C·T + K·T)`, `T = N·th·tw`.
pub fn workspace_floats(g: &ConvGeometry) -> usize {
    let (th, tw) = tiles(g);
    let t = g.input.n * th * tw;
    let (k, c) = (g.filter.k, g.input.c);
    36 * (k * c + c * t + k * t)
}

/// `U = G g Gᵀ` (6×6) for one 3×3 filter plane, scattered at `stride`.
fn transform_filter(gp: &[f32], out: &mut [f32], stride: usize) {
    let mut tmp = [0.0f32; 18]; // G @ g : 6x3
    for (i, grow) in G.iter().enumerate() {
        for j in 0..3 {
            tmp[3 * i + j] = grow[0] * gp[j] + grow[1] * gp[3 + j] + grow[2] * gp[6 + j];
        }
    }
    for i in 0..6 {
        for j in 0..6 {
            // (tmp @ Gᵀ)[i][j] = Σ_k tmp[i][k] · G[j][k]
            let v = tmp[3 * i] * G[j][0] + tmp[3 * i + 1] * G[j][1] + tmp[3 * i + 2] * G[j][2];
            out[(6 * i + j) * stride] = v;
        }
    }
}

/// `V = Bᵀ d B` (6×6) for one 6×6 input tile, scattered at `stride`.
fn transform_input(d: &[f32; 36], out: &mut [f32], stride: usize) {
    let mut tmp = [0.0f32; 36]; // Bᵀ @ d
    for (i, brow) in BT.iter().enumerate() {
        for j in 0..6 {
            let mut acc = 0.0f32;
            for (k, b) in brow.iter().enumerate() {
                if *b != 0.0 {
                    acc += b * d[6 * k + j];
                }
            }
            tmp[6 * i + j] = acc;
        }
    }
    for i in 0..6 {
        for j in 0..6 {
            // (tmp @ B)[i][j] = Σ_k tmp[i][k] · Bᵀ[j][k]
            let mut acc = 0.0f32;
            for (k, b) in BT[j].iter().enumerate() {
                if *b != 0.0 {
                    acc += tmp[6 * i + k] * b;
                }
            }
            out[(6 * i + j) * stride] = acc;
        }
    }
}

/// `y_tile = Aᵀ m A` (4×4) gathered from strided slots.
fn transform_output(m: impl Fn(usize) -> f32) -> [f32; 16] {
    let mut tmp = [0.0f32; 24]; // Aᵀ @ m : 4x6
    for (i, arow) in AT.iter().enumerate() {
        for j in 0..6 {
            let mut acc = 0.0f32;
            for (k, a) in arow.iter().enumerate() {
                if *a != 0.0 {
                    acc += a * m(6 * k + j);
                }
            }
            tmp[6 * i + j] = acc;
        }
    }
    let mut y = [0.0f32; 16];
    for i in 0..4 {
        for j in 0..4 {
            let mut acc = 0.0f32;
            for (k, a) in AT[j].iter().enumerate() {
                if *a != 0.0 {
                    acc += tmp[6 * i + k] * a;
                }
            }
            y[4 * i + j] = acc;
        }
    }
    y
}

/// `y = alpha * conv(x, w) + beta * y` via non-fused F(4×4, 3×3).
///
/// # Panics
/// Panics on unsupported geometries or undersized buffers (the [`crate::exec`]
/// dispatcher screens both).
pub fn forward(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    forward_with_plan(g, x, w, y, alpha, beta, ws, &mut WinogradPlan::default());
}

/// [`forward`] with a reusable plan holding the packed transformed filter
/// `U` (see [`crate::winograd::forward_with_plan`]). Bit-identical to the
/// plan-free path.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn forward_with_plan(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
) {
    assert!(
        supports(g),
        "F(4x4,3x3) requires 3x3 filter, unit stride, pad<=2 ({g})"
    );
    assert!(ws.len() >= workspace_floats(g), "workspace too small");
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let k = g.filter.k;
    let (ho, wo) = (g.out_h(), g.out_w());
    let (th, tw) = tiles(g);
    let t = n * th * tw;
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(y.len(), g.output().len(), "y buffer mismatch");

    // Workspace layout: U[36][K][C] | V[36][C][T] | M[36][K][T]. The plan
    // path leaves the U region untouched (U lives packed in the plan).
    let (_, rest) = ws.split_at_mut(36 * k * c);
    let (v_buf, m_rest) = rest.split_at_mut(36 * c * t);
    let m_buf = &mut m_rest[..36 * k * t];

    let u_packed = plan.packed_u(36, k, c, w, |u| {
        for ki in 0..k {
            for ci in 0..c {
                transform_filter(
                    &w[(ki * c + ci) * 9..(ki * c + ci) * 9 + 9],
                    &mut u[ki * c + ci..],
                    k * c,
                );
            }
        }
    });

    for ni in 0..n {
        for ci in 0..c {
            let plane = &x[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
            for tp in 0..th {
                for tq in 0..tw {
                    let mut d = [0.0f32; 36];
                    let oh = (4 * tp) as isize - g.pad_h as isize;
                    let ow = (4 * tq) as isize - g.pad_w as isize;
                    for i in 0..6 {
                        let ih = oh + i as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for j in 0..6 {
                            let iw = ow + j as isize;
                            if iw < 0 || iw >= wd as isize {
                                continue;
                            }
                            d[6 * i + j] = plane[ih as usize * wd + iw as usize];
                        }
                    }
                    let tile = (ni * th + tp) * tw + tq;
                    transform_input(&d, &mut v_buf[ci * t + tile..], c * t);
                }
            }
        }
    }

    // 36 GEMMs: M[ξ] (K x T) = U[ξ] (K x C) @ V[ξ] (C x T).
    for (xi, u_xi) in u_packed.iter().enumerate() {
        sgemm_prepacked_a(
            u_xi,
            Trans::No,
            t,
            1.0,
            &v_buf[xi * c * t..(xi + 1) * c * t],
            0.0,
            &mut m_buf[xi * k * t..(xi + 1) * k * t],
        );
    }

    for ni in 0..n {
        for ki in 0..k {
            for tp in 0..th {
                for tq in 0..tw {
                    let tile = (ni * th + tp) * tw + tq;
                    let yt = transform_output(|xi| m_buf[xi * k * t + ki * t + tile]);
                    for i in 0..4 {
                        let p = 4 * tp + i;
                        if p >= ho {
                            continue;
                        }
                        for j in 0..4 {
                            let q = 4 * tq + j;
                            if q >= wo {
                                continue;
                            }
                            let o = ((ni * k + ki) * ho + p) * wo + q;
                            y[o] = alpha * yt[4 * i + j] + beta * y[o];
                        }
                    }
                }
            }
        }
    }
}

fn backward_geometry(g: &ConvGeometry) -> ConvGeometry {
    ConvGeometry::new(
        Shape4::new(g.input.n, g.filter.k, g.out_h(), g.out_w()),
        FilterShape::new(g.input.c, g.filter.k, 3, 3),
        2 - g.pad_h,
        2 - g.pad_w,
        1,
        1,
    )
}

/// Workspace in `f32` elements for [`backward_data`].
pub fn workspace_floats_backward_data(g: &ConvGeometry) -> usize {
    workspace_floats(&backward_geometry(g)) + g.filter.len()
}

/// `dx = alpha * grad_x + beta * dx` — forward F(4×4) on the rotated,
/// channel-transposed filter with complementary padding.
pub fn backward_data(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    backward_data_with_plan(g, dy, w, dx, alpha, beta, ws, &mut WinogradPlan::default());
}

/// [`backward_data`] with a reusable plan (fingerprints the flipped filter).
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn backward_data_with_plan(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
) {
    assert!(
        supports(g),
        "F(4x4,3x3) requires 3x3 filter, unit stride, pad<=2 ({g})"
    );
    assert!(
        ws.len() >= workspace_floats_backward_data(g),
        "workspace too small"
    );
    let bg = backward_geometry(g);
    debug_assert_eq!(bg.output(), g.input);
    let (k, c) = (g.filter.k, g.input.c);
    let (rest, wflip) = ws.split_at_mut(ws.len() - g.filter.len());
    for ci in 0..c {
        for ki in 0..k {
            for r in 0..3 {
                for s in 0..3 {
                    wflip[((ci * k + ki) * 3 + r) * 3 + s] =
                        w[((ki * c + ci) * 3 + (2 - r)) * 3 + (2 - s)];
                }
            }
        }
    }
    forward_with_plan(&bg, dy, wflip, dx, alpha, beta, rest, plan);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use ucudnn_tensor::{assert_all_close, Tensor};

    fn geoms() -> Vec<ConvGeometry> {
        vec![
            ConvGeometry::with_square(Shape4::new(2, 3, 8, 8), FilterShape::new(4, 3, 3, 3), 1, 1),
            // Non-multiple-of-4 outputs exercise edge-tile clipping.
            ConvGeometry::with_square(Shape4::new(1, 2, 9, 11), FilterShape::new(3, 2, 3, 3), 1, 1),
            ConvGeometry::with_square(Shape4::new(3, 1, 6, 6), FilterShape::new(2, 1, 3, 3), 0, 1),
            ConvGeometry::with_square(
                Shape4::new(1, 2, 13, 13),
                FilterShape::new(2, 2, 3, 3),
                2,
                1,
            ),
        ]
    }

    #[test]
    fn forward_matches_direct() {
        for g in geoms() {
            let x = Tensor::random(g.input, 1);
            let w = Tensor::random(g.filter.as_shape4(), 2);
            let mut y_ref = Tensor::zeros(g.output());
            direct::forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut y = Tensor::zeros(g.output());
            let mut ws = vec![0.0; workspace_floats(&g)];
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&y_ref, &y, 5e-3);
        }
    }

    #[test]
    fn backward_data_matches_direct() {
        for g in geoms() {
            let dy = Tensor::random(g.output(), 3);
            let w = Tensor::random(g.filter.as_shape4(), 4);
            let mut dx_ref = Tensor::zeros(g.input);
            direct::backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut dx = Tensor::zeros(g.input);
            let mut ws = vec![0.0; workspace_floats_backward_data(&g)];
            backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&dx_ref, &dx, 5e-3);
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 7);
        let w = Tensor::random(g.filter.as_shape4(), 8);
        let init = Tensor::random(g.output(), 9);
        let mut y_ref = init.clone();
        direct::forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y_ref.as_mut_slice(),
            0.5,
            2.0,
        );
        let mut y = init.clone();
        let mut ws = vec![0.0; workspace_floats(&g)];
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            0.5,
            2.0,
            &mut ws,
        );
        assert_all_close(&y_ref, &y, 5e-3);
    }

    #[test]
    fn warm_plan_is_bit_identical() {
        let g = geoms()[1];
        let x = Tensor::random(g.input, 61);
        let w = Tensor::random(g.filter.as_shape4(), 62);
        let mut ws = vec![0.0; workspace_floats(&g)];
        let mut cold = Tensor::zeros(g.output());
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            cold.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        let mut plan = WinogradPlan::default();
        for _ in 0..3 {
            let mut warm = Tensor::zeros(g.output());
            forward_with_plan(
                &g,
                x.as_slice(),
                w.as_slice(),
                warm.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
                &mut plan,
            );
            for (a, b) in cold.as_slice().iter().zip(warm.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "plan path diverged");
            }
        }
        assert!(plan.bytes() > 0);
    }

    #[test]
    fn needs_fewer_tiles_than_f2() {
        // F(4×4) halves the tile count per axis vs F(2×2) — the reason the
        // non-fused workspace is not simply 36/16 of the fused layout.
        let g = ConvGeometry::with_square(
            Shape4::new(8, 16, 32, 32),
            FilterShape::new(16, 16, 3, 3),
            1,
            1,
        );
        let f4 = workspace_floats(&g);
        let f2 = crate::winograd::workspace_floats(&g);
        // 36 elements on a quarter of the tiles vs 16 on all of them.
        assert!(
            f4 < f2,
            "F(4x4) ws {f4} should undercut F(2x2) ws {f2} here"
        );
    }

    #[test]
    fn identity_kernel_recovers_input() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 8, 8), FilterShape::new(1, 1, 3, 3), 1, 1);
        let x = Tensor::random(g.input, 11);
        let mut w = Tensor::zeros(g.filter.as_shape4());
        w.set(0, 0, 1, 1, 1.0); // centre tap
        let mut y = Tensor::zeros(g.output());
        let mut ws = vec![0.0; workspace_floats(&g)];
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        assert_all_close(&x, &y, 1e-4);
    }
}
