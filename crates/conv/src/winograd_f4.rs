//! Winograd F(4×4, 3×3) convolution engine (cuDNN `WINOGRAD_NONFUSED`
//! analogue).
//!
//! The larger output tile (4×4 from a 6×6 input tile, 36 multiplies instead
//! of 144 — a 4× reduction) needs fewer tiles and GEMMs than F(2×2) but has
//! larger transform constants, i.e. the classic speed-vs-precision step up
//! the Winograd ladder. Transform matrices follow Lavin & Gray (2016):
//!
//! ```text
//! Bᵀ = ⎡ 4  0 −5  0  1  0⎤   G = ⎡ 1/4     0     0 ⎤   Aᵀ = ⎡1  1  1  1  1  0⎤
//!      ⎢ 0 −4 −4  1  1  0⎥       ⎢−1/6  −1/6  −1/6 ⎥        ⎢0  1 −1  2 −2  0⎥
//!      ⎢ 0  4 −4 −1  1  0⎥       ⎢−1/6   1/6  −1/6 ⎥        ⎢0  1  1  4  4  0⎥
//!      ⎢ 0 −2 −1  2  1  0⎥       ⎢ 1/24  1/12  1/6 ⎥        ⎣0  1 −1  8 −8  1⎦
//!      ⎢ 0  2 −1 −2  1  0⎥       ⎢ 1/24 −1/12  1/6 ⎥
//!      ⎣ 0  4  0 −5  0  1⎦       ⎣ 0      0     1  ⎦
//! ```
//!
//! Execution mirrors [`crate::winograd`]: the fast path transforms tiles in
//! [`NR`]-sized strips, writes `V` directly in the ξ-major packed-B panel
//! layout, and runs the 36 per-ξ products as one batched multi-RHS prepacked
//! GEMM, with [`forward_ref`] / [`backward_data_ref`] keeping the scalar
//! per-tile formulation as the naive baseline. The lane-wise transforms
//! accumulate in the same constant-matrix order as the scalar ones, so plan
//! replay stays byte-identical.
//!
//! Same support envelope as the F(2×2) engine: 3×3 filters, unit stride,
//! pad ≤ 2; Forward and BackwardData (flipped-filter trick).

use crate::gemm::{packed_b_len, sgemm_prepacked_batch, sgemm_ref, Trans, NR};
use crate::plan::{WinogradDir, WinogradPlan};
pub use crate::winograd::supports;
use crate::winograd::write_out;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

const BT: [[f32; 6]; 6] = [
    [4.0, 0.0, -5.0, 0.0, 1.0, 0.0],
    [0.0, -4.0, -4.0, 1.0, 1.0, 0.0],
    [0.0, 4.0, -4.0, -1.0, 1.0, 0.0],
    [0.0, -2.0, -1.0, 2.0, 1.0, 0.0],
    [0.0, 2.0, -1.0, -2.0, 1.0, 0.0],
    [0.0, 4.0, 0.0, -5.0, 0.0, 1.0],
];

const G: [[f32; 3]; 6] = [
    [0.25, 0.0, 0.0],
    [-1.0 / 6.0, -1.0 / 6.0, -1.0 / 6.0],
    [-1.0 / 6.0, 1.0 / 6.0, -1.0 / 6.0],
    [1.0 / 24.0, 1.0 / 12.0, 1.0 / 6.0],
    [1.0 / 24.0, -1.0 / 12.0, 1.0 / 6.0],
    [0.0, 0.0, 1.0],
];

const AT: [[f32; 6]; 4] = [
    [1.0, 1.0, 1.0, 1.0, 1.0, 0.0],
    [0.0, 1.0, -1.0, 2.0, -2.0, 0.0],
    [0.0, 1.0, 1.0, 4.0, 4.0, 0.0],
    [0.0, 1.0, -1.0, 8.0, -8.0, 1.0],
];

/// Output tile grid: `ceil(Ho/4) x ceil(Wo/4)` tiles per image.
fn tiles(g: &ConvGeometry) -> (usize, usize) {
    (g.out_h().div_ceil(4), g.out_w().div_ceil(4))
}

/// Workspace in `f32` elements: filter staging (36·K·C, reference path),
/// ξ-major packed input tiles (`36 · packed_b_len(C, T)`) and products
/// (36·K·T rounded up to a whole [`NR`]-tile strip), `T = N·th·tw`.
pub fn workspace_floats(g: &ConvGeometry) -> usize {
    let (th, tw) = tiles(g);
    let t = g.input.n * th * tw;
    let (k, c) = (g.filter.k, g.input.c);
    36 * (k * c + k * t.div_ceil(NR) * NR) + 36 * packed_b_len(c, t)
}

fn assert_supported(g: &ConvGeometry) {
    assert!(
        supports(g),
        "F(4x4,3x3) requires 3x3 filter, unit stride, pad<=2 ({g})"
    );
}

/// `U = G g Gᵀ` (6×6) for one 3×3 filter plane, scattered at `stride`.
fn transform_filter(gp: &[f32], out: &mut [f32], stride: usize) {
    let mut tmp = [0.0f32; 18]; // G @ g : 6x3
    for (i, grow) in G.iter().enumerate() {
        for j in 0..3 {
            tmp[3 * i + j] = grow[0] * gp[j] + grow[1] * gp[3 + j] + grow[2] * gp[6 + j];
        }
    }
    for i in 0..6 {
        for j in 0..6 {
            // (tmp @ Gᵀ)[i][j] = Σ_k tmp[i][k] · G[j][k]
            let v = tmp[3 * i] * G[j][0] + tmp[3 * i + 1] * G[j][1] + tmp[3 * i + 2] * G[j][2];
            out[(6 * i + j) * stride] = v;
        }
    }
}

/// `V = Bᵀ d B` (6×6) for one 6×6 input tile, scattered at `stride`
/// (scalar reference; the fast path runs the same accumulation lane-wise).
fn transform_input(d: &[f32; 36], out: &mut [f32], stride: usize) {
    let mut tmp = [0.0f32; 36]; // Bᵀ @ d
    for (i, brow) in BT.iter().enumerate() {
        for j in 0..6 {
            let mut acc = 0.0f32;
            for (k, b) in brow.iter().enumerate() {
                if *b != 0.0 {
                    acc += b * d[6 * k + j];
                }
            }
            tmp[6 * i + j] = acc;
        }
    }
    for i in 0..6 {
        for j in 0..6 {
            // (tmp @ B)[i][j] = Σ_k tmp[i][k] · Bᵀ[j][k]
            let mut acc = 0.0f32;
            for (k, b) in BT[j].iter().enumerate() {
                if *b != 0.0 {
                    acc += tmp[6 * i + k] * b;
                }
            }
            out[(6 * i + j) * stride] = acc;
        }
    }
}

/// `y_tile = Aᵀ m A` (4×4) gathered from strided slots.
fn transform_output(m: impl Fn(usize) -> f32) -> [f32; 16] {
    let mut tmp = [0.0f32; 24]; // Aᵀ @ m : 4x6
    for (i, arow) in AT.iter().enumerate() {
        for j in 0..6 {
            let mut acc = 0.0f32;
            for (k, a) in arow.iter().enumerate() {
                if *a != 0.0 {
                    acc += a * m(6 * k + j);
                }
            }
            tmp[6 * i + j] = acc;
        }
    }
    let mut y = [0.0f32; 16];
    for i in 0..4 {
        for j in 0..4 {
            let mut acc = 0.0f32;
            for (k, a) in AT[j].iter().enumerate() {
                if *a != 0.0 {
                    acc += tmp[6 * i + k] * a;
                }
            }
            y[4 * i + j] = acc;
        }
    }
    y
}

/// `y = alpha * conv(x, w) + beta * y` via non-fused F(4×4, 3×3).
///
/// # Panics
/// Panics on unsupported geometries or undersized buffers (the [`crate::exec`]
/// dispatcher screens both).
pub fn forward(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    forward_with_plan(g, x, w, y, alpha, beta, ws, &mut WinogradPlan::default());
}

/// [`forward`] with a reusable plan holding the packed transformed filter
/// `U` (see [`crate::winograd::forward_with_plan`]). Bit-identical to the
/// plan-free path.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn forward_with_plan(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
) {
    forward_impl(g, x, w, y, alpha, beta, ws, plan, WinogradDir::Fwd);
}

#[allow(clippy::too_many_arguments)]
fn forward_impl(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
    dir: WinogradDir,
) {
    assert_supported(g);
    assert!(ws.len() >= workspace_floats(g), "workspace too small");
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let k = g.filter.k;
    let (ho, wo) = (g.out_h(), g.out_w());
    let (th, tw) = tiles(g);
    let t = n * th * tw;
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(y.len(), g.output().len(), "y buffer mismatch");

    // Live regions: Ustage[36·K·C] (reference path only; the plan path
    // keeps U packed in the plan) | Vstrip[36·C·NR] | Mstrip[36·K·NR].
    // Cache-blocked per tile strip, as in crate::winograd: transform NR
    // tiles, run the batched GEMM on the strip, transform the products out.
    let pbl_strip = NR * c; // one packed-B panel per ξ
    let (_, rest) = ws.split_at_mut(36 * k * c);
    let (v_strip, m_rest) = rest.split_at_mut(36 * pbl_strip);
    let m_strip = &mut m_rest[..36 * k * NR];

    let u_packed = plan.packed_u(dir, 36, k, c, w, |u| {
        for ki in 0..k {
            for ci in 0..c {
                transform_filter(
                    &w[(ki * c + ci) * 9..(ki * c + ci) * 9 + 9],
                    &mut u[ki * c + ci..],
                    k * c,
                );
            }
        }
    });

    // Per-strip fused pipeline (see crate::winograd for the layout notes):
    // input transform straight into ξ-major packed-B panels, one batched
    // multi-RHS GEMM over all 36 ξ, then the output transform — all on
    // L1/L2-resident strip operands.
    let tpi = th * tw;
    let hw = h * wd;
    for pj in 0..t.div_ceil(NR) {
        let lanes = NR.min(t - pj * NR);
        let mut plane0 = [0usize; NR];
        let mut loh = [0isize; NR];
        let mut low = [0isize; NR];
        for l in 0..lanes {
            let ti = pj * NR + l;
            let (ni, rem) = (ti / tpi, ti % tpi);
            let (tp, tq) = (rem / tw, rem % tw);
            plane0[l] = ni * c * hw;
            loh[l] = (4 * tp) as isize - g.pad_h as isize;
            low[l] = (4 * tq) as isize - g.pad_w as isize;
        }
        let mut d = [[0.0f32; NR]; 36];
        for ci in 0..c {
            for l in 0..lanes {
                let plane = &x[plane0[l] + ci * hw..plane0[l] + (ci + 1) * hw];
                let (oh, ow) = (loh[l], low[l]);
                if oh >= 0 && ow >= 0 && oh + 5 < h as isize && ow + 5 < wd as isize {
                    // Interior tile: six contiguous 6-float rows.
                    for i in 0..6 {
                        let row = &plane[(oh as usize + i) * wd + ow as usize..][..6];
                        for j in 0..6 {
                            d[6 * i + j][l] = row[j];
                        }
                    }
                } else {
                    for i in 0..6 {
                        let ih = oh + i as isize;
                        let row_ok = ih >= 0 && ih < h as isize;
                        for j in 0..6 {
                            let iw = ow + j as isize;
                            d[6 * i + j][l] = if row_ok && iw >= 0 && iw < wd as isize {
                                plane[ih as usize * wd + iw as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
            // Bᵀ·d·B lane-wise: identical zero-skip accumulation order to
            // the scalar reference (BT is const, so the branches fold).
            let mut tmp = [[0.0f32; NR]; 36];
            for (i, brow) in BT.iter().enumerate() {
                for j in 0..6 {
                    let mut acc = [0.0f32; NR];
                    for (kk, b) in brow.iter().enumerate() {
                        if *b != 0.0 {
                            for l in 0..NR {
                                acc[l] += b * d[6 * kk + j][l];
                            }
                        }
                    }
                    tmp[6 * i + j] = acc;
                }
            }
            let mut v = [[0.0f32; NR]; 36];
            for i in 0..6 {
                for j in 0..6 {
                    let mut acc = [0.0f32; NR];
                    for (kk, b) in BT[j].iter().enumerate() {
                        if *b != 0.0 {
                            for l in 0..NR {
                                acc[l] += tmp[6 * i + kk][l] * b;
                            }
                        }
                    }
                    v[6 * i + j] = acc;
                }
            }
            let pbase = ci * NR;
            for (xi, vrow) in v.iter().enumerate() {
                v_strip[xi * pbl_strip + pbase..xi * pbl_strip + pbase + NR].copy_from_slice(vrow);
            }
        }

        // Batched multi-RHS GEMM on the strip:
        // M[ξ] (K×NR) = U[ξ] (K×C) @ V[ξ] (C×NR), operands L2-resident.
        sgemm_prepacked_batch(u_packed, NR, 1.0, v_strip, 0.0, m_strip);

        for ki in 0..k {
            let mut m = [[0.0f32; NR]; 36];
            for (xi, mrow) in m.iter_mut().enumerate() {
                mrow.copy_from_slice(&m_strip[xi * k * NR + ki * NR..][..NR]);
            }
            let mut tmp = [[0.0f32; NR]; 24];
            for (i, arow) in AT.iter().enumerate() {
                for j in 0..6 {
                    let mut acc = [0.0f32; NR];
                    for (kk, a) in arow.iter().enumerate() {
                        if *a != 0.0 {
                            for l in 0..NR {
                                acc[l] += a * m[6 * kk + j][l];
                            }
                        }
                    }
                    tmp[6 * i + j] = acc;
                }
            }
            let mut yt = [[0.0f32; NR]; 16];
            for i in 0..4 {
                for j in 0..4 {
                    let mut acc = [0.0f32; NR];
                    for (kk, a) in AT[j].iter().enumerate() {
                        if *a != 0.0 {
                            for l in 0..NR {
                                acc[l] += tmp[6 * i + kk][l] * a;
                            }
                        }
                    }
                    yt[4 * i + j] = acc;
                }
            }
            // `l` drives the tile coordinates, not just the `yt` index.
            #[allow(clippy::needless_range_loop)]
            for l in 0..lanes {
                let ti = pj * NR + l;
                let (ni, rem) = (ti / tpi, ti % tpi);
                let (tp, tq) = (rem / tw, rem % tw);
                for i in 0..4 {
                    let p = 4 * tp + i;
                    if p >= ho {
                        continue;
                    }
                    for j in 0..4 {
                        let q = 4 * tq + j;
                        if q >= wo {
                            continue;
                        }
                        let o = ((ni * k + ki) * ho + p) * wo + q;
                        write_out(&mut y[o], yt[4 * i + j][l], alpha, beta);
                    }
                }
            }
        }
    }
}

/// The retained naive reference: scalar per-tile transforms and 36 per-ξ
/// [`sgemm_ref`] products, plan-free. Same workspace contract as
/// [`forward`]; baseline for the `hotpath` benchmark and oracle tests.
pub fn forward_ref(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    assert_supported(g);
    assert!(ws.len() >= workspace_floats(g), "workspace too small");
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let k = g.filter.k;
    let (ho, wo) = (g.out_h(), g.out_w());
    let (th, tw) = tiles(g);
    let t = n * th * tw;
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(y.len(), g.output().len(), "y buffer mismatch");

    // Dense layout U[36][K][C] | V[36][C][T] | M[36][K][T] overlaid on the
    // same workspace (fits because packed_b_len(C, T) ≥ C·T).
    let (u_buf, rest) = ws.split_at_mut(36 * k * c);
    let (v_buf, m_rest) = rest.split_at_mut(36 * c * t);
    let m_buf = &mut m_rest[..36 * k * t];

    for ki in 0..k {
        for ci in 0..c {
            transform_filter(
                &w[(ki * c + ci) * 9..(ki * c + ci) * 9 + 9],
                &mut u_buf[ki * c + ci..],
                k * c,
            );
        }
    }

    for ni in 0..n {
        for ci in 0..c {
            let plane = &x[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
            for tp in 0..th {
                for tq in 0..tw {
                    let mut d = [0.0f32; 36];
                    let oh = (4 * tp) as isize - g.pad_h as isize;
                    let ow = (4 * tq) as isize - g.pad_w as isize;
                    for i in 0..6 {
                        let ih = oh + i as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for j in 0..6 {
                            let iw = ow + j as isize;
                            if iw < 0 || iw >= wd as isize {
                                continue;
                            }
                            d[6 * i + j] = plane[ih as usize * wd + iw as usize];
                        }
                    }
                    let tile = (ni * th + tp) * tw + tq;
                    transform_input(&d, &mut v_buf[ci * t + tile..], c * t);
                }
            }
        }
    }

    // 36 naive GEMMs: M[ξ] (K x T) = U[ξ] (K x C) @ V[ξ] (C x T).
    for xi in 0..36 {
        sgemm_ref(
            Trans::No,
            Trans::No,
            k,
            t,
            c,
            1.0,
            &u_buf[xi * k * c..(xi + 1) * k * c],
            &v_buf[xi * c * t..(xi + 1) * c * t],
            0.0,
            &mut m_buf[xi * k * t..(xi + 1) * k * t],
        );
    }

    for ni in 0..n {
        for ki in 0..k {
            for tp in 0..th {
                for tq in 0..tw {
                    let tile = (ni * th + tp) * tw + tq;
                    let yt = transform_output(|xi| m_buf[xi * k * t + ki * t + tile]);
                    for i in 0..4 {
                        let p = 4 * tp + i;
                        if p >= ho {
                            continue;
                        }
                        for j in 0..4 {
                            let q = 4 * tq + j;
                            if q >= wo {
                                continue;
                            }
                            let o = ((ni * k + ki) * ho + p) * wo + q;
                            write_out(&mut y[o], yt[4 * i + j], alpha, beta);
                        }
                    }
                }
            }
        }
    }
}

fn backward_geometry(g: &ConvGeometry) -> ConvGeometry {
    ConvGeometry::new(
        Shape4::new(g.input.n, g.filter.k, g.out_h(), g.out_w()),
        FilterShape::new(g.input.c, g.filter.k, 3, 3),
        2 - g.pad_h,
        2 - g.pad_w,
        1,
        1,
    )
}

/// Workspace in `f32` elements for [`backward_data`].
pub fn workspace_floats_backward_data(g: &ConvGeometry) -> usize {
    workspace_floats(&backward_geometry(g)) + g.filter.len()
}

/// Flip `w` into `w'[ci][ki][r][s] = w[ki][ci][2-r][2-s]` at the end of `ws`.
fn stage_flipped_filter<'a>(
    g: &ConvGeometry,
    w: &[f32],
    ws: &'a mut [f32],
) -> (&'a mut [f32], &'a mut [f32]) {
    let (k, c) = (g.filter.k, g.input.c);
    let (rest, wflip) = ws.split_at_mut(ws.len() - g.filter.len());
    for ci in 0..c {
        for ki in 0..k {
            for r in 0..3 {
                for s in 0..3 {
                    wflip[((ci * k + ki) * 3 + r) * 3 + s] =
                        w[((ki * c + ci) * 3 + (2 - r)) * 3 + (2 - s)];
                }
            }
        }
    }
    (rest, wflip)
}

/// `dx = alpha * grad_x + beta * dx` — forward F(4×4) on the rotated,
/// channel-transposed filter with complementary padding.
pub fn backward_data(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    backward_data_with_plan(g, dy, w, dx, alpha, beta, ws, &mut WinogradPlan::default());
}

/// [`backward_data`] with a reusable plan (fingerprints the flipped filter
/// in its own direction slot, so sharing a plan with forward never thrashes).
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn backward_data_with_plan(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
) {
    assert_supported(g);
    assert!(
        ws.len() >= workspace_floats_backward_data(g),
        "workspace too small"
    );
    let bg = backward_geometry(g);
    debug_assert_eq!(bg.output(), g.input);
    let (rest, wflip) = stage_flipped_filter(g, w, ws);
    forward_impl(
        &bg,
        dy,
        wflip,
        dx,
        alpha,
        beta,
        rest,
        plan,
        WinogradDir::Bwd,
    );
}

/// Naive-baseline counterpart of [`backward_data`]: [`forward_ref`] on the
/// flipped filter. Same workspace contract as [`backward_data`].
pub fn backward_data_ref(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    assert_supported(g);
    assert!(
        ws.len() >= workspace_floats_backward_data(g),
        "workspace too small"
    );
    let bg = backward_geometry(g);
    let (rest, wflip) = stage_flipped_filter(g, w, ws);
    forward_ref(&bg, dy, wflip, dx, alpha, beta, rest);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use ucudnn_tensor::{assert_all_close, Tensor};

    fn geoms() -> Vec<ConvGeometry> {
        vec![
            ConvGeometry::with_square(Shape4::new(2, 3, 8, 8), FilterShape::new(4, 3, 3, 3), 1, 1),
            // Non-multiple-of-4 outputs exercise edge-tile clipping.
            ConvGeometry::with_square(Shape4::new(1, 2, 9, 11), FilterShape::new(3, 2, 3, 3), 1, 1),
            ConvGeometry::with_square(Shape4::new(3, 1, 6, 6), FilterShape::new(2, 1, 3, 3), 0, 1),
            ConvGeometry::with_square(
                Shape4::new(1, 2, 13, 13),
                FilterShape::new(2, 2, 3, 3),
                2,
                1,
            ),
            // More tiles than one NR strip, crossing image boundaries.
            ConvGeometry::with_square(
                Shape4::new(3, 2, 14, 18),
                FilterShape::new(2, 2, 3, 3),
                1,
                1,
            ),
        ]
    }

    #[test]
    fn forward_matches_direct() {
        for g in geoms() {
            let x = Tensor::random(g.input, 1);
            let w = Tensor::random(g.filter.as_shape4(), 2);
            let mut y_ref = Tensor::zeros(g.output());
            direct::forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut y = Tensor::zeros(g.output());
            let mut ws = vec![0.0; workspace_floats(&g)];
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&y_ref, &y, 5e-3);
            let mut y_naive = Tensor::zeros(g.output());
            forward_ref(
                &g,
                x.as_slice(),
                w.as_slice(),
                y_naive.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&y_ref, &y_naive, 5e-3);
        }
    }

    #[test]
    fn backward_data_matches_direct() {
        for g in geoms() {
            let dy = Tensor::random(g.output(), 3);
            let w = Tensor::random(g.filter.as_shape4(), 4);
            let mut dx_ref = Tensor::zeros(g.input);
            direct::backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut dx = Tensor::zeros(g.input);
            let mut ws = vec![0.0; workspace_floats_backward_data(&g)];
            backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&dx_ref, &dx, 5e-3);
            let mut dx_naive = Tensor::zeros(g.input);
            backward_data_ref(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx_naive.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&dx_ref, &dx_naive, 5e-3);
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 7);
        let w = Tensor::random(g.filter.as_shape4(), 8);
        let init = Tensor::random(g.output(), 9);
        let mut y_ref = init.clone();
        direct::forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y_ref.as_mut_slice(),
            0.5,
            2.0,
        );
        let mut y = init.clone();
        let mut ws = vec![0.0; workspace_floats(&g)];
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            0.5,
            2.0,
            &mut ws,
        );
        assert_all_close(&y_ref, &y, 5e-3);
    }

    #[test]
    fn beta_zero_ignores_garbage_output() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 27);
        let w = Tensor::random(g.filter.as_shape4(), 28);
        let mut ws = vec![0.0; workspace_floats(&g)];
        let mut clean = Tensor::zeros(g.output());
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            clean.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        let mut dirty = Tensor::zeros(g.output());
        dirty.as_mut_slice().fill(f32::NAN);
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            dirty.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        for (a, b) in clean.as_slice().iter().zip(dirty.as_slice()) {
            assert!(b.is_finite(), "beta=0 must not read the NaN-seeded output");
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn warm_plan_is_bit_identical() {
        let g = geoms()[1];
        let x = Tensor::random(g.input, 61);
        let w = Tensor::random(g.filter.as_shape4(), 62);
        let mut ws = vec![0.0; workspace_floats(&g)];
        let mut cold = Tensor::zeros(g.output());
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            cold.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        let mut plan = WinogradPlan::default();
        for _ in 0..3 {
            let mut warm = Tensor::zeros(g.output());
            forward_with_plan(
                &g,
                x.as_slice(),
                w.as_slice(),
                warm.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
                &mut plan,
            );
            for (a, b) in cold.as_slice().iter().zip(warm.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "plan path diverged");
            }
        }
        assert!(plan.bytes() > 0);
    }

    #[test]
    fn needs_fewer_tiles_than_f2() {
        // F(4×4) halves the tile count per axis vs F(2×2) — the reason the
        // non-fused workspace is not simply 36/16 of the fused layout.
        let g = ConvGeometry::with_square(
            Shape4::new(8, 16, 32, 32),
            FilterShape::new(16, 16, 3, 3),
            1,
            1,
        );
        let f4 = workspace_floats(&g);
        let f2 = crate::winograd::workspace_floats(&g);
        // 36 elements on a quarter of the tiles vs 16 on all of them.
        assert!(
            f4 < f2,
            "F(4x4) ws {f4} should undercut F(2x2) ws {f2} here"
        );
    }

    #[test]
    fn identity_kernel_recovers_input() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 8, 8), FilterShape::new(1, 1, 3, 3), 1, 1);
        let x = Tensor::random(g.input, 11);
        let mut w = Tensor::zeros(g.filter.as_shape4());
        w.set(0, 0, 1, 1, 1.0); // centre tap
        let mut y = Tensor::zeros(g.output());
        let mut ws = vec![0.0; workspace_floats(&g)];
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        assert_all_close(&x, &y, 1e-4);
    }
}
