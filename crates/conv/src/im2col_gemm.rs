//! The im2col + GEMM convolution engine (cuDNN `ALGO_GEMM` analogue).
//!
//! Each sample is lowered in caller-provided workspace and multiplied
//! against the filter matrix. The forward path fuses the lowering with GEMM
//! operand packing ([`crate::im2col::im2col_packed_b`]): columns are written
//! straight into packed-B panels, so no separate `(C*R*S) x (Ho*Wo)` im2col
//! matrix is materialized and the GEMM skips its internal packing pass. The
//! backward paths still use the explicit column buffer (the data gradient
//! *produces* columns; the filter gradient consumes them as the transposed
//! operand). The explicit lowering is what gives this algorithm its
//! workspace appetite in cuDNN; the *model* of the GPU algorithm's workspace
//! lives in `ucudnn-gpu-model`.

use crate::gemm::{sgemm, sgemm_prepacked, sgemm_prepacked_a, Trans};
use crate::im2col::{col2im_add, im2col, im2col_packed_b, packed_col_len};
use crate::plan::GemmPlan;
use ucudnn_tensor::ConvGeometry;

/// Workspace (in `f32` elements) required by this engine for any of the
/// three convolution operations: the single-sample column buffer, rounded up
/// to whole packed-B panels for the fused forward path
/// (`packed_col_len >= col_len`, so the backward paths fit too).
pub fn workspace_floats(g: &ConvGeometry) -> usize {
    packed_col_len(g)
}

fn check_ws(g: &ConvGeometry, ws: &[f32]) {
    assert!(
        ws.len() >= workspace_floats(g),
        "workspace too small: {} < {}",
        ws.len(),
        workspace_floats(g)
    );
}

/// `y = alpha * conv(x, w) + beta * y` via per-sample im2col + GEMM.
pub fn forward(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    forward_with_plan(g, x, w, y, alpha, beta, ws, &mut GemmPlan::default());
}

/// [`forward`] with a reusable plan: the filter is packed into GEMM panels
/// once (revalidated by fingerprint) and every sample — and every subsequent
/// micro-batch of the same layer — reuses the packed panels. Bit-identical
/// to the plan-free path (packing is deterministic).
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn forward_with_plan(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut GemmPlan,
) {
    check_ws(g, ws);
    let n = g.input.n;
    let (k, crs) = (g.filter.k, g.input.c * g.filter.r * g.filter.s);
    let howo = g.out_h() * g.out_w();
    let in_sample = g.input.sample_len();
    let out_sample = k * howo;
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(y.len(), n * out_sample, "y buffer mismatch");

    let packed_w = plan.packed_forward(k, crs, w);
    let pcol = &mut ws[..packed_col_len(g)];
    for ni in 0..n {
        // Fused im2col + pack: columns land directly in packed-B panels.
        im2col_packed_b(g, &x[ni * in_sample..(ni + 1) * in_sample], pcol);
        // y[n] (K x HoWo) = alpha * W (K x CRS) @ col (CRS x HoWo) + beta * y[n]
        sgemm_prepacked(
            packed_w,
            howo,
            alpha,
            pcol,
            beta,
            &mut y[ni * out_sample..(ni + 1) * out_sample],
        );
    }
}

/// `dx = alpha * grad_x + beta * dx` via GEMM + col2im.
pub fn backward_data(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    backward_data_with_plan(g, dy, w, dx, alpha, beta, ws, &mut GemmPlan::default());
}

/// [`backward_data`] with a reusable plan holding the packed `Wᵀ` panels.
/// Bit-identical to the plan-free path.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn backward_data_with_plan(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut GemmPlan,
) {
    check_ws(g, ws);
    let n = g.input.n;
    let (k, crs) = (g.filter.k, g.input.c * g.filter.r * g.filter.s);
    let howo = g.out_h() * g.out_w();
    let in_sample = g.input.sample_len();
    let out_sample = k * howo;
    assert_eq!(dy.len(), n * out_sample, "dy buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(dx.len(), g.input.len(), "dx buffer mismatch");

    let packed_wt = plan.packed_backward_data(crs, k, w);
    let col = &mut ws[..crs * howo];
    for ni in 0..n {
        // col (CRS x HoWo) = W^T (CRS x K) @ dy[n] (K x HoWo)
        sgemm_prepacked_a(
            packed_wt,
            Trans::No,
            howo,
            1.0,
            &dy[ni * out_sample..(ni + 1) * out_sample],
            0.0,
            col,
        );
        let dxs = &mut dx[ni * in_sample..(ni + 1) * in_sample];
        if beta == 0.0 {
            // cuDNN semantics: beta == 0 must not read the output buffer.
            dxs.fill(0.0);
        } else if beta != 1.0 {
            for v in dxs.iter_mut() {
                *v *= beta;
            }
        }
        col2im_add(g, col, dxs, alpha);
    }
}

/// `dw = alpha * grad_w + beta * dw` via im2col + GEMM, reducing over the
/// batch inside the engine (beta applies once, further samples accumulate).
pub fn backward_filter(
    g: &ConvGeometry,
    x: &[f32],
    dy: &[f32],
    dw: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    check_ws(g, ws);
    let n = g.input.n;
    let (k, crs) = (g.filter.k, g.input.c * g.filter.r * g.filter.s);
    let howo = g.out_h() * g.out_w();
    let in_sample = g.input.sample_len();
    let out_sample = k * howo;
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(dy.len(), n * out_sample, "dy buffer mismatch");
    assert_eq!(dw.len(), g.filter.len(), "dw buffer mismatch");

    let col = &mut ws[..crs * howo];
    if beta == 0.0 {
        // cuDNN semantics: beta == 0 must not read the output buffer.
        dw.fill(0.0);
    } else if beta != 1.0 {
        for v in dw.iter_mut() {
            *v *= beta;
        }
    }
    for ni in 0..n {
        im2col(g, &x[ni * in_sample..(ni + 1) * in_sample], col);
        // dw (K x CRS) += alpha * dy[n] (K x HoWo) @ col^T (HoWo x CRS)
        sgemm(
            Trans::No,
            Trans::Yes,
            k,
            crs,
            howo,
            alpha,
            &dy[ni * out_sample..(ni + 1) * out_sample],
            col,
            1.0,
            dw,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use ucudnn_tensor::{assert_all_close, FilterShape, Shape4, Tensor};

    fn geoms() -> Vec<ConvGeometry> {
        vec![
            ConvGeometry::with_square(Shape4::new(3, 3, 8, 8), FilterShape::new(4, 3, 3, 3), 1, 1),
            ConvGeometry::with_square(Shape4::new(2, 4, 9, 9), FilterShape::new(5, 4, 5, 5), 2, 2),
            ConvGeometry::with_square(Shape4::new(2, 2, 11, 7), FilterShape::new(3, 2, 3, 3), 0, 3),
            ConvGeometry::with_square(Shape4::new(1, 1, 5, 5), FilterShape::new(1, 1, 1, 1), 0, 1),
        ]
    }

    #[test]
    fn forward_matches_direct() {
        for g in geoms() {
            let x = Tensor::random(g.input, 1);
            let w = Tensor::random(g.filter.as_shape4(), 2);
            let mut y_ref = Tensor::zeros(g.output());
            direct::forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut y = Tensor::zeros(g.output());
            let mut ws = vec![0.0; workspace_floats(&g)];
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&y_ref, &y, 1e-4);
        }
    }

    #[test]
    fn backward_data_matches_direct() {
        for g in geoms() {
            let dy = Tensor::random(g.output(), 3);
            let w = Tensor::random(g.filter.as_shape4(), 4);
            let mut dx_ref = Tensor::zeros(g.input);
            direct::backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut dx = Tensor::zeros(g.input);
            let mut ws = vec![0.0; workspace_floats(&g)];
            backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&dx_ref, &dx, 1e-4);
        }
    }

    #[test]
    fn backward_filter_matches_direct() {
        for g in geoms() {
            let x = Tensor::random(g.input, 5);
            let dy = Tensor::random(g.output(), 6);
            let mut dw_ref = Tensor::zeros(g.filter.as_shape4());
            direct::backward_filter(
                &g,
                x.as_slice(),
                dy.as_slice(),
                dw_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut dw = Tensor::zeros(g.filter.as_shape4());
            let mut ws = vec![0.0; workspace_floats(&g)];
            backward_filter(
                &g,
                x.as_slice(),
                dy.as_slice(),
                dw.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&dw_ref, &dw, 1e-3);
        }
    }

    #[test]
    fn alpha_beta_semantics_match_direct() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 7);
        let w = Tensor::random(g.filter.as_shape4(), 8);
        let init = Tensor::random(g.output(), 9);
        let (alpha, beta) = (0.5, 2.0);
        let mut y_ref = init.clone();
        direct::forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y_ref.as_mut_slice(),
            alpha,
            beta,
        );
        let mut y = init.clone();
        let mut ws = vec![0.0; workspace_floats(&g)];
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            alpha,
            beta,
            &mut ws,
        );
        assert_all_close(&y_ref, &y, 1e-4);
    }

    #[test]
    fn backward_filter_accumulation_across_micro_batches() {
        let g =
            ConvGeometry::with_square(Shape4::new(6, 2, 6, 6), FilterShape::new(3, 2, 3, 3), 1, 1);
        let x = Tensor::random(g.input, 10);
        let dy = Tensor::random(g.output(), 11);
        let mut ws = vec![0.0; workspace_floats(&g)];
        let mut dw_full = Tensor::zeros(g.filter.as_shape4());
        backward_filter(
            &g,
            x.as_slice(),
            dy.as_slice(),
            dw_full.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );

        let mut dw_micro = Tensor::zeros(g.filter.as_shape4());
        for (i, (lo, hi)) in [(0usize, 1usize), (1, 4), (4, 6)].into_iter().enumerate() {
            let mg = g.with_batch(hi - lo);
            backward_filter(
                &mg,
                x.batch_slice(lo, hi),
                dy.batch_slice(lo, hi),
                dw_micro.as_mut_slice(),
                1.0,
                if i == 0 { 0.0 } else { 1.0 },
                &mut ws,
            );
        }
        assert_all_close(&dw_full, &dw_micro, 1e-3);
    }

    #[test]
    fn warm_plan_is_bit_identical() {
        for g in geoms() {
            let x = Tensor::random(g.input, 21);
            let w = Tensor::random(g.filter.as_shape4(), 22);
            let dy = Tensor::random(g.output(), 23);
            let mut ws = vec![0.0; workspace_floats(&g)];

            let mut cold_y = Tensor::zeros(g.output());
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                cold_y.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            let mut plan = GemmPlan::default();
            for _ in 0..3 {
                let mut warm_y = Tensor::zeros(g.output());
                forward_with_plan(
                    &g,
                    x.as_slice(),
                    w.as_slice(),
                    warm_y.as_mut_slice(),
                    1.0,
                    0.0,
                    &mut ws,
                    &mut plan,
                );
                for (a, b) in cold_y.as_slice().iter().zip(warm_y.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "plan forward diverged ({g})");
                }
            }

            let mut cold_dx = Tensor::zeros(g.input);
            backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                cold_dx.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            for _ in 0..2 {
                let mut warm_dx = Tensor::zeros(g.input);
                backward_data_with_plan(
                    &g,
                    dy.as_slice(),
                    w.as_slice(),
                    warm_dx.as_mut_slice(),
                    1.0,
                    0.0,
                    &mut ws,
                    &mut plan,
                );
                for (a, b) in cold_dx.as_slice().iter().zip(warm_dx.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "plan bwd-data diverged ({g})");
                }
            }
            assert!(plan.bytes() > 0, "warm plan should hold packed panels");
        }
    }

    #[test]
    fn backward_data_beta_zero_ignores_garbage_output() {
        let g = geoms()[0];
        let dy = Tensor::random(g.output(), 25);
        let w = Tensor::random(g.filter.as_shape4(), 26);
        let mut ws = vec![0.0; workspace_floats(&g)];
        let mut clean = Tensor::zeros(g.input);
        backward_data(
            &g,
            dy.as_slice(),
            w.as_slice(),
            clean.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        let mut dirty = Tensor::zeros(g.input);
        dirty.as_mut_slice().fill(f32::NAN);
        backward_data(
            &g,
            dy.as_slice(),
            w.as_slice(),
            dirty.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        for (a, b) in clean.as_slice().iter().zip(dirty.as_slice()) {
            assert!(b.is_finite(), "beta=0 must not read the NaN-seeded output");
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn backward_filter_beta_zero_ignores_garbage_output() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 27);
        let dy = Tensor::random(g.output(), 28);
        let mut ws = vec![0.0; workspace_floats(&g)];
        let mut dw = Tensor::zeros(g.filter.as_shape4());
        dw.as_mut_slice().fill(f32::NAN);
        backward_filter(
            &g,
            x.as_slice(),
            dy.as_slice(),
            dw.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        assert!(dw.as_slice().iter().all(|v| v.is_finite()));
    }

    #[test]
    #[should_panic(expected = "workspace too small")]
    fn rejects_undersized_workspace() {
        let g = geoms()[0];
        let x = Tensor::zeros(g.input);
        let w = Tensor::zeros(g.filter.as_shape4());
        let mut y = Tensor::zeros(g.output());
        let mut ws = vec![0.0; workspace_floats(&g) - 1];
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
    }
}
