//! Radix-2 complex FFT and 2-D helpers for the FFT convolution engine.

/// A single-precision complex number.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct C32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

#[allow(clippy::should_implement_trait)] // named like cuFFT helpers, not operator overloads
impl C32 {
    /// Construct from parts.
    pub const fn new(re: f32, im: f32) -> Self {
        Self { re, im }
    }

    /// Complex multiplication.
    #[inline]
    pub fn mul(self, o: Self) -> Self {
        Self::new(
            self.re * o.re - self.im * o.im,
            self.re * o.im + self.im * o.re,
        )
    }

    /// `self * conj(o)` — used by the correlation theorem.
    #[inline]
    pub fn mul_conj(self, o: Self) -> Self {
        Self::new(
            self.re * o.re + self.im * o.im,
            self.im * o.re - self.re * o.im,
        )
    }

    /// Complex addition.
    #[inline]
    pub fn add(self, o: Self) -> Self {
        Self::new(self.re + o.re, self.im + o.im)
    }

    /// Complex subtraction.
    #[inline]
    pub fn sub(self, o: Self) -> Self {
        Self::new(self.re - o.re, self.im - o.im)
    }
}

/// Smallest power of two ≥ `n` (and ≥ 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// In-place iterative radix-2 FFT. `buf.len()` must be a power of two.
/// The inverse transform includes the `1/n` normalization.
///
/// # Panics
/// Panics when the length is not a power of two.
pub fn fft(buf: &mut [C32], inverse: bool) {
    let n = buf.len();
    assert!(n.is_power_of_two(), "FFT length {n} is not a power of two");
    if n <= 1 {
        return;
    }

    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if i < j {
            buf.swap(i, j);
        }
    }

    // Butterflies. Twiddles computed per stage in f64 for accuracy.
    let sign = if inverse { 1.0f64 } else { -1.0f64 };
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = C32::new(ang.cos() as f32, ang.sin() as f32);
        for start in (0..n).step_by(len) {
            let mut w = C32::new(1.0, 0.0);
            for i in 0..len / 2 {
                let a = buf[start + i];
                let b = buf[start + i + len / 2].mul(w);
                buf[start + i] = a.add(b);
                buf[start + i + len / 2] = a.sub(b);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }

    if inverse {
        let inv = 1.0 / n as f32;
        for v in buf.iter_mut() {
            v.re *= inv;
            v.im *= inv;
        }
    }
}

/// In-place 2-D FFT over an `fh x fw` row-major grid (both powers of two).
pub fn fft2d(buf: &mut [C32], fh: usize, fw: usize, inverse: bool) {
    assert_eq!(buf.len(), fh * fw, "grid size mismatch");
    for row in buf.chunks_exact_mut(fw) {
        fft(row, inverse);
    }
    let mut col = vec![C32::default(); fh];
    for j in 0..fw {
        for i in 0..fh {
            col[i] = buf[i * fw + j];
        }
        fft(&mut col, inverse);
        for i in 0..fh {
            buf[i * fw + j] = col[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_dft(x: &[C32], inverse: bool) -> Vec<C32> {
        let n = x.len();
        let sign = if inverse { 1.0f64 } else { -1.0 };
        let mut out = vec![C32::default(); n];
        for (k, o) in out.iter_mut().enumerate() {
            let mut re = 0.0f64;
            let mut im = 0.0f64;
            for (t, v) in x.iter().enumerate() {
                let ang = sign * 2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                let (c, s) = (ang.cos(), ang.sin());
                re += v.re as f64 * c - v.im as f64 * s;
                im += v.re as f64 * s + v.im as f64 * c;
            }
            let scale = if inverse { 1.0 / n as f64 } else { 1.0 };
            *o = C32::new((re * scale) as f32, (im * scale) as f32);
        }
        out
    }

    fn rand_signal(n: usize, seed: u64) -> Vec<C32> {
        let mut rng = ucudnn_tensor::DeterministicRng::new(seed);
        (0..n)
            .map(|_| {
                C32::new(
                    rng.next_uniform() * 2.0 - 1.0,
                    rng.next_uniform() * 2.0 - 1.0,
                )
            })
            .collect()
    }

    #[test]
    fn matches_naive_dft() {
        for n in [1usize, 2, 4, 8, 32, 128] {
            let x = rand_signal(n, n as u64);
            let mut got = x.clone();
            fft(&mut got, false);
            let want = naive_dft(&x, false);
            for (g, w) in got.iter().zip(&want) {
                assert!(
                    (g.re - w.re).abs() < 2e-3 && (g.im - w.im).abs() < 2e-3,
                    "n={n}: {g:?} vs {w:?}"
                );
            }
        }
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let x = rand_signal(64, 9);
        let mut y = x.clone();
        fft(&mut y, false);
        fft(&mut y, true);
        for (a, b) in x.iter().zip(&y) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn fft2d_roundtrip() {
        let (fh, fw) = (8, 16);
        let x = rand_signal(fh * fw, 3);
        let mut y = x.clone();
        fft2d(&mut y, fh, fw, false);
        fft2d(&mut y, fh, fw, true);
        for (a, b) in x.iter().zip(&y) {
            assert!((a.re - b.re).abs() < 1e-4 && (a.im - b.im).abs() < 1e-4);
        }
    }

    #[test]
    fn delta_transforms_to_ones() {
        let mut x = vec![C32::default(); 16];
        x[0] = C32::new(1.0, 0.0);
        fft(&mut x, false);
        for v in &x {
            assert!((v.re - 1.0).abs() < 1e-5 && v.im.abs() < 1e-5);
        }
    }

    #[test]
    fn parseval_energy_conserved() {
        let x = rand_signal(256, 12);
        let time_e: f64 = x
            .iter()
            .map(|v| (v.re as f64).powi(2) + (v.im as f64).powi(2))
            .sum();
        let mut y = x.clone();
        fft(&mut y, false);
        let freq_e: f64 = y
            .iter()
            .map(|v| (v.re as f64).powi(2) + (v.im as f64).powi(2))
            .sum::<f64>()
            / 256.0;
        assert!((time_e - freq_e).abs() < 1e-2 * time_e);
    }

    #[test]
    fn mul_conj_is_correlation_kernel() {
        let a = C32::new(2.0, 3.0);
        let b = C32::new(5.0, -1.0);
        let want = a.mul(C32::new(b.re, -b.im));
        assert_eq!(a.mul_conj(b), want);
    }

    #[test]
    fn next_pow2_values() {
        assert_eq!(next_pow2(0), 1);
        assert_eq!(next_pow2(1), 1);
        assert_eq!(next_pow2(2), 2);
        assert_eq!(next_pow2(31), 32);
        assert_eq!(next_pow2(32), 32);
        assert_eq!(next_pow2(33), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_non_pow2() {
        let mut x = vec![C32::default(); 6];
        fft(&mut x, false);
    }
}
