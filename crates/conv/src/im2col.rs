//! im2col / col2im transforms for the GEMM convolution engine.
//!
//! For one sample, `im2col` lowers the (C, H, W) activation into a
//! `(C*R*S) x (Ho*Wo)` matrix whose column `(p, q)` is the receptive field of
//! output position `(p, q)`; convolution then becomes a single GEMM with the
//! `(K, C*R*S)` filter matrix. `col2im` is the adjoint scatter-add used for
//! the data gradient.

use crate::gemm::{packed_b_len, NR};
use ucudnn_tensor::ConvGeometry;

/// Number of `f32` elements in the column matrix for a single sample.
pub fn col_len(g: &ConvGeometry) -> usize {
    g.input.c * g.filter.r * g.filter.s * g.out_h() * g.out_w()
}

/// Number of `f32` elements of [`im2col_packed_b`] output for one sample:
/// the column matrix rounded up to whole NR panels (`>=` [`col_len`]).
pub fn packed_col_len(g: &ConvGeometry) -> usize {
    packed_b_len(g.input.c * g.filter.r * g.filter.s, g.out_h() * g.out_w())
}

/// Fused im2col + B-pack: lower one sample `x` of shape (C, H, W) straight
/// into the packed-B panel layout of [`crate::gemm::sgemm_prepacked`],
/// without materializing the `(C*R*S) x (Ho*Wo)` column matrix first.
/// Bit-identical to `im2col` followed by `pack_b_into` (both zero-fill
/// out-of-bounds taps and the edge panel's padding columns).
///
/// # Panics
/// Panics when buffer sizes do not match the geometry.
pub fn im2col_packed_b(g: &ConvGeometry, x: &[f32], buf: &mut [f32]) {
    let (c, h, w) = (g.input.c, g.input.h, g.input.w);
    let (r, s) = (g.filter.r, g.filter.s);
    let (ho, wo) = (g.out_h(), g.out_w());
    let crs = c * r * s;
    let howo = ho * wo;
    assert_eq!(x.len(), c * h * w, "sample buffer mismatch");
    assert_eq!(buf.len(), packed_col_len(g), "packed col buffer mismatch");

    for pj in 0..howo.div_ceil(NR) {
        let cols = NR.min(howo - pj * NR);
        let panel = &mut buf[pj * NR * crs..(pj + 1) * NR * crs];
        // Per-lane output coordinates for this panel of columns.
        let mut op = [0usize; NR];
        let mut oq = [0usize; NR];
        for j in 0..cols {
            let col = pj * NR + j;
            op[j] = col / wo;
            oq[j] = col % wo;
        }
        let mut row = 0usize;
        for ci in 0..c {
            let xc = &x[ci * h * w..(ci + 1) * h * w];
            for ri in 0..r {
                for si in 0..s {
                    let dst = &mut panel[row * NR..(row + 1) * NR];
                    row += 1;
                    for j in 0..cols {
                        let ih = (op[j] * g.stride_h + ri) as isize - g.pad_h as isize;
                        let iw = (oq[j] * g.stride_w + si) as isize - g.pad_w as isize;
                        dst[j] = if ih < 0 || ih >= h as isize || iw < 0 || iw >= w as isize {
                            0.0
                        } else {
                            xc[ih as usize * w + iw as usize]
                        };
                    }
                    // Padding lanes of the edge panel stay zero, matching
                    // pack_b_into's zero-fill.
                    dst[cols..].fill(0.0);
                }
            }
        }
    }
}

/// Lower one sample `x` of shape (C, H, W) into `col` (row-major
/// `(C*R*S) x (Ho*Wo)`), zero-filling out-of-bounds taps.
///
/// # Panics
/// Panics when buffer sizes do not match the geometry.
pub fn im2col(g: &ConvGeometry, x: &[f32], col: &mut [f32]) {
    let (c, h, w) = (g.input.c, g.input.h, g.input.w);
    let (r, s) = (g.filter.r, g.filter.s);
    let (ho, wo) = (g.out_h(), g.out_w());
    assert_eq!(x.len(), c * h * w, "sample buffer mismatch");
    assert_eq!(col.len(), col_len(g), "col buffer mismatch");

    let mut row = 0usize;
    for ci in 0..c {
        let xc = &x[ci * h * w..(ci + 1) * h * w];
        for ri in 0..r {
            for si in 0..s {
                let dst = &mut col[row * ho * wo..(row + 1) * ho * wo];
                row += 1;
                for p in 0..ho {
                    let ih = (p * g.stride_h + ri) as isize - g.pad_h as isize;
                    if ih < 0 || ih >= h as isize {
                        dst[p * wo..(p + 1) * wo].fill(0.0);
                        continue;
                    }
                    let xrow = &xc[ih as usize * w..(ih as usize + 1) * w];
                    for q in 0..wo {
                        let iw = (q * g.stride_w + si) as isize - g.pad_w as isize;
                        dst[p * wo + q] = if iw < 0 || iw >= w as isize {
                            0.0
                        } else {
                            xrow[iw as usize]
                        };
                    }
                }
            }
        }
    }
}

/// Adjoint of [`im2col`]: scatter-add `col` back into the (C, H, W) sample
/// gradient `dx` (which must be pre-scaled by the caller; this only adds).
pub fn col2im_add(g: &ConvGeometry, col: &[f32], dx: &mut [f32], alpha: f32) {
    let (c, h, w) = (g.input.c, g.input.h, g.input.w);
    let (r, s) = (g.filter.r, g.filter.s);
    let (ho, wo) = (g.out_h(), g.out_w());
    assert_eq!(dx.len(), c * h * w, "sample buffer mismatch");
    assert_eq!(col.len(), col_len(g), "col buffer mismatch");

    let mut row = 0usize;
    for ci in 0..c {
        let dxc = &mut dx[ci * h * w..(ci + 1) * h * w];
        for ri in 0..r {
            for si in 0..s {
                let src = &col[row * ho * wo..(row + 1) * ho * wo];
                row += 1;
                for p in 0..ho {
                    let ih = (p * g.stride_h + ri) as isize - g.pad_h as isize;
                    if ih < 0 || ih >= h as isize {
                        continue;
                    }
                    for q in 0..wo {
                        let iw = (q * g.stride_w + si) as isize - g.pad_w as isize;
                        if iw < 0 || iw >= w as isize {
                            continue;
                        }
                        dxc[ih as usize * w + iw as usize] += alpha * src[p * wo + q];
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_tensor::{FilterShape, Shape4, Tensor};

    #[test]
    fn im2col_identity_1x1() {
        // 1x1 kernel, no pad, stride 1: col is just the flattened sample.
        let g =
            ConvGeometry::with_square(Shape4::new(1, 3, 4, 4), FilterShape::new(2, 3, 1, 1), 0, 1);
        let x = Tensor::random(g.input.with_batch(1), 3);
        let mut col = vec![0.0; col_len(&g)];
        im2col(&g, x.as_slice(), &mut col);
        assert_eq!(col.as_slice(), x.as_slice());
    }

    #[test]
    fn im2col_zero_pads_border() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 2, 2), FilterShape::new(1, 1, 3, 3), 1, 1);
        let x = vec![1.0, 2.0, 3.0, 4.0];
        let mut col = vec![-1.0; col_len(&g)];
        im2col(&g, &x, &mut col);
        // Row (ri=0, si=0): taps x[p-1, q-1] => only (p,q)=(1,1) hits x[0,0]=1.
        assert_eq!(&col[0..4], &[0.0, 0.0, 0.0, 1.0]);
        // Row (ri=1, si=1): centre taps reproduce the input.
        let centre = 4; // (ri*3+si) = 4
        assert_eq!(&col[centre * 4..centre * 4 + 4], &[1.0, 2.0, 3.0, 4.0]);
    }

    /// col2im_add must be the exact adjoint of im2col:
    /// <im2col(x), c> == <x, col2im(c)>.
    #[test]
    fn col2im_is_adjoint_of_im2col() {
        for (pad, stride) in [(0usize, 1usize), (1, 1), (2, 2), (1, 3)] {
            let g = ConvGeometry::with_square(
                Shape4::new(1, 3, 8, 8),
                FilterShape::new(2, 3, 3, 3),
                pad,
                stride,
            );
            let x = Tensor::random(g.input.with_batch(1), 1);
            let cvec = Tensor::random(Shape4::new(1, 1, 1, col_len(&g)), 2);
            let mut col = vec![0.0; col_len(&g)];
            im2col(&g, x.as_slice(), &mut col);
            let mut back = vec![0.0; x.shape().len()];
            col2im_add(&g, cvec.as_slice(), &mut back, 1.0);
            let lhs: f64 = col
                .iter()
                .zip(cvec.as_slice())
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            let rhs: f64 = x
                .as_slice()
                .iter()
                .zip(&back)
                .map(|(a, b)| (*a as f64) * (*b as f64))
                .sum();
            assert!(
                (lhs - rhs).abs() <= 1e-3 * lhs.abs().max(1.0),
                "pad={pad} stride={stride}"
            );
        }
    }

    #[test]
    fn fused_pack_matches_im2col_then_pack_b() {
        use crate::gemm::{pack_b_into, Trans};
        for (pad, stride) in [(0usize, 1usize), (1, 1), (2, 2), (1, 3)] {
            let g = ConvGeometry::with_square(
                Shape4::new(1, 3, 9, 7),
                FilterShape::new(2, 3, 3, 3),
                pad,
                stride,
            );
            let x = Tensor::random(g.input.with_batch(1), 41);
            let crs = g.input.c * g.filter.r * g.filter.s;
            let howo = g.out_h() * g.out_w();
            let mut col = vec![0.0; col_len(&g)];
            im2col(&g, x.as_slice(), &mut col);
            let mut unfused = Vec::new();
            pack_b_into(Trans::No, crs, howo, &col, &mut unfused);
            let mut fused = vec![f32::NAN; packed_col_len(&g)];
            im2col_packed_b(&g, x.as_slice(), &mut fused);
            assert_eq!(unfused.len(), fused.len());
            for (a, b) in unfused.iter().zip(&fused) {
                assert_eq!(a.to_bits(), b.to_bits(), "pad={pad} stride={stride}");
            }
        }
    }

    #[test]
    fn col_len_formula() {
        let g =
            ConvGeometry::with_square(Shape4::new(4, 3, 8, 8), FilterShape::new(2, 3, 3, 3), 1, 2);
        assert_eq!(col_len(&g), 3 * 3 * 3 * g.out_h() * g.out_w());
    }
}
