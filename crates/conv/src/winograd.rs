//! Winograd F(2×2, 3×3) convolution engine (cuDNN `ALGO_WINOGRAD` analogue).
//!
//! Uses the minimal-filtering identity `Y = Aᵀ[(G g Gᵀ) ⊙ (Bᵀ d B)]A`, which
//! computes one 2×2 output tile from a 4×4 input tile with 16 multiplies
//! instead of 36 — a 2.25× reduction, the source of Winograd's speed on
//! small kernels. The per-ξ elementwise products over channels form the
//! standard "non-fused" layout `M[ξ] (K×T) = U[ξ] (K×C) @ V[ξ] (C×T)` whose
//! transformed-tile buffers scale with the batch size (so micro-batching
//! shrinks them, as Fig. 9's `all` policy exploits).
//!
//! # Execution path
//!
//! The fast path runs the 16 per-ξ products as **one batched multi-RHS
//! prepacked GEMM** ([`crate::gemm::sgemm_prepacked_batch`]): the input
//! transform processes tiles in [`NR`]-sized strips and writes `V` directly
//! in the ξ-major packed-B panel layout (contiguous `NR`-float runs, no
//! separate packing pass), while the transformed filter `U` is packed once
//! in the [`WinogradPlan`] and replayed across micro-batches. The output
//! transform gathers `NR` contiguous products per ξ and scatters clipped
//! 2×2 tiles. Transforms are lane-wise over the strip with the exact same
//! per-element arithmetic as the scalar reference, so the fast path is
//! deterministic and plan-warm/plan-cold byte-identical.
//!
//! [`forward_ref`] / [`backward_data_ref`] retain the scalar per-tile
//! transforms and per-ξ [`sgemm_ref`] products as the naive baseline the
//! `hotpath` benchmark and the oracle tests compare against.
//!
//! Supported geometries mirror cuDNN: 3×3 filters, unit stride, pad ≤ 2;
//! Forward and BackwardData only (BackwardData is Forward on the
//! channel-transposed, 180°-rotated filter with complementary padding).

use crate::gemm::{packed_b_len, sgemm_prepacked_batch, sgemm_ref, Trans, NR};
use crate::plan::{WinogradDir, WinogradPlan};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

/// True when this engine can run the geometry for forward / backward-data.
pub fn supports(g: &ConvGeometry) -> bool {
    g.filter.r == 3
        && g.filter.s == 3
        && g.stride_h == 1
        && g.stride_w == 1
        && g.pad_h <= 2
        && g.pad_w <= 2
}

fn assert_supported(g: &ConvGeometry) {
    assert!(
        supports(g),
        "Winograd F(2x2,3x3) requires 3x3 filter, unit stride, pad<=2 ({g})"
    );
}

/// Output tile grid: `ceil(Ho/2) x ceil(Wo/2)` tiles per image.
fn tiles(g: &ConvGeometry) -> (usize, usize) {
    (g.out_h().div_ceil(2), g.out_w().div_ceil(2))
}

/// Workspace in `f32` elements: filter-transform staging (16·K·C, used by
/// the reference path), transformed input tiles in ξ-major packed-B panel
/// layout (`16 · packed_b_len(C, T) ≥ 16·C·T`) and product accumulators
/// (16·K·T rounded up to a whole [`NR`]-tile strip), `T = N·th·tw`.
pub fn workspace_floats(g: &ConvGeometry) -> usize {
    let (th, tw) = tiles(g);
    let t = g.input.n * th * tw;
    let (k, c) = (g.filter.k, g.input.c);
    16 * (k * c + k * t.div_ceil(NR) * NR) + 16 * packed_b_len(c, t)
}

/// cuDNN-semantics writeback: `beta == 0` must not read `y` — NaN or Inf
/// garbage in an uninitialized output buffer is overwritten, not propagated.
#[inline(always)]
pub(crate) fn write_out(y: &mut f32, v: f32, alpha: f32, beta: f32) {
    *y = if beta == 0.0 {
        alpha * v
    } else {
        alpha * v + beta * *y
    };
}

/// `U = G g Gᵀ` for one 3×3 filter plane, scattered into 16 strided slots.
fn transform_filter(gplane: &[f32], out: &mut [f32], stride: usize) {
    // G = [[1,0,0],[.5,.5,.5],[.5,-.5,.5],[0,0,1]]
    let mut tmp = [0.0f32; 12]; // G g : 4x3
    for j in 0..3 {
        let (g0, g1, g2) = (gplane[j], gplane[3 + j], gplane[6 + j]);
        tmp[j] = g0;
        tmp[3 + j] = 0.5 * (g0 + g1 + g2);
        tmp[6 + j] = 0.5 * (g0 - g1 + g2);
        tmp[9 + j] = g2;
    }
    for i in 0..4 {
        let (t0, t1, t2) = (tmp[3 * i], tmp[3 * i + 1], tmp[3 * i + 2]);
        out[(4 * i) * stride] = t0;
        out[(4 * i + 1) * stride] = 0.5 * (t0 + t1 + t2);
        out[(4 * i + 2) * stride] = 0.5 * (t0 - t1 + t2);
        out[(4 * i + 3) * stride] = t2;
    }
}

/// `V = Bᵀ d B` for one 4×4 input tile, scattered into 16 strided slots
/// (scalar reference; the fast path runs the same arithmetic lane-wise).
fn transform_input(d: &[f32; 16], out: &mut [f32], stride: usize) {
    // Bᵀ = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]]
    let mut tmp = [0.0f32; 16]; // Bᵀ d
    for j in 0..4 {
        let (d0, d1, d2, d3) = (d[j], d[4 + j], d[8 + j], d[12 + j]);
        tmp[j] = d0 - d2;
        tmp[4 + j] = d1 + d2;
        tmp[8 + j] = d2 - d1;
        tmp[12 + j] = d1 - d3;
    }
    for i in 0..4 {
        let (t0, t1, t2, t3) = (tmp[4 * i], tmp[4 * i + 1], tmp[4 * i + 2], tmp[4 * i + 3]);
        out[(4 * i) * stride] = t0 - t2;
        out[(4 * i + 1) * stride] = t1 + t2;
        out[(4 * i + 2) * stride] = t2 - t1;
        out[(4 * i + 3) * stride] = t1 - t3;
    }
}

/// `y_tile = Aᵀ m A` for one 4×4 product tile gathered from strided slots.
fn transform_output(m: impl Fn(usize) -> f32) -> [f32; 4] {
    // Aᵀ = [[1,1,1,0],[0,1,-1,-1]]
    let mut tmp = [0.0f32; 8]; // Aᵀ m : 2x4
    for j in 0..4 {
        let (m0, m1, m2, m3) = (m(j), m(4 + j), m(8 + j), m(12 + j));
        tmp[j] = m0 + m1 + m2;
        tmp[4 + j] = m1 - m2 - m3;
    }
    let mut y = [0.0f32; 4];
    for i in 0..2 {
        let (t0, t1, t2, t3) = (tmp[4 * i], tmp[4 * i + 1], tmp[4 * i + 2], tmp[4 * i + 3]);
        y[2 * i] = t0 + t1 + t2;
        y[2 * i + 1] = t1 - t2 - t3;
    }
    y
}

/// `y = alpha * conv(x, w) + beta * y` via non-fused Winograd.
pub fn forward(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    forward_with_plan(g, x, w, y, alpha, beta, ws, &mut WinogradPlan::default());
}

/// [`forward`] with a reusable plan: the transformed filter `U` is computed
/// and packed into GEMM panels once (revalidated by fingerprint), so every
/// micro-batch after the first skips both the `K·C` filter transforms and
/// the per-ξ `A`-panel packing. Bit-identical to the plan-free path.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn forward_with_plan(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
) {
    forward_impl(g, x, w, y, alpha, beta, ws, plan, WinogradDir::Fwd);
}

#[allow(clippy::too_many_arguments)]
fn forward_impl(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
    dir: WinogradDir,
) {
    assert_supported(g);
    assert!(ws.len() >= workspace_floats(g), "workspace too small");
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let k = g.filter.k;
    let (ho, wo) = (g.out_h(), g.out_w());
    let (th, tw) = tiles(g);
    let t = n * th * tw;
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(y.len(), g.output().len(), "y buffer mismatch");

    // Live regions: Ustage[16·K·C] (reference path only; the plan path
    // keeps U packed in the plan) | Vstrip[16·C·NR] | Mstrip[16·K·NR].
    // The pipeline is cache-blocked per tile strip: transform NR tiles,
    // run the batched GEMM on the strip, transform the products out — the
    // strip operands stay L1/L2-resident instead of streaming full-T
    // V and M buffers through memory between phases.
    let pbl_strip = NR * c; // one packed-B panel per ξ
    let (_, rest) = ws.split_at_mut(16 * k * c);
    let (v_strip, m_rest) = rest.split_at_mut(16 * pbl_strip);
    let m_strip = &mut m_rest[..16 * k * NR];

    // 1. Filter transform: U[ξ][ki][ci], element stride between ξ's is K*C —
    //    derived and packed once per distinct filter, reused across
    //    micro-batches and iterations until the weights change.
    let u_packed = plan.packed_u(dir, 16, k, c, w, |u| {
        for ki in 0..k {
            for ci in 0..c {
                transform_filter(
                    &w[(ki * c + ci) * 9..(ki * c + ci) * 9 + 9],
                    &mut u[ki * c + ci..],
                    k * c,
                );
            }
        }
    });

    // 2. Per-strip fused pipeline. For each NR-tile strip: gather each
    //    lane's 4×4 tile into SoA registers, run Bᵀ·d·B lane-wise (same
    //    per-element arithmetic as the scalar reference) writing each ξ's
    //    strip as one contiguous NR-float packed-B panel; run the batched
    //    multi-RHS GEMM over all 16 ξ on the strip; then gather the NR
    //    contiguous products per ξ and run Aᵀ·M·A lane-wise with clipped
    //    2×2 scatter. Padding lanes of the edge strip stay zero, matching
    //    pack_b_into, so the GEMM on the full NR panel yields zeros there.
    let tpi = th * tw;
    let hw = h * wd;
    for pj in 0..t.div_ceil(NR) {
        let lanes = NR.min(t - pj * NR);
        let mut plane0 = [0usize; NR];
        let mut loh = [0isize; NR];
        let mut low = [0isize; NR];
        for l in 0..lanes {
            let ti = pj * NR + l;
            let (ni, rem) = (ti / tpi, ti % tpi);
            let (tp, tq) = (rem / tw, rem % tw);
            plane0[l] = ni * c * hw;
            loh[l] = (2 * tp) as isize - g.pad_h as isize;
            low[l] = (2 * tq) as isize - g.pad_w as isize;
        }
        let mut d = [[0.0f32; NR]; 16];
        for ci in 0..c {
            for l in 0..lanes {
                let plane = &x[plane0[l] + ci * hw..plane0[l] + (ci + 1) * hw];
                let (oh, ow) = (loh[l], low[l]);
                if oh >= 0 && ow >= 0 && oh + 3 < h as isize && ow + 3 < wd as isize {
                    // Interior tile: four contiguous 4-float rows.
                    for i in 0..4 {
                        let row = &plane[(oh as usize + i) * wd + ow as usize..][..4];
                        for j in 0..4 {
                            d[4 * i + j][l] = row[j];
                        }
                    }
                } else {
                    for i in 0..4 {
                        let ih = oh + i as isize;
                        let row_ok = ih >= 0 && ih < h as isize;
                        for j in 0..4 {
                            let iw = ow + j as isize;
                            d[4 * i + j][l] = if row_ok && iw >= 0 && iw < wd as isize {
                                plane[ih as usize * wd + iw as usize]
                            } else {
                                0.0
                            };
                        }
                    }
                }
            }
            let mut tmp = [[0.0f32; NR]; 16];
            for j in 0..4 {
                for l in 0..NR {
                    let (d0, d1, d2, d3) = (d[j][l], d[4 + j][l], d[8 + j][l], d[12 + j][l]);
                    tmp[j][l] = d0 - d2;
                    tmp[4 + j][l] = d1 + d2;
                    tmp[8 + j][l] = d2 - d1;
                    tmp[12 + j][l] = d1 - d3;
                }
            }
            let mut v = [[0.0f32; NR]; 16];
            for i in 0..4 {
                for l in 0..NR {
                    let (t0, t1, t2, t3) = (
                        tmp[4 * i][l],
                        tmp[4 * i + 1][l],
                        tmp[4 * i + 2][l],
                        tmp[4 * i + 3][l],
                    );
                    v[4 * i][l] = t0 - t2;
                    v[4 * i + 1][l] = t1 + t2;
                    v[4 * i + 2][l] = t2 - t1;
                    v[4 * i + 3][l] = t1 - t3;
                }
            }
            let pbase = ci * NR;
            for (xi, vrow) in v.iter().enumerate() {
                v_strip[xi * pbl_strip + pbase..xi * pbl_strip + pbase + NR].copy_from_slice(vrow);
            }
        }

        // Batched multi-RHS GEMM on the strip:
        // M[ξ] (K×NR) = U[ξ] (K×C) @ V[ξ] (C×NR), operands L2-resident.
        sgemm_prepacked_batch(u_packed, NR, 1.0, v_strip, 0.0, m_strip);

        for ki in 0..k {
            let mut m = [[0.0f32; NR]; 16];
            for (xi, mrow) in m.iter_mut().enumerate() {
                mrow.copy_from_slice(&m_strip[xi * k * NR + ki * NR..][..NR]);
            }
            let mut tmp = [[0.0f32; NR]; 8];
            for j in 0..4 {
                for l in 0..NR {
                    let (m0, m1, m2, m3) = (m[j][l], m[4 + j][l], m[8 + j][l], m[12 + j][l]);
                    tmp[j][l] = m0 + m1 + m2;
                    tmp[4 + j][l] = m1 - m2 - m3;
                }
            }
            let mut yt = [[0.0f32; NR]; 4];
            for i in 0..2 {
                for l in 0..NR {
                    let (t0, t1, t2, t3) = (
                        tmp[4 * i][l],
                        tmp[4 * i + 1][l],
                        tmp[4 * i + 2][l],
                        tmp[4 * i + 3][l],
                    );
                    yt[2 * i][l] = t0 + t1 + t2;
                    yt[2 * i + 1][l] = t1 - t2 - t3;
                }
            }
            // `l` drives the tile coordinates, not just the `yt` index.
            #[allow(clippy::needless_range_loop)]
            for l in 0..lanes {
                let ti = pj * NR + l;
                let (ni, rem) = (ti / tpi, ti % tpi);
                let (tp, tq) = (rem / tw, rem % tw);
                for i in 0..2 {
                    let p = 2 * tp + i;
                    if p >= ho {
                        continue;
                    }
                    for j in 0..2 {
                        let q = 2 * tq + j;
                        if q >= wo {
                            continue;
                        }
                        let o = ((ni * k + ki) * ho + p) * wo + q;
                        write_out(&mut y[o], yt[2 * i + j][l], alpha, beta);
                    }
                }
            }
        }
    }
}

/// The retained naive reference: scalar per-tile transforms with strided
/// scatter/gather and 16 separate per-ξ [`sgemm_ref`] products, plan-free.
/// The `hotpath` benchmark reports the fast path's speedup over this and the
/// pad-envelope oracle tests pin both against [`crate::direct`]. Same
/// workspace contract as [`forward`].
pub fn forward_ref(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    assert_supported(g);
    assert!(ws.len() >= workspace_floats(g), "workspace too small");
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let k = g.filter.k;
    let (ho, wo) = (g.out_h(), g.out_w());
    let (th, tw) = tiles(g);
    let t = n * th * tw;
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(y.len(), g.output().len(), "y buffer mismatch");

    // Dense layout U[16][K][C] | V[16][C][T] | M[16][K][T] overlaid on the
    // same workspace (fits because packed_b_len(C, T) ≥ C·T).
    let (u_buf, rest) = ws.split_at_mut(16 * k * c);
    let (v_buf, m_rest) = rest.split_at_mut(16 * c * t);
    let m_buf = &mut m_rest[..16 * k * t];

    for ki in 0..k {
        for ci in 0..c {
            transform_filter(
                &w[(ki * c + ci) * 9..(ki * c + ci) * 9 + 9],
                &mut u_buf[ki * c + ci..],
                k * c,
            );
        }
    }

    for ni in 0..n {
        for ci in 0..c {
            let plane = &x[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
            for tp in 0..th {
                for tq in 0..tw {
                    let mut d = [0.0f32; 16];
                    let oh = (2 * tp) as isize - g.pad_h as isize;
                    let ow = (2 * tq) as isize - g.pad_w as isize;
                    for i in 0..4 {
                        let ih = oh + i as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for j in 0..4 {
                            let iw = ow + j as isize;
                            if iw < 0 || iw >= wd as isize {
                                continue;
                            }
                            d[4 * i + j] = plane[ih as usize * wd + iw as usize];
                        }
                    }
                    let tile = (ni * th + tp) * tw + tq;
                    transform_input(&d, &mut v_buf[ci * t + tile..], c * t);
                }
            }
        }
    }

    // 16 naive GEMMs: M[ξ] (K x T) = U[ξ] (K x C) @ V[ξ] (C x T).
    for xi in 0..16 {
        sgemm_ref(
            Trans::No,
            Trans::No,
            k,
            t,
            c,
            1.0,
            &u_buf[xi * k * c..(xi + 1) * k * c],
            &v_buf[xi * c * t..(xi + 1) * c * t],
            0.0,
            &mut m_buf[xi * k * t..(xi + 1) * k * t],
        );
    }

    for ni in 0..n {
        for ki in 0..k {
            for tp in 0..th {
                for tq in 0..tw {
                    let tile = (ni * th + tp) * tw + tq;
                    let yt = transform_output(|xi| m_buf[xi * k * t + ki * t + tile]);
                    for i in 0..2 {
                        let p = 2 * tp + i;
                        if p >= ho {
                            continue;
                        }
                        for j in 0..2 {
                            let q = 2 * tq + j;
                            if q >= wo {
                                continue;
                            }
                            let o = ((ni * k + ki) * ho + p) * wo + q;
                            write_out(&mut y[o], yt[2 * i + j], alpha, beta);
                        }
                    }
                }
            }
        }
    }
}

/// Geometry of the equivalent forward pass used for the data gradient.
fn backward_geometry(g: &ConvGeometry) -> ConvGeometry {
    ConvGeometry::new(
        Shape4::new(g.input.n, g.filter.k, g.out_h(), g.out_w()),
        FilterShape::new(g.input.c, g.filter.k, 3, 3),
        2 - g.pad_h,
        2 - g.pad_w,
        1,
        1,
    )
}

/// Workspace in `f32` elements for [`backward_data`] (the equivalent forward
/// workspace plus the flipped-filter staging buffer).
pub fn workspace_floats_backward_data(g: &ConvGeometry) -> usize {
    workspace_floats(&backward_geometry(g)) + g.filter.len()
}

/// Flip `w` into `w'[ci][ki][r][s] = w[ki][ci][2-r][2-s]` at the end of `ws`,
/// returning `(forward workspace, flipped filter)`.
fn stage_flipped_filter<'a>(
    g: &ConvGeometry,
    w: &[f32],
    ws: &'a mut [f32],
) -> (&'a mut [f32], &'a mut [f32]) {
    let (k, c) = (g.filter.k, g.input.c);
    let (rest, wflip) = ws.split_at_mut(ws.len() - g.filter.len());
    for ci in 0..c {
        for ki in 0..k {
            for r in 0..3 {
                for s in 0..3 {
                    wflip[((ci * k + ki) * 3 + r) * 3 + s] =
                        w[((ki * c + ci) * 3 + (2 - r)) * 3 + (2 - s)];
                }
            }
        }
    }
    (rest, wflip)
}

/// `dx = alpha * grad_x + beta * dx` — forward Winograd on the rotated,
/// channel-transposed filter with complementary padding.
pub fn backward_data(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    backward_data_with_plan(g, dy, w, dx, alpha, beta, ws, &mut WinogradPlan::default());
}

/// [`backward_data`] with a reusable plan. The plan fingerprints the flipped
/// filter (a deterministic function of the weights) in its own direction
/// slot, so the cached `U` stays valid across micro-batches — and a plan
/// shared between directions never thrashes or serves the wrong transform.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn backward_data_with_plan(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
) {
    assert_supported(g);
    assert!(
        ws.len() >= workspace_floats_backward_data(g),
        "workspace too small"
    );
    let bg = backward_geometry(g);
    debug_assert_eq!(
        bg.output(),
        g.input,
        "backward geometry must recover the input shape"
    );
    let (rest, wflip) = stage_flipped_filter(g, w, ws);
    forward_impl(
        &bg,
        dy,
        wflip,
        dx,
        alpha,
        beta,
        rest,
        plan,
        WinogradDir::Bwd,
    );
}

/// Naive-baseline counterpart of [`backward_data`]: [`forward_ref`] on the
/// flipped filter. Same workspace contract as [`backward_data`].
pub fn backward_data_ref(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    assert_supported(g);
    assert!(
        ws.len() >= workspace_floats_backward_data(g),
        "workspace too small"
    );
    let bg = backward_geometry(g);
    let (rest, wflip) = stage_flipped_filter(g, w, ws);
    forward_ref(&bg, dy, wflip, dx, alpha, beta, rest);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use ucudnn_tensor::{assert_all_close, Tensor};

    fn geoms() -> Vec<ConvGeometry> {
        vec![
            ConvGeometry::with_square(Shape4::new(2, 3, 8, 8), FilterShape::new(4, 3, 3, 3), 1, 1),
            // Odd spatial size exercises edge-tile clipping.
            ConvGeometry::with_square(Shape4::new(1, 2, 7, 9), FilterShape::new(3, 2, 3, 3), 1, 1),
            ConvGeometry::with_square(Shape4::new(3, 1, 5, 5), FilterShape::new(2, 1, 3, 3), 0, 1),
            ConvGeometry::with_square(Shape4::new(1, 2, 6, 6), FilterShape::new(2, 2, 3, 3), 2, 1),
            // More tiles than one NR strip, crossing image boundaries.
            ConvGeometry::with_square(
                Shape4::new(3, 2, 12, 10),
                FilterShape::new(2, 2, 3, 3),
                1,
                1,
            ),
        ]
    }

    #[test]
    fn forward_matches_direct() {
        for g in geoms() {
            let x = Tensor::random(g.input, 1);
            let w = Tensor::random(g.filter.as_shape4(), 2);
            let mut y_ref = Tensor::zeros(g.output());
            direct::forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut ws = vec![0.0; workspace_floats(&g)];
            let mut y = Tensor::zeros(g.output());
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&y_ref, &y, 1e-3);
            // The retained naive baseline must agree too.
            let mut y_naive = Tensor::zeros(g.output());
            forward_ref(
                &g,
                x.as_slice(),
                w.as_slice(),
                y_naive.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&y_ref, &y_naive, 1e-3);
        }
    }

    #[test]
    fn backward_data_matches_direct() {
        for g in geoms() {
            let dy = Tensor::random(g.output(), 3);
            let w = Tensor::random(g.filter.as_shape4(), 4);
            let mut dx_ref = Tensor::zeros(g.input);
            direct::backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut ws = vec![0.0; workspace_floats_backward_data(&g)];
            let mut dx = Tensor::zeros(g.input);
            backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&dx_ref, &dx, 1e-3);
            let mut dx_naive = Tensor::zeros(g.input);
            backward_data_ref(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx_naive.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&dx_ref, &dx_naive, 1e-3);
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 7);
        let w = Tensor::random(g.filter.as_shape4(), 8);
        let init = Tensor::random(g.output(), 9);
        let mut y_ref = init.clone();
        direct::forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y_ref.as_mut_slice(),
            0.5,
            2.0,
        );
        let mut y = init.clone();
        let mut ws = vec![0.0; workspace_floats(&g)];
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            0.5,
            2.0,
            &mut ws,
        );
        assert_all_close(&y_ref, &y, 1e-3);
    }

    #[test]
    fn beta_zero_ignores_garbage_output() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 17);
        let w = Tensor::random(g.filter.as_shape4(), 18);
        let mut ws = vec![0.0; workspace_floats(&g)];
        let mut clean = Tensor::zeros(g.output());
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            clean.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        let mut dirty = Tensor::zeros(g.output());
        dirty.as_mut_slice().fill(f32::NAN);
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            dirty.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        for (a, b) in clean.as_slice().iter().zip(dirty.as_slice()) {
            assert!(b.is_finite(), "beta=0 must not read the NaN-seeded output");
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn warm_plan_is_bit_identical() {
        for g in geoms() {
            let x = Tensor::random(g.input, 51);
            let w = Tensor::random(g.filter.as_shape4(), 52);
            let mut ws = vec![0.0; workspace_floats(&g)];
            let mut cold = Tensor::zeros(g.output());
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                cold.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            let mut plan = WinogradPlan::default();
            for _ in 0..3 {
                let mut warm = Tensor::zeros(g.output());
                forward_with_plan(
                    &g,
                    x.as_slice(),
                    w.as_slice(),
                    warm.as_mut_slice(),
                    1.0,
                    0.0,
                    &mut ws,
                    &mut plan,
                );
                for (a, b) in cold.as_slice().iter().zip(warm.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "plan path diverged ({g})");
                }
            }
            assert!(plan.bytes() > 0, "warm plan should hold packed U panels");
        }
    }

    #[test]
    fn shared_plan_across_directions_is_bit_identical() {
        // One plan serving forward and backward-data must fill separate
        // direction slots — no thrash, no wrong-direction transforms.
        let g = geoms()[0];
        let x = Tensor::random(g.input, 53);
        let w = Tensor::random(g.filter.as_shape4(), 54);
        let dy = Tensor::random(g.output(), 55);
        let mut ws = vec![0.0; workspace_floats_backward_data(&g)];
        let mut cold_y = Tensor::zeros(g.output());
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            cold_y.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        let mut cold_dx = Tensor::zeros(g.input);
        backward_data(
            &g,
            dy.as_slice(),
            w.as_slice(),
            cold_dx.as_mut_slice(),
            1.0,
            0.0,
            &mut ws,
        );
        let mut plan = WinogradPlan::default();
        for _ in 0..3 {
            let mut warm_y = Tensor::zeros(g.output());
            forward_with_plan(
                &g,
                x.as_slice(),
                w.as_slice(),
                warm_y.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
                &mut plan,
            );
            let mut warm_dx = Tensor::zeros(g.input);
            backward_data_with_plan(
                &g,
                dy.as_slice(),
                w.as_slice(),
                warm_dx.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
                &mut plan,
            );
            for (a, b) in cold_y.as_slice().iter().zip(warm_y.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "fwd diverged under shared plan");
            }
            for (a, b) in cold_dx.as_slice().iter().zip(warm_dx.as_slice()) {
                assert_eq!(a.to_bits(), b.to_bits(), "bwd diverged under shared plan");
            }
        }
    }

    #[test]
    fn rejects_non_3x3() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 8, 8), FilterShape::new(1, 1, 5, 5), 2, 1);
        assert!(!supports(&g));
    }

    #[test]
    fn rejects_stride() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 8, 8), FilterShape::new(1, 1, 3, 3), 1, 2);
        assert!(!supports(&g));
    }

    #[test]
    fn workspace_scales_with_batch() {
        let g = ConvGeometry::with_square(
            Shape4::new(64, 16, 16, 16),
            FilterShape::new(32, 16, 3, 3),
            1,
            1,
        );
        let w64 = workspace_floats(&g);
        let w8 = workspace_floats(&g.with_batch(8));
        assert!(w8 < w64);
        // Fixed 16·K·C term keeps it from shrinking by the full 8x.
        assert!(w8 > w64 / 8);
    }

    #[test]
    fn workspace_covers_dense_reference_layout() {
        // forward_ref overlays U|V|M dense on the packed-layout workspace.
        for g in geoms() {
            let (th, tw) = tiles(&g);
            let t = g.input.n * th * tw;
            let (k, c) = (g.filter.k, g.input.c);
            assert!(workspace_floats(&g) >= 16 * (k * c + c * t + k * t));
        }
    }
}
