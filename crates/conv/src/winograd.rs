//! Winograd F(2×2, 3×3) convolution engine (cuDNN `ALGO_WINOGRAD` analogue).
//!
//! Uses the minimal-filtering identity `Y = Aᵀ[(G g Gᵀ) ⊙ (Bᵀ d B)]A`, which
//! computes one 2×2 output tile from a 4×4 input tile with 16 multiplies
//! instead of 36 — a 2.25× reduction, the source of Winograd's speed on
//! small kernels. The per-ξ elementwise products over channels are batched
//! into 16 GEMMs of shape (K×C)·(C×T), the standard "non-fused" layout whose
//! transformed-tile buffers scale with the batch size (so micro-batching
//! shrinks them, as Fig. 9's `all` policy exploits).
//!
//! Supported geometries mirror cuDNN: 3×3 filters, unit stride, pad ≤ 2;
//! Forward and BackwardData only (BackwardData is Forward on the
//! channel-transposed, 180°-rotated filter with complementary padding).

use crate::gemm::{sgemm_prepacked_a, Trans};
use crate::plan::WinogradPlan;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

/// True when this engine can run the geometry for forward / backward-data.
pub fn supports(g: &ConvGeometry) -> bool {
    g.filter.r == 3
        && g.filter.s == 3
        && g.stride_h == 1
        && g.stride_w == 1
        && g.pad_h <= 2
        && g.pad_w <= 2
}

fn assert_supported(g: &ConvGeometry) {
    assert!(
        supports(g),
        "Winograd F(2x2,3x3) requires 3x3 filter, unit stride, pad<=2 ({g})"
    );
}

/// Output tile grid: `ceil(Ho/2) x ceil(Wo/2)` tiles per image.
fn tiles(g: &ConvGeometry) -> (usize, usize) {
    (g.out_h().div_ceil(2), g.out_w().div_ceil(2))
}

/// Workspace in `f32` elements: transformed filters (16·K·C), transformed
/// input tiles (16·C·T) and product accumulators (16·K·T), `T = N·th·tw`.
pub fn workspace_floats(g: &ConvGeometry) -> usize {
    let (th, tw) = tiles(g);
    let t = g.input.n * th * tw;
    let (k, c) = (g.filter.k, g.input.c);
    16 * (k * c + c * t + k * t)
}

/// `U = G g Gᵀ` for one 3×3 filter plane, scattered into 16 strided slots.
fn transform_filter(gplane: &[f32], out: &mut [f32], stride: usize) {
    // G = [[1,0,0],[.5,.5,.5],[.5,-.5,.5],[0,0,1]]
    let mut tmp = [0.0f32; 12]; // G g : 4x3
    for j in 0..3 {
        let (g0, g1, g2) = (gplane[j], gplane[3 + j], gplane[6 + j]);
        tmp[j] = g0;
        tmp[3 + j] = 0.5 * (g0 + g1 + g2);
        tmp[6 + j] = 0.5 * (g0 - g1 + g2);
        tmp[9 + j] = g2;
    }
    for i in 0..4 {
        let (t0, t1, t2) = (tmp[3 * i], tmp[3 * i + 1], tmp[3 * i + 2]);
        out[(4 * i) * stride] = t0;
        out[(4 * i + 1) * stride] = 0.5 * (t0 + t1 + t2);
        out[(4 * i + 2) * stride] = 0.5 * (t0 - t1 + t2);
        out[(4 * i + 3) * stride] = t2;
    }
}

/// `V = Bᵀ d B` for one 4×4 input tile, scattered into 16 strided slots.
fn transform_input(d: &[f32; 16], out: &mut [f32], stride: usize) {
    // Bᵀ = [[1,0,-1,0],[0,1,1,0],[0,-1,1,0],[0,1,0,-1]]
    let mut tmp = [0.0f32; 16]; // Bᵀ d
    for j in 0..4 {
        let (d0, d1, d2, d3) = (d[j], d[4 + j], d[8 + j], d[12 + j]);
        tmp[j] = d0 - d2;
        tmp[4 + j] = d1 + d2;
        tmp[8 + j] = d2 - d1;
        tmp[12 + j] = d1 - d3;
    }
    for i in 0..4 {
        let (t0, t1, t2, t3) = (tmp[4 * i], tmp[4 * i + 1], tmp[4 * i + 2], tmp[4 * i + 3]);
        out[(4 * i) * stride] = t0 - t2;
        out[(4 * i + 1) * stride] = t1 + t2;
        out[(4 * i + 2) * stride] = t2 - t1;
        out[(4 * i + 3) * stride] = t1 - t3;
    }
}

/// `y_tile = Aᵀ m A` for one 4×4 product tile gathered from strided slots.
fn transform_output(m: impl Fn(usize) -> f32) -> [f32; 4] {
    // Aᵀ = [[1,1,1,0],[0,1,-1,-1]]
    let mut tmp = [0.0f32; 8]; // Aᵀ m : 2x4
    for j in 0..4 {
        let (m0, m1, m2, m3) = (m(j), m(4 + j), m(8 + j), m(12 + j));
        tmp[j] = m0 + m1 + m2;
        tmp[4 + j] = m1 - m2 - m3;
    }
    let mut y = [0.0f32; 4];
    for i in 0..2 {
        let (t0, t1, t2, t3) = (tmp[4 * i], tmp[4 * i + 1], tmp[4 * i + 2], tmp[4 * i + 3]);
        y[2 * i] = t0 + t1 + t2;
        y[2 * i + 1] = t1 - t2 - t3;
    }
    y
}

/// `y = alpha * conv(x, w) + beta * y` via non-fused Winograd.
pub fn forward(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    forward_with_plan(g, x, w, y, alpha, beta, ws, &mut WinogradPlan::default());
}

/// [`forward`] with a reusable plan: the transformed filter `U` is computed
/// and packed into GEMM panels once (revalidated by fingerprint), so every
/// micro-batch after the first skips both the `K·C` filter transforms and
/// the per-ξ `A`-panel packing. Bit-identical to the plan-free path.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn forward_with_plan(
    g: &ConvGeometry,
    x: &[f32],
    w: &[f32],
    y: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
) {
    assert_supported(g);
    assert!(ws.len() >= workspace_floats(g), "workspace too small");
    let (n, c, h, wd) = (g.input.n, g.input.c, g.input.h, g.input.w);
    let k = g.filter.k;
    let (ho, wo) = (g.out_h(), g.out_w());
    let (th, tw) = tiles(g);
    let t = n * th * tw;
    assert_eq!(x.len(), g.input.len(), "x buffer mismatch");
    assert_eq!(w.len(), g.filter.len(), "w buffer mismatch");
    assert_eq!(y.len(), g.output().len(), "y buffer mismatch");

    // Workspace layout: U[16][K][C] | V[16][C][T] | M[16][K][T]. The plan
    // path leaves the U region untouched (U lives packed in the plan) but
    // the layout — and therefore `workspace_floats` — is unchanged.
    let (_, rest) = ws.split_at_mut(16 * k * c);
    let (v_buf, m_rest) = rest.split_at_mut(16 * c * t);
    let m_buf = &mut m_rest[..16 * k * t];

    // 1. Filter transform: U[ξ][ki][ci], element stride between ξ's is K*C —
    //    derived and packed once per distinct filter, reused across
    //    micro-batches and iterations until the weights change.
    let u_packed = plan.packed_u(16, k, c, w, |u| {
        for ki in 0..k {
            for ci in 0..c {
                transform_filter(
                    &w[(ki * c + ci) * 9..(ki * c + ci) * 9 + 9],
                    &mut u[ki * c + ci..],
                    k * c,
                );
            }
        }
    });

    // 2. Input transform: V[ξ][ci][tile].
    for ni in 0..n {
        for ci in 0..c {
            let plane = &x[(ni * c + ci) * h * wd..(ni * c + ci + 1) * h * wd];
            for tp in 0..th {
                for tq in 0..tw {
                    let mut d = [0.0f32; 16];
                    let oh = (2 * tp) as isize - g.pad_h as isize;
                    let ow = (2 * tq) as isize - g.pad_w as isize;
                    for i in 0..4 {
                        let ih = oh + i as isize;
                        if ih < 0 || ih >= h as isize {
                            continue;
                        }
                        for j in 0..4 {
                            let iw = ow + j as isize;
                            if iw < 0 || iw >= wd as isize {
                                continue;
                            }
                            d[4 * i + j] = plane[ih as usize * wd + iw as usize];
                        }
                    }
                    let tile = (ni * th + tp) * tw + tq;
                    transform_input(&d, &mut v_buf[ci * t + tile..], c * t);
                }
            }
        }
    }

    // 3. 16 GEMMs: M[ξ] (K x T) = U[ξ] (K x C) @ V[ξ] (C x T).
    for (xi, u_xi) in u_packed.iter().enumerate() {
        sgemm_prepacked_a(
            u_xi,
            Trans::No,
            t,
            1.0,
            &v_buf[xi * c * t..(xi + 1) * c * t],
            0.0,
            &mut m_buf[xi * k * t..(xi + 1) * k * t],
        );
    }

    // 4. Output transform and scatter, clipping edge tiles.
    for ni in 0..n {
        for ki in 0..k {
            for tp in 0..th {
                for tq in 0..tw {
                    let tile = (ni * th + tp) * tw + tq;
                    let yt = transform_output(|xi| m_buf[xi * k * t + ki * t + tile]);
                    for i in 0..2 {
                        let p = 2 * tp + i;
                        if p >= ho {
                            continue;
                        }
                        for j in 0..2 {
                            let q = 2 * tq + j;
                            if q >= wo {
                                continue;
                            }
                            let o = ((ni * k + ki) * ho + p) * wo + q;
                            y[o] = alpha * yt[2 * i + j] + beta * y[o];
                        }
                    }
                }
            }
        }
    }
}

/// Geometry of the equivalent forward pass used for the data gradient.
fn backward_geometry(g: &ConvGeometry) -> ConvGeometry {
    ConvGeometry::new(
        Shape4::new(g.input.n, g.filter.k, g.out_h(), g.out_w()),
        FilterShape::new(g.input.c, g.filter.k, 3, 3),
        2 - g.pad_h,
        2 - g.pad_w,
        1,
        1,
    )
}

/// Workspace in `f32` elements for [`backward_data`] (the equivalent forward
/// workspace plus the flipped-filter staging buffer).
pub fn workspace_floats_backward_data(g: &ConvGeometry) -> usize {
    workspace_floats(&backward_geometry(g)) + g.filter.len()
}

/// `dx = alpha * grad_x + beta * dx` — forward Winograd on the rotated,
/// channel-transposed filter with complementary padding.
pub fn backward_data(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
) {
    backward_data_with_plan(g, dy, w, dx, alpha, beta, ws, &mut WinogradPlan::default());
}

/// [`backward_data`] with a reusable plan. The plan fingerprints the flipped
/// filter (a deterministic function of the weights), so the cached `U` stays
/// valid across micro-batches exactly like the forward path.
#[allow(clippy::too_many_arguments)] // mirrors the cuDNN convolution ABI
pub fn backward_data_with_plan(
    g: &ConvGeometry,
    dy: &[f32],
    w: &[f32],
    dx: &mut [f32],
    alpha: f32,
    beta: f32,
    ws: &mut [f32],
    plan: &mut WinogradPlan,
) {
    assert_supported(g);
    assert!(
        ws.len() >= workspace_floats_backward_data(g),
        "workspace too small"
    );
    let bg = backward_geometry(g);
    debug_assert_eq!(
        bg.output(),
        g.input,
        "backward geometry must recover the input shape"
    );
    let (k, c) = (g.filter.k, g.input.c);

    // Flip: w'[ci][ki][r][s] = w[ki][ci][2-r][2-s], staged at the end of ws.
    let (rest, wflip) = ws.split_at_mut(ws.len() - g.filter.len());
    for ci in 0..c {
        for ki in 0..k {
            for r in 0..3 {
                for s in 0..3 {
                    wflip[((ci * k + ki) * 3 + r) * 3 + s] =
                        w[((ki * c + ci) * 3 + (2 - r)) * 3 + (2 - s)];
                }
            }
        }
    }
    forward_with_plan(&bg, dy, wflip, dx, alpha, beta, rest, plan);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::direct;
    use ucudnn_tensor::{assert_all_close, Tensor};

    fn geoms() -> Vec<ConvGeometry> {
        vec![
            ConvGeometry::with_square(Shape4::new(2, 3, 8, 8), FilterShape::new(4, 3, 3, 3), 1, 1),
            // Odd spatial size exercises edge-tile clipping.
            ConvGeometry::with_square(Shape4::new(1, 2, 7, 9), FilterShape::new(3, 2, 3, 3), 1, 1),
            ConvGeometry::with_square(Shape4::new(3, 1, 5, 5), FilterShape::new(2, 1, 3, 3), 0, 1),
            ConvGeometry::with_square(Shape4::new(1, 2, 6, 6), FilterShape::new(2, 2, 3, 3), 2, 1),
        ]
    }

    #[test]
    fn forward_matches_direct() {
        for g in geoms() {
            let x = Tensor::random(g.input, 1);
            let w = Tensor::random(g.filter.as_shape4(), 2);
            let mut y_ref = Tensor::zeros(g.output());
            direct::forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut y = Tensor::zeros(g.output());
            let mut ws = vec![0.0; workspace_floats(&g)];
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                y.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&y_ref, &y, 1e-3);
        }
    }

    #[test]
    fn backward_data_matches_direct() {
        for g in geoms() {
            let dy = Tensor::random(g.output(), 3);
            let w = Tensor::random(g.filter.as_shape4(), 4);
            let mut dx_ref = Tensor::zeros(g.input);
            direct::backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx_ref.as_mut_slice(),
                1.0,
                0.0,
            );
            let mut dx = Tensor::zeros(g.input);
            let mut ws = vec![0.0; workspace_floats_backward_data(&g)];
            backward_data(
                &g,
                dy.as_slice(),
                w.as_slice(),
                dx.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            assert_all_close(&dx_ref, &dx, 1e-3);
        }
    }

    #[test]
    fn alpha_beta_semantics() {
        let g = geoms()[0];
        let x = Tensor::random(g.input, 7);
        let w = Tensor::random(g.filter.as_shape4(), 8);
        let init = Tensor::random(g.output(), 9);
        let mut y_ref = init.clone();
        direct::forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y_ref.as_mut_slice(),
            0.5,
            2.0,
        );
        let mut y = init.clone();
        let mut ws = vec![0.0; workspace_floats(&g)];
        forward(
            &g,
            x.as_slice(),
            w.as_slice(),
            y.as_mut_slice(),
            0.5,
            2.0,
            &mut ws,
        );
        assert_all_close(&y_ref, &y, 1e-3);
    }

    #[test]
    fn warm_plan_is_bit_identical() {
        for g in geoms() {
            let x = Tensor::random(g.input, 51);
            let w = Tensor::random(g.filter.as_shape4(), 52);
            let mut ws = vec![0.0; workspace_floats(&g)];
            let mut cold = Tensor::zeros(g.output());
            forward(
                &g,
                x.as_slice(),
                w.as_slice(),
                cold.as_mut_slice(),
                1.0,
                0.0,
                &mut ws,
            );
            let mut plan = WinogradPlan::default();
            for _ in 0..3 {
                let mut warm = Tensor::zeros(g.output());
                forward_with_plan(
                    &g,
                    x.as_slice(),
                    w.as_slice(),
                    warm.as_mut_slice(),
                    1.0,
                    0.0,
                    &mut ws,
                    &mut plan,
                );
                for (a, b) in cold.as_slice().iter().zip(warm.as_slice()) {
                    assert_eq!(a.to_bits(), b.to_bits(), "plan path diverged ({g})");
                }
            }
            assert!(plan.bytes() > 0, "warm plan should hold packed U panels");
        }
    }

    #[test]
    fn rejects_non_3x3() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 8, 8), FilterShape::new(1, 1, 5, 5), 2, 1);
        assert!(!supports(&g));
    }

    #[test]
    fn rejects_stride() {
        let g =
            ConvGeometry::with_square(Shape4::new(1, 1, 8, 8), FilterShape::new(1, 1, 3, 3), 1, 2);
        assert!(!supports(&g));
    }

    #[test]
    fn workspace_scales_with_batch() {
        let g = ConvGeometry::with_square(
            Shape4::new(64, 16, 16, 16),
            FilterShape::new(32, 16, 3, 3),
            1,
            1,
        );
        let w64 = workspace_floats(&g);
        let w8 = workspace_floats(&g.with_batch(8));
        assert!(w8 < w64);
        // Fixed 16·K·C term keeps it from shrinking by the full 8x.
        assert!(w8 > w64 / 8);
    }
}
