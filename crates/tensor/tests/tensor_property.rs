//! Property tests for the tensor primitives the micro-batching machinery
//! leans on: contiguous batch views, axpby scaling, deterministic fills.

use proptest::prelude::*;
use ucudnn_tensor::{max_abs_diff, DeterministicRng, Shape4, Tensor};

fn shapes() -> impl Strategy<Value = Shape4> {
    (1usize..=8, 1usize..=8, 1usize..=8, 1usize..=8)
        .prop_map(|(n, c, h, w)| Shape4::new(n, c, h, w))
}

proptest! {
    /// Splitting into any two batch ranges and reassembling is the identity
    /// — the zero-copy property micro-batching relies on.
    #[test]
    fn batch_slices_partition_the_buffer(shape in shapes(), frac in 0.0f64..=1.0, seed in 0u64..500) {
        let t = Tensor::random(shape, seed);
        let split = ((shape.n as f64) * frac) as usize;
        let a = t.batch_slice(0, split);
        let b = t.batch_slice(split, shape.n);
        let mut rebuilt = Vec::with_capacity(shape.len());
        rebuilt.extend_from_slice(a);
        rebuilt.extend_from_slice(b);
        prop_assert_eq!(rebuilt.as_slice(), t.as_slice());
    }

    /// `batch_clone` equals the view it was cloned from, with the right shape.
    #[test]
    fn batch_clone_matches_view(shape in shapes(), seed in 0u64..500) {
        let t = Tensor::random(shape, seed);
        let lo = shape.n / 3;
        let hi = shape.n;
        let c = t.batch_clone(lo, hi);
        prop_assert_eq!(c.shape(), shape.with_batch(hi - lo));
        prop_assert_eq!(c.as_slice(), t.batch_slice(lo, hi));
    }

    /// axpby is linear: (a·x + b·y) computed in one call equals the
    /// two-step computation.
    #[test]
    fn axpby_linearity(shape in shapes(), alpha in -3.0f32..3.0, beta in -3.0f32..3.0, seed in 0u64..500) {
        let x = Tensor::random(shape, seed);
        let y = Tensor::random(shape, seed + 1);
        let mut one_shot = y.clone();
        one_shot.axpby(alpha, &x, beta);
        // Elementwise reference.
        let mut want = Tensor::zeros(shape);
        for i in 0..shape.len() {
            want.as_mut_slice()[i] = alpha * x.as_slice()[i] + beta * y.as_slice()[i];
        }
        prop_assert!(max_abs_diff(&one_shot, &want) <= 1e-5);
    }

    /// Flat indexing agrees with coordinate indexing everywhere.
    #[test]
    fn index_is_consistent(shape in shapes(), seed in 0u64..500) {
        let t = Tensor::random(shape, seed);
        for n in 0..shape.n {
            for c in 0..shape.c {
                for h in 0..shape.h {
                    for w in 0..shape.w {
                        prop_assert_eq!(t.get(n, c, h, w), t.as_slice()[shape.index(n, c, h, w)]);
                    }
                }
            }
        }
    }

    /// Distinct seeds give distinct streams; same seed is bit-identical.
    #[test]
    fn rng_streams(seed in 0u64..10_000) {
        let mut a = DeterministicRng::new(seed);
        let mut b = DeterministicRng::new(seed);
        let mut c = DeterministicRng::new(seed.wrapping_add(1));
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        prop_assert_eq!(&va, &vb);
        prop_assert_ne!(&va, &vc);
    }
}
