//! The dense `f32` tensor used by the CPU engines and the framework.

use crate::fill::DeterministicRng;
use crate::shape::Shape4;

/// A dense `f32` tensor in NCHW layout.
///
/// Because N is the outermost dimension, the samples `[lo, hi)` occupy the
/// contiguous byte range `[lo * sample_len, hi * sample_len)`; micro-batch
/// views are therefore plain subslices (`batch_slice` / `batch_slice_mut`).
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape4,
    data: Vec<f32>,
}

impl Tensor {
    /// Allocate a zero-filled tensor.
    pub fn zeros(shape: Shape4) -> Self {
        Self {
            shape,
            data: vec![0.0; shape.len()],
        }
    }

    /// Allocate a tensor filled with a constant.
    pub fn full(shape: Shape4, value: f32) -> Self {
        Self {
            shape,
            data: vec![value; shape.len()],
        }
    }

    /// Build a tensor from an existing buffer.
    ///
    /// # Panics
    /// Panics when the buffer length does not match the shape.
    pub fn from_vec(shape: Shape4, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), shape.len(), "buffer length must match shape");
        Self { shape, data }
    }

    /// Deterministic pseudo-random fill in `[-1, 1)`, reproducible across
    /// runs and platforms (used instead of dataset pixels; see DESIGN.md).
    pub fn random(shape: Shape4, seed: u64) -> Self {
        let mut rng = DeterministicRng::new(seed);
        let data = (0..shape.len())
            .map(|_| rng.next_uniform() * 2.0 - 1.0)
            .collect();
        Self { shape, data }
    }

    /// Shape of this tensor.
    pub fn shape(&self) -> Shape4 {
        self.shape
    }

    /// Flat read-only view of the whole buffer.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Flat mutable view of the whole buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, n: usize, c: usize, h: usize, w: usize) -> f32 {
        self.data[self.shape.index(n, c, h, w)]
    }

    /// Element mutator.
    #[inline]
    pub fn set(&mut self, n: usize, c: usize, h: usize, w: usize, v: f32) {
        let i = self.shape.index(n, c, h, w);
        self.data[i] = v;
    }

    /// Contiguous read-only view of samples `[lo, hi)`.
    ///
    /// # Panics
    /// Panics when `lo > hi` or `hi` exceeds the batch size.
    pub fn batch_slice(&self, lo: usize, hi: usize) -> &[f32] {
        assert!(
            lo <= hi && hi <= self.shape.n,
            "batch range {lo}..{hi} out of 0..{}",
            self.shape.n
        );
        let s = self.shape.sample_len();
        &self.data[lo * s..hi * s]
    }

    /// Contiguous mutable view of samples `[lo, hi)`.
    pub fn batch_slice_mut(&mut self, lo: usize, hi: usize) -> &mut [f32] {
        assert!(
            lo <= hi && hi <= self.shape.n,
            "batch range {lo}..{hi} out of 0..{}",
            self.shape.n
        );
        let s = self.shape.sample_len();
        &mut self.data[lo * s..hi * s]
    }

    /// Copy samples `[lo, hi)` into a new standalone tensor.
    pub fn batch_clone(&self, lo: usize, hi: usize) -> Tensor {
        let shape = self.shape.with_batch(hi - lo);
        Tensor::from_vec(shape, self.batch_slice(lo, hi).to_vec())
    }

    /// `self = alpha * other + beta * self`, the cuDNN output-scaling
    /// convention μ-cuDNN relies on to accumulate filter gradients across
    /// micro-batches (`beta = 1`).
    ///
    /// # Panics
    /// Panics when shapes differ.
    pub fn axpby(&mut self, alpha: f32, other: &Tensor, beta: f32) {
        assert_eq!(self.shape, other.shape, "axpby shape mismatch");
        for (d, s) in self.data.iter_mut().zip(other.data.iter()) {
            *d = alpha * *s + beta * *d;
        }
    }

    /// Sum of all elements (testing helper).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Fill with zeros in place, keeping the allocation.
    pub fn clear(&mut self) {
        self.data.fill(0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(shape: Shape4) -> Tensor {
        Tensor::from_vec(shape, (0..shape.len()).map(|i| i as f32).collect())
    }

    #[test]
    fn zeros_and_full() {
        let z = Tensor::zeros(Shape4::new(1, 2, 2, 2));
        assert_eq!(z.sum(), 0.0);
        let f = Tensor::full(Shape4::new(1, 2, 2, 2), 3.0);
        assert_eq!(f.sum(), 24.0);
    }

    #[test]
    fn get_set_roundtrip() {
        let mut t = Tensor::zeros(Shape4::new(2, 3, 4, 5));
        t.set(1, 2, 3, 4, 7.5);
        assert_eq!(t.get(1, 2, 3, 4), 7.5);
        assert_eq!(t.as_slice()[t.shape().index(1, 2, 3, 4)], 7.5);
    }

    #[test]
    fn batch_slice_is_contiguous_view() {
        let t = seq_tensor(Shape4::new(4, 2, 1, 3));
        let s = t.shape().sample_len();
        let view = t.batch_slice(1, 3);
        assert_eq!(view.len(), 2 * s);
        assert_eq!(view[0], s as f32);
        assert_eq!(view[view.len() - 1], (3 * s - 1) as f32);
    }

    #[test]
    fn batch_clone_matches_slice() {
        let t = Tensor::random(Shape4::new(8, 3, 5, 5), 42);
        let c = t.batch_clone(2, 6);
        assert_eq!(c.shape(), t.shape().with_batch(4));
        assert_eq!(c.as_slice(), t.batch_slice(2, 6));
    }

    #[test]
    fn random_is_deterministic_and_bounded() {
        let a = Tensor::random(Shape4::new(2, 2, 4, 4), 7);
        let b = Tensor::random(Shape4::new(2, 2, 4, 4), 7);
        let c = Tensor::random(Shape4::new(2, 2, 4, 4), 8);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert!(a.as_slice().iter().all(|&x| (-1.0..1.0).contains(&x)));
    }

    #[test]
    fn axpby_accumulates() {
        let shape = Shape4::new(1, 1, 2, 2);
        let mut acc = Tensor::full(shape, 1.0);
        let g = Tensor::full(shape, 2.0);
        // acc = 1*g + 1*acc  (the BackwardFilter accumulation mode)
        acc.axpby(1.0, &g, 1.0);
        assert_eq!(acc.as_slice(), &[3.0; 4]);
        // acc = 2*g + 0*acc  (overwrite mode with scaling)
        acc.axpby(2.0, &g, 0.0);
        assert_eq!(acc.as_slice(), &[4.0; 4]);
    }

    #[test]
    #[should_panic(expected = "batch range")]
    fn batch_slice_rejects_out_of_range() {
        let t = Tensor::zeros(Shape4::new(2, 1, 1, 1));
        let _ = t.batch_slice(1, 3);
    }

    #[test]
    #[should_panic(expected = "buffer length")]
    fn from_vec_rejects_bad_length() {
        let _ = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![0.0; 3]);
    }

    #[test]
    fn clear_keeps_shape() {
        let mut t = Tensor::random(Shape4::new(2, 2, 2, 2), 3);
        t.clear();
        assert_eq!(t.sum(), 0.0);
        assert_eq!(t.shape(), Shape4::new(2, 2, 2, 2));
    }
}
