//! Numerical comparison helpers for validating that micro-batched execution
//! reproduces undivided execution, and that different convolution algorithms
//! agree with each other up to floating-point reassociation error.

use crate::tensor::Tensor;

/// Largest absolute elementwise difference between two equally-shaped tensors.
///
/// # Panics
/// Panics when shapes differ.
pub fn max_abs_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(
        a.shape(),
        b.shape(),
        "comparing tensors of different shapes"
    );
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f32::max)
}

/// Largest relative elementwise difference, with an absolute floor of 1.0 in
/// the denominator so near-zero entries do not blow up the metric.
pub fn max_rel_diff(a: &Tensor, b: &Tensor) -> f32 {
    assert_eq!(
        a.shape(),
        b.shape(),
        "comparing tensors of different shapes"
    );
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y).abs() / x.abs().max(y.abs()).max(1.0))
        .fold(0.0, f32::max)
}

/// Assert that two tensors agree elementwise within `tol` relative error.
///
/// # Panics
/// Panics (with the offending value) when any element disagrees.
pub fn assert_all_close(a: &Tensor, b: &Tensor, tol: f32) {
    let d = max_rel_diff(a, b);
    assert!(
        d <= tol,
        "tensors differ: max relative diff {d:.3e} > tolerance {tol:.3e} (shape {})",
        a.shape()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shape::Shape4;

    #[test]
    fn identical_tensors_have_zero_diff() {
        let t = Tensor::random(Shape4::new(2, 3, 4, 4), 1);
        assert_eq!(max_abs_diff(&t, &t), 0.0);
        assert_eq!(max_rel_diff(&t, &t), 0.0);
        assert_all_close(&t, &t, 0.0);
    }

    #[test]
    fn detects_single_element_change() {
        let a = Tensor::zeros(Shape4::new(1, 1, 2, 2));
        let mut b = a.clone();
        b.set(0, 0, 1, 1, 0.5);
        assert_eq!(max_abs_diff(&a, &b), 0.5);
        assert!(max_rel_diff(&a, &b) > 0.0);
    }

    #[test]
    fn rel_diff_scales_with_magnitude() {
        let a = Tensor::full(Shape4::new(1, 1, 1, 1), 1000.0);
        let b = Tensor::full(Shape4::new(1, 1, 1, 1), 1001.0);
        assert!(max_rel_diff(&a, &b) < 2e-3);
        assert_eq!(max_abs_diff(&a, &b), 1.0);
    }

    #[test]
    #[should_panic(expected = "tensors differ")]
    fn assert_all_close_fails_loudly() {
        let a = Tensor::zeros(Shape4::new(1, 1, 1, 1));
        let b = Tensor::full(Shape4::new(1, 1, 1, 1), 1.0);
        assert_all_close(&a, &b, 1e-6);
    }

    #[test]
    #[should_panic(expected = "different shapes")]
    fn shape_mismatch_panics() {
        let a = Tensor::zeros(Shape4::new(1, 1, 1, 1));
        let b = Tensor::zeros(Shape4::new(1, 1, 1, 2));
        let _ = max_abs_diff(&a, &b);
    }
}
