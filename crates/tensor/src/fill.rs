//! Deterministic pseudo-random number generation.
//!
//! Timing and workspace behaviour in this reproduction must be reproducible
//! bit-for-bit across runs, so tensor contents come from a fixed-seed
//! SplitMix64 generator rather than an OS-seeded RNG.

/// SplitMix64 generator: tiny state, full 64-bit period, and good enough
/// statistical quality for synthetic activations and weights.
#[derive(Debug, Clone)]
pub struct DeterministicRng {
    state: u64,
}

impl DeterministicRng {
    /// Create a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_uniform(&mut self) -> f32 {
        // 24 mantissa-bits' worth of randomness keeps the value exact in f32.
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform integer in `[0, bound)`.
    ///
    /// # Panics
    /// Panics when `bound` is zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Modulo bias is irrelevant for the bounds used here (≪ 2^32).
        self.next_u64() % bound
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DeterministicRng::new(123);
        let mut b = DeterministicRng::new(123);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DeterministicRng::new(1);
        let mut b = DeterministicRng::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform_in_unit_interval() {
        let mut r = DeterministicRng::new(99);
        for _ in 0..10_000 {
            let x = r.next_uniform();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn uniform_covers_the_interval() {
        let mut r = DeterministicRng::new(7);
        let xs: Vec<f32> = (0..10_000).map(|_| r.next_uniform()).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
        assert!(xs.iter().any(|&x| x < 0.01));
        assert!(xs.iter().any(|&x| x > 0.99));
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = DeterministicRng::new(5);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    #[should_panic(expected = "bound")]
    fn next_below_zero_panics() {
        DeterministicRng::new(0).next_below(0);
    }
}
