//! NCHW 4-D tensors for the μ-cuDNN reproduction.
//!
//! Everything in this workspace stores activations as `(N, C, H, W)` and
//! filters as `(K, C, R, S)` in row-major (W fastest) order, matching the
//! `CUDNN_TENSOR_NCHW` storage the paper uses throughout its evaluation.
//!
//! The layout choice is load-bearing for micro-batching: because the batch
//! dimension is outermost, a micro-batch of samples `[lo, hi)` is a single
//! contiguous slice of the underlying buffer, so splitting a mini-batch into
//! micro-batches requires no copies — exactly the property μ-cuDNN exploits
//! when it re-issues cuDNN kernels on sub-ranges of the original tensors.

pub mod compare;
pub mod fill;
pub mod shape;
pub mod tensor;

pub use compare::{assert_all_close, max_abs_diff, max_rel_diff};
pub use fill::DeterministicRng;
pub use shape::{ConvGeometry, FilterShape, Shape4};
pub use tensor::Tensor;
