//! Shape types: activation shapes, filter shapes, and convolution geometry.

/// Shape of an activation tensor in NCHW order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Shape4 {
    /// Mini-batch size.
    pub n: usize,
    /// Number of channels.
    pub c: usize,
    /// Image height.
    pub h: usize,
    /// Image width.
    pub w: usize,
}

impl Shape4 {
    /// Create a new NCHW shape.
    pub const fn new(n: usize, c: usize, h: usize, w: usize) -> Self {
        Self { n, c, h, w }
    }

    /// Number of scalar elements.
    pub const fn len(&self) -> usize {
        self.n * self.c * self.h * self.w
    }

    /// True when the tensor holds no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Elements per sample (the stride of the batch dimension).
    pub const fn sample_len(&self) -> usize {
        self.c * self.h * self.w
    }

    /// Size in bytes for `f32` storage.
    pub const fn bytes(&self) -> usize {
        self.len() * core::mem::size_of::<f32>()
    }

    /// The same shape with a different batch size — how micro-batch shapes
    /// are derived from a mini-batch shape.
    pub const fn with_batch(&self, n: usize) -> Self {
        Self { n, ..*self }
    }

    /// Flat offset of element `(n, c, h, w)`.
    #[inline]
    pub fn index(&self, n: usize, c: usize, h: usize, w: usize) -> usize {
        debug_assert!(n < self.n && c < self.c && h < self.h && w < self.w);
        ((n * self.c + c) * self.h + h) * self.w + w
    }
}

impl core::fmt::Display for Shape4 {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}x{}x{}", self.n, self.c, self.h, self.w)
    }
}

/// Shape of a convolution filter bank in KCRS order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FilterShape {
    /// Number of output channels (filters).
    pub k: usize,
    /// Number of input channels per filter.
    pub c: usize,
    /// Kernel height.
    pub r: usize,
    /// Kernel width.
    pub s: usize,
}

impl FilterShape {
    /// Create a new KCRS filter shape.
    pub const fn new(k: usize, c: usize, r: usize, s: usize) -> Self {
        Self { k, c, r, s }
    }

    /// Number of scalar elements.
    pub const fn len(&self) -> usize {
        self.k * self.c * self.r * self.s
    }

    /// True when the filter bank holds no elements.
    pub const fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size in bytes for `f32` storage.
    pub const fn bytes(&self) -> usize {
        self.len() * core::mem::size_of::<f32>()
    }

    /// Flat offset of element `(k, c, r, s)`.
    #[inline]
    pub fn index(&self, k: usize, c: usize, r: usize, s: usize) -> usize {
        debug_assert!(k < self.k && c < self.c && r < self.r && s < self.s);
        ((k * self.c + c) * self.r + r) * self.s + s
    }

    /// View this filter bank as a 4-D activation shape (used when a filter
    /// gradient is accumulated like a tensor).
    pub const fn as_shape4(&self) -> Shape4 {
        Shape4::new(self.k, self.c, self.r, self.s)
    }
}

impl core::fmt::Display for FilterShape {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}x{}x{}x{}", self.k, self.c, self.r, self.s)
    }
}

/// Full geometry of a 2-D cross-correlation: input shape, filter shape,
/// padding and stride. This is the unit the optimizer reasons about — every
/// cuDNN-style descriptor triple collapses to one of these.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConvGeometry {
    /// Input activation shape (N, C, H, W).
    pub input: Shape4,
    /// Filter bank shape (K, C, R, S); `filter.c` must equal `input.c`.
    pub filter: FilterShape,
    /// Zero padding applied to height (top and bottom).
    pub pad_h: usize,
    /// Zero padding applied to width (left and right).
    pub pad_w: usize,
    /// Vertical stride.
    pub stride_h: usize,
    /// Horizontal stride.
    pub stride_w: usize,
}

impl ConvGeometry {
    /// Construct and validate a convolution geometry.
    ///
    /// # Panics
    /// Panics when channels mismatch, a stride is zero, or the padded input
    /// is smaller than the kernel.
    pub fn new(
        input: Shape4,
        filter: FilterShape,
        pad_h: usize,
        pad_w: usize,
        stride_h: usize,
        stride_w: usize,
    ) -> Self {
        assert_eq!(
            input.c, filter.c,
            "input channels ({}) must match filter channels ({})",
            input.c, filter.c
        );
        assert!(stride_h > 0 && stride_w > 0, "strides must be positive");
        assert!(
            input.h + 2 * pad_h >= filter.r && input.w + 2 * pad_w >= filter.s,
            "padded input {}x{} smaller than kernel {}x{}",
            input.h + 2 * pad_h,
            input.w + 2 * pad_w,
            filter.r,
            filter.s
        );
        Self {
            input,
            filter,
            pad_h,
            pad_w,
            stride_h,
            stride_w,
        }
    }

    /// Convenience constructor with square padding/stride.
    pub fn with_square(input: Shape4, filter: FilterShape, pad: usize, stride: usize) -> Self {
        Self::new(input, filter, pad, pad, stride, stride)
    }

    /// Output height.
    pub fn out_h(&self) -> usize {
        (self.input.h + 2 * self.pad_h - self.filter.r) / self.stride_h + 1
    }

    /// Output width.
    pub fn out_w(&self) -> usize {
        (self.input.w + 2 * self.pad_w - self.filter.s) / self.stride_w + 1
    }

    /// Output activation shape (N, K, Ho, Wo).
    pub fn output(&self) -> Shape4 {
        Shape4::new(self.input.n, self.filter.k, self.out_h(), self.out_w())
    }

    /// The same geometry with a different batch size: micro-batch geometry.
    pub fn with_batch(&self, n: usize) -> Self {
        Self {
            input: self.input.with_batch(n),
            ..*self
        }
    }

    /// Mini-batch size of this geometry.
    pub const fn batch(&self) -> usize {
        self.input.n
    }

    /// Multiply-accumulate count of a direct convolution over the full batch.
    /// All algorithm cost models are expressed relative to this.
    pub fn macs(&self) -> u128 {
        (self.input.n * self.filter.k * self.out_h() * self.out_w()) as u128
            * (self.input.c * self.filter.r * self.filter.s) as u128
    }

    /// FLOP count (2 FLOPs per MAC) of a direct convolution.
    pub fn flops(&self) -> u128 {
        2 * self.macs()
    }
}

impl core::fmt::Display for ConvGeometry {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "in={} filt={} pad={}x{} stride={}x{}",
            self.input, self.filter, self.pad_h, self.pad_w, self.stride_h, self.stride_w
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape4_len_and_index() {
        let s = Shape4::new(2, 3, 4, 5);
        assert_eq!(s.len(), 120);
        assert_eq!(s.sample_len(), 60);
        assert_eq!(s.bytes(), 480);
        assert_eq!(s.index(0, 0, 0, 0), 0);
        assert_eq!(s.index(1, 2, 3, 4), 119);
        assert_eq!(s.index(1, 0, 0, 0), 60);
    }

    #[test]
    fn shape4_with_batch_keeps_chw() {
        let s = Shape4::new(256, 96, 27, 27).with_batch(32);
        assert_eq!(s, Shape4::new(32, 96, 27, 27));
    }

    #[test]
    fn filter_shape_index_roundtrip() {
        let f = FilterShape::new(4, 3, 2, 2);
        assert_eq!(f.len(), 48);
        assert_eq!(f.index(3, 2, 1, 1), 47);
        assert_eq!(f.as_shape4().len(), f.len());
    }

    #[test]
    fn conv_geometry_output_dims() {
        // AlexNet conv1 (one weird trick): 224x224x3, 11x11 kernel, stride 4, pad 2 -> 55x55.
        let g = ConvGeometry::with_square(
            Shape4::new(128, 3, 224, 224),
            FilterShape::new(64, 3, 11, 11),
            2,
            4,
        );
        assert_eq!(g.out_h(), 55);
        assert_eq!(g.out_w(), 55);
        assert_eq!(g.output(), Shape4::new(128, 64, 55, 55));
    }

    #[test]
    fn conv_geometry_same_padding() {
        // 3x3 stride-1 pad-1 keeps spatial dims.
        let g = ConvGeometry::with_square(
            Shape4::new(1, 16, 13, 17),
            FilterShape::new(8, 16, 3, 3),
            1,
            1,
        );
        assert_eq!(g.out_h(), 13);
        assert_eq!(g.out_w(), 17);
    }

    #[test]
    fn conv_geometry_flops_match_loop_nest() {
        let g =
            ConvGeometry::with_square(Shape4::new(2, 3, 8, 8), FilterShape::new(4, 3, 3, 3), 1, 1);
        // N*K*Ho*Wo*C*R*S MACs.
        assert_eq!(g.macs(), (2 * 4 * 8 * 8 * 3 * 3 * 3) as u128);
        assert_eq!(g.flops(), 2 * g.macs());
    }

    #[test]
    #[should_panic(expected = "channels")]
    fn conv_geometry_rejects_channel_mismatch() {
        ConvGeometry::with_square(Shape4::new(1, 3, 8, 8), FilterShape::new(4, 5, 3, 3), 1, 1);
    }

    #[test]
    #[should_panic(expected = "strides")]
    fn conv_geometry_rejects_zero_stride() {
        ConvGeometry::new(
            Shape4::new(1, 3, 8, 8),
            FilterShape::new(4, 3, 3, 3),
            1,
            1,
            0,
            1,
        );
    }

    #[test]
    fn micro_batch_geometry() {
        let g = ConvGeometry::with_square(
            Shape4::new(256, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        );
        let m = g.with_batch(32);
        assert_eq!(m.batch(), 32);
        assert_eq!(m.out_h(), g.out_h());
        assert_eq!(m.filter, g.filter);
    }
}
