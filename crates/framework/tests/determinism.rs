//! Execution-substrate determinism: the training trajectory is
//! byte-identical with the plan cache on or off and at every execution
//! thread count.
//!
//! The fast path earns its keep only if it is invisible to numerics: packed
//! panels, cached FFT tables/spectra and Winograd filter transforms must
//! reproduce the uncached computation bit for bit, and the batch-parallel
//! engines must not let the thread split leak into results. This test pins
//! all of it end to end — per-step losses (f64 bits) and final parameters
//! (f32 bits) across cache on/off × thread caps {1, 2, 8}.

use std::collections::HashMap;
use std::sync::Mutex;
use ucudnn_cudnn_sim::{
    ConvAlgo, ConvOp, ConvolutionDescriptor, CudnnHandle, FilterDescriptor, TensorDescriptor,
};
use ucudnn_framework::{
    train, ConvProvider, LayerSpec, NetworkDef, Params, ProviderError, RealExecutor,
    SyntheticDataset,
};
use ucudnn_tensor::{ConvGeometry, Shape4};

/// A provider pinned to `ALGO_GEMM` for every kernel. `BaselineCudnn`
/// deliberately mimics the real autotuner — it ranks algorithms by measured
/// wall time, so its *choice* is machine-noise dependent. Determinism is a
/// property of execution given an algorithm, so the test pins one (the
/// plan-cached packed-GEMM engine, exactly the path under test).
struct PinnedGemm {
    handle: CudnnHandle,
    workspaces: Mutex<HashMap<(ConvOp, ConvGeometry), Vec<f32>>>,
}

impl PinnedGemm {
    fn new(handle: CudnnHandle) -> Self {
        Self {
            handle,
            workspaces: Mutex::new(HashMap::new()),
        }
    }
}

fn descriptors(
    g: &ConvGeometry,
) -> (
    TensorDescriptor,
    FilterDescriptor,
    ConvolutionDescriptor,
    TensorDescriptor,
) {
    (
        TensorDescriptor::from_shape(g.input).unwrap(),
        FilterDescriptor::from_shape(g.filter).unwrap(),
        ConvolutionDescriptor::new_2d(g.pad_h, g.pad_w, g.stride_h, g.stride_w).unwrap(),
        TensorDescriptor::from_shape(g.output()).unwrap(),
    )
}

impl ConvProvider for PinnedGemm {
    fn setup(&self, op: ConvOp, g: &ConvGeometry) -> Result<(), ProviderError> {
        let (xd, wd, cd, _) = descriptors(g);
        let bytes = self
            .handle
            .get_workspace_size(op, &xd, &wd, &cd, ConvAlgo::Gemm)?;
        self.workspaces
            .lock()
            .unwrap()
            .insert((op, *g), vec![0.0f32; bytes.div_ceil(4)]);
        Ok(())
    }

    fn execute(
        &self,
        op: ConvOp,
        g: &ConvGeometry,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        alpha: f32,
        beta: f32,
    ) -> Result<(), ProviderError> {
        if !self.workspaces.lock().unwrap().contains_key(&(op, *g)) {
            self.setup(op, g)?;
        }
        let (xd, wd, cd, yd) = descriptors(g);
        let mut wss = self.workspaces.lock().unwrap();
        let ws = wss.get_mut(&(op, *g)).expect("setup ran above");
        let algo = ConvAlgo::Gemm;
        match op {
            ConvOp::Forward => self
                .handle
                .convolution_forward(alpha, &xd, a, &wd, b, &cd, algo, ws, beta, &yd, out)?,
            ConvOp::BackwardData => self
                .handle
                .convolution_backward_data(alpha, &wd, b, &yd, a, &cd, algo, ws, beta, &xd, out)?,
            ConvOp::BackwardFilter => self.handle.convolution_backward_filter(
                alpha, &xd, a, &yd, b, &cd, algo, ws, beta, &wd, out,
            )?,
        }
        Ok(())
    }

    fn handle(&self) -> &CudnnHandle {
        &self.handle
    }

    fn workspace_bytes(&self) -> usize {
        4 * self
            .workspaces
            .lock()
            .unwrap()
            .values()
            .map(Vec::len)
            .sum::<usize>()
    }

    fn kernel_workspace_bytes(&self, op: ConvOp, g: &ConvGeometry) -> usize {
        self.workspaces
            .lock()
            .unwrap()
            .get(&(op, *g))
            .map(|v| 4 * v.len())
            .unwrap_or(0)
    }
}

fn tiny_classifier(n: usize) -> NetworkDef {
    let mut net = NetworkDef::new("clf", Shape4::new(n, 2, 8, 8));
    let c1 = net.conv_relu("conv1", net.input(), 6, 3, 1, 1);
    let p = net.add(
        "pool",
        LayerSpec::Pool {
            max: true,
            kernel: 2,
            stride: 2,
            pad: 0,
        },
        &[c1],
    );
    let c2 = net.conv_relu("conv2", p, 8, 3, 1, 1);
    let gap = net.add("gap", LayerSpec::GlobalAvgPool, &[c2]);
    net.add("fc", LayerSpec::FullyConnected { out: 3 }, &[gap]);
    net
}

/// Train 4 steps on a fresh executor/dataset; return per-step loss bits and
/// a flat bit-dump of every learned parameter.
fn run(cache_bytes: Option<usize>, thread_cap: usize) -> (Vec<u64>, Vec<u32>) {
    let prev = ucudnn_conv::parallel::set_thread_cap(Some(thread_cap));
    let handle = match cache_bytes {
        Some(b) => CudnnHandle::real_cpu().with_exec_cache_bytes(b),
        None => CudnnHandle::real_cpu(),
    };
    // Only the default-capacity cache is expected to produce hits: the
    // tiny-cache config thrashes (every insertion evicts a neighbor), which
    // is the point — eviction must be invisible too.
    let expect_hits = cache_bytes.is_none();
    let provider = PinnedGemm::new(handle);
    let mut exec = RealExecutor::new(tiny_classifier(8), 77);
    let mut data = SyntheticDataset::new(Shape4::new(1, 2, 8, 8), 3, 99);
    let losses = train(&mut exec, &provider, &mut data, 4, 0.05).unwrap();
    if expect_hits {
        let stats = provider.handle().exec_cache_stats();
        assert!(
            stats.hits > 0,
            "a 4-step cached run must revisit cached plans (stats: {stats:?})"
        );
    }
    ucudnn_conv::parallel::set_thread_cap(prev);
    let loss_bits = losses.iter().map(|l| l.to_bits()).collect();
    let mut param_bits = Vec::new();
    for p in &exec.params {
        match p {
            Params::Conv { w, b } | Params::Fc { w, b } => {
                param_bits.extend(w.iter().map(|v| v.to_bits()));
                param_bits.extend(b.iter().map(|v| v.to_bits()));
            }
            Params::Bn { gamma, beta } => {
                param_bits.extend(gamma.iter().map(|v| v.to_bits()));
                param_bits.extend(beta.iter().map(|v| v.to_bits()));
            }
            Params::None => {}
        }
    }
    (loss_bits, param_bits)
}

#[test]
fn training_is_bit_identical_across_cache_and_thread_configs() {
    // Baseline: default cache, single-threaded execution.
    let want = run(None, 1);
    assert_eq!(want.0.len(), 4);
    assert!(!want.1.is_empty());
    for (label, cache_bytes, threads) in [
        ("cache on, 2 threads", None, 2),
        ("cache on, 8 threads", None, 8),
        ("cache off, 1 thread", Some(0), 1),
        ("cache off, 8 threads", Some(0), 8),
        ("tiny 4 KiB cache (thrashing), 2 threads", Some(4 << 10), 2),
    ] {
        let got = run(cache_bytes, threads);
        assert_eq!(got.0, want.0, "losses diverged: {label}");
        assert_eq!(got.1, want.1, "parameters diverged: {label}");
    }
}
