//! Memory accounting: the per-layer breakdown behind Fig. 12.
//!
//! For each layer we account activations (`y`), parameters (`W`), their
//! gradients, and — for convolutions — the workspace the provider actually
//! allocated, which is where cuDNN and μ-cuDNN differ.

use crate::graph::{LayerSpec, NetworkDef, NodeId};
use crate::provider::ConvProvider;
use ucudnn_cudnn_sim::ConvOp;

/// Memory footprint of one layer, bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LayerMemory {
    /// Layer name.
    pub name: String,
    /// Layer kind.
    pub kind: &'static str,
    /// Output activation bytes.
    pub activation_bytes: usize,
    /// Learnable parameter bytes (weights + biases / γβ).
    pub param_bytes: usize,
    /// Workspace bytes attributed to this layer (max over its kernels for
    /// per-layer reuse semantics).
    pub workspace_bytes: usize,
}

impl LayerMemory {
    /// Total bytes of this layer.
    pub fn total(&self) -> usize {
        self.activation_bytes + self.param_bytes + self.workspace_bytes
    }
}

fn param_bytes(net: &NetworkDef, id: NodeId) -> usize {
    4 * match &net.nodes()[id].spec {
        LayerSpec::Conv {
            out_channels,
            kernel,
            ..
        } => {
            let cin = net.output_shape(net.nodes()[id].inputs[0]).c;
            out_channels * cin * kernel * kernel + out_channels
        }
        LayerSpec::FullyConnected { out } => {
            net.output_shape(net.nodes()[id].inputs[0]).sample_len() * out + out
        }
        LayerSpec::BatchNorm => 2 * net.output_shape(id).c,
        _ => 0,
    }
}

/// Per-layer memory report for a network under a given provider. Call
/// after `setup_network` so workspace assignments exist.
pub fn memory_report(provider: &impl ConvProvider, net: &NetworkDef) -> Vec<LayerMemory> {
    (0..net.len())
        .map(|id| {
            let node = &net.nodes()[id];
            let workspace_bytes = if matches!(node.spec, LayerSpec::Conv { .. }) {
                let g = net.conv_geometry(id);
                // Per-layer workspace: one buffer reused by the layer's
                // three kernels (Forward is reported by Caffe's allocation
                // granularity; we take the max over the ops the layer runs).
                let mut ws = provider.kernel_workspace_bytes(ConvOp::Forward, &g);
                ws = ws.max(provider.kernel_workspace_bytes(ConvOp::BackwardFilter, &g));
                if net.needs_backward_data(id) {
                    ws = ws.max(provider.kernel_workspace_bytes(ConvOp::BackwardData, &g));
                }
                ws
            } else {
                0
            };
            LayerMemory {
                name: node.name.clone(),
                kind: node.spec.kind_name(),
                activation_bytes: net.output_shape(id).bytes(),
                param_bytes: param_bytes(net, id),
                workspace_bytes,
            }
        })
        .collect()
}

/// Network-level totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemoryTotals {
    /// Σ activations.
    pub activations: usize,
    /// Σ parameters.
    pub params: usize,
    /// Σ per-layer workspace.
    pub workspace: usize,
}

/// Sum a report.
pub fn totals(report: &[LayerMemory]) -> MemoryTotals {
    MemoryTotals {
        activations: report.iter().map(|l| l.activation_bytes).sum(),
        params: report.iter().map(|l| l.param_bytes).sum(),
        workspace: report.iter().map(|l| l.workspace_bytes).sum(),
    }
}

impl MemoryTotals {
    /// Device-memory estimate for one training iteration: activations and
    /// their gradients (2×), parameters with gradients and SGD state (3×),
    /// plus workspaces — the standard rule-of-thumb accounting behind the
    /// paper's "limited memory scenario" (§I).
    pub fn training_footprint(&self) -> usize {
        2 * self.activations + 3 * self.params + self.workspace
    }

    /// Whether the training footprint fits a device's memory.
    pub fn fits(&self, device: &ucudnn_gpu_model::DeviceSpec) -> bool {
        self.training_footprint() <= device.mem_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_sim::setup_network;
    use crate::models::alexnet;
    use crate::provider::BaselineCudnn;
    use ucudnn::{UcudnnHandle, UcudnnOptions};
    use ucudnn_cudnn_sim::CudnnHandle;
    use ucudnn_gpu_model::p100_sxm2;

    const MIB: usize = 1024 * 1024;

    #[test]
    fn ucudnn_cuts_workspace_versus_roomy_cudnn() {
        // The Fig. 12 statement: cuDNN at 512 MiB/layer vs μ-cuDNN at
        // 64 MiB/layer — μ-cuDNN's total workspace must be several times
        // smaller while (checked elsewhere) keeping comparable speed.
        let net = alexnet(256);
        let base = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 512 * MIB);
        setup_network(&base, &net).unwrap();
        let tb = totals(&memory_report(&base, &net));

        let mu = UcudnnHandle::new(
            CudnnHandle::simulated(p100_sxm2()),
            UcudnnOptions {
                workspace_limit_bytes: 64 * MIB,
                ..Default::default()
            },
        );
        setup_network(&mu, &net).unwrap();
        let tm = totals(&memory_report(&mu, &net));

        assert!(
            tm.workspace < tb.workspace,
            "{} vs {}",
            tm.workspace,
            tb.workspace
        );
        assert!(
            tb.workspace as f64 / tm.workspace as f64 > 2.0,
            "expected >2x workspace reduction, got {:.2}x",
            tb.workspace as f64 / tm.workspace as f64
        );
        // Activations/params identical — only workspace changes.
        assert_eq!(tb.activations, tm.activations);
        assert_eq!(tb.params, tm.params);
    }

    #[test]
    fn fc_layers_dominate_alexnet_params() {
        let net = alexnet(256);
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 8 * MIB);
        setup_network(&p, &net).unwrap();
        let report = memory_report(&p, &net);
        let fc: usize = report
            .iter()
            .filter(|l| l.kind == "fc")
            .map(|l| l.param_bytes)
            .sum();
        let conv: usize = report
            .iter()
            .filter(|l| l.kind == "conv")
            .map(|l| l.param_bytes)
            .sum();
        assert!(fc > 10 * conv, "AlexNet's params live in the FC layers");
    }

    #[test]
    fn roomy_workspaces_can_break_the_memory_budget() {
        // The paper's premise quantified: AlexNet at batch 256 with 512 MiB
        // per-layer workspaces does NOT fit a 16 GiB P100, while μ-cuDNN's
        // 64 MiB plans do — with (verified elsewhere) near-equal speed.
        let net = alexnet(256);
        let dev = p100_sxm2();
        let base = BaselineCudnn::new(CudnnHandle::simulated(dev.clone()), 512 * MIB);
        setup_network(&base, &net).unwrap();
        let tb = totals(&memory_report(&base, &net));

        let mu = UcudnnHandle::new(
            CudnnHandle::simulated(dev.clone()),
            UcudnnOptions {
                workspace_limit_bytes: 64 * MIB,
                ..Default::default()
            },
        );
        setup_network(&mu, &net).unwrap();
        let tm = totals(&memory_report(&mu, &net));

        assert!(tm.fits(&dev), "the 64 MiB plan must fit a 16 GiB device");
        assert!(
            tm.training_footprint() < tb.training_footprint(),
            "micro-batching must shrink the footprint"
        );
    }

    #[test]
    fn workspace_respects_per_layer_limit() {
        let net = alexnet(128);
        let limit = 64 * MIB;
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), limit);
        setup_network(&p, &net).unwrap();
        for l in memory_report(&p, &net) {
            assert!(l.workspace_bytes <= limit, "{} exceeds the limit", l.name);
        }
    }
}
