//! Data-parallel training simulation.
//!
//! The paper's introduction motivates micro-batching with distributed
//! data-parallel training: frameworks favor large *global* batches, and the
//! per-accelerator batch should stay large for utilization — which is
//! exactly when workspace pressure peaks. This module models synchronous
//! data-parallel SGD over `g` simulated GPUs: each replica runs the
//! iteration on its shard of the global batch, then parameter gradients are
//! ring-allreduced. It quantifies (a) why large per-GPU batches matter and
//! (b) how a faster per-GPU iteration (μ-cuDNN) moves the scaling curve.

use crate::exec_sim::{setup_network, time_iteration};
use crate::graph::NetworkDef;
use crate::provider::{ConvProvider, ProviderError};

/// A homogeneous multi-GPU node/cluster for the scaling model.
#[derive(Debug, Clone)]
pub struct ClusterSpec {
    /// Number of data-parallel replicas.
    pub gpus: usize,
    /// Effective all-reduce link bandwidth per GPU, GB/s (NVLink-class ≈ 40,
    /// PCIe-class ≈ 10).
    pub interconnect_gbps: f64,
    /// Per-step latency of one ring phase, microseconds.
    pub ring_latency_us: f64,
}

impl ClusterSpec {
    /// A DGX-1-like 8-GPU NVLink node.
    pub fn dgx1_like() -> Self {
        Self {
            gpus: 8,
            interconnect_gbps: 40.0,
            ring_latency_us: 20.0,
        }
    }

    /// Ring all-reduce time for `param_bytes` of gradients across `g`
    /// replicas: `2·(g−1)/g` traversals of the buffer per GPU plus the ring
    /// latency per step (2·(g−1) steps).
    pub fn allreduce_us(&self, g: usize, param_bytes: usize) -> f64 {
        if g <= 1 {
            return 0.0;
        }
        let traversals = 2.0 * (g as f64 - 1.0) / g as f64;
        let bytes_per_us = self.interconnect_gbps * 1e9 / 1e6;
        traversals * param_bytes as f64 / bytes_per_us
            + 2.0 * (g as f64 - 1.0) * self.ring_latency_us
    }
}

/// One point of a scaling curve.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Number of replicas.
    pub gpus: usize,
    /// Per-GPU mini-batch.
    pub per_gpu_batch: usize,
    /// Per-replica compute time, microseconds.
    pub compute_us: f64,
    /// Gradient all-reduce time, microseconds.
    pub comm_us: f64,
    /// Total iteration time (compute + exposed communication).
    pub iter_us: f64,
    /// Global throughput, samples per second.
    pub samples_per_sec: f64,
}

impl ScalingPoint {
    /// Parallel efficiency relative to a 1-GPU point.
    pub fn efficiency_vs(&self, single: &ScalingPoint) -> f64 {
        (self.samples_per_sec / single.samples_per_sec) / (self.gpus as f64 / single.gpus as f64)
    }
}

/// Strong scaling of a fixed global batch: shard it over 1, 2, 4, …
/// replicas (skipping counts that don't divide it), run the sharded
/// iteration on a fresh provider, and add the all-reduce.
///
/// # Errors
/// Propagates provider setup/execution failures.
pub fn strong_scaling<P: ConvProvider>(
    net_at: impl Fn(usize) -> NetworkDef,
    make_provider: impl Fn() -> P,
    cluster: &ClusterSpec,
    global_batch: usize,
) -> Result<Vec<ScalingPoint>, ProviderError> {
    let mut points = Vec::new();
    let mut g = 1usize;
    while g <= cluster.gpus {
        if global_batch.is_multiple_of(g) && global_batch / g > 0 {
            let per = global_batch / g;
            let net = net_at(per);
            let provider = make_provider();
            setup_network(&provider, &net)?;
            let t = time_iteration(&provider, &net)?;
            let compute_us = t.total_us();
            let param_bytes = 4 * net.param_count();
            let comm_us = cluster.allreduce_us(g, param_bytes);
            let iter_us = compute_us + comm_us;
            ucudnn::trace::event("train", "scaling_point", move || {
                (
                    format!("gpus{g}"),
                    ucudnn::json::obj([
                        ("gpus", ucudnn::json::num(g as f64)),
                        ("per_gpu_batch", ucudnn::json::num(per as f64)),
                        ("compute_us", ucudnn::json::num(compute_us)),
                        ("comm_us", ucudnn::json::num(comm_us)),
                        ("iter_us", ucudnn::json::num(iter_us)),
                    ]),
                )
            });
            points.push(ScalingPoint {
                gpus: g,
                per_gpu_batch: per,
                compute_us,
                comm_us,
                iter_us,
                samples_per_sec: global_batch as f64 / (iter_us / 1e6),
            });
        }
        g *= 2;
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::alexnet;
    use crate::provider::BaselineCudnn;
    use ucudnn_cudnn_sim::CudnnHandle;
    use ucudnn_gpu_model::p100_sxm2;

    const MIB: usize = 1024 * 1024;

    fn points(global: usize) -> Vec<ScalingPoint> {
        strong_scaling(
            alexnet,
            || BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB),
            &ClusterSpec::dgx1_like(),
            global,
        )
        .unwrap()
    }

    #[test]
    fn allreduce_scales_with_bytes_and_ring_size() {
        let c = ClusterSpec::dgx1_like();
        assert_eq!(c.allreduce_us(1, 1 << 30), 0.0);
        assert!(c.allreduce_us(4, 1 << 20) < c.allreduce_us(4, 1 << 24));
        // The bandwidth term saturates at 2 traversals: 8 GPUs is only
        // slightly costlier than 4 for big buffers.
        let b4 = c.allreduce_us(4, 1 << 28);
        let b8 = c.allreduce_us(8, 1 << 28);
        assert!(b8 > b4 && b8 < 1.4 * b4, "b4={b4} b8={b8}");
    }

    #[test]
    fn strong_scaling_improves_throughput_sublinearly() {
        let pts = points(512);
        assert_eq!(pts.len(), 4); // 1, 2, 4, 8
                                  // Throughput grows with GPUs…
        for w in pts.windows(2) {
            assert!(w[1].samples_per_sec > w[0].samples_per_sec);
        }
        // …but efficiency drops below 1 (shrinking per-GPU batches lose
        // utilization and communication is exposed) — the paper's argument
        // for keeping per-GPU batches large.
        let last = pts.last().unwrap();
        let eff = last.efficiency_vs(&pts[0]);
        assert!(eff < 1.0, "efficiency {eff}");
        assert!(eff > 0.3, "efficiency implausibly low: {eff}");
    }

    #[test]
    fn communication_grows_with_replicas() {
        let pts = points(512);
        for w in pts.windows(2) {
            assert!(w[1].comm_us > w[0].comm_us);
        }
    }
}
