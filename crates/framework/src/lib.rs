//! A mini Caffe-like deep learning framework driving the cuDNN-style API.
//!
//! This crate is the substitute for Caffe / NVCaffe / TensorFlow in the
//! μ-cuDNN reproduction (DESIGN.md §2): frameworks only touch cuDNN through
//! a narrow surface — describe layers, pick algorithms once, then launch
//! convolutions every iteration — and this crate drives exactly that surface
//! through a pluggable [`provider::ConvProvider`] (plain cuDNN semantics or
//! the μ-cuDNN wrapper).
//!
//! * [`graph`] — the layer DAG with shape inference,
//! * [`models`] — AlexNet, ResNet-18/50, DenseNet-40, an Inception module,
//! * [`exec_sim`]/[`timing`] — the Caffe-`time`-style benchmark driver on
//!   the simulated GPU,
//! * [`exec_real`] — real CPU numerics for end-to-end gradient validation,
//! * [`memory`] — the per-layer memory accounting behind Fig. 12.

pub mod concurrency;
pub mod cost;
pub mod data_parallel;
pub mod exec_real;
pub mod exec_sim;
pub mod graph;
pub mod hist;
pub mod memory;
pub mod models;
pub mod provider;
pub mod timing;
pub mod train;

pub use exec_real::{Params, RealExecutor};
pub use exec_sim::{setup_network, time_forward, time_iteration, IterationTiming, LayerTiming};
pub use graph::{LayerSpec, NetworkDef, NodeId};
pub use hist::{Percentiles, StreamingHistogram};
pub use memory::{memory_report, totals, LayerMemory, MemoryTotals};
pub use models::{alexnet, densenet40, inception_module, resnet18, resnet50};
pub use provider::{BaselineCudnn, ConvProvider, ProviderError};
pub use timing::{time_command, TimeReport};
pub use train::{sgd_step, softmax_cross_entropy, train, SyntheticDataset};
