//! The layer graph: a small Caffe-like network IR.
//!
//! Networks are DAGs of typed layers. The graph performs shape inference and
//! enumerates the convolution kernels a training iteration will launch —
//! the inputs both executors and the μ-cuDNN optimizer need.

use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

/// Index of a node within its [`NetworkDef`].
pub type NodeId = usize;

/// Layer types supported by the framework.
#[derive(Debug, Clone, PartialEq)]
pub enum LayerSpec {
    /// The network input (data layer).
    Input,
    /// 2-D convolution (cross-correlation) with bias.
    Conv {
        /// Number of output channels.
        out_channels: usize,
        /// Square kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Max or average pooling.
    Pool {
        /// `true` for max pooling, `false` for average.
        max: bool,
        /// Square window size.
        kernel: usize,
        /// Stride.
        stride: usize,
        /// Zero padding.
        pad: usize,
    },
    /// Rectified linear unit (in-place in Caffe; a separate node here).
    Relu,
    /// Batch normalization with learned scale/shift.
    BatchNorm,
    /// Fully connected layer (flattens its input) with bias.
    FullyConnected {
        /// Output features.
        out: usize,
    },
    /// Elementwise sum of two inputs (residual connections).
    Add,
    /// Channel concatenation of all inputs (DenseNet, Inception).
    Concat,
    /// Global average pooling to 1×1.
    GlobalAvgPool,
}

impl LayerSpec {
    /// Expected number of graph inputs.
    fn arity_ok(&self, n: usize) -> bool {
        match self {
            LayerSpec::Input => n == 0,
            LayerSpec::Add => n == 2,
            LayerSpec::Concat => n >= 2,
            _ => n == 1,
        }
    }

    /// Short kind name for reports.
    pub fn kind_name(&self) -> &'static str {
        match self {
            LayerSpec::Input => "input",
            LayerSpec::Conv { .. } => "conv",
            LayerSpec::Pool { .. } => "pool",
            LayerSpec::Relu => "relu",
            LayerSpec::BatchNorm => "bn",
            LayerSpec::FullyConnected { .. } => "fc",
            LayerSpec::Add => "add",
            LayerSpec::Concat => "concat",
            LayerSpec::GlobalAvgPool => "gap",
        }
    }
}

/// One node of the graph.
#[derive(Debug, Clone)]
pub struct Node {
    /// Layer name (unique within the network).
    pub name: String,
    /// Layer type and hyper-parameters.
    pub spec: LayerSpec,
    /// Input nodes.
    pub inputs: Vec<NodeId>,
}

/// A network definition: nodes in topological order (enforced by the
/// builder: inputs must precede their consumers).
#[derive(Debug, Clone)]
pub struct NetworkDef {
    /// Network name (e.g. "AlexNet").
    pub name: String,
    nodes: Vec<Node>,
    input_shape: Shape4,
    /// Output shape per node, computed eagerly as nodes are added. Shapes
    /// must be memoized: recursive inference is exponential on DAGs with
    /// multi-input nodes (ResNet's Add, DenseNet's Concat).
    shapes: Vec<Shape4>,
}

impl NetworkDef {
    /// Start a network with the given input shape (N, C, H, W).
    pub fn new(name: impl Into<String>, input_shape: Shape4) -> Self {
        let nodes = vec![Node {
            name: "data".into(),
            spec: LayerSpec::Input,
            inputs: vec![],
        }];
        Self {
            name: name.into(),
            nodes,
            input_shape,
            shapes: vec![input_shape],
        }
    }

    /// The input node.
    pub fn input(&self) -> NodeId {
        0
    }

    /// The input shape.
    pub fn input_shape(&self) -> Shape4 {
        self.input_shape
    }

    /// Mini-batch size.
    pub fn batch(&self) -> usize {
        self.input_shape.n
    }

    /// Same network at a different mini-batch size.
    pub fn with_batch(&self, n: usize) -> Self {
        let mut out = self.clone();
        out.input_shape = out.input_shape.with_batch(n);
        // Only the batch dimension changes for every node.
        for s in &mut out.shapes {
            *s = s.with_batch(n);
        }
        out
    }

    /// Add a layer; returns its id.
    ///
    /// # Panics
    /// Panics on dangling inputs, wrong arity, duplicate names, or shapes
    /// that do not validate (caught eagerly via shape inference).
    pub fn add(&mut self, name: impl Into<String>, spec: LayerSpec, inputs: &[NodeId]) -> NodeId {
        let name = name.into();
        assert!(
            self.nodes.iter().all(|n| n.name != name),
            "duplicate layer name {name}"
        );
        assert!(
            spec.arity_ok(inputs.len()),
            "layer {name} ({spec:?}) got {} inputs",
            inputs.len()
        );
        for &i in inputs {
            assert!(
                i < self.nodes.len(),
                "layer {name} references undefined node {i}"
            );
        }
        let id = self.nodes.len();
        self.nodes.push(Node {
            name,
            spec,
            inputs: inputs.to_vec(),
        });
        // Infer and memoize eagerly; panics with a useful message if the
        // shapes are inconsistent.
        let shape = self.infer_shape(id);
        self.shapes.push(shape);
        id
    }

    /// Convenience: add a conv followed by ReLU; returns the ReLU id.
    pub fn conv_relu(
        &mut self,
        name: &str,
        input: NodeId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        let c = self.add(
            name.to_string(),
            LayerSpec::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            },
            &[input],
        );
        self.add(format!("{name}.relu"), LayerSpec::Relu, &[c])
    }

    /// Convenience: conv → BN → ReLU; returns the ReLU id.
    pub fn conv_bn_relu(
        &mut self,
        name: &str,
        input: NodeId,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        pad: usize,
    ) -> NodeId {
        let c = self.add(
            name.to_string(),
            LayerSpec::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            },
            &[input],
        );
        let b = self.add(format!("{name}.bn"), LayerSpec::BatchNorm, &[c]);
        self.add(format!("{name}.relu"), LayerSpec::Relu, &[b])
    }

    /// All nodes, topologically ordered.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Always false (a network has at least its input node).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Output shape of a node (memoized at construction).
    pub fn output_shape(&self, id: NodeId) -> Shape4 {
        self.shapes[id]
    }

    /// Shape inference for the newest node, reading memoized input shapes.
    fn infer_shape(&self, id: NodeId) -> Shape4 {
        let node = &self.nodes[id];
        let in_shapes: Vec<Shape4> = node.inputs.iter().map(|&i| self.shapes[i]).collect();
        match &node.spec {
            LayerSpec::Input => self.input_shape,
            LayerSpec::Conv {
                out_channels,
                kernel,
                stride,
                pad,
            } => {
                let g = ConvGeometry::with_square(
                    in_shapes[0],
                    FilterShape::new(*out_channels, in_shapes[0].c, *kernel, *kernel),
                    *pad,
                    *stride,
                );
                g.output()
            }
            LayerSpec::Pool {
                kernel,
                stride,
                pad,
                ..
            } => {
                let s = in_shapes[0];
                // Caffe pooling: ceil-mode output size.
                let oh = (s.h + 2 * pad - kernel).div_ceil(*stride) + 1;
                let ow = (s.w + 2 * pad - kernel).div_ceil(*stride) + 1;
                Shape4::new(s.n, s.c, oh, ow)
            }
            LayerSpec::Relu | LayerSpec::BatchNorm => in_shapes[0],
            LayerSpec::FullyConnected { out } => Shape4::new(in_shapes[0].n, *out, 1, 1),
            LayerSpec::Add => {
                assert_eq!(
                    in_shapes[0], in_shapes[1],
                    "Add inputs must match: {node:?}"
                );
                in_shapes[0]
            }
            LayerSpec::Concat => {
                let first = in_shapes[0];
                let mut c = 0;
                for s in &in_shapes {
                    assert!(
                        s.n == first.n && s.h == first.h && s.w == first.w,
                        "Concat inputs must share N/H/W: {node:?}"
                    );
                    c += s.c;
                }
                Shape4::new(first.n, c, first.h, first.w)
            }
            LayerSpec::GlobalAvgPool => Shape4::new(in_shapes[0].n, in_shapes[0].c, 1, 1),
        }
    }

    /// Convolution geometry of a conv node.
    ///
    /// # Panics
    /// Panics when `id` is not a conv layer.
    pub fn conv_geometry(&self, id: NodeId) -> ConvGeometry {
        let node = &self.nodes[id];
        let LayerSpec::Conv {
            out_channels,
            kernel,
            stride,
            pad,
        } = node.spec
        else {
            panic!("node {} is not a convolution", node.name);
        };
        let input = self.output_shape(node.inputs[0]);
        ConvGeometry::with_square(
            input,
            FilterShape::new(out_channels, input.c, kernel, kernel),
            pad,
            stride,
        )
    }

    /// Ids of all convolution layers, in topological order.
    pub fn conv_layers(&self) -> Vec<NodeId> {
        (0..self.nodes.len())
            .filter(|&i| matches!(self.nodes[i].spec, LayerSpec::Conv { .. }))
            .collect()
    }

    /// Whether a conv node needs a BackwardData pass (everything except
    /// convolutions reading the data layer directly, as in Caffe).
    pub fn needs_backward_data(&self, id: NodeId) -> bool {
        self.nodes[id].inputs[0] != self.input()
    }

    /// Total learnable-parameter count.
    pub fn param_count(&self) -> usize {
        (0..self.nodes.len())
            .map(|i| match &self.nodes[i].spec {
                LayerSpec::Conv {
                    out_channels,
                    kernel,
                    ..
                } => {
                    let cin = self.output_shape(self.nodes[i].inputs[0]).c;
                    out_channels * cin * kernel * kernel + out_channels
                }
                LayerSpec::FullyConnected { out } => {
                    let s = self.output_shape(self.nodes[i].inputs[0]);
                    s.sample_len() * out + out
                }
                LayerSpec::BatchNorm => 2 * self.output_shape(self.nodes[i].inputs[0]).c,
                _ => 0,
            })
            .sum()
    }

    /// Consumers of each node (used by real backward execution).
    pub fn consumers(&self) -> Vec<Vec<NodeId>> {
        let mut out = vec![Vec::new(); self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            for &i in &n.inputs {
                out[i].push(id);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> NetworkDef {
        let mut net = NetworkDef::new("tiny", Shape4::new(4, 3, 16, 16));
        let c1 = net.conv_relu("conv1", net.input(), 8, 3, 1, 1);
        let p = net.add(
            "pool1",
            LayerSpec::Pool {
                max: true,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let c2 = net.conv_relu("conv2", p, 16, 3, 1, 1);
        net.add("fc", LayerSpec::FullyConnected { out: 10 }, &[c2]);
        net
    }

    #[test]
    fn shape_inference_chains() {
        let net = tiny();
        let last = net.len() - 1;
        assert_eq!(net.output_shape(last), Shape4::new(4, 10, 1, 1));
    }

    #[test]
    fn conv_enumeration_and_geometry() {
        let net = tiny();
        let convs = net.conv_layers();
        assert_eq!(convs.len(), 2);
        let g = net.conv_geometry(convs[1]);
        assert_eq!(g.input, Shape4::new(4, 8, 8, 8));
        assert_eq!(g.filter, FilterShape::new(16, 8, 3, 3));
    }

    #[test]
    fn first_conv_skips_backward_data() {
        let net = tiny();
        let convs = net.conv_layers();
        assert!(!net.needs_backward_data(convs[0]));
        assert!(net.needs_backward_data(convs[1]));
    }

    #[test]
    fn pool_uses_ceil_mode_like_caffe() {
        // AlexNet pool1: 55 → ceil((55-3)/2)+1 = 27.
        let mut net = NetworkDef::new("t", Shape4::new(1, 1, 55, 55));
        let p = net.add(
            "p",
            LayerSpec::Pool {
                max: true,
                kernel: 3,
                stride: 2,
                pad: 0,
            },
            &[net.input()],
        );
        assert_eq!(net.output_shape(p), Shape4::new(1, 1, 27, 27));
    }

    #[test]
    fn concat_sums_channels() {
        let mut net = NetworkDef::new("t", Shape4::new(2, 4, 8, 8));
        let a = net.add(
            "a",
            LayerSpec::Conv {
                out_channels: 3,
                kernel: 1,
                stride: 1,
                pad: 0,
            },
            &[net.input()],
        );
        let b = net.add(
            "b",
            LayerSpec::Conv {
                out_channels: 5,
                kernel: 1,
                stride: 1,
                pad: 0,
            },
            &[net.input()],
        );
        let c = net.add("c", LayerSpec::Concat, &[a, b]);
        assert_eq!(net.output_shape(c).c, 8);
    }

    #[test]
    fn param_count_counts_weights_and_biases() {
        let mut net = NetworkDef::new("t", Shape4::new(1, 3, 4, 4));
        net.add(
            "c",
            LayerSpec::Conv {
                out_channels: 2,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            &[0],
        );
        // 2*3*3*3 + 2 bias = 56
        assert_eq!(net.param_count(), 56);
    }

    #[test]
    #[should_panic(expected = "duplicate layer name")]
    fn duplicate_names_rejected() {
        let mut net = NetworkDef::new("t", Shape4::new(1, 3, 4, 4));
        net.add("x", LayerSpec::Relu, &[0]);
        net.add("x", LayerSpec::Relu, &[0]);
    }

    #[test]
    #[should_panic(expected = "Add inputs must match")]
    fn add_shape_mismatch_rejected() {
        let mut net = NetworkDef::new("t", Shape4::new(1, 3, 4, 4));
        let a = net.add(
            "a",
            LayerSpec::Conv {
                out_channels: 2,
                kernel: 1,
                stride: 1,
                pad: 0,
            },
            &[0],
        );
        let b = net.add(
            "b",
            LayerSpec::Conv {
                out_channels: 3,
                kernel: 1,
                stride: 1,
                pad: 0,
            },
            &[0],
        );
        net.add("sum", LayerSpec::Add, &[a, b]);
    }

    #[test]
    fn with_batch_rescales_everything() {
        let net = tiny().with_batch(32);
        assert_eq!(net.batch(), 32);
        assert_eq!(net.conv_geometry(net.conv_layers()[0]).batch(), 32);
    }
}
