//! The `time` command: Caffe-style benchmark driver that averages
//! forward/backward iteration timings and prints a per-layer table.

use crate::exec_sim::{setup_network, time_iteration, IterationTiming};
use crate::graph::NetworkDef;
use crate::hist::{Percentiles, StreamingHistogram};
use crate::provider::{ConvProvider, ProviderError};

/// Aggregated result of a `time` run.
#[derive(Debug, Clone)]
pub struct TimeReport {
    /// Network name.
    pub network: String,
    /// Mini-batch size.
    pub batch: usize,
    /// Averaged per-layer timing.
    pub timing: IterationTiming,
    /// Iterations measured.
    pub iterations: usize,
    /// Provider workspace footprint after setup, bytes.
    pub workspace_bytes: usize,
    /// Streaming percentile summary of whole-iteration times.
    pub iteration_percentiles: Percentiles,
    /// Per-layer (forward, backward) percentiles, same order as
    /// `timing.layers`.
    pub layer_percentiles: Vec<(Percentiles, Percentiles)>,
}

impl TimeReport {
    /// Average iteration time, milliseconds.
    pub fn iteration_ms(&self) -> f64 {
        self.timing.total_us() / 1000.0
    }

    /// Average convolution time per iteration, milliseconds.
    pub fn conv_ms(&self) -> f64 {
        self.timing.conv_us() / 1000.0
    }

    /// Render the per-layer table like Caffe's `time` output.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "=== {} (batch {}) — avg over {} iteration(s) ===\n",
            self.network, self.batch, self.iterations
        ));
        out.push_str(&format!(
            "{:<22} {:>6} {:>12} {:>12}\n",
            "layer", "kind", "forward(us)", "backward(us)"
        ));
        for l in &self.timing.layers {
            out.push_str(&format!(
                "{:<22} {:>6} {:>12.1} {:>12.1}\n",
                l.name, l.kind, l.forward_us, l.backward_us
            ));
        }
        out.push_str(&format!(
            "total {:.3} ms (convolutions {:.3} ms), workspace {:.1} MiB\n",
            self.iteration_ms(),
            self.conv_ms(),
            self.workspace_bytes as f64 / (1024.0 * 1024.0)
        ));
        out.push_str(&format!(
            "iteration p50 {:.1} us, p95 {:.1} us, p99 {:.1} us\n",
            self.iteration_percentiles.p50_us,
            self.iteration_percentiles.p95_us,
            self.iteration_percentiles.p99_us
        ));
        out
    }
}

/// Run the benchmark: setup (algorithm selection / optimization), then
/// `iterations` timed forward+backward passes, averaged.
///
/// # Errors
/// Setup or execution failures.
pub fn time_command(
    provider: &impl ConvProvider,
    net: &NetworkDef,
    iterations: usize,
) -> Result<TimeReport, ProviderError> {
    assert!(iterations > 0, "at least one iteration");
    setup_network(provider, net)?;
    let mut acc: Option<IterationTiming> = None;
    let mut iter_hist = StreamingHistogram::new();
    let mut layer_hists: Vec<(StreamingHistogram, StreamingHistogram)> = Vec::new();
    for i in 0..iterations {
        let _iter = ucudnn::trace::span("train", "iteration", move || {
            (
                format!("iter{i}"),
                ucudnn::json::obj([("iteration", ucudnn::json::num(i as f64))]),
            )
        });
        let t = time_iteration(provider, net)?;
        iter_hist.record(t.total_us());
        if layer_hists.is_empty() {
            layer_hists = t
                .layers
                .iter()
                .map(|_| (StreamingHistogram::new(), StreamingHistogram::new()))
                .collect();
        }
        for (h, l) in layer_hists.iter_mut().zip(&t.layers) {
            h.0.record(l.forward_us);
            h.1.record(l.backward_us);
        }
        match &mut acc {
            None => acc = Some(t),
            Some(a) => {
                for (al, tl) in a.layers.iter_mut().zip(&t.layers) {
                    al.forward_us += tl.forward_us;
                    al.backward_us += tl.backward_us;
                }
            }
        }
    }
    let mut timing = acc.expect("at least one iteration ran");
    for l in &mut timing.layers {
        l.forward_us /= iterations as f64;
        l.backward_us /= iterations as f64;
    }
    Ok(TimeReport {
        network: net.name.clone(),
        batch: net.batch(),
        timing,
        iterations,
        workspace_bytes: provider.workspace_bytes(),
        iteration_percentiles: iter_hist.percentiles(),
        layer_percentiles: layer_hists
            .into_iter()
            .map(|(f, b)| (f.percentiles(), b.percentiles()))
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::alexnet;
    use crate::provider::BaselineCudnn;
    use ucudnn_cudnn_sim::CudnnHandle;
    use ucudnn_gpu_model::p100_sxm2;

    const MIB: usize = 1024 * 1024;

    #[test]
    fn time_command_runs_alexnet() {
        let net = alexnet(64);
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        let r = time_command(&p, &net, 3).unwrap();
        assert_eq!(r.iterations, 3);
        assert!(r.iteration_ms() > 0.0);
        assert!(r.conv_ms() < r.iteration_ms());
        let rendered = r.render();
        assert!(rendered.contains("conv2"));
        assert!(rendered.contains("total"));
    }

    #[test]
    fn averaging_is_stable_on_the_deterministic_model() {
        let net = alexnet(32);
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        let r1 = time_command(&p, &net, 1).unwrap();
        let r5 = time_command(&p, &net, 5).unwrap();
        assert!((r1.iteration_ms() - r5.iteration_ms()).abs() < 1e-9);
    }
}
