//! A minimal SGD training loop over the real executor.
//!
//! μ-cuDNN's headline safety claim is that it "decouples statistical
//! efficiency from hardware efficiency": dividing mini-batches changes
//! *when* kernels run, never *what* is computed, so the training trajectory
//! (losses, parameters, accuracy) is untouched. This module provides the
//! machinery to check that end to end: a softmax-cross-entropy head and a
//! plain SGD step, run against any [`ConvProvider`].

use crate::exec_real::{Params, RealExecutor};
use crate::provider::{ConvProvider, ProviderError};
use ucudnn_tensor::{DeterministicRng, Tensor};

/// Numerically stable per-sample softmax cross-entropy over the final
/// node's `(N, classes, 1, 1)` activation. Returns the mean loss and the
/// gradient w.r.t. the logits (already scaled by `1/N`).
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> (f64, Tensor) {
    let s = logits.shape();
    assert_eq!(s.h * s.w, 1, "loss head expects (N, classes, 1, 1) logits");
    assert_eq!(labels.len(), s.n, "one label per sample");
    let classes = s.c;
    let mut grad = Tensor::zeros(s);
    let mut loss = 0.0f64;
    for (ni, &label) in labels.iter().enumerate() {
        let row = &logits.as_slice()[ni * classes..(ni + 1) * classes];
        let max = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let exps: Vec<f64> = row.iter().map(|&v| ((v - max) as f64).exp()).collect();
        let z: f64 = exps.iter().sum();
        assert!(label < classes, "label {label} out of range");
        loss -= (exps[label] / z).ln();
        for (ci, e) in exps.iter().enumerate() {
            let p = (e / z) as f32;
            let indicator = if ci == label { 1.0 } else { 0.0 };
            grad.set(ni, ci, 0, 0, (p - indicator) / s.n as f32);
        }
    }
    (loss / s.n as f64, grad)
}

/// Apply one SGD step: `p -= lr * g` for every parameter.
pub fn sgd_step(exec: &mut RealExecutor, grads: &[Params], lr: f32) {
    for (p, g) in exec.params.iter_mut().zip(grads) {
        match (p, g) {
            (Params::Conv { w, b }, Params::Conv { w: gw, b: gb })
            | (Params::Fc { w, b }, Params::Fc { w: gw, b: gb }) => {
                for (x, d) in w.iter_mut().zip(gw) {
                    *x -= lr * d;
                }
                for (x, d) in b.iter_mut().zip(gb) {
                    *x -= lr * d;
                }
            }
            (
                Params::Bn { gamma, beta },
                Params::Bn {
                    gamma: gg,
                    beta: gb,
                },
            ) => {
                for (x, d) in gamma.iter_mut().zip(gg) {
                    *x -= lr * d;
                }
                for (x, d) in beta.iter_mut().zip(gb) {
                    *x -= lr * d;
                }
            }
            (Params::None, Params::None) => {}
            other => panic!("parameter/gradient kind mismatch: {other:?}"),
        }
    }
}

/// A synthetic, deterministic classification dataset: each class is a
/// distinct random template plus per-sample noise — easy enough that a few
/// SGD steps visibly reduce the loss.
pub struct SyntheticDataset {
    templates: Vec<Tensor>,
    rng: DeterministicRng,
    classes: usize,
}

impl SyntheticDataset {
    /// Create a dataset of `classes` templates for one-sample shape
    /// `(1, C, H, W)` (pass the network input shape with `n = 1`).
    pub fn new(sample_shape: ucudnn_tensor::Shape4, classes: usize, seed: u64) -> Self {
        assert_eq!(sample_shape.n, 1, "template shape must have batch 1");
        let templates = (0..classes)
            .map(|i| Tensor::random(sample_shape, seed ^ (i as u64 + 1)))
            .collect();
        Self {
            templates,
            rng: DeterministicRng::new(seed),
            classes,
        }
    }

    /// Draw a deterministic mini-batch of `n` (input, label) pairs.
    pub fn batch(&mut self, n: usize) -> (Tensor, Vec<usize>) {
        let sample = self.templates[0].shape();
        let mut x = Tensor::zeros(sample.with_batch(n));
        let mut labels = Vec::with_capacity(n);
        for ni in 0..n {
            let label = self.rng.next_below(self.classes as u64) as usize;
            labels.push(label);
            let t = self.templates[label].as_slice();
            let dst = x.batch_slice_mut(ni, ni + 1);
            for (d, &v) in dst.iter_mut().zip(t) {
                *d = v + 0.1 * (self.rng.next_uniform() * 2.0 - 1.0);
            }
        }
        (x, labels)
    }
}

/// Run `steps` SGD steps; returns the per-step mean losses.
///
/// # Errors
/// Propagates provider failures.
pub fn train(
    exec: &mut RealExecutor,
    provider: &impl ConvProvider,
    dataset: &mut SyntheticDataset,
    steps: usize,
    lr: f32,
) -> Result<Vec<f64>, ProviderError> {
    let n = exec.net().batch();
    let mut losses = Vec::with_capacity(steps);
    // Workspace high-water mark across the run: the provider's footprint can
    // only be observed between steps, so sample it each step and report the
    // peak.
    let mut ws_hwm = provider.workspace_bytes();
    for i in 0..steps {
        let step = {
            let _span = ucudnn::trace::span("train", "step", move || {
                (
                    format!("step{i}"),
                    ucudnn::json::obj([("step", ucudnn::json::num(i as f64))]),
                )
            });
            let (x, labels) = dataset.batch(n);
            let acts = exec.forward(provider, &x)?;
            let last = acts.len() - 1;
            let (loss, dlogits) = softmax_cross_entropy(&acts[last], &labels);
            let (grads, _) = exec.backward(provider, &acts, &dlogits)?;
            sgd_step(exec, &grads, lr);
            loss
        };
        ws_hwm = ws_hwm.max(provider.workspace_bytes());
        losses.push(step);
    }
    ucudnn::trace::event("train", "workspace_hwm", move || {
        (
            "train".to_string(),
            ucudnn::json::obj([
                ("bytes", ucudnn::json::num(ws_hwm as f64)),
                ("steps", ucudnn::json::num(steps as f64)),
            ]),
        )
    });
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{LayerSpec, NetworkDef};
    use crate::provider::BaselineCudnn;
    use ucudnn_cudnn_sim::CudnnHandle;
    use ucudnn_tensor::Shape4;

    fn tiny_classifier(n: usize) -> NetworkDef {
        let mut net = NetworkDef::new("clf", Shape4::new(n, 2, 8, 8));
        let c1 = net.conv_relu("conv1", net.input(), 6, 3, 1, 1);
        let p = net.add(
            "pool",
            LayerSpec::Pool {
                max: true,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let c2 = net.conv_relu("conv2", p, 8, 3, 1, 1);
        let gap = net.add("gap", LayerSpec::GlobalAvgPool, &[c2]);
        net.add("fc", LayerSpec::FullyConnected { out: 3 }, &[gap]);
        net
    }

    #[test]
    fn softmax_loss_and_gradient_are_consistent() {
        let logits = Tensor::random(Shape4::new(4, 3, 1, 1), 5);
        let labels = vec![0usize, 2, 1, 0];
        let (loss, grad) = softmax_cross_entropy(&logits, &labels);
        assert!(loss > 0.0);
        // Gradient rows sum to zero (softmax simplex tangent).
        for ni in 0..4 {
            let row: f32 = (0..3).map(|c| grad.get(ni, c, 0, 0)).sum();
            assert!(row.abs() < 1e-6);
        }
        // Finite-difference on one logit.
        let eps = 1e-3f32;
        let mut lp = logits.clone();
        lp.set(1, 2, 0, 0, lp.get(1, 2, 0, 0) + eps);
        let (loss_p, _) = softmax_cross_entropy(&lp, &labels);
        let mut lm = logits.clone();
        lm.set(1, 2, 0, 0, lm.get(1, 2, 0, 0) - eps);
        let (loss_m, _) = softmax_cross_entropy(&lm, &labels);
        let numeric = ((loss_p - loss_m) / (2.0 * eps as f64)) as f32;
        assert!((grad.get(1, 2, 0, 0) - numeric).abs() < 1e-3);
    }

    #[test]
    fn perfect_logits_have_near_zero_loss() {
        let mut logits = Tensor::zeros(Shape4::new(2, 3, 1, 1));
        logits.set(0, 1, 0, 0, 50.0);
        logits.set(1, 0, 0, 0, 50.0);
        let (loss, _) = softmax_cross_entropy(&logits, &[1, 0]);
        assert!(loss < 1e-6);
    }

    #[test]
    fn sgd_reduces_the_loss_on_the_synthetic_task() {
        let net = tiny_classifier(8);
        let mut exec = RealExecutor::new(net.clone(), 99);
        let p = BaselineCudnn::new(CudnnHandle::real_cpu(), 1 << 20);
        let mut data = SyntheticDataset::new(Shape4::new(1, 2, 8, 8), 3, 7);
        let losses = train(&mut exec, &p, &mut data, 30, 0.5).unwrap();
        let head: f64 = losses[..5].iter().sum::<f64>() / 5.0;
        let tail: f64 = losses[losses.len() - 5..].iter().sum::<f64>() / 5.0;
        assert!(
            tail < 0.7 * head,
            "training did not converge: first5 {head:.4} vs last5 {tail:.4}"
        );
    }

    #[test]
    fn dataset_is_deterministic() {
        let mut a = SyntheticDataset::new(Shape4::new(1, 2, 8, 8), 3, 7);
        let mut b = SyntheticDataset::new(Shape4::new(1, 2, 8, 8), 3, 7);
        let (xa, la) = a.batch(6);
        let (xb, lb) = b.batch(6);
        assert_eq!(xa, xb);
        assert_eq!(la, lb);
    }
}
