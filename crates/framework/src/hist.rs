//! Streaming log-bucketed histograms for latency percentiles.
//!
//! The `time` command used to report only per-layer means; means hide tail
//! behaviour (an occasional slow iteration is invisible). A
//! [`StreamingHistogram`] records observations into geometrically spaced
//! buckets in O(1) per sample and fixed memory, and answers p50/p95/p99
//! queries with bounded relative error (one bucket width, ~5%).
//!
//! The bucket geometry is shared with `ucudnn::telemetry` (one source of
//! truth), so quantiles reported here agree with the registry's histograms.

use ucudnn::telemetry::{bucket_index, bucket_upper, HIST_BUCKETS as BUCKETS};

/// A fixed-memory streaming histogram over positive durations (µs).
///
/// Two accumulations run in parallel: the cumulative-since-start state that
/// every quantile accessor reads, and a *window* that resets each time
/// [`Self::take_window`] is called. The cumulative view is what training
/// reports want; the window is what a drift detector wants — a late 2×
/// slowdown is averaged away in the cumulative p50 but dominates the
/// windowed one.
#[derive(Debug, Clone)]
pub struct StreamingHistogram {
    counts: Vec<u64>,
    total: u64,
    min: f64,
    max: f64,
    sum: f64,
    /// Window state since the last `take_window`; same bucketing.
    w_counts: Vec<u64>,
    w_total: u64,
    w_min: f64,
    w_max: f64,
    w_sum: f64,
}

impl Default for StreamingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl StreamingHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            counts: vec![0; BUCKETS],
            total: 0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
            w_counts: vec![0; BUCKETS],
            w_total: 0,
            w_min: f64::INFINITY,
            w_max: f64::NEG_INFINITY,
            w_sum: 0.0,
        }
    }

    /// Record one observation (microseconds). Non-finite values are ignored.
    pub fn record(&mut self, us: f64) {
        if !us.is_finite() {
            return;
        }
        let idx = bucket_index(us);
        self.counts[idx] += 1;
        self.total += 1;
        self.min = self.min.min(us);
        self.max = self.max.max(us);
        self.sum += us;
        self.w_counts[idx] += 1;
        self.w_total += 1;
        self.w_min = self.w_min.min(us);
        self.w_max = self.w_max.max(us);
        self.w_sum += us;
    }

    /// Observations recorded since the last [`Self::take_window`].
    pub fn window_count(&self) -> u64 {
        self.w_total
    }

    /// Detach the observations recorded since the last call (or since
    /// construction) as a standalone histogram, and reset the window. The
    /// cumulative state is untouched: `count()`, `quantile()` and friends
    /// keep answering over the full history.
    pub fn take_window(&mut self) -> StreamingHistogram {
        let counts = std::mem::replace(&mut self.w_counts, vec![0; BUCKETS]);
        // A detached window is a fresh histogram: its own window starts
        // aligned with its cumulative view.
        let snap = StreamingHistogram {
            w_counts: counts.clone(),
            counts,
            total: self.w_total,
            min: self.w_min,
            max: self.w_max,
            sum: self.w_sum,
            w_total: self.w_total,
            w_min: self.w_min,
            w_max: self.w_max,
            w_sum: self.w_sum,
        };
        self.w_total = 0;
        self.w_min = f64::INFINITY;
        self.w_max = f64::NEG_INFINITY;
        self.w_sum = 0.0;
        snap
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean of recorded observations; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// The q-quantile (`0.0 ..= 1.0`), microseconds; 0 when empty.
    ///
    /// Walks the cumulative bucket counts and returns the representative
    /// value of the bucket containing the target rank, clamped to the
    /// observed `[min, max]` so single-sample histograms answer exactly.
    ///
    /// The 0-when-empty convention is kept for the training reports, but it
    /// makes a cold histogram indistinguishable from a real 0µs latency —
    /// serving metrics must use [`Self::try_quantile`] /
    /// [`Self::try_percentiles`] instead, which report the absence of data
    /// as `None` rather than a fake p99 of 0.
    pub fn quantile(&self, q: f64) -> f64 {
        self.try_quantile(q).unwrap_or(0.0)
    }

    /// The q-quantile, or `None` when nothing has been recorded yet (the
    /// cold-start case: no fake 0µs tail before the first sample lands).
    pub fn try_quantile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_upper(idx).clamp(self.min, self.max));
            }
        }
        Some(self.max)
    }

    /// Convenience bundle of the three reported quantiles.
    pub fn percentiles(&self) -> Percentiles {
        Percentiles {
            p50_us: self.quantile(0.50),
            p95_us: self.quantile(0.95),
            p99_us: self.quantile(0.99),
        }
    }

    /// [`Self::percentiles`], or `None` when the histogram is empty.
    pub fn try_percentiles(&self) -> Option<Percentiles> {
        Some(Percentiles {
            p50_us: self.try_quantile(0.50)?,
            p95_us: self.try_quantile(0.95)?,
            p99_us: self.try_quantile(0.99)?,
        })
    }
}

/// The p50/p95/p99 summary reported by the `time` command and
/// `ucudnn-report`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Percentiles {
    /// Median, microseconds.
    pub p50_us: f64,
    /// 95th percentile, microseconds.
    pub p95_us: f64,
    /// 99th percentile, microseconds.
    pub p99_us: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_answers_zero() {
        let h = StreamingHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
    }

    #[test]
    fn empty_histogram_has_no_percentiles() {
        // The cold-start defect: `quantile` answers 0.0 on an empty
        // histogram, which a metrics reader cannot tell apart from a real
        // 0µs p99. The `try_` variants make absence explicit.
        let h = StreamingHistogram::new();
        assert_eq!(h.try_quantile(0.99), None);
        assert_eq!(h.try_percentiles(), None);
        // And the first sample flips them to real answers.
        let mut h = h;
        h.record(42.0);
        assert_eq!(h.try_quantile(0.99), Some(42.0));
        let p = h.try_percentiles().unwrap();
        assert_eq!((p.p50_us, p.p95_us, p.p99_us), (42.0, 42.0, 42.0));
    }

    #[test]
    fn single_sample_is_exact() {
        let mut h = StreamingHistogram::new();
        h.record(123.4);
        assert_eq!(h.quantile(0.5), 123.4);
        assert_eq!(h.quantile(0.99), 123.4);
        assert!((h.mean() - 123.4).abs() < 1e-9);
        // Exact across the whole quantile range, including a sub-LO sample.
        let mut lo = StreamingHistogram::new();
        lo.record(0.005);
        for q in [0.0, 0.5, 0.99, 1.0] {
            assert_eq!(lo.quantile(q), 0.005);
        }
    }

    #[test]
    fn small_counts_match_a_sorted_vec_oracle() {
        // Before the first bucket accumulates bulk, quantiles must track
        // the exact order statistics within one bucket width (~5%).
        let samples = [830.0, 12.5, 96.0, 412.0, 3.3, 1550.0, 96.0, 7.1];
        let mut h = StreamingHistogram::new();
        let mut sorted = Vec::new();
        for (i, &v) in samples.iter().enumerate() {
            h.record(v);
            sorted.push(v);
            sorted.sort_by(f64::total_cmp);
            let n = i + 1;
            for q in [0.5, 0.95, 0.99] {
                let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
                let exact = sorted[rank - 1];
                let got = h.quantile(q);
                assert!(
                    (got - exact).abs() <= 0.06 * exact,
                    "n={n} q={q}: got {got}, exact {exact}"
                );
            }
            // p99 with n < 100 samples is the maximum, exactly.
            assert_eq!(h.quantile(0.99), *sorted.last().unwrap(), "n={n}");
        }
    }

    #[test]
    fn quantiles_are_within_bucket_error() {
        let mut h = StreamingHistogram::new();
        for i in 1..=1000 {
            h.record(i as f64);
        }
        // p50 ≈ 500, p95 ≈ 950, p99 ≈ 990, each within ~5% relative error.
        for (q, want) in [(0.50, 500.0), (0.95, 950.0), (0.99, 990.0)] {
            let got = h.quantile(q);
            assert!(
                (got - want).abs() / want < 0.06,
                "q{q}: got {got}, want ~{want}"
            );
        }
        assert_eq!(h.count(), 1000);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded() {
        let mut h = StreamingHistogram::new();
        for v in [0.5, 2.0, 8.0, 100.0, 5000.0, 5000.0] {
            h.record(v);
        }
        let p = h.percentiles();
        assert!(p.p50_us <= p.p95_us && p.p95_us <= p.p99_us);
        assert!(h.quantile(0.0) >= 0.5 && h.quantile(1.0) <= 5000.0);
    }

    #[test]
    fn take_window_isolates_late_drift_from_the_cumulative_view() {
        // 1000 fast samples, then 100 slow ones. Cumulatively the slow tail
        // is invisible at p50; the window after a reset sees only it.
        let mut h = StreamingHistogram::new();
        for _ in 0..1000 {
            h.record(100.0);
        }
        let early = h.take_window();
        assert_eq!(early.count(), 1000);
        assert!((early.quantile(0.5) - 100.0).abs() < 6.0);
        assert_eq!(h.window_count(), 0, "take_window resets the window");
        for _ in 0..100 {
            h.record(200.0);
        }
        let late = h.take_window();
        assert_eq!(late.count(), 100);
        assert!(
            (late.quantile(0.5) - 200.0).abs() < 12.0,
            "window p50 {} must see the drift",
            late.quantile(0.5)
        );
        // The cumulative path is untouched by window resets: p50 of the
        // 1100-sample history is still the fast mode.
        assert_eq!(h.count(), 1100);
        assert!((h.quantile(0.5) - 100.0).abs() < 6.0);
        assert!((h.mean() - (1000.0 * 100.0 + 100.0 * 200.0) / 1100.0).abs() < 1e-6);
    }

    #[test]
    fn fresh_window_matches_the_cumulative_view() {
        // Before any take_window, window and cumulative views agree, and a
        // detached window behaves like a normal standalone histogram.
        let mut h = StreamingHistogram::new();
        for v in [10.0, 20.0, 30.0] {
            h.record(v);
        }
        assert_eq!(h.window_count(), h.count());
        let mut w = h.take_window();
        assert_eq!(w.count(), 3);
        assert_eq!(w.quantile(1.0), h.quantile(1.0));
        // The detached window keeps recording like any histogram, window
        // and cumulative aligned from its own birth.
        w.record(40.0);
        assert_eq!(w.count(), 4);
        assert_eq!(w.window_count(), 4);
        assert_eq!(w.quantile(1.0), 40.0);
    }

    #[test]
    fn empty_window_snapshot_is_a_cold_histogram() {
        let mut h = StreamingHistogram::new();
        h.record(5.0);
        let _ = h.take_window();
        let w = h.take_window();
        assert_eq!(w.count(), 0);
        assert_eq!(w.try_percentiles(), None);
    }

    #[test]
    fn extreme_and_nonfinite_values_are_safe() {
        let mut h = StreamingHistogram::new();
        h.record(f64::NAN);
        h.record(f64::INFINITY);
        assert_eq!(h.count(), 0);
        h.record(0.0); // below LO -> bucket 0
        h.record(1e12); // beyond range -> clamped to last bucket
        assert_eq!(h.count(), 2);
        assert!(h.quantile(1.0) <= 1e12);
    }
}
