//! The real-numerics executor: forward and backward passes with actual
//! CPU arithmetic.
//!
//! This is the machinery behind the reproduction's end-to-end safety claim:
//! a full training step (all layers, all gradients) computed with
//! micro-batched convolutions must match the undivided step. Convolutions go
//! through a [`ConvProvider`] (so both the baseline and μ-cuDNN paths are
//! exercised); activation, pooling, batch-norm and bias layers go through
//! the cuDNN-style auxiliary ops on the provider's handle — exactly the set
//! of calls Caffe's cuDNN layers issue. Only Add/Concat (Caffe-native
//! layers) and the fully connected layer (cuBLAS in Caffe) are computed
//! in-framework.
//!
//! Note that batch normalization couples samples *within* a layer — but
//! μ-cuDNN only splits convolutions, never BN, so the coupling (and thus
//! training semantics) is untouched. The residual-block tests in
//! `tests/end_to_end_equivalence.rs` assert this.

use crate::graph::{LayerSpec, NetworkDef};
use crate::provider::{ConvProvider, ProviderError};
use ucudnn_conv::gemm::{sgemm, Trans};
use ucudnn_cudnn_sim::{
    ActivationDescriptor, ActivationMode, ConvOp, PoolingDescriptor, PoolingMode, TensorDescriptor,
    BN_MIN_EPSILON,
};
use ucudnn_tensor::{DeterministicRng, Shape4, Tensor};

/// Learnable parameters of one layer.
#[derive(Debug, Clone, PartialEq)]
pub enum Params {
    /// No parameters.
    None,
    /// Convolution filter (KCRS flattened) and per-output-channel bias.
    Conv {
        /// Filter bank, `K*C*R*S` elements.
        w: Vec<f32>,
        /// Bias, `K` elements.
        b: Vec<f32>,
    },
    /// Fully connected weight (`out x in`, row-major) and bias.
    Fc {
        /// Weight matrix.
        w: Vec<f32>,
        /// Bias, `out` elements.
        b: Vec<f32>,
    },
    /// Batch-norm scale and shift, `C` elements each.
    Bn {
        /// Scale (γ).
        gamma: Vec<f32>,
        /// Shift (β).
        beta: Vec<f32>,
    },
}

/// A network instance with parameters; executes real training steps.
#[derive(Debug, Clone)]
pub struct RealExecutor {
    net: NetworkDef,
    /// Per-node parameters.
    pub params: Vec<Params>,
}

/// All activations of one forward pass (indexed by node).
pub type Activations = Vec<Tensor>;

fn tdesc(s: Shape4) -> TensorDescriptor {
    TensorDescriptor::from_shape(s).expect("network shapes are validated at build time")
}

fn bias_desc(c: usize) -> TensorDescriptor {
    tdesc(Shape4::new(1, c, 1, 1))
}

fn pool_desc(max: bool, kernel: usize, stride: usize, pad: usize) -> PoolingDescriptor {
    let mode = if max {
        PoolingMode::Max
    } else {
        PoolingMode::AverageIncludePadding
    };
    PoolingDescriptor::square(mode, kernel, pad, stride).expect("validated pooling params")
}

fn gap_desc(s: Shape4) -> PoolingDescriptor {
    PoolingDescriptor::new_2d(PoolingMode::AverageIncludePadding, s.h, s.w, 0, 0, s.h, s.w)
        .expect("validated pooling params")
}

const RELU: ActivationDescriptor = ActivationDescriptor {
    mode: ActivationMode::Relu,
};

/// Input shape of a layer that requires exactly one input edge.
///
/// Graphs are normally validated at build time, but a hand-assembled
/// [`NetworkDef`] can reach the executor with a shape-consuming layer that
/// has no inputs; surface that as [`ProviderError::MalformedGraph`] instead
/// of panicking mid-pass.
fn require_input(in_shape: Option<Shape4>, name: &str) -> Result<Shape4, ProviderError> {
    in_shape.ok_or_else(|| ProviderError::MalformedGraph(format!("layer {name} has no input edge")))
}

fn layer_span(phase: &'static str, name: &str, id: usize) -> ucudnn::trace::SpanGuard {
    let key = name.to_string();
    ucudnn::trace::span("train", phase, move || {
        (
            key,
            ucudnn::json::obj([("node", ucudnn::json::num(id as f64))]),
        )
    })
}

impl RealExecutor {
    /// Instantiate a network with deterministic He-style initialization.
    pub fn new(net: NetworkDef, seed: u64) -> Self {
        let mut rng = DeterministicRng::new(seed);
        let mut params = Vec::with_capacity(net.len());
        for id in 0..net.len() {
            let p = match &net.nodes()[id].spec {
                LayerSpec::Conv {
                    out_channels,
                    kernel,
                    ..
                } => {
                    let cin = net.output_shape(net.nodes()[id].inputs[0]).c;
                    let fan_in = cin * kernel * kernel;
                    let scale = (2.0 / fan_in as f32).sqrt();
                    let w = (0..out_channels * fan_in)
                        .map(|_| (rng.next_uniform() * 2.0 - 1.0) * scale)
                        .collect();
                    let b = (0..*out_channels)
                        .map(|_| (rng.next_uniform() - 0.5) * 0.1)
                        .collect();
                    Params::Conv { w, b }
                }
                LayerSpec::FullyConnected { out } => {
                    let nin = net.output_shape(net.nodes()[id].inputs[0]).sample_len();
                    let scale = (2.0 / nin as f32).sqrt();
                    let w = (0..out * nin)
                        .map(|_| (rng.next_uniform() * 2.0 - 1.0) * scale)
                        .collect();
                    let b = (0..*out)
                        .map(|_| (rng.next_uniform() - 0.5) * 0.1)
                        .collect();
                    Params::Fc { w, b }
                }
                LayerSpec::BatchNorm => {
                    let c = net.output_shape(id).c;
                    Params::Bn {
                        gamma: (0..c).map(|_| 0.8 + 0.4 * rng.next_uniform()).collect(),
                        beta: (0..c).map(|_| (rng.next_uniform() - 0.5) * 0.2).collect(),
                    }
                }
                _ => Params::None,
            };
            params.push(p);
        }
        Self { net, params }
    }

    /// The network definition.
    pub fn net(&self) -> &NetworkDef {
        &self.net
    }

    /// Forward pass; returns every node's activation.
    ///
    /// # Errors
    /// Propagates provider failures.
    ///
    /// # Panics
    /// Panics when `input` does not match the network's input shape.
    pub fn forward(
        &self,
        provider: &impl ConvProvider,
        input: &Tensor,
    ) -> Result<Activations, ProviderError> {
        assert_eq!(
            input.shape(),
            self.net.input_shape(),
            "input shape mismatch"
        );
        let h = provider.handle();
        let mut acts: Activations = Vec::with_capacity(self.net.len());
        for id in 0..self.net.len() {
            let node = &self.net.nodes()[id];
            let out_shape = self.net.output_shape(id);
            let mut out = Tensor::zeros(out_shape);
            let in_shape = node.inputs.first().map(|&i| acts[i].shape());
            let _layer = layer_span("forward_layer", &node.name, id);
            match &node.spec {
                LayerSpec::Input => out = input.clone(),
                LayerSpec::Conv { .. } => {
                    let g = self.net.conv_geometry(id);
                    let Params::Conv { w, b } = &self.params[id] else {
                        unreachable!()
                    };
                    provider.execute(
                        ConvOp::Forward,
                        &g,
                        acts[node.inputs[0]].as_slice(),
                        w,
                        out.as_mut_slice(),
                        1.0,
                        0.0,
                    )?;
                    h.add_tensor(
                        1.0,
                        &bias_desc(out_shape.c),
                        b,
                        1.0,
                        &tdesc(out_shape),
                        out.as_mut_slice(),
                    )?;
                }
                LayerSpec::Pool {
                    max,
                    kernel,
                    stride,
                    pad,
                } => {
                    h.pooling_forward(
                        &pool_desc(*max, *kernel, *stride, *pad),
                        1.0,
                        &tdesc(require_input(in_shape, &node.name)?),
                        acts[node.inputs[0]].as_slice(),
                        0.0,
                        &tdesc(out_shape),
                        out.as_mut_slice(),
                    )?;
                }
                LayerSpec::Relu => {
                    h.activation_forward(
                        &RELU,
                        1.0,
                        &tdesc(require_input(in_shape, &node.name)?),
                        acts[node.inputs[0]].as_slice(),
                        0.0,
                        &tdesc(out_shape),
                        out.as_mut_slice(),
                    )?;
                }
                LayerSpec::BatchNorm => {
                    let Params::Bn { gamma, beta } = &self.params[id] else {
                        unreachable!()
                    };
                    // Saved statistics are recomputed in backward (the
                    // NULL-pointer path of cuDNN), so scratch them here.
                    let mut sm = vec![0.0f32; out_shape.c];
                    let mut siv = vec![0.0f32; out_shape.c];
                    h.batch_norm_forward_training(
                        1.0,
                        0.0,
                        &tdesc(require_input(in_shape, &node.name)?),
                        acts[node.inputs[0]].as_slice(),
                        &tdesc(out_shape),
                        out.as_mut_slice(),
                        gamma,
                        beta,
                        BN_MIN_EPSILON,
                        &mut sm,
                        &mut siv,
                    )?;
                }
                LayerSpec::FullyConnected { out: nout } => {
                    let Params::Fc { w, b } = &self.params[id] else {
                        unreachable!()
                    };
                    let x = &acts[node.inputs[0]];
                    let (n, nin) = (x.shape().n, x.shape().sample_len());
                    // y (N x out) = x (N x in) @ W^T (in x out)
                    sgemm(
                        Trans::No,
                        Trans::Yes,
                        n,
                        *nout,
                        nin,
                        1.0,
                        x.as_slice(),
                        w,
                        0.0,
                        out.as_mut_slice(),
                    );
                    for ni in 0..n {
                        for (o, bias) in out.as_mut_slice()[ni * nout..(ni + 1) * nout]
                            .iter_mut()
                            .zip(b)
                        {
                            *o += bias;
                        }
                    }
                }
                LayerSpec::Add => {
                    let a = acts[node.inputs[0]].as_slice();
                    let b = acts[node.inputs[1]].as_slice();
                    for ((o, x), y) in out.as_mut_slice().iter_mut().zip(a).zip(b) {
                        *o = x + y;
                    }
                }
                LayerSpec::Concat => {
                    concat_forward(
                        &node.inputs.iter().map(|&i| &acts[i]).collect::<Vec<_>>(),
                        &mut out,
                    );
                }
                LayerSpec::GlobalAvgPool => {
                    let s = require_input(in_shape, &node.name)?;
                    h.pooling_forward(
                        &gap_desc(s),
                        1.0,
                        &tdesc(s),
                        acts[node.inputs[0]].as_slice(),
                        0.0,
                        &tdesc(out_shape),
                        out.as_mut_slice(),
                    )?;
                }
            }
            acts.push(out);
        }
        Ok(acts)
    }

    /// Backward pass from a gradient at the final node. Returns
    /// (parameter gradients per node, activation gradient at the input).
    ///
    /// # Errors
    /// Propagates provider failures.
    pub fn backward(
        &self,
        provider: &impl ConvProvider,
        acts: &Activations,
        dloss: &Tensor,
    ) -> Result<(Vec<Params>, Tensor), ProviderError> {
        let h = provider.handle();
        let last = self.net.len() - 1;
        assert_eq!(
            dloss.shape(),
            self.net.output_shape(last),
            "loss gradient shape mismatch"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.net.len()];
        grads[last] = Some(dloss.clone());
        let mut pgrads: Vec<Params> = vec![Params::None; self.net.len()];

        for id in (0..self.net.len()).rev() {
            let Some(dy) = grads[id].take() else { continue };
            let node = &self.net.nodes()[id];
            let out_shape = self.net.output_shape(id);
            let in_shape = node.inputs.first().map(|&i| acts[i].shape());
            let _layer = layer_span("backward_layer", &node.name, id);
            match &node.spec {
                LayerSpec::Input => {
                    grads[id] = Some(dy); // keep the input gradient
                    continue;
                }
                LayerSpec::Conv { .. } => {
                    let g = self.net.conv_geometry(id);
                    let Params::Conv { w, b } = &self.params[id] else {
                        unreachable!()
                    };
                    let x = &acts[node.inputs[0]];
                    let mut dw = vec![0.0f32; w.len()];
                    provider.execute(
                        ConvOp::BackwardFilter,
                        &g,
                        x.as_slice(),
                        dy.as_slice(),
                        &mut dw,
                        1.0,
                        0.0,
                    )?;
                    let mut db = vec![0.0f32; b.len()];
                    h.convolution_backward_bias(
                        1.0,
                        &tdesc(out_shape),
                        dy.as_slice(),
                        0.0,
                        &bias_desc(out_shape.c),
                        &mut db,
                    )?;
                    pgrads[id] = Params::Conv { w: dw, b: db };
                    if self.net.needs_backward_data(id) {
                        let mut dx = Tensor::zeros(g.input);
                        provider.execute(
                            ConvOp::BackwardData,
                            &g,
                            dy.as_slice(),
                            w,
                            dx.as_mut_slice(),
                            1.0,
                            0.0,
                        )?;
                        accumulate(&mut grads[node.inputs[0]], dx);
                    }
                }
                LayerSpec::Pool {
                    max,
                    kernel,
                    stride,
                    pad,
                } => {
                    let x = &acts[node.inputs[0]];
                    let mut dx = Tensor::zeros(x.shape());
                    h.pooling_backward(
                        &pool_desc(*max, *kernel, *stride, *pad),
                        1.0,
                        &tdesc(out_shape),
                        acts[id].as_slice(),
                        &tdesc(out_shape),
                        dy.as_slice(),
                        &tdesc(x.shape()),
                        x.as_slice(),
                        0.0,
                        &tdesc(x.shape()),
                        dx.as_mut_slice(),
                    )?;
                    accumulate(&mut grads[node.inputs[0]], dx);
                }
                LayerSpec::Relu => {
                    let x = &acts[node.inputs[0]];
                    let mut dx = Tensor::zeros(x.shape());
                    h.activation_backward(
                        &RELU,
                        1.0,
                        &tdesc(out_shape),
                        acts[id].as_slice(),
                        &tdesc(out_shape),
                        dy.as_slice(),
                        &tdesc(x.shape()),
                        x.as_slice(),
                        0.0,
                        &tdesc(x.shape()),
                        dx.as_mut_slice(),
                    )?;
                    accumulate(&mut grads[node.inputs[0]], dx);
                }
                LayerSpec::BatchNorm => {
                    let Params::Bn { gamma, .. } = &self.params[id] else {
                        unreachable!()
                    };
                    let x = &acts[node.inputs[0]];
                    let mut dx = Tensor::zeros(x.shape());
                    let mut dgamma = vec![0.0f32; out_shape.c];
                    let mut dbeta = vec![0.0f32; out_shape.c];
                    // Empty saved-stats slices: recompute from x (cuDNN's
                    // NULL path).
                    h.batch_norm_backward(
                        &tdesc(x.shape()),
                        x.as_slice(),
                        &tdesc(out_shape),
                        dy.as_slice(),
                        &tdesc(x.shape()),
                        dx.as_mut_slice(),
                        gamma,
                        &mut dgamma,
                        &mut dbeta,
                        BN_MIN_EPSILON,
                        &[],
                        &[],
                    )?;
                    pgrads[id] = Params::Bn {
                        gamma: dgamma,
                        beta: dbeta,
                    };
                    accumulate(&mut grads[node.inputs[0]], dx);
                }
                LayerSpec::FullyConnected { out: nout } => {
                    let Params::Fc { w, .. } = &self.params[id] else {
                        unreachable!()
                    };
                    let x = &acts[node.inputs[0]];
                    let (n, nin) = (x.shape().n, x.shape().sample_len());
                    // dW (out x in) = dy^T (out x N) @ x (N x in)
                    let mut dw = vec![0.0f32; w.len()];
                    sgemm(
                        Trans::Yes,
                        Trans::No,
                        *nout,
                        nin,
                        n,
                        1.0,
                        dy.as_slice(),
                        x.as_slice(),
                        0.0,
                        &mut dw,
                    );
                    let mut db = vec![0.0f32; *nout];
                    for ni in 0..n {
                        for (d, g) in db
                            .iter_mut()
                            .zip(&dy.as_slice()[ni * nout..(ni + 1) * nout])
                        {
                            *d += g;
                        }
                    }
                    pgrads[id] = Params::Fc { w: dw, b: db };
                    // dx (N x in) = dy (N x out) @ W (out x in)
                    let mut dx = Tensor::zeros(x.shape());
                    sgemm(
                        Trans::No,
                        Trans::No,
                        n,
                        nin,
                        *nout,
                        1.0,
                        dy.as_slice(),
                        w,
                        0.0,
                        dx.as_mut_slice(),
                    );
                    accumulate(&mut grads[node.inputs[0]], dx);
                }
                LayerSpec::Add => {
                    accumulate(&mut grads[node.inputs[0]], dy.clone());
                    accumulate(&mut grads[node.inputs[1]], dy);
                }
                LayerSpec::Concat => {
                    let mut c_off = 0usize;
                    for &i in &node.inputs {
                        let s = acts[i].shape();
                        let mut dx = Tensor::zeros(s);
                        split_channels(&dy, &mut dx, c_off);
                        c_off += s.c;
                        accumulate(&mut grads[i], dx);
                    }
                }
                LayerSpec::GlobalAvgPool => {
                    let x = &acts[node.inputs[0]];
                    let mut dx = Tensor::zeros(x.shape());
                    h.pooling_backward(
                        &gap_desc(require_input(in_shape, &node.name)?),
                        1.0,
                        &tdesc(out_shape),
                        acts[id].as_slice(),
                        &tdesc(out_shape),
                        dy.as_slice(),
                        &tdesc(x.shape()),
                        x.as_slice(),
                        0.0,
                        &tdesc(x.shape()),
                        dx.as_mut_slice(),
                    )?;
                    accumulate(&mut grads[node.inputs[0]], dx);
                }
            }
        }
        let input_grad = grads[self.net.input()]
            .take()
            .unwrap_or_else(|| Tensor::zeros(self.net.input_shape()));
        Ok((pgrads, input_grad))
    }
}

fn accumulate(slot: &mut Option<Tensor>, t: Tensor) {
    match slot {
        Some(acc) => acc.axpby(1.0, &t, 1.0),
        None => *slot = Some(t),
    }
}

fn concat_forward(inputs: &[&Tensor], out: &mut Tensor) {
    let os = out.shape();
    let mut c_off = 0usize;
    for x in inputs {
        let s = x.shape();
        for ni in 0..s.n {
            for ci in 0..s.c {
                for hi in 0..s.h {
                    for wi in 0..s.w {
                        out.set(ni, c_off + ci, hi, wi, x.get(ni, ci, hi, wi));
                    }
                }
            }
        }
        c_off += s.c;
    }
    debug_assert_eq!(c_off, os.c);
}

fn split_channels(dy: &Tensor, dx: &mut Tensor, c_off: usize) {
    let s = dx.shape();
    for ni in 0..s.n {
        for ci in 0..s.c {
            for hi in 0..s.h {
                for wi in 0..s.w {
                    dx.set(ni, ci, hi, wi, dy.get(ni, c_off + ci, hi, wi));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkDef;
    use crate::provider::BaselineCudnn;
    use ucudnn_cudnn_sim::CudnnHandle;

    fn provider() -> BaselineCudnn {
        BaselineCudnn::new(CudnnHandle::real_cpu(), 1 << 20)
    }

    fn tiny_net(n: usize) -> NetworkDef {
        let mut net = NetworkDef::new("tiny", Shape4::new(n, 3, 8, 8));
        let c1 = net.conv_bn_relu("conv1", net.input(), 4, 3, 1, 1);
        let p = net.add(
            "pool",
            LayerSpec::Pool {
                max: true,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let c2 = net.conv_relu("conv2", p, 6, 3, 1, 1);
        // Residual branch exercising Add and 1x1 conv.
        let sc = net.add(
            "proj",
            LayerSpec::Conv {
                out_channels: 6,
                kernel: 1,
                stride: 1,
                pad: 0,
            },
            &[p],
        );
        let sum = net.add("sum", LayerSpec::Add, &[c2, sc]);
        let gap = net.add("gap", LayerSpec::GlobalAvgPool, &[sum]);
        net.add("fc", LayerSpec::FullyConnected { out: 5 }, &[gap]);
        net
    }

    #[test]
    fn forward_produces_finite_activations() {
        let net = tiny_net(4);
        let exec = RealExecutor::new(net.clone(), 42);
        let x = Tensor::random(net.input_shape(), 1);
        let acts = exec.forward(&provider(), &x).unwrap();
        assert_eq!(acts.len(), net.len());
        for a in &acts {
            assert!(a.as_slice().iter().all(|v| v.is_finite()));
        }
    }

    /// Central finite-difference check of the whole backward pass through a
    /// scalar loss `L = Σ out²/2` (so `dL/dout = out`).
    #[test]
    fn backward_matches_finite_differences() {
        let net = tiny_net(2);
        let mut exec = RealExecutor::new(net.clone(), 7);
        let p = provider();
        let x = Tensor::random(net.input_shape(), 2);
        let last = net.len() - 1;

        let loss = |e: &RealExecutor| -> f64 {
            let acts = e.forward(&p, &x).unwrap();
            acts[last]
                .as_slice()
                .iter()
                .map(|v| 0.5 * (*v as f64).powi(2))
                .sum()
        };
        let acts = exec.forward(&p, &x).unwrap();
        let dloss = acts[last].clone();
        let (pgrads, _) = exec.backward(&p, &acts, &dloss).unwrap();

        // Check a few parameters of each kind against finite differences.
        let eps = 1e-2f32;
        let mut checked = 0;
        #[allow(clippy::needless_range_loop)] // id indexes two parallel vecs
        for id in 0..net.len() {
            let picks: Vec<usize> = match &exec.params[id] {
                Params::Conv { w, .. } | Params::Fc { w, .. } => vec![0, w.len() / 2],
                Params::Bn { .. } => vec![0],
                Params::None => continue,
            };
            for &pi in &picks {
                let analytic = match &pgrads[id] {
                    Params::Conv { w, .. } | Params::Fc { w, .. } => w[pi] as f64,
                    Params::Bn { gamma, .. } => gamma[pi] as f64,
                    Params::None => continue,
                };
                let bump = |e: &mut RealExecutor, d: f32| match &mut e.params[id] {
                    Params::Conv { w, .. } | Params::Fc { w, .. } => w[pi] += d,
                    Params::Bn { gamma, .. } => gamma[pi] += d,
                    Params::None => {}
                };
                bump(&mut exec, eps);
                let lp = loss(&exec);
                bump(&mut exec, -2.0 * eps);
                let lm = loss(&exec);
                bump(&mut exec, eps);
                let numeric = (lp - lm) / (2.0 * eps as f64);
                let denom = analytic.abs().max(numeric.abs()).max(1e-2);
                assert!(
                    (analytic - numeric).abs() / denom < 0.08,
                    "node {id} param {pi}: analytic {analytic} vs numeric {numeric}"
                );
                checked += 1;
            }
        }
        assert!(checked >= 6, "too few parameters checked: {checked}");
    }

    #[test]
    fn bias_gradients_flow_through_backward_bias() {
        // d/db <y, dy> with dy = 1 is N*Ho*Wo per output channel.
        let mut net = NetworkDef::new("t", Shape4::new(2, 1, 4, 4));
        net.add(
            "c",
            LayerSpec::Conv {
                out_channels: 3,
                kernel: 3,
                stride: 1,
                pad: 1,
            },
            &[0],
        );
        let exec = RealExecutor::new(net.clone(), 5);
        let p = provider();
        let x = Tensor::random(net.input_shape(), 6);
        let acts = exec.forward(&p, &x).unwrap();
        let dloss = Tensor::full(net.output_shape(1), 1.0);
        let (pgrads, _) = exec.backward(&p, &acts, &dloss).unwrap();
        let Params::Conv { b: db, .. } = &pgrads[1] else {
            panic!()
        };
        for v in db {
            assert!((v - (2 * 4 * 4) as f32).abs() < 1e-3, "bias grad {v}");
        }
    }

    #[test]
    fn concat_round_trips_through_backward() {
        let mut net = NetworkDef::new("t", Shape4::new(2, 2, 4, 4));
        let a = net.add(
            "a",
            LayerSpec::Conv {
                out_channels: 2,
                kernel: 1,
                stride: 1,
                pad: 0,
            },
            &[0],
        );
        let b = net.add(
            "b",
            LayerSpec::Conv {
                out_channels: 3,
                kernel: 1,
                stride: 1,
                pad: 0,
            },
            &[0],
        );
        net.add("cat", LayerSpec::Concat, &[a, b]);
        let exec = RealExecutor::new(net.clone(), 3);
        let p = provider();
        let x = Tensor::random(net.input_shape(), 4);
        let acts = exec.forward(&p, &x).unwrap();
        let last = net.len() - 1;
        assert_eq!(acts[last].shape().c, 5);
        let dloss = Tensor::full(net.output_shape(last), 1.0);
        let (pgrads, _) = exec.backward(&p, &acts, &dloss).unwrap();
        // Both branches must receive gradients.
        assert!(matches!(&pgrads[a], Params::Conv { w, .. } if w.iter().any(|v| *v != 0.0)));
        assert!(matches!(&pgrads[b], Params::Conv { w, .. } if w.iter().any(|v| *v != 0.0)));
    }

    #[test]
    fn max_pool_routes_gradient_to_argmax() {
        let mut net = NetworkDef::new("t", Shape4::new(1, 1, 2, 2));
        net.add(
            "p",
            LayerSpec::Pool {
                max: true,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[0],
        );
        let exec = RealExecutor::new(net.clone(), 1);
        let p = provider();
        let x = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 4.0, 2.0, 3.0]);
        let acts = exec.forward(&p, &x).unwrap();
        assert_eq!(acts[1].as_slice(), &[4.0]);
        let dloss = Tensor::full(Shape4::new(1, 1, 1, 1), 5.0);
        let (_, dx) = exec.backward(&p, &acts, &dloss).unwrap();
        assert_eq!(dx.as_slice(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn avg_pool_distributes_gradient() {
        let mut net = NetworkDef::new("t", Shape4::new(1, 1, 2, 2));
        net.add(
            "p",
            LayerSpec::Pool {
                max: false,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[0],
        );
        let exec = RealExecutor::new(net.clone(), 1);
        let p = provider();
        let x = Tensor::from_vec(Shape4::new(1, 1, 2, 2), vec![1.0, 2.0, 3.0, 4.0]);
        let acts = exec.forward(&p, &x).unwrap();
        assert_eq!(acts[1].as_slice(), &[2.5]);
        let dloss = Tensor::full(Shape4::new(1, 1, 1, 1), 4.0);
        let (_, dx) = exec.backward(&p, &acts, &dloss).unwrap();
        assert_eq!(dx.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn bn_output_is_normalized() {
        let mut net = NetworkDef::new("t", Shape4::new(4, 2, 4, 4));
        net.add("bn", LayerSpec::BatchNorm, &[0]);
        let mut exec = RealExecutor::new(net.clone(), 1);
        // Force identity scale/shift to observe the normalization itself.
        exec.params[1] = Params::Bn {
            gamma: vec![1.0, 1.0],
            beta: vec![0.0, 0.0],
        };
        let p = provider();
        let x = Tensor::random(net.input_shape(), 9);
        let acts = exec.forward(&p, &x).unwrap();
        let y = &acts[1];
        // Per-channel mean ~ 0, variance ~ 1.
        let s = y.shape();
        let m = (s.n * s.h * s.w) as f32;
        for c in 0..s.c {
            let mut mean = 0.0f32;
            let mut var = 0.0f32;
            for ni in 0..s.n {
                for hi in 0..s.h {
                    for wi in 0..s.w {
                        mean += y.get(ni, c, hi, wi);
                    }
                }
            }
            mean /= m;
            for ni in 0..s.n {
                for hi in 0..s.h {
                    for wi in 0..s.w {
                        let d = y.get(ni, c, hi, wi) - mean;
                        var += d * d;
                    }
                }
            }
            var /= m;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }
}
