//! The model zoo: the networks the paper evaluates.
//!
//! * [`alexnet`] — single-column "one weird trick" AlexNet (Fig. 1, 9, 10,
//!   12, 13, 14),
//! * [`resnet18`] / [`resnet50`] — NVCaffe's ResNets (Fig. 11, 12, 13),
//! * [`densenet40`] — DenseNet-BC-40 with growth rate k (Fig. 11),
//! * [`inception_module`] — a GoogLeNet-style Inception block, the paper's
//!   motivating example for concurrent kernels under WD.

use crate::graph::{LayerSpec, NetworkDef, NodeId};
use ucudnn_tensor::Shape4;

/// Single-column AlexNet for 224×224 ImageNet-shaped inputs.
pub fn alexnet(batch: usize) -> NetworkDef {
    let mut net = NetworkDef::new("AlexNet", Shape4::new(batch, 3, 224, 224));
    let c1 = net.conv_relu("conv1", net.input(), 64, 11, 4, 2);
    let p1 = net.add(
        "pool1",
        LayerSpec::Pool {
            max: true,
            kernel: 3,
            stride: 2,
            pad: 0,
        },
        &[c1],
    );
    let c2 = net.conv_relu("conv2", p1, 192, 5, 1, 2);
    let p2 = net.add(
        "pool2",
        LayerSpec::Pool {
            max: true,
            kernel: 3,
            stride: 2,
            pad: 0,
        },
        &[c2],
    );
    let c3 = net.conv_relu("conv3", p2, 384, 3, 1, 1);
    let c4 = net.conv_relu("conv4", c3, 256, 3, 1, 1);
    let c5 = net.conv_relu("conv5", c4, 256, 3, 1, 1);
    let p5 = net.add(
        "pool5",
        LayerSpec::Pool {
            max: true,
            kernel: 3,
            stride: 2,
            pad: 0,
        },
        &[c5],
    );
    let f6 = net.add("fc6", LayerSpec::FullyConnected { out: 4096 }, &[p5]);
    let r6 = net.add("fc6.relu", LayerSpec::Relu, &[f6]);
    let f7 = net.add("fc7", LayerSpec::FullyConnected { out: 4096 }, &[r6]);
    let r7 = net.add("fc7.relu", LayerSpec::Relu, &[f7]);
    net.add("fc8", LayerSpec::FullyConnected { out: 1000 }, &[r7]);
    net
}

/// ResNet basic block (two 3×3 convolutions) with projection shortcut on
/// stride/channel changes.
fn basic_block(
    net: &mut NetworkDef,
    name: &str,
    input: NodeId,
    channels: usize,
    stride: usize,
) -> NodeId {
    let in_c = net.output_shape(input).c;
    let a = net.conv_bn_relu(&format!("{name}.conv1"), input, channels, 3, stride, 1);
    let b = net.add(
        format!("{name}.conv2"),
        LayerSpec::Conv {
            out_channels: channels,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        &[a],
    );
    let b = net.add(format!("{name}.conv2.bn"), LayerSpec::BatchNorm, &[b]);
    let shortcut = if stride != 1 || in_c != channels {
        let s = net.add(
            format!("{name}.proj"),
            LayerSpec::Conv {
                out_channels: channels,
                kernel: 1,
                stride,
                pad: 0,
            },
            &[input],
        );
        net.add(format!("{name}.proj.bn"), LayerSpec::BatchNorm, &[s])
    } else {
        input
    };
    let sum = net.add(format!("{name}.add"), LayerSpec::Add, &[b, shortcut]);
    net.add(format!("{name}.relu"), LayerSpec::Relu, &[sum])
}

/// ResNet bottleneck block (1×1 → 3×3 → 1×1, 4× expansion).
fn bottleneck_block(
    net: &mut NetworkDef,
    name: &str,
    input: NodeId,
    width: usize,
    stride: usize,
) -> NodeId {
    let out_c = 4 * width;
    let in_c = net.output_shape(input).c;
    let a = net.conv_bn_relu(&format!("{name}.conv1"), input, width, 1, 1, 0);
    let b = net.conv_bn_relu(&format!("{name}.conv2"), a, width, 3, stride, 1);
    let c = net.add(
        format!("{name}.conv3"),
        LayerSpec::Conv {
            out_channels: out_c,
            kernel: 1,
            stride: 1,
            pad: 0,
        },
        &[b],
    );
    let c = net.add(format!("{name}.conv3.bn"), LayerSpec::BatchNorm, &[c]);
    let shortcut = if stride != 1 || in_c != out_c {
        let s = net.add(
            format!("{name}.proj"),
            LayerSpec::Conv {
                out_channels: out_c,
                kernel: 1,
                stride,
                pad: 0,
            },
            &[input],
        );
        net.add(format!("{name}.proj.bn"), LayerSpec::BatchNorm, &[s])
    } else {
        input
    };
    let sum = net.add(format!("{name}.add"), LayerSpec::Add, &[c, shortcut]);
    net.add(format!("{name}.relu"), LayerSpec::Relu, &[sum])
}

fn resnet_stem(net: &mut NetworkDef) -> NodeId {
    let c1 = net.conv_bn_relu("conv1", net.input(), 64, 7, 2, 3);
    // Caffe ceil-mode pooling: 3x3/2 unpadded on 112 gives 56.
    net.add(
        "pool1",
        LayerSpec::Pool {
            max: true,
            kernel: 3,
            stride: 2,
            pad: 0,
        },
        &[c1],
    )
}

fn resnet_head(net: &mut NetworkDef, x: NodeId) {
    let gap = net.add("gap", LayerSpec::GlobalAvgPool, &[x]);
    net.add("fc", LayerSpec::FullyConnected { out: 1000 }, &[gap]);
}

/// ResNet-18 for 224×224 inputs: basic blocks [2, 2, 2, 2].
pub fn resnet18(batch: usize) -> NetworkDef {
    let mut net = NetworkDef::new("ResNet-18", Shape4::new(batch, 3, 224, 224));
    let mut x = resnet_stem(&mut net);
    for (stage, (channels, blocks)) in [(64, 2), (128, 2), (256, 2), (512, 2)]
        .into_iter()
        .enumerate()
    {
        for b in 0..blocks {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            x = basic_block(
                &mut net,
                &format!("res{}.{b}", stage + 2),
                x,
                channels,
                stride,
            );
        }
    }
    resnet_head(&mut net, x);
    net
}

/// ResNet-50 for 224×224 inputs: bottleneck blocks [3, 4, 6, 3].
pub fn resnet50(batch: usize) -> NetworkDef {
    let mut net = NetworkDef::new("ResNet-50", Shape4::new(batch, 3, 224, 224));
    let mut x = resnet_stem(&mut net);
    for (stage, (width, blocks)) in [(64, 3), (128, 4), (256, 6), (512, 3)]
        .into_iter()
        .enumerate()
    {
        for b in 0..blocks {
            let stride = if stage > 0 && b == 0 { 2 } else { 1 };
            x = bottleneck_block(&mut net, &format!("res{}.{b}", stage + 2), x, width, stride);
        }
    }
    resnet_head(&mut net, x);
    net
}

/// DenseNet-40 for 32×32 CIFAR-shaped inputs: three dense blocks of 12
/// layers with growth rate `k` (the paper uses k = 40), 1×1+avg-pool
/// transitions.
pub fn densenet40(batch: usize, k: usize) -> NetworkDef {
    let mut net = NetworkDef::new(format!("DenseNet-40(k={k})"), Shape4::new(batch, 3, 32, 32));
    let mut x = net.add(
        "conv0",
        LayerSpec::Conv {
            out_channels: 2 * k,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        &[net.input()],
    );
    for block in 0..3 {
        for layer in 0..12 {
            let name = format!("dense{block}.{layer}");
            let b = net.add(format!("{name}.bn"), LayerSpec::BatchNorm, &[x]);
            let r = net.add(format!("{name}.relu"), LayerSpec::Relu, &[b]);
            let c = net.add(
                format!("{name}.conv"),
                LayerSpec::Conv {
                    out_channels: k,
                    kernel: 3,
                    stride: 1,
                    pad: 1,
                },
                &[r],
            );
            x = net.add(format!("{name}.cat"), LayerSpec::Concat, &[x, c]);
        }
        if block < 2 {
            let ch = net.output_shape(x).c;
            let name = format!("trans{block}");
            let b = net.add(format!("{name}.bn"), LayerSpec::BatchNorm, &[x]);
            let r = net.add(format!("{name}.relu"), LayerSpec::Relu, &[b]);
            let c = net.add(
                format!("{name}.conv"),
                LayerSpec::Conv {
                    out_channels: ch / 2,
                    kernel: 1,
                    stride: 1,
                    pad: 0,
                },
                &[r],
            );
            x = net.add(
                format!("{name}.pool"),
                LayerSpec::Pool {
                    max: false,
                    kernel: 2,
                    stride: 2,
                    pad: 0,
                },
                &[c],
            );
        }
    }
    let gap = net.add("gap", LayerSpec::GlobalAvgPool, &[x]);
    net.add("fc", LayerSpec::FullyConnected { out: 10 }, &[gap]);
    net
}

/// A GoogLeNet "inception (3a)"-style module on a 28×28×192 input: four
/// parallel convolution towers concatenated — the paper's example of
/// kernels that can run concurrently under WD.
pub fn inception_module(batch: usize) -> NetworkDef {
    let mut net = NetworkDef::new("Inception", Shape4::new(batch, 192, 28, 28));
    let input = net.input();
    let t1 = net.conv_relu("1x1", input, 64, 1, 1, 0);
    let r3 = net.conv_relu("3x3.reduce", input, 96, 1, 1, 0);
    let t3 = net.conv_relu("3x3", r3, 128, 3, 1, 1);
    let r5 = net.conv_relu("5x5.reduce", input, 16, 1, 1, 0);
    let t5 = net.conv_relu("5x5", r5, 32, 5, 1, 2);
    let pp = net.add(
        "pool",
        LayerSpec::Pool {
            max: true,
            kernel: 3,
            stride: 1,
            pad: 1,
        },
        &[input],
    );
    let tp = net.conv_relu("pool.proj", pp, 32, 1, 1, 0);
    net.add("concat", LayerSpec::Concat, &[t1, t3, t5, tp]);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alexnet_shapes_match_the_paper() {
        let net = alexnet(256);
        let convs = net.conv_layers();
        assert_eq!(convs.len(), 5);
        // conv2 is the famous 256×64×27×27 → 192 5×5 layer.
        let g2 = net.conv_geometry(convs[1]);
        assert_eq!(g2.input, Shape4::new(256, 64, 27, 27));
        assert_eq!(g2.filter.k, 192);
        assert_eq!((g2.filter.r, g2.filter.s), (5, 5));
        // conv3..5 are 13×13 3×3 layers.
        for &c in &convs[2..] {
            let g = net.conv_geometry(c);
            assert_eq!((g.input.h, g.input.w), (13, 13));
            assert_eq!((g.filter.r, g.filter.s), (3, 3));
        }
        // fc6 input is 256·6·6 = 9216.
        let fc6 = net.nodes().iter().position(|n| n.name == "fc6").unwrap();
        let s = net.output_shape(net.nodes()[fc6].inputs[0]);
        assert_eq!(s.sample_len(), 9216);
    }

    #[test]
    fn alexnet_parameter_count_is_plausible() {
        // Single-column AlexNet ≈ 61M parameters.
        let p = alexnet(1).param_count();
        assert!((57_000_000..65_000_000).contains(&p), "{p}");
    }

    #[test]
    fn resnet18_structure() {
        let net = resnet18(128);
        // 1 stem + 16 block convs + 3 projection convs = 20.
        assert_eq!(net.conv_layers().len(), 20);
        let last_conv = *net.conv_layers().last().unwrap();
        let g = net.conv_geometry(last_conv);
        assert_eq!((g.input.h, g.input.w), (7, 7));
        // ~11.7M params.
        let p = net.param_count();
        assert!((11_000_000..12_500_000).contains(&p), "{p}");
    }

    #[test]
    fn resnet50_structure() {
        let net = resnet50(64);
        // 1 stem + 3·16 bottleneck convs + 4 projections = 53.
        assert_eq!(net.conv_layers().len(), 53);
        // ~25.5M params.
        let p = net.param_count();
        assert!((24_000_000..27_000_000).contains(&p), "{p}");
        // The paper: ResNet-50 has ~10x more conv layers than AlexNet.
        assert!(net.conv_layers().len() >= 10 * alexnet(64).conv_layers().len());
    }

    #[test]
    fn densenet40_growth() {
        let net = densenet40(256, 40);
        // conv0 + 36 dense-layer convs + 2 transition convs = 39.
        assert_eq!(net.conv_layers().len(), 39);
        // Channel count grows by k per dense layer: after block 0,
        // 2k + 12k = 14k = 560 channels.
        let cat11 = net
            .nodes()
            .iter()
            .position(|n| n.name == "dense0.11.cat")
            .unwrap();
        assert_eq!(net.output_shape(cat11).c, 14 * 40);
        // CIFAR spatial sizes: 32 → 16 → 8.
        let last = *net.conv_layers().last().unwrap();
        assert_eq!(net.conv_geometry(last).input.h, 8);
    }

    #[test]
    fn inception_module_concatenates_towers() {
        let net = inception_module(32);
        assert_eq!(net.conv_layers().len(), 6);
        let last = net.len() - 1;
        assert_eq!(net.output_shape(last), Shape4::new(32, 256, 28, 28));
    }

    #[test]
    fn all_models_infer_shapes_at_any_batch() {
        for b in [1usize, 32] {
            for net in [
                alexnet(b),
                resnet18(b),
                resnet50(b),
                densenet40(b, 12),
                inception_module(b),
            ] {
                for id in 0..net.len() {
                    let s = net.output_shape(id);
                    assert!(!s.is_empty(), "{}: empty shape at node {id}", net.name);
                }
            }
        }
    }
}
