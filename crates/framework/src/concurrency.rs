//! Concurrent-branch execution modeling (§III-A).
//!
//! The paper motivates WD with networks like Inception whose parallel
//! towers could run *concurrently* — but only if every concurrent kernel
//! owns a disjoint workspace segment, which is exactly what WD's global
//! division provides (per-layer WR buffers would each need the full
//! per-layer limit). This module schedules a timed iteration onto `streams`
//! simulated CUDA streams: independent layers (same dependency depth)
//! overlap, dependent layers serialize.
//!
//! The overlap model is optimistic-but-bounded: a level of layers with
//! times `t_i` on `s` streams costs `max(max_i t_i, Σ t_i / s)` — never
//! better than perfect work-conserving scheduling, never worse than the
//! longest member.

use crate::exec_sim::IterationTiming;
use crate::graph::NetworkDef;

/// Dependency depth of every node (longest path from the input).
pub fn levels(net: &NetworkDef) -> Vec<usize> {
    let mut depth = vec![0usize; net.len()];
    for (id, node) in net.nodes().iter().enumerate() {
        depth[id] = node.inputs.iter().map(|&i| depth[i] + 1).max().unwrap_or(0);
    }
    depth
}

/// Overlapped makespan of one level's member times on `streams` streams.
fn level_time(times: &[f64], streams: usize) -> f64 {
    let sum: f64 = times.iter().sum();
    let max = times.iter().copied().fold(0.0, f64::max);
    max.max(sum / streams as f64)
}

/// Result of scheduling an iteration onto multiple streams.
#[derive(Debug, Clone)]
pub struct OverlapReport {
    /// Serialized (single-stream) iteration time, microseconds.
    pub serial_us: f64,
    /// Overlapped iteration time, microseconds.
    pub overlapped_us: f64,
    /// Number of dependency levels.
    pub levels: usize,
    /// Widest level (peak concurrency available).
    pub max_width: usize,
}

impl OverlapReport {
    /// Speedup from overlapping.
    pub fn speedup(&self) -> f64 {
        self.serial_us / self.overlapped_us
    }
}

/// Schedule a measured iteration onto `streams` streams using the
/// network's dependency levels. Forward levels run in order; backward
/// levels run in reverse order (gradients flow backwards through the same
/// DAG).
///
/// # Panics
/// Panics when `streams` is zero or the timing does not match the network.
pub fn overlap_schedule(
    net: &NetworkDef,
    timing: &IterationTiming,
    streams: usize,
) -> OverlapReport {
    assert!(streams > 0, "at least one stream");
    assert_eq!(timing.layers.len(), net.len(), "timing/network mismatch");
    let depth = levels(net);
    let num_levels = depth.iter().max().map(|d| d + 1).unwrap_or(0);

    let mut fwd = vec![Vec::new(); num_levels];
    let mut bwd = vec![Vec::new(); num_levels];
    for (id, l) in timing.layers.iter().enumerate() {
        fwd[depth[id]].push(l.forward_us);
        bwd[depth[id]].push(l.backward_us);
    }
    let overlapped_us: f64 = fwd
        .iter()
        .chain(bwd.iter().rev())
        .map(|ts| level_time(ts, streams))
        .sum();
    OverlapReport {
        serial_us: timing.total_us(),
        overlapped_us,
        levels: num_levels,
        max_width: fwd.iter().map(Vec::len).max().unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec_sim::{setup_network, time_iteration};
    use crate::models::{alexnet, inception_module};
    use crate::provider::BaselineCudnn;
    use ucudnn_cudnn_sim::CudnnHandle;
    use ucudnn_gpu_model::p100_sxm2;

    const MIB: usize = 1024 * 1024;

    #[test]
    fn levels_respect_dependencies() {
        let net = inception_module(8);
        let d = levels(&net);
        for (id, node) in net.nodes().iter().enumerate() {
            for &i in &node.inputs {
                assert!(d[id] > d[i], "node {id} not deeper than its input {i}");
            }
        }
    }

    #[test]
    fn level_time_bounds() {
        assert_eq!(level_time(&[4.0, 2.0, 2.0], 1), 8.0);
        // Two streams: bounded by max(4, 8/2) = 4.
        assert_eq!(level_time(&[4.0, 2.0, 2.0], 2), 4.0);
        // Many streams: bounded by the longest member.
        assert_eq!(level_time(&[4.0, 2.0, 2.0], 16), 4.0);
    }

    #[test]
    fn inception_overlaps_sequential_chains_do_not() {
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        let inception = inception_module(64);
        setup_network(&p, &inception).unwrap();
        let t = time_iteration(&p, &inception).unwrap();
        let r = overlap_schedule(&inception, &t, 4);
        assert!(r.max_width >= 4, "four towers must be concurrent");
        assert!(
            r.speedup() > 1.05,
            "inception must benefit: {:.3}",
            r.speedup()
        );
        assert!(r.overlapped_us <= r.serial_us);

        // AlexNet is a pure chain: overlap cannot help.
        let p2 = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        let chain = alexnet(64);
        setup_network(&p2, &chain).unwrap();
        let tc = time_iteration(&p2, &chain).unwrap();
        let rc = overlap_schedule(&chain, &tc, 4);
        assert!(
            (rc.speedup() - 1.0).abs() < 1e-9,
            "chains have nothing to overlap"
        );
    }

    #[test]
    fn one_stream_equals_serial() {
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        let net = inception_module(32);
        setup_network(&p, &net).unwrap();
        let t = time_iteration(&p, &net).unwrap();
        let r = overlap_schedule(&net, &t, 1);
        assert!((r.overlapped_us - r.serial_us).abs() < 1e-9);
    }
}
