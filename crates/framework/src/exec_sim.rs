//! The simulated-timing executor: runs one training iteration against the
//! performance model and reports a per-layer breakdown — the equivalent of
//! Caffe's `time` command on the simulated GPU.

use crate::cost::{layer_backward_us, layer_forward_us};
use crate::graph::{LayerSpec, NetworkDef};
use crate::provider::{ConvProvider, ProviderError};
use ucudnn_cudnn_sim::{ConvOp, Engine};
use ucudnn_gpu_model::DeviceSpec;

/// Per-layer timing of one forward+backward iteration.
#[derive(Debug, Clone)]
pub struct LayerTiming {
    /// Layer name.
    pub name: String,
    /// Layer kind ("conv", "pool", ...).
    pub kind: &'static str,
    /// Forward time, microseconds.
    pub forward_us: f64,
    /// Backward time (BackwardData + BackwardFilter for convolutions).
    pub backward_us: f64,
}

/// One iteration's timing report.
#[derive(Debug, Clone)]
pub struct IterationTiming {
    /// Per-layer rows, topological order.
    pub layers: Vec<LayerTiming>,
}

impl IterationTiming {
    /// Total forward time.
    pub fn forward_us(&self) -> f64 {
        self.layers.iter().map(|l| l.forward_us).sum()
    }

    /// Total backward time.
    pub fn backward_us(&self) -> f64 {
        self.layers.iter().map(|l| l.backward_us).sum()
    }

    /// Total iteration time.
    pub fn total_us(&self) -> f64 {
        self.forward_us() + self.backward_us()
    }

    /// Time spent in convolution layers only (the paper reports speedups
    /// both for convolutions alone and for the entire iteration).
    pub fn conv_us(&self) -> f64 {
        self.layers
            .iter()
            .filter(|l| l.kind == "conv")
            .map(|l| l.forward_us + l.backward_us)
            .sum()
    }
}

/// Register every convolution kernel of the network with the provider
/// (the framework's initialization pass), then finalize (triggers WD).
///
/// The kernels are collected first and handed to the provider in one
/// [`ConvProvider::prepare`] call, so an optimizing provider can fan the
/// per-kernel optimization over worker threads instead of being driven
/// one `setup` at a time.
///
/// # Errors
/// Setup/optimization failures.
pub fn setup_network(provider: &impl ConvProvider, net: &NetworkDef) -> Result<(), ProviderError> {
    let mut kernels = Vec::new();
    for id in net.conv_layers() {
        let g = net.conv_geometry(id);
        kernels.push((ConvOp::Forward, g));
        if net.needs_backward_data(id) {
            kernels.push((ConvOp::BackwardData, g));
        }
        kernels.push((ConvOp::BackwardFilter, g));
    }
    provider.prepare(&kernels)?;
    provider.finalize()
}

/// Run one simulated forward+backward iteration and return the breakdown.
///
/// Convolution layers execute through the provider (empty data buffers) and
/// are timed by the virtual clock; all other layers are priced by the cost
/// model in [`crate::cost`].
///
/// # Errors
/// Execution failures.
///
/// # Panics
/// Panics when the provider's engine is not [`Engine::Simulated`].
pub fn time_iteration(
    provider: &impl ConvProvider,
    net: &NetworkDef,
) -> Result<IterationTiming, ProviderError> {
    let Engine::Simulated(device) = provider.handle().engine().clone() else {
        panic!("time_iteration requires the simulated engine; use exec_real for CPU numerics");
    };
    let mut layers: Vec<LayerTiming> = Vec::with_capacity(net.len());

    // Forward pass, topological order.
    for (id, node) in net.nodes().iter().enumerate() {
        let forward_us = match &node.spec {
            LayerSpec::Conv { .. } => {
                let g = net.conv_geometry(id);
                conv_time(provider, ConvOp::Forward, &g)?
            }
            _ => layer_forward_us(&device, net, id),
        };
        ucudnn::trace::event("train", "sim_forward", || {
            (
                node.name.clone(),
                ucudnn::json::obj([
                    ("node", ucudnn::json::num(id as f64)),
                    (
                        "kind",
                        ucudnn::json::Value::Str(node.spec.kind_name().to_string()),
                    ),
                    ("modeled_us", ucudnn::json::num(forward_us)),
                ]),
            )
        });
        layers.push(LayerTiming {
            name: node.name.clone(),
            kind: node.spec.kind_name(),
            forward_us,
            backward_us: 0.0,
        });
    }

    // Backward pass, reverse order.
    for (id, node) in net.nodes().iter().enumerate().rev() {
        let backward_us = match &node.spec {
            LayerSpec::Conv { .. } => {
                let g = net.conv_geometry(id);
                let mut t = conv_time(provider, ConvOp::BackwardFilter, &g)?;
                if net.needs_backward_data(id) {
                    t += conv_time(provider, ConvOp::BackwardData, &g)?;
                }
                t
            }
            LayerSpec::Input => 0.0,
            _ => layer_backward_us(&device, net, id),
        };
        ucudnn::trace::event("train", "sim_backward", || {
            (
                node.name.clone(),
                ucudnn::json::obj([
                    ("node", ucudnn::json::num(id as f64)),
                    (
                        "kind",
                        ucudnn::json::Value::Str(node.spec.kind_name().to_string()),
                    ),
                    ("modeled_us", ucudnn::json::num(backward_us)),
                ]),
            )
        });
        layers[id].backward_us = backward_us;
    }

    Ok(IterationTiming { layers })
}

/// Run one simulated *forward-only* pass and return its total time in
/// microseconds — the inference path a serving worker executes for a
/// coalesced batch (no backward, no weight update).
///
/// Convolutions go through the provider exactly like [`time_iteration`]'s
/// forward half, so an optimizing provider replays its micro-batched plan
/// and a coalesced batch hits the batch-normalized execution-plan cache;
/// other layers are priced by the cost model.
///
/// # Errors
/// Execution failures.
///
/// # Panics
/// Panics when the provider's engine is not [`Engine::Simulated`].
pub fn time_forward(provider: &impl ConvProvider, net: &NetworkDef) -> Result<f64, ProviderError> {
    let Engine::Simulated(device) = provider.handle().engine().clone() else {
        panic!("time_forward requires the simulated engine; use exec_real for CPU numerics");
    };
    let mut total_us = 0.0;
    for (id, node) in net.nodes().iter().enumerate() {
        let forward_us = match &node.spec {
            LayerSpec::Conv { .. } => {
                let g = net.conv_geometry(id);
                conv_time(provider, ConvOp::Forward, &g)?
            }
            _ => layer_forward_us(&device, net, id),
        };
        ucudnn::trace::event("serve", "sim_forward", || {
            (
                node.name.clone(),
                ucudnn::json::obj([
                    ("node", ucudnn::json::num(id as f64)),
                    (
                        "kind",
                        ucudnn::json::Value::Str(node.spec.kind_name().to_string()),
                    ),
                    ("modeled_us", ucudnn::json::num(forward_us)),
                ]),
            )
        });
        total_us += forward_us;
    }
    Ok(total_us)
}

/// Execute one conv kernel on the simulated engine and return the virtual
/// clock delta.
fn conv_time(
    provider: &impl ConvProvider,
    op: ConvOp,
    g: &ucudnn_tensor::ConvGeometry,
) -> Result<f64, ProviderError> {
    let before = provider.handle().elapsed_us();
    provider.execute(op, g, &[], &[], &mut [], 1.0, 0.0)?;
    Ok(provider.handle().elapsed_us() - before)
}

/// A device accessor for report headers.
pub fn device_of(provider: &impl ConvProvider) -> Option<DeviceSpec> {
    provider.handle().device().cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkDef;
    use crate::provider::BaselineCudnn;
    use ucudnn::{UcudnnHandle, UcudnnOptions};
    use ucudnn_cudnn_sim::CudnnHandle;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::Shape4;

    const MIB: usize = 1024 * 1024;

    /// AlexNet's front half, small enough for fast tests.
    fn small_net(n: usize) -> NetworkDef {
        let mut net = NetworkDef::new("small", Shape4::new(n, 3, 32, 32));
        let c1 = net.conv_relu("conv1", net.input(), 16, 5, 1, 2);
        let p1 = net.add(
            "pool1",
            LayerSpec::Pool {
                max: true,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[c1],
        );
        let c2 = net.conv_relu("conv2", p1, 32, 5, 1, 2);
        let c3 = net.conv_relu("conv3", c2, 32, 3, 1, 1);
        net.add("fc", LayerSpec::FullyConnected { out: 10 }, &[c3]);
        net
    }

    #[test]
    fn baseline_iteration_produces_full_breakdown() {
        let net = small_net(64);
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        setup_network(&p, &net).unwrap();
        let t = time_iteration(&p, &net).unwrap();
        assert_eq!(t.layers.len(), net.len());
        assert!(t.total_us() > 0.0);
        assert!(t.conv_us() > 0.0);
        assert!(t.conv_us() <= t.total_us());
        // First conv has no BackwardData; its backward is BackwardFilter only.
        let conv1 = t.layers.iter().find(|l| l.name == "conv1").unwrap();
        assert!(conv1.backward_us > 0.0);
    }

    #[test]
    fn ucudnn_is_not_slower_than_baseline() {
        // The end-to-end invariant behind Fig. 10: for any limit, μ-cuDNN's
        // optimized iteration time is ≤ the baseline's (same model, DP
        // optimum includes the undivided configuration).
        let net = small_net(64);
        for limit in [8 * MIB, 64 * MIB, 512 * MIB] {
            let base = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), limit);
            setup_network(&base, &net).unwrap();
            let tb = time_iteration(&base, &net).unwrap();

            let mu = UcudnnHandle::new(
                CudnnHandle::simulated(p100_sxm2()),
                UcudnnOptions {
                    workspace_limit_bytes: limit,
                    ..Default::default()
                },
            );
            setup_network(&mu, &net).unwrap();
            let tm = time_iteration(&mu, &net).unwrap();

            assert!(
                tm.total_us() <= tb.total_us() + 1e-6,
                "limit {limit}: ucudnn {} vs baseline {}",
                tm.total_us(),
                tb.total_us()
            );
        }
    }

    #[test]
    fn deterministic_timing() {
        let net = small_net(32);
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        setup_network(&p, &net).unwrap();
        let a = time_iteration(&p, &net).unwrap();
        let b = time_iteration(&p, &net).unwrap();
        // Clock deltas can differ by one ULP as the accumulator grows.
        assert!((a.total_us() - b.total_us()).abs() < 1e-9 * a.total_us());
    }

    #[test]
    fn forward_only_matches_the_iteration_forward_half() {
        let net = small_net(32);
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        setup_network(&p, &net).unwrap();
        let fwd = time_forward(&p, &net).unwrap();
        let it = time_iteration(&p, &net).unwrap();
        assert!(fwd > 0.0);
        assert!(
            (fwd - it.forward_us()).abs() < 1e-9 * fwd.max(1.0),
            "forward-only {fwd} vs iteration forward {}",
            it.forward_us()
        );
    }

    #[test]
    fn non_conv_layers_have_model_costs() {
        let net = small_net(32);
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        setup_network(&p, &net).unwrap();
        let t = time_iteration(&p, &net).unwrap();
        let pool = t.layers.iter().find(|l| l.kind == "pool").unwrap();
        let fc = t.layers.iter().find(|l| l.kind == "fc").unwrap();
        assert!(pool.forward_us > 0.0 && pool.backward_us > 0.0);
        assert!(fc.forward_us > 0.0 && fc.backward_us > 0.0);
    }
}
