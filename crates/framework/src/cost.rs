//! Cost model for non-convolution layers on the simulated engine.
//!
//! The paper's timing breakdowns (Figs. 10–13) include pooling, ReLU, fully
//! connected and normalization layers alongside convolutions. These layers
//! are outside the paper's optimization scope but must be priced to report
//! "entire iteration" speedups honestly (they dilute the convolution-only
//! speedup — e.g. P100 AlexNet: 1.63× convolutions → 1.40× iteration).
//!
//! Elementwise and pooling layers are memory-bandwidth bound; fully
//! connected layers are modeled like the GEMM they are.

use crate::graph::{LayerSpec, NetworkDef, NodeId};
use ucudnn_gpu_model::DeviceSpec;

/// Modeled time of the forward pass of a non-conv layer, microseconds.
pub fn layer_forward_us(d: &DeviceSpec, net: &NetworkDef, id: NodeId) -> f64 {
    let node = &net.nodes()[id];
    let out = net.output_shape(id);
    let bytes_out = out.bytes() as f64;
    let overhead = d.launch_overhead_us;
    match &node.spec {
        LayerSpec::Input => 0.0,
        LayerSpec::Conv { .. } => unreachable!("convolutions are priced by the GPU model"),
        // Read input window + write output.
        LayerSpec::Pool { kernel, .. } => {
            (bytes_out * (kernel * kernel) as f64 * 0.5 + bytes_out) / d.bytes_per_us() + overhead
        }
        LayerSpec::Relu | LayerSpec::Add => 2.0 * bytes_out / d.bytes_per_us() + overhead,
        // Two passes: statistics, then normalize.
        LayerSpec::BatchNorm => 4.0 * bytes_out / d.bytes_per_us() + overhead,
        LayerSpec::FullyConnected { out: nout } => {
            let s = net.output_shape(node.inputs[0]);
            let flops = 2.0 * (s.n * s.sample_len() * nout) as f64;
            let weight_bytes = (s.sample_len() * nout * 4) as f64;
            let compute = flops / (d.flops_per_us() * 0.55);
            let memory = (weight_bytes + bytes_out) / d.bytes_per_us();
            compute.max(memory) + overhead
        }
        LayerSpec::Concat => 2.0 * bytes_out / d.bytes_per_us() + overhead,
        LayerSpec::GlobalAvgPool => {
            let s = net.output_shape(node.inputs[0]);
            s.bytes() as f64 / d.bytes_per_us() + overhead
        }
    }
}

/// Modeled time of the backward pass of a non-conv layer, microseconds.
/// Backward passes touch roughly twice the data (gradient in + gradient
/// out, plus saved activations), matching the common 2× rule of thumb.
pub fn layer_backward_us(d: &DeviceSpec, net: &NetworkDef, id: NodeId) -> f64 {
    let node = &net.nodes()[id];
    match &node.spec {
        LayerSpec::Input => 0.0,
        LayerSpec::Conv { .. } => unreachable!("convolutions are priced by the GPU model"),
        // FC backward: two GEMMs (data + weight gradient).
        LayerSpec::FullyConnected { .. } => 2.0 * layer_forward_us(d, net, id),
        _ => 2.0 * layer_forward_us(d, net, id),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::NetworkDef;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::Shape4;

    fn net() -> (NetworkDef, NodeId, NodeId, NodeId) {
        let mut n = NetworkDef::new("t", Shape4::new(64, 64, 28, 28));
        let r = n.add("relu", LayerSpec::Relu, &[0]);
        let p = n.add(
            "pool",
            LayerSpec::Pool {
                max: true,
                kernel: 2,
                stride: 2,
                pad: 0,
            },
            &[r],
        );
        let f = n.add("fc", LayerSpec::FullyConnected { out: 1000 }, &[p]);
        (n, r, p, f)
    }

    #[test]
    fn costs_are_positive_and_scale_with_size() {
        let d = p100_sxm2();
        let (n, r, p, f) = net();
        for id in [r, p, f] {
            assert!(layer_forward_us(&d, &n, id) > 0.0);
            assert!(layer_backward_us(&d, &n, id) >= layer_forward_us(&d, &n, id));
        }
        let big = n.with_batch(128);
        assert!(layer_forward_us(&d, &big, r) > layer_forward_us(&d, &n, r));
    }

    #[test]
    fn fc_cost_reflects_weight_traffic() {
        // AlexNet fc6 (9216→4096) at batch 256 should be far more expensive
        // than a ReLU of its output.
        let d = p100_sxm2();
        let mut n = NetworkDef::new("t", Shape4::new(256, 256, 6, 6));
        let f = n.add("fc6", LayerSpec::FullyConnected { out: 4096 }, &[0]);
        let r = n.add("relu", LayerSpec::Relu, &[f]);
        assert!(layer_forward_us(&d, &n, f) > 10.0 * layer_forward_us(&d, &n, r));
    }

    #[test]
    fn input_layer_is_free() {
        let d = p100_sxm2();
        let (n, ..) = net();
        assert_eq!(layer_forward_us(&d, &n, 0), 0.0);
    }
}
