//! Pluggable convolution backends for the framework.
//!
//! The framework drives convolutions through the [`ConvProvider`] trait so
//! the same network code can run against:
//!
//! * [`BaselineCudnn`] — plain cuDNN behaviour: the framework picks each
//!   layer's algorithm once with `SPECIFY_WORKSPACE_LIMIT` and allocates a
//!   per-layer workspace, exactly like Caffe; or
//! * [`ucudnn::UcudnnHandle`] — the transparent μ-cuDNN wrapper, which takes
//!   over algorithm selection, micro-batching and workspace ownership.
//!
//! Swapping one for the other is the framework-integration story of the
//! paper (three lines in Caffe).

use parking_lot::Mutex;
use std::collections::HashMap;
use ucudnn::{KernelKey, UcudnnHandle};
use ucudnn_cudnn_sim::{
    AlgoPreference, ConvAlgo, ConvOp, ConvolutionDescriptor, CudnnError, CudnnHandle,
    FilterDescriptor, TensorDescriptor,
};
use ucudnn_tensor::ConvGeometry;

/// Errors from a provider (substrate or optimizer).
#[derive(Debug)]
pub enum ProviderError {
    /// Substrate error.
    Cudnn(CudnnError),
    /// μ-cuDNN error.
    Ucudnn(ucudnn::UcudnnError),
    /// The network graph is structurally invalid (e.g. a layer that needs
    /// an input has no input edge). Surfaced as an error instead of a
    /// panic so a bad graph cannot take down a training service.
    MalformedGraph(String),
}

impl From<CudnnError> for ProviderError {
    fn from(e: CudnnError) -> Self {
        ProviderError::Cudnn(e)
    }
}

impl From<ucudnn::UcudnnError> for ProviderError {
    fn from(e: ucudnn::UcudnnError) -> Self {
        ProviderError::Ucudnn(e)
    }
}

impl core::fmt::Display for ProviderError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ProviderError::Cudnn(e) => e.fmt(f),
            ProviderError::Ucudnn(e) => e.fmt(f),
            ProviderError::MalformedGraph(msg) => write!(f, "malformed network graph: {msg}"),
        }
    }
}

impl std::error::Error for ProviderError {}

/// Convolution backend abstraction used by both executors.
pub trait ConvProvider {
    /// Called once per kernel during network setup (the framework's
    /// `get_algorithm` + `get_workspace_size` sequence).
    ///
    /// # Errors
    /// Setup failures (no algorithm fits, optimizer failure, ...).
    fn setup(&self, op: ConvOp, g: &ConvGeometry) -> Result<(), ProviderError>;

    /// Register a whole network's kernels in one call (the framework's
    /// post-construction initialization hook). The default implementation
    /// registers them one at a time through [`Self::setup`]; optimizing
    /// providers override it to fan the per-kernel optimization over worker
    /// threads ([`UcudnnHandle::optimize_network`]).
    ///
    /// # Errors
    /// Setup failures for any kernel, in registration order.
    fn prepare(&self, kernels: &[(ConvOp, ConvGeometry)]) -> Result<(), ProviderError> {
        for (op, g) in kernels {
            self.setup(*op, g)?;
        }
        Ok(())
    }

    /// Signal that every kernel has been registered (triggers WD).
    ///
    /// # Errors
    /// Optimizer failures.
    fn finalize(&self) -> Result<(), ProviderError> {
        Ok(())
    }

    /// Execute one convolution op. Data slices are empty under the
    /// simulated engine, full-size under the CPU engine. `out` is
    /// `alpha*op(a, b) + beta*out` with the same buffer roles as
    /// `ucudnn_conv::exec`.
    ///
    /// # Errors
    /// Execution failures.
    #[allow(clippy::too_many_arguments)] // BLAS/cuDNN-style signature
    fn execute(
        &self,
        op: ConvOp,
        g: &ConvGeometry,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        alpha: f32,
        beta: f32,
    ) -> Result<(), ProviderError>;

    /// The underlying substrate handle (clock access, engine queries).
    fn handle(&self) -> &CudnnHandle;

    /// Total workspace bytes currently allocated by this provider.
    fn workspace_bytes(&self) -> usize;

    /// Workspace bytes attributable to one kernel (for memory breakdowns).
    fn kernel_workspace_bytes(&self, op: ConvOp, g: &ConvGeometry) -> usize;
}

fn descriptors(
    g: &ConvGeometry,
) -> (
    TensorDescriptor,
    FilterDescriptor,
    ConvolutionDescriptor,
    TensorDescriptor,
) {
    (
        TensorDescriptor::from_shape(g.input).expect("valid input shape"),
        FilterDescriptor::from_shape(g.filter).expect("valid filter shape"),
        ConvolutionDescriptor::new_2d(g.pad_h, g.pad_w, g.stride_h, g.stride_w)
            .expect("valid convolution"),
        TensorDescriptor::from_shape(g.output()).expect("valid output shape"),
    )
}

/// Plain cuDNN with Caffe's workspace policy: per-kernel algorithm chosen
/// by `SPECIFY_WORKSPACE_LIMIT`, per-kernel workspace allocated up front.
pub struct BaselineCudnn {
    handle: CudnnHandle,
    ws_limit: usize,
    state: Mutex<BaselineState>,
}

#[derive(Default)]
struct BaselineState {
    algos: HashMap<KernelKey, ConvAlgo>,
    workspaces: HashMap<KernelKey, Vec<f32>>,
}

impl BaselineCudnn {
    /// Wrap a handle with a per-kernel workspace limit in bytes.
    pub fn new(handle: CudnnHandle, ws_limit: usize) -> Self {
        Self {
            handle,
            ws_limit,
            state: Mutex::new(BaselineState::default()),
        }
    }

    /// The algorithm selected for a kernel (after `setup`).
    pub fn chosen_algo(&self, op: ConvOp, g: &ConvGeometry) -> Option<ConvAlgo> {
        self.state.lock().algos.get(&KernelKey::new(op, g)).copied()
    }
}

impl ConvProvider for BaselineCudnn {
    fn setup(&self, op: ConvOp, g: &ConvGeometry) -> Result<(), ProviderError> {
        let key = KernelKey::new(op, g);
        let mut st = self.state.lock();
        if st.algos.contains_key(&key) {
            return Ok(());
        }
        let (xd, wd, cd, _) = descriptors(g);
        let algo = self.handle.get_algorithm(
            op,
            &xd,
            &wd,
            &cd,
            AlgoPreference::SpecifyWorkspaceLimit(self.ws_limit),
        )?;
        let bytes = self.handle.get_workspace_size(op, &xd, &wd, &cd, algo)?;
        st.algos.insert(key, algo);
        st.workspaces.insert(key, vec![0.0f32; bytes.div_ceil(4)]);
        Ok(())
    }

    fn execute(
        &self,
        op: ConvOp,
        g: &ConvGeometry,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        alpha: f32,
        beta: f32,
    ) -> Result<(), ProviderError> {
        let key = KernelKey::new(op, g);
        let mut st = self.state.lock();
        if !st.algos.contains_key(&key) {
            drop(st);
            self.setup(op, g)?;
            st = self.state.lock();
        }
        let algo = st.algos[&key];
        let st = &mut *st;
        let ws = st
            .workspaces
            .get_mut(&key)
            .expect("workspace allocated at setup");
        let (xd, wd, cd, yd) = descriptors(g);
        match op {
            ConvOp::Forward => self
                .handle
                .convolution_forward(alpha, &xd, a, &wd, b, &cd, algo, ws, beta, &yd, out)?,
            ConvOp::BackwardData => self
                .handle
                .convolution_backward_data(alpha, &wd, b, &yd, a, &cd, algo, ws, beta, &xd, out)?,
            ConvOp::BackwardFilter => self.handle.convolution_backward_filter(
                alpha, &xd, a, &yd, b, &cd, algo, ws, beta, &wd, out,
            )?,
        }
        Ok(())
    }

    fn handle(&self) -> &CudnnHandle {
        &self.handle
    }

    fn workspace_bytes(&self) -> usize {
        4 * self
            .state
            .lock()
            .workspaces
            .values()
            .map(Vec::len)
            .sum::<usize>()
    }

    fn kernel_workspace_bytes(&self, op: ConvOp, g: &ConvGeometry) -> usize {
        self.state
            .lock()
            .workspaces
            .get(&KernelKey::new(op, g))
            .map(|v| 4 * v.len())
            .unwrap_or(0)
    }
}

impl ConvProvider for UcudnnHandle {
    fn setup(&self, op: ConvOp, g: &ConvGeometry) -> Result<(), ProviderError> {
        let (xd, wd, cd, _) = descriptors(g);
        let algo = self.get_algorithm(op, &xd, &wd, &cd)?;
        // The wrapper reports zero workspace; the framework "allocates" none.
        let bytes = self.get_workspace_size(op, &xd, &wd, &cd, algo)?;
        debug_assert_eq!(bytes, 0, "μ-cuDNN must request zero framework workspace");
        Ok(())
    }

    fn prepare(&self, kernels: &[(ConvOp, ConvGeometry)]) -> Result<(), ProviderError> {
        let keys: Vec<KernelKey> = kernels
            .iter()
            .map(|(op, g)| KernelKey::new(*op, g))
            .collect();
        self.optimize_network(&keys)?;
        Ok(())
    }

    fn finalize(&self) -> Result<(), ProviderError> {
        self.finalize_network()?;
        Ok(())
    }

    fn execute(
        &self,
        op: ConvOp,
        g: &ConvGeometry,
        a: &[f32],
        b: &[f32],
        out: &mut [f32],
        alpha: f32,
        beta: f32,
    ) -> Result<(), ProviderError> {
        let (xd, wd, cd, yd) = descriptors(g);
        match op {
            ConvOp::Forward => self.convolution_forward(
                alpha,
                &xd,
                a,
                &wd,
                b,
                &cd,
                ucudnn::VIRTUAL_ALGO,
                beta,
                &yd,
                out,
            )?,
            ConvOp::BackwardData => self.convolution_backward_data(
                alpha,
                &wd,
                b,
                &yd,
                a,
                &cd,
                ucudnn::VIRTUAL_ALGO,
                beta,
                &xd,
                out,
            )?,
            ConvOp::BackwardFilter => self.convolution_backward_filter(
                alpha,
                &xd,
                a,
                &yd,
                b,
                &cd,
                ucudnn::VIRTUAL_ALGO,
                beta,
                &wd,
                out,
            )?,
        }
        Ok(())
    }

    fn handle(&self) -> &CudnnHandle {
        self.inner()
    }

    fn workspace_bytes(&self) -> usize {
        self.total_workspace_bytes()
    }

    fn kernel_workspace_bytes(&self, op: ConvOp, g: &ConvGeometry) -> usize {
        self.plan(op, g)
            .map(|p| p.config.workspace_bytes())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn_gpu_model::p100_sxm2;
    use ucudnn_tensor::{FilterShape, Shape4};

    const MIB: usize = 1024 * 1024;

    fn conv2() -> ConvGeometry {
        ConvGeometry::with_square(
            Shape4::new(256, 64, 27, 27),
            FilterShape::new(192, 64, 5, 5),
            2,
            1,
        )
    }

    #[test]
    fn baseline_allocates_per_kernel_workspace() {
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        p.setup(ConvOp::Forward, &conv2()).unwrap();
        let ws = p.kernel_workspace_bytes(ConvOp::Forward, &conv2());
        assert!(ws <= 64 * MIB);
        assert_eq!(p.workspace_bytes(), ws);
    }

    #[test]
    fn baseline_executes_and_advances_clock() {
        let p = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        let g = conv2();
        p.setup(ConvOp::Forward, &g).unwrap();
        p.execute(ConvOp::Forward, &g, &[], &[], &mut [], 1.0, 0.0)
            .unwrap();
        assert!(p.handle().elapsed_us() > 0.0);
        assert_eq!(
            p.handle().kernels_launched(),
            1,
            "baseline never micro-batches"
        );
    }

    #[test]
    fn ucudnn_provider_micro_batches_the_same_kernel() {
        let h = UcudnnHandle::new(
            CudnnHandle::simulated(p100_sxm2()),
            ucudnn::UcudnnOptions {
                workspace_limit_bytes: 64 * MIB,
                ..Default::default()
            },
        );
        let g = conv2();
        ConvProvider::setup(&h, ConvOp::Forward, &g).unwrap();
        ConvProvider::execute(&h, ConvOp::Forward, &g, &[], &[], &mut [], 1.0, 0.0).unwrap();
        assert!(
            h.inner().kernels_launched() > 1,
            "64 MiB conv2 must be split into micro-batches"
        );
    }

    #[test]
    fn ucudnn_provider_degrades_gracefully_under_full_benchmark_faults() {
        use ucudnn_cudnn_sim::{FaultPlan, FaultSite, FaultTarget};
        // Every benchmark fails, yet the provider must still set up and
        // execute: the optimizer degrades to the undivided zero-workspace
        // plan instead of surfacing an error to the framework.
        let h = UcudnnHandle::new(
            CudnnHandle::simulated(p100_sxm2()).with_faults(FaultPlan {
                targets: vec![FaultTarget {
                    site: Some(FaultSite::Benchmark),
                    ..FaultTarget::any()
                }],
                ..FaultPlan::default()
            }),
            ucudnn::UcudnnOptions {
                workspace_limit_bytes: 64 * MIB,
                ..Default::default()
            },
        );
        let g = conv2();
        ConvProvider::setup(&h, ConvOp::Forward, &g).unwrap();
        ConvProvider::execute(&h, ConvOp::Forward, &g, &[], &[], &mut [], 1.0, 0.0).unwrap();
        let plan = h.plan(ConvOp::Forward, &g).unwrap();
        assert!(plan.config.is_undivided());
        assert_eq!(plan.config.workspace_bytes(), 0);
        assert!(h.inner().faults_injected() > 0);
        let metrics = h.metrics_json();
        assert!(metrics.contains("\"degradations\""));
    }

    #[test]
    fn ucudnn_beats_baseline_on_conv2_at_64mib() {
        // The provider-level statement of Fig. 9.
        let g = conv2();
        let base = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
        base.setup(ConvOp::Forward, &g).unwrap();
        base.execute(ConvOp::Forward, &g, &[], &[], &mut [], 1.0, 0.0)
            .unwrap();

        let mu = UcudnnHandle::new(
            CudnnHandle::simulated(p100_sxm2()),
            ucudnn::UcudnnOptions {
                workspace_limit_bytes: 64 * MIB,
                ..Default::default()
            },
        );
        ConvProvider::setup(&mu, ConvOp::Forward, &g).unwrap();
        ConvProvider::execute(&mu, ConvOp::Forward, &g, &[], &[], &mut [], 1.0, 0.0).unwrap();

        assert!(
            mu.inner().elapsed_us() < base.handle().elapsed_us(),
            "μ-cuDNN {} vs baseline {}",
            mu.inner().elapsed_us(),
            base.handle().elapsed_us()
        );
    }
}
