//! A std-only stand-in for the `criterion` benchmarking API.
//!
//! The workspace builds fully offline, so the real `criterion` crate is
//! replaced (via Cargo dependency renaming) with this minimal harness. It
//! exposes the subset of the API the workspace's benches use — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher::iter`], [`BenchmarkId`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros — and reports a simple
//! mean wall-clock per iteration instead of criterion's full statistics.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the compiler from optimizing away a benchmarked value.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Entry point handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _parent: self,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&name.to_string(), self.sample_size, &mut f);
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of samples taken per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmark a closure that receives an input by reference.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.0);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Benchmark a closure with no external input.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, &mut f);
        self
    }

    /// End the group (accepted for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

/// A function + parameter label identifying one benchmark in a group.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Compose an id from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        Self(format!("{function}/{parameter}"))
    }

    /// Id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// Timer handed to the benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    pending_iters: u64,
}

impl Bencher {
    /// Time repeated calls of `f`, recording one sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let iters = self.pending_iters.max(1);
        let start = Instant::now();
        for _ in 0..iters {
            std_black_box(f());
        }
        self.samples.push(start.elapsed() / iters as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut b = Bencher {
        samples: Vec::new(),
        pending_iters: 1,
    };
    // One warm-up sample, discarded.
    f(&mut b);
    b.samples.clear();
    for _ in 0..sample_size.max(1) {
        f(&mut b);
    }
    let total: Duration = b.samples.iter().sum();
    let samples = b.samples.len().max(1) as u32;
    let mean = total / samples;
    println!("{label:<48} mean {mean:>12.3?}  ({samples} samples)");
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bench(c: &mut Criterion) {
        let mut g = c.benchmark_group("tiny");
        g.sample_size(3);
        g.bench_with_input(BenchmarkId::new("sum", 10), &10u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        g.bench_function("mul", |b| b.iter(|| black_box(6u64) * 7));
        g.finish();
    }

    criterion_group!(smoke, tiny_bench);

    #[test]
    fn harness_runs_groups() {
        smoke();
    }

    #[test]
    fn bench_function_on_criterion_runs() {
        let mut c = Criterion::default();
        c.bench_function("direct", |b| b.iter(|| black_box(1 + 1)));
    }
}
