//! Trace post-processing behind the `ucudnn-report` binary.
//!
//! Consumes a JSONL trace written by a [`ucudnn::TraceSession`] and
//! aggregates it into a human-readable profile: one row per optimized kernel
//! (chosen algorithm/micro-batch split, modeled time, workspace,
//! degradation rungs taken), micro-batch launch percentiles, per-layer
//! training-time percentiles, and the workspace high-water mark.

use std::collections::BTreeMap;
use ucudnn::json::Value;
use ucudnn::{Trace, TraceEvent};
use ucudnn_framework::{Percentiles, StreamingHistogram};

/// Aggregated plan decision for one kernel (the last `"plan"` event wins,
/// matching how re-optimization replaces plans).
#[derive(Debug, Clone)]
pub struct KernelRow {
    /// Kernel key string (`op geometry`).
    pub kernel: String,
    /// `"wr"` or `"wd"`.
    pub optimizer: String,
    /// Human description of the chosen configuration (algorithms and
    /// micro-batch split).
    pub config: String,
    /// Modeled execution time of the configuration, microseconds.
    pub time_us: f64,
    /// Workspace granted, bytes.
    pub workspace_bytes: u64,
    /// Degradation-ladder rungs taken, in order.
    pub degradations: Vec<String>,
}

/// Micro-batch launch statistics for one kernel.
#[derive(Debug, Clone)]
pub struct ExecRow {
    /// Kernel key string.
    pub kernel: String,
    /// Number of micro-batch launches observed.
    pub launches: u64,
    /// Launch-time percentiles (wall `dur_us`, falling back to the modeled
    /// time in logical-clock traces where durations are normalized to 0).
    pub percentiles: Percentiles,
}

/// Training-time statistics for one layer.
#[derive(Debug, Clone)]
pub struct LayerRow {
    /// Layer name.
    pub layer: String,
    /// Forward span percentiles, microseconds.
    pub forward: Percentiles,
    /// Backward span percentiles, microseconds.
    pub backward: Percentiles,
    /// Spans observed (forward + backward).
    pub samples: u64,
}

/// The aggregated report.
#[derive(Debug, Clone, Default)]
pub struct TraceReport {
    /// Total events in the trace.
    pub events: usize,
    /// Events the bounded buffer dropped during collection.
    pub dropped: u64,
    /// Per-kernel plan decisions, sorted by kernel key.
    pub kernels: Vec<KernelRow>,
    /// Per-kernel micro-batch launch stats, sorted by kernel key.
    pub execs: Vec<ExecRow>,
    /// Per-layer training times, in first-seen (topological) order.
    pub layers: Vec<LayerRow>,
    /// Workspace high-water mark over the traced run, bytes.
    pub workspace_hwm_bytes: Option<u64>,
}

/// A span/event duration to aggregate: the wall duration when the trace has
/// one, else the modeled time from the args (logical-clock traces zero all
/// durations but keep modeled quantities).
fn observed_us(e: &TraceEvent) -> f64 {
    if e.dur_us > 0.0 {
        e.dur_us
    } else {
        e.args
            .get("modeled_us")
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    }
}

impl TraceReport {
    /// Aggregate a collected trace.
    pub fn from_trace(trace: &Trace) -> Self {
        let mut kernels: BTreeMap<String, KernelRow> = BTreeMap::new();
        let mut execs: BTreeMap<String, (u64, StreamingHistogram)> = BTreeMap::new();
        let mut layer_order: Vec<String> = Vec::new();
        let mut layers: BTreeMap<String, (StreamingHistogram, StreamingHistogram)> =
            BTreeMap::new();
        let mut hwm: Option<u64> = None;

        for e in &trace.events {
            match (e.cat.as_str(), e.name.as_str()) {
                ("plan", "decision") => {
                    let prov = e.args.get("provenance");
                    let degradations = prov
                        .and_then(|p| p.get("degradations"))
                        .and_then(|d| d.as_arr())
                        .map(|a| {
                            a.iter()
                                .filter_map(|v| v.as_str().map(str::to_string))
                                .collect()
                        })
                        .unwrap_or_default();
                    kernels.insert(
                        e.key.clone(),
                        KernelRow {
                            kernel: e.key.clone(),
                            optimizer: prov
                                .and_then(|p| p.get("optimizer"))
                                .and_then(|v| v.as_str())
                                .unwrap_or("?")
                                .to_string(),
                            config: e
                                .args
                                .get("config")
                                .and_then(|v| v.as_str())
                                .unwrap_or("?")
                                .to_string(),
                            time_us: e
                                .args
                                .get("time_us")
                                .and_then(|v| v.as_f64())
                                .unwrap_or(0.0),
                            workspace_bytes: e
                                .args
                                .get("workspace_bytes")
                                .and_then(|v| v.as_u64())
                                .unwrap_or(0),
                            degradations,
                        },
                    );
                }
                ("exec", "micro") => {
                    // Keys are "kernel#i"; fold the micro index away.
                    let kernel = e.key.split_once('#').map_or(e.key.as_str(), |(k, _)| k);
                    let entry = execs
                        .entry(kernel.to_string())
                        .or_insert_with(|| (0, StreamingHistogram::new()));
                    entry.0 += 1;
                    entry.1.record(observed_us(e));
                }
                ("train", "forward_layer" | "backward_layer" | "sim_forward" | "sim_backward") => {
                    if !layers.contains_key(&e.key) {
                        layer_order.push(e.key.clone());
                    }
                    let entry = layers
                        .entry(e.key.clone())
                        .or_insert_with(|| (StreamingHistogram::new(), StreamingHistogram::new()));
                    if e.name.ends_with("forward_layer") || e.name == "sim_forward" {
                        entry.0.record(observed_us(e));
                    } else {
                        entry.1.record(observed_us(e));
                    }
                }
                ("train", "workspace_hwm") => {
                    if let Some(b) = e.args.get("bytes").and_then(|v| v.as_u64()) {
                        hwm = Some(hwm.unwrap_or(0).max(b));
                    }
                }
                _ => {}
            }
        }

        Self {
            events: trace.events.len(),
            dropped: trace.dropped,
            kernels: kernels.into_values().collect(),
            execs: execs
                .into_iter()
                .map(|(kernel, (launches, h))| ExecRow {
                    kernel,
                    launches,
                    percentiles: h.percentiles(),
                })
                .collect(),
            layers: layer_order
                .into_iter()
                .map(|name| {
                    let (f, b) = &layers[&name];
                    LayerRow {
                        layer: name.clone(),
                        forward: f.percentiles(),
                        backward: b.percentiles(),
                        samples: f.count() + b.count(),
                    }
                })
                .collect(),
            workspace_hwm_bytes: hwm,
        }
    }

    /// Render the report as an aligned plain-text profile.
    pub fn render(&self) -> String {
        let mut out = format!(
            "=== ucudnn-report: {} events ({} dropped) ===\n",
            self.events, self.dropped
        );
        if !self.kernels.is_empty() {
            out.push_str("\n-- plan decisions --\n");
            out.push_str(&table(
                &[
                    "kernel",
                    "opt",
                    "configuration",
                    "time(us)",
                    "ws(MiB)",
                    "degradations",
                ],
                &self
                    .kernels
                    .iter()
                    .map(|k| {
                        vec![
                            k.kernel.clone(),
                            k.optimizer.clone(),
                            k.config.clone(),
                            format!("{:.1}", k.time_us),
                            format!("{:.1}", k.workspace_bytes as f64 / (1024.0 * 1024.0)),
                            if k.degradations.is_empty() {
                                "-".to_string()
                            } else {
                                k.degradations.join(",")
                            },
                        ]
                    })
                    .collect::<Vec<_>>(),
            ));
        }
        if !self.execs.is_empty() {
            out.push_str("\n-- micro-batch launches --\n");
            out.push_str(&table(
                &["kernel", "launches", "p50(us)", "p95(us)", "p99(us)"],
                &self
                    .execs
                    .iter()
                    .map(|r| {
                        vec![
                            r.kernel.clone(),
                            r.launches.to_string(),
                            format!("{:.1}", r.percentiles.p50_us),
                            format!("{:.1}", r.percentiles.p95_us),
                            format!("{:.1}", r.percentiles.p99_us),
                        ]
                    })
                    .collect::<Vec<_>>(),
            ));
        }
        if !self.layers.is_empty() {
            out.push_str("\n-- training layers --\n");
            out.push_str(&table(
                &[
                    "layer", "samples", "fwd p50", "fwd p95", "fwd p99", "bwd p50", "bwd p95",
                    "bwd p99",
                ],
                &self
                    .layers
                    .iter()
                    .map(|l| {
                        vec![
                            l.layer.clone(),
                            l.samples.to_string(),
                            format!("{:.1}", l.forward.p50_us),
                            format!("{:.1}", l.forward.p95_us),
                            format!("{:.1}", l.forward.p99_us),
                            format!("{:.1}", l.backward.p50_us),
                            format!("{:.1}", l.backward.p95_us),
                            format!("{:.1}", l.backward.p99_us),
                        ]
                    })
                    .collect::<Vec<_>>(),
            ));
        }
        if let Some(b) = self.workspace_hwm_bytes {
            out.push_str(&format!(
                "\nworkspace high-water mark: {:.1} MiB\n",
                b as f64 / (1024.0 * 1024.0)
            ));
        }
        out
    }
}

/// Reconstruct one serving request's admission→batch→completion timeline
/// from a trace: every `serve` event keyed `req{id}` (submit, shed,
/// complete) plus every batch/micro event whose `ids` list carries the
/// request. Returns `None` if the request never appears.
pub fn request_timeline(trace: &Trace, id: u64) -> Option<String> {
    let key = format!("req{id}");
    let rides = |e: &TraceEvent| {
        e.args
            .get("ids")
            .and_then(Value::as_arr)
            .is_some_and(|ids| ids.iter().filter_map(Value::as_u64).any(|v| v == id))
    };
    let mut rows: Vec<&TraceEvent> = trace
        .events
        .iter()
        .filter(|e| e.cat == "serve" && (e.key == key || rides(e)))
        .collect();
    if rows.is_empty() {
        return None;
    }
    rows.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    let mut out = format!("=== request req{id}: {} events ===\n", rows.len());
    for e in &rows {
        let detail = match &e.args {
            Value::Null => String::new(),
            v => v.to_json(),
        };
        out.push_str(&format!(
            "{:>14.1}  {:<12} key={:<10} {detail}\n",
            e.ts_us, e.name, e.key
        ));
    }
    Some(out)
}

/// Left-aligned first column, right-aligned rest (same shape as
/// [`crate::print_table`], but returned instead of printed).
fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| {
                if i == 0 {
                    format!("{:<w$}", c, w = widths[i])
                } else {
                    format!("{:>w$}", c, w = widths[i])
                }
            })
            .collect::<Vec<_>>()
            .join("  ")
    };
    let mut out = String::new();
    out.push_str(&fmt_row(
        &header.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
    ));
    out.push('\n');
    for r in rows {
        out.push_str(&fmt_row(r));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ucudnn::json::{self, Value};

    fn ev(cat: &str, name: &str, key: &str, dur_us: f64, args: Value) -> TraceEvent {
        TraceEvent {
            ts_us: 0.0,
            dur_us,
            cat: cat.to_string(),
            name: name.to_string(),
            key: key.to_string(),
            tid: 0,
            args,
        }
    }

    fn sample_trace() -> Trace {
        Trace {
            events: vec![
                ev(
                    "plan",
                    "decision",
                    "Forward 256x64x27x27",
                    0.0,
                    json::obj([
                        ("config", Value::Str("2x128 FFT".into())),
                        ("time_us", json::num(420.0)),
                        ("workspace_bytes", json::num((64u64 << 20) as f64)),
                        (
                            "provenance",
                            json::obj([
                                ("optimizer", Value::Str("wr".into())),
                                (
                                    "degradations",
                                    Value::Arr(vec![Value::Str("undivided_fallback".into())]),
                                ),
                            ]),
                        ),
                    ]),
                ),
                ev(
                    "exec",
                    "micro",
                    "Forward 256x64x27x27#0",
                    0.0,
                    json::obj([("modeled_us", json::num(210.0))]),
                ),
                ev(
                    "exec",
                    "micro",
                    "Forward 256x64x27x27#1",
                    0.0,
                    json::obj([("modeled_us", json::num(210.0))]),
                ),
                ev("train", "forward_layer", "conv2", 100.0, Value::Null),
                ev("train", "backward_layer", "conv2", 300.0, Value::Null),
                ev(
                    "train",
                    "workspace_hwm",
                    "train",
                    0.0,
                    json::obj([("bytes", json::num((8u64 << 20) as f64))]),
                ),
            ],
            dropped: 3,
        }
    }

    #[test]
    fn aggregates_plans_execs_layers_and_hwm() {
        let r = TraceReport::from_trace(&sample_trace());
        assert_eq!(r.events, 6);
        assert_eq!(r.dropped, 3);
        assert_eq!(r.kernels.len(), 1);
        assert_eq!(r.kernels[0].optimizer, "wr");
        assert_eq!(r.kernels[0].config, "2x128 FFT");
        assert_eq!(r.kernels[0].degradations, vec!["undivided_fallback"]);
        // Two micro launches fold into one kernel row; logical traces fall
        // back to modeled_us.
        assert_eq!(r.execs.len(), 1);
        assert_eq!(r.execs[0].launches, 2);
        assert!((r.execs[0].percentiles.p50_us - 210.0).abs() < 1.0);
        assert_eq!(r.layers.len(), 1);
        assert_eq!(r.layers[0].samples, 2);
        assert!((r.layers[0].forward.p50_us - 100.0).abs() < 1e-9);
        assert!((r.layers[0].backward.p50_us - 300.0).abs() < 1e-9);
        assert_eq!(r.workspace_hwm_bytes, Some(8 << 20));
    }

    #[test]
    fn render_names_algorithm_split_and_degradations() {
        let r = TraceReport::from_trace(&sample_trace());
        let text = r.render();
        assert!(text.contains("plan decisions"));
        assert!(text.contains("2x128 FFT"));
        assert!(text.contains("undivided_fallback"));
        assert!(text.contains("micro-batch launches"));
        assert!(text.contains("conv2"));
        assert!(text.contains("workspace high-water mark: 8.0 MiB"));
    }

    #[test]
    fn empty_trace_renders_header_only() {
        let r = TraceReport::from_trace(&Trace::default());
        assert_eq!(r.render(), "=== ucudnn-report: 0 events (0 dropped) ===\n");
    }

    fn serve_trace() -> Trace {
        let at = |mut e: TraceEvent, ts: f64| {
            e.ts_us = ts;
            e
        };
        Trace {
            events: vec![
                at(
                    ev(
                        "serve",
                        "submit",
                        "req7",
                        0.0,
                        json::obj([("arrival_us", json::num(10.0))]),
                    ),
                    10.0,
                ),
                at(
                    ev(
                        "serve",
                        "micro",
                        "worker0",
                        0.0,
                        json::obj([
                            ("micro", json::num(2.0)),
                            ("exec_us", json::num(500.0)),
                            ("ids", Value::Arr(vec![json::num(6.0), json::num(7.0)])),
                        ]),
                    ),
                    40.0,
                ),
                at(
                    ev(
                        "serve",
                        "complete",
                        "req7",
                        0.0,
                        json::obj([("latency_us", json::num(530.0))]),
                    ),
                    540.0,
                ),
                // Another request's events must not leak into req7's story.
                at(ev("serve", "submit", "req8", 0.0, Value::Null), 11.0),
            ],
            dropped: 0,
        }
    }

    #[test]
    fn request_timeline_reconstructs_one_request_in_time_order() {
        let t = serve_trace();
        let text = request_timeline(&t, 7).expect("req7 is in the trace");
        assert!(text.starts_with("=== request req7: 3 events ==="));
        let (s, m, c) = (
            text.find("submit").unwrap(),
            text.find("micro").unwrap(),
            text.find("complete").unwrap(),
        );
        assert!(s < m && m < c, "admission → batch → response order");
        assert!(text.contains("latency_us"));
        assert!(!text.contains("req8"), "other requests stay out");
        // Request 6 rides the same micro-batch but has no submit/complete.
        assert!(request_timeline(&t, 6).unwrap().contains("micro"));
        assert_eq!(request_timeline(&t, 99), None, "unknown id");
    }
}
