//! Fig. 1: the workspace cliff.
//!
//! (a) Per-layer forward time of single-column AlexNet with the best
//!     algorithm vs. a workspace limit one byte below the best algorithm's
//!     requirement ("-1 byte").
//! (b) conv2 forward time as a function of the workspace limit.
//!
//! Paper headline: up to 4.51× slowdown from losing one byte on conv2.

use ucudnn_bench::{mib, print_table, write_csv, MIB};
use ucudnn_cudnn_sim::ConvOp;
use ucudnn_framework::alexnet;
use ucudnn_gpu_model::{enumerate, fastest_within, p100_sxm2};

fn main() {
    let d = p100_sxm2();
    let net = alexnet(256);

    // (a) best vs -1 byte, per conv layer.
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for id in net.conv_layers() {
        let g = net.conv_geometry(id);
        let name = net.nodes()[id].name.clone();
        let best = enumerate(&d, ConvOp::Forward, &g)[0];
        let constrained = fastest_within(
            &d,
            ConvOp::Forward,
            &g,
            best.workspace_bytes.saturating_sub(1),
        )
        .expect("a zero-workspace fallback always exists");
        let slowdown = constrained.time_us / best.time_us;
        rows.push(vec![
            name.clone(),
            best.algo.to_string(),
            format!("{:.3}", best.time_us / 1000.0),
            mib(best.workspace_bytes),
            constrained.algo.to_string(),
            format!("{:.3}", constrained.time_us / 1000.0),
            format!("{:.2}x", slowdown),
        ]);
        csv.push(vec![
            name,
            best.algo.to_string(),
            format!("{}", best.time_us),
            format!("{}", best.workspace_bytes),
            constrained.algo.to_string(),
            format!("{}", constrained.time_us),
            format!("{}", slowdown),
        ]);
    }
    print_table(
        "Fig. 1(a) — AlexNet forward conv: Best vs '-1 byte' (P100, N=256)",
        &[
            "layer",
            "best algo",
            "best (ms)",
            "best WS (MiB)",
            "-1B algo",
            "-1B (ms)",
            "slowdown",
        ],
        &rows,
    );
    write_csv(
        "fig01a_cliff.csv",
        &[
            "layer",
            "best_algo",
            "best_us",
            "best_ws_bytes",
            "m1_algo",
            "m1_us",
            "slowdown",
        ],
        &csv,
    );

    // (b) conv2 forward time vs workspace limit sweep.
    let g2 = net.conv_geometry(net.conv_layers()[1]);
    let mut sweep = Vec::new();
    let mut csv2 = Vec::new();
    for exp in 0..=14 {
        let limit = if exp == 0 {
            0
        } else {
            (1usize << (exp - 1)) * MIB / 4
        }; // 0, 0.25 MiB .. 2048 MiB
        let p = fastest_within(&d, ConvOp::Forward, &g2, limit).unwrap();
        sweep.push(vec![
            mib(limit),
            p.algo.to_string(),
            format!("{:.3}", p.time_us / 1000.0),
            mib(p.workspace_bytes),
        ]);
        csv2.push(vec![
            format!("{limit}"),
            p.algo.to_string(),
            format!("{}", p.time_us),
            format!("{}", p.workspace_bytes),
        ]);
    }
    print_table(
        "Fig. 1(b) — conv2 forward time vs workspace limit",
        &["limit (MiB)", "algo", "time (ms)", "WS used (MiB)"],
        &sweep,
    );
    write_csv(
        "fig01b_conv2_sweep.csv",
        &["limit_bytes", "algo", "time_us", "ws_bytes"],
        &csv2,
    );

    let worst = csv
        .iter()
        .map(|r| r[6].parse::<f64>().unwrap())
        .fold(0.0f64, f64::max);
    println!("\nLargest per-layer '-1 byte' slowdown: {worst:.2}x (paper: 4.51x on conv2).");
}
