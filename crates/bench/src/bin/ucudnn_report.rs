//! `ucudnn-report`: render a profiling report from a μ-cuDNN trace.
//!
//! ```text
//! ucudnn-report <trace.jsonl> [--chrome <out.json>]   # report an existing trace
//! ucudnn-report <trace.jsonl> --request <id>          # one request's timeline
//! ucudnn-report --demo                                # trace a run, then report it
//! ```
//!
//! `--request <id>` switches to the request-correlated view: instead of the
//! aggregate profile, print the admission → batch → micro-batch → response
//! timeline of one serving request, reconstructed from the `req{id}` trace
//! keys and the `ids` lists stamped on batch/micro events.
//!
//! `--demo` traces a small AlexNet optimize+time run on the simulated P100
//! plus a few real SGD steps, writes `demo_trace.jsonl` and
//! `demo_trace.chrome.json` under the results directory, renders the report,
//! and exits non-zero if any artifact fails to round-trip — the CI smoke
//! check for the whole observability pipeline.

use std::process::ExitCode;
use ucudnn::json::Value;
use ucudnn::{Trace, TraceConfig, UcudnnHandle, UcudnnOptions};
use ucudnn_bench::report::TraceReport;
use ucudnn_bench::{results_dir, MIB};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{
    alexnet, time_command, train, LayerSpec, NetworkDef, RealExecutor, SyntheticDataset,
};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_tensor::Shape4;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("--demo") => demo(),
        Some(path) if !path.starts_with("--") => {
            let mut chrome_out = None;
            let mut request = None;
            let mut rest = args[1..].iter();
            loop {
                match rest.next().map(String::as_str) {
                    None => break,
                    Some("--chrome") => match rest.next() {
                        Some(p) => chrome_out = Some(p.clone()),
                        None => return usage(),
                    },
                    Some("--request") => match rest.next().and_then(|s| s.parse::<u64>().ok()) {
                        Some(id) => request = Some(id),
                        None => return usage(),
                    },
                    Some(_) => return usage(),
                }
            }
            report_file(path, chrome_out.as_deref(), request)
        }
        _ => return usage(),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("ucudnn-report: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage() -> ExitCode {
    eprintln!("usage: ucudnn-report <trace.jsonl> [--chrome <out.json>] [--request <id>] | --demo");
    ExitCode::FAILURE
}

/// Report an existing JSONL trace; optionally also export Chrome JSON.
/// With `--request`, print that one request's timeline instead of the
/// aggregate profile.
fn report_file(path: &str, chrome_out: Option<&str>, request: Option<u64>) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let trace = Trace::from_jsonl(&text).ok_or_else(|| format!("{path}: malformed trace"))?;
    if let Some(id) = request {
        let timeline = ucudnn_bench::report::request_timeline(&trace, id)
            .ok_or_else(|| format!("request {id} does not appear in {path}"))?;
        print!("{timeline}");
        return Ok(());
    }
    print!("{}", TraceReport::from_trace(&trace).render());
    if let Some(out) = chrome_out {
        std::fs::write(out, trace.to_chrome_json())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
        println!("[chrome] wrote {out}");
    }
    Ok(())
}

/// The traced workload: optimize+time a small AlexNet on the simulated P100
/// (WR, 64 MiB — divides conv2), then a few real SGD steps on a tiny
/// classifier so training-layer spans and the workspace high-water mark
/// appear too.
fn traced_workload() -> Result<(), String> {
    let net = alexnet(64);
    let mu = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            workspace_limit_bytes: 64 * MIB,
            ..Default::default()
        },
    );
    let timed = time_command(&mu, &net, 2).map_err(|e| e.to_string())?;
    println!("{}", timed.render());

    let mut tnet = NetworkDef::new("demo-clf", Shape4::new(8, 2, 8, 8));
    let c1 = tnet.conv_relu("conv1", tnet.input(), 6, 3, 1, 1);
    let gap = tnet.add("gap", LayerSpec::GlobalAvgPool, &[c1]);
    tnet.add("fc", LayerSpec::FullyConnected { out: 3 }, &[gap]);
    let mut exec = RealExecutor::new(tnet, 42);
    let cpu = UcudnnHandle::new(
        CudnnHandle::real_cpu(),
        UcudnnOptions {
            workspace_limit_bytes: MIB,
            ..Default::default()
        },
    );
    let mut data = SyntheticDataset::new(Shape4::new(1, 2, 8, 8), 3, 7);
    train(&mut exec, &cpu, &mut data, 3, 0.1).map_err(|e| e.to_string())?;
    Ok(())
}

fn demo() -> Result<(), String> {
    let dir = results_dir();
    let jsonl_path = dir.join("demo_trace.jsonl");
    let session = ucudnn::trace::session(TraceConfig {
        path: Some(jsonl_path.clone()),
        ..TraceConfig::default()
    });
    let workload = traced_workload();
    let trace = session.finish();
    workload?;

    // The trace file must re-parse...
    let text =
        std::fs::read_to_string(&jsonl_path).map_err(|e| format!("trace file missing: {e}"))?;
    let reparsed = Trace::from_jsonl(&text).ok_or("written JSONL trace does not re-parse")?;
    if reparsed.events.len() != trace.events.len() {
        return Err("re-parsed trace lost events".to_string());
    }

    // ...the report must actually explain plans and executions...
    let report = TraceReport::from_trace(&trace);
    print!("{}", report.render());
    println!("[trace] wrote {}", jsonl_path.display());
    if report.kernels.is_empty() {
        return Err("no plan decisions in demo trace".to_string());
    }
    if report.execs.is_empty() {
        return Err("no micro-batch launches in demo trace".to_string());
    }
    if report.layers.is_empty() {
        return Err("no training-layer spans in demo trace".to_string());
    }

    // ...and the Chrome export must be valid trace-event JSON.
    let chrome_path = dir.join("demo_trace.chrome.json");
    let chrome = trace.to_chrome_json();
    std::fs::write(&chrome_path, &chrome).map_err(|e| format!("cannot write chrome: {e}"))?;
    let parsed = Value::parse(&chrome).ok_or("chrome export is not valid JSON")?;
    let n = parsed
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .map(<[Value]>::len)
        .ok_or("chrome export lacks traceEvents")?;
    if n != trace.events.len() {
        return Err(format!(
            "chrome export has {n} events, trace has {}",
            trace.events.len()
        ));
    }
    println!("[chrome] wrote {} ({n} events)", chrome_path.display());
    Ok(())
}
