//! Fig. 13: WR vs WD under equal *total* workspace budgets — AlexNet
//! (N=256) and ResNet-50 (N=32) on P100.
//!
//! Adjoined bars share the total: AlexNet has 15 kernels (5 layers × 3
//! ops), so per-kernel 8 MiB (WR) pairs with 120 MiB total (WD), etc.
//!
//! Paper headlines: at 120 MiB total, WD+all beats WR+undivided by 1.24×
//! (1.38× convolutions) and even beats the 960 MiB WR baseline by 1.24×;
//! ResNet-50 WD achieves 1.05× (1.14× conv) with half the memory; the
//! ResNet-50 ILP had 562 binary variables and solved in 5.46 ms.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_bench::{mib, print_table, write_csv, MIB};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{alexnet, resnet50, time_command, NetworkDef};
use ucudnn_gpu_model::p100_sxm2;

fn kernel_count(net: &NetworkDef) -> usize {
    net.conv_layers()
        .iter()
        .map(|&id| if net.needs_backward_data(id) { 3 } else { 2 })
        .sum()
}

fn run(
    net: &NetworkDef,
    mode: OptimizerMode,
    policy: BatchSizePolicy,
    limit: usize,
) -> (f64, f64, usize, Option<(usize, f64)>) {
    let handle = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy,
            workspace_limit_bytes: limit,
            mode,
            ..Default::default()
        },
    );
    let r = time_command(&handle, net, 1).expect("time command failed");
    let ilp = handle.wd_plan().map(|p| (p.ilp_variables, p.ilp_solve_us));
    (
        r.timing.total_us(),
        r.timing.conv_us(),
        r.workspace_bytes,
        ilp,
    )
}

fn main() {
    // ResNet-50 uses powerOfTwo to keep the desirable-set computation quick;
    // AlexNet uses `all` like the paper's WD evaluation.
    let cases = [
        (alexnet(256), BatchSizePolicy::All),
        (resnet50(32), BatchSizePolicy::PowerOfTwo),
    ];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for (net, policy) in cases {
        let k = kernel_count(&net);
        println!("\n{}: {} optimizable kernels", net.name, k);
        let mut wr_undiv_at: Vec<(usize, f64)> = Vec::new();
        for per_kernel_mib in [8usize, 64, 512] {
            let total = per_kernel_mib * MIB * k;
            // WR bars: undivided (the cuDNN baseline) and the policy.
            let (tu, cu, wsu, _) = run(
                &net,
                OptimizerMode::Wr,
                BatchSizePolicy::Undivided,
                per_kernel_mib * MIB,
            );
            wr_undiv_at.push((per_kernel_mib, tu));
            let (ta, ca, wsa, _) = run(&net, OptimizerMode::Wr, policy, per_kernel_mib * MIB);
            // WD bar with the same total budget.
            let (tw, cw, wsw, ilp) = run(&net, OptimizerMode::Wd, policy, total);
            for (label, t, c, ws) in [
                (format!("WR u @{per_kernel_mib}MiB/kernel"), tu, cu, wsu),
                (
                    format!("WR {} @{per_kernel_mib}MiB/kernel", policy.name()),
                    ta,
                    ca,
                    wsa,
                ),
                (
                    format!("WD {} @{}MiB total", policy.name(), per_kernel_mib * k),
                    tw,
                    cw,
                    wsw,
                ),
            ] {
                rows.push(vec![
                    net.name.clone(),
                    label.clone(),
                    format!("{:.2}", t / 1000.0),
                    format!("{:.2}", c / 1000.0),
                    mib(ws),
                    format!("{:.2}x", tu / t),
                ]);
                csv.push(vec![
                    net.name.clone(),
                    label,
                    format!("{t}"),
                    format!("{c}"),
                    ws.to_string(),
                    format!("{}", tu / t),
                ]);
            }
            if let Some((vars, solve_us)) = ilp {
                println!(
                    "  WD @{} MiB total: ILP with {} binary variables solved in {:.2} ms",
                    per_kernel_mib * k,
                    vars,
                    solve_us / 1000.0
                );
            }
        }
        // The cross-budget claim: WD at the smallest total vs WR-undivided
        // with 8x the memory.
        if let (Some((_, t8)), Some(&(_, t64))) = (wr_undiv_at.first(), wr_undiv_at.get(1)) {
            let (tw, _, _, _) = run(&net, OptimizerMode::Wd, policy, 8 * MIB * k);
            println!(
                "  WD @{} MiB total vs WR-undivided @8 MiB/kernel: {:.2}x; vs @64 MiB/kernel: {:.2}x",
                8 * k,
                t8 / tw,
                t64 / tw
            );
        }
    }
    print_table(
        "Fig. 13 — WR vs WD at equal total workspace (P100)",
        &[
            "network",
            "setting",
            "total (ms)",
            "conv (ms)",
            "WS (MiB)",
            "speedup vs WR-u",
        ],
        &rows,
    );
    write_csv(
        "fig13_wr_vs_wd.csv",
        &[
            "network",
            "setting",
            "total_us",
            "conv_us",
            "ws_bytes",
            "speedup_vs_wr_u",
        ],
        &csv,
    );
    println!(
        "\n(paper: AlexNet WD@120MiB = 1.24x over WR-u, 1.38x conv; beats 960 MiB WR baseline;"
    );
    println!(" ResNet-50 WD@2544MiB = 1.05x, 1.14x conv; ILP: 562 vars, 5.46 ms)");
}
