//! Ablation: what the Pareto pruning of §III-C1 buys.
//!
//! Compares the WD ILP built from pruned desirable sets against the ILP
//! built from the full configuration space (every achievable (time, ws)
//! pair) on a small mini-batch where the full space is enumerable — the
//! exponential blow-up the paper's pruning avoids.

use std::collections::BTreeMap;
use ucudnn::{desirable_set, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_bench::{print_table, write_csv, MIB};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_lp::{Item, MckInstance};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

fn kernel(n: usize, c: usize, k: usize, r: usize, pad: usize) -> KernelKey {
    let g = ConvGeometry::with_square(
        Shape4::new(n, c, 14, 14),
        FilterShape::new(k, c, r, r),
        pad,
        1,
    );
    KernelKey::new(ConvOp::Forward, &g)
}

/// Full configuration space: exact-duplicate dedup only, no Pareto pruning.
fn full_costs(
    handle: &CudnnHandle,
    cache: &BenchCache,
    key: &KernelKey,
    cap: usize,
) -> Vec<(f64, usize)> {
    let b = key.batch();
    let menus: Vec<Vec<(f64, usize)>> = (0..=b)
        .map(|m| {
            if m == 0 {
                return Vec::new();
            }
            let micro = KernelKey {
                input: key.input.with_batch(m),
                ..*key
            };
            cache
                .get_or_bench(handle, &micro)
                .into_iter()
                .filter(|e| e.memory_bytes <= cap)
                .map(|e| (e.time_us, e.memory_bytes))
                .collect()
        })
        .collect();
    let mut states: Vec<Vec<(f64, usize)>> = vec![Vec::new(); b + 1];
    states[0].push((0.0, 0));
    for n in 1..=b {
        let mut seen = BTreeMap::new();
        for m in 1..=n {
            for &(mt, mw) in &menus[m] {
                for &(pt, pw) in &states[n - m] {
                    let (t, w) = (pt + mt, pw.max(mw));
                    seen.entry(((t * 1e6) as u64, w)).or_insert((t, w));
                }
            }
        }
        states[n] = seen.into_values().collect();
    }
    states[b].clone()
}

fn main() {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for batch in [4usize, 6, 8] {
        let kernels = [
            kernel(batch, 16, 32, 5, 2),
            kernel(batch, 32, 32, 3, 1),
            kernel(batch, 64, 16, 1, 0),
        ];
        let cap = 16 * MIB;
        let budget = (cap / 2) as f64;

        // Pruned path.
        let start = std::time::Instant::now();
        let pruned_groups: Vec<Vec<Item>> = kernels
            .iter()
            .map(|k| {
                desirable_set(&handle, &cache, k, cap, BatchSizePolicy::All)
                    .iter()
                    .map(|c| Item {
                        cost: c.time_us(),
                        weight: c.workspace_bytes() as f64,
                    })
                    .collect()
            })
            .collect();
        let pruned_vars: usize = pruned_groups.iter().map(Vec::len).sum();
        let pruned_opt = MckInstance {
            groups: pruned_groups,
            capacity: budget,
        }
        .solve()
        .map(|(_, v)| v);
        let pruned_us = start.elapsed().as_secs_f64() * 1e6;

        // Full path.
        let start = std::time::Instant::now();
        let full_groups: Vec<Vec<Item>> = kernels
            .iter()
            .map(|k| {
                full_costs(&handle, &cache, k, cap)
                    .into_iter()
                    .map(|(t, w)| Item {
                        cost: t,
                        weight: w as f64,
                    })
                    .collect()
            })
            .collect();
        let full_vars: usize = full_groups.iter().map(Vec::len).sum();
        let full_opt = MckInstance {
            groups: full_groups,
            capacity: budget,
        }
        .solve()
        .map(|(_, v)| v);
        let full_us = start.elapsed().as_secs_f64() * 1e6;

        let same = match (pruned_opt, full_opt) {
            (Some(p), Some(f)) => (p - f).abs() <= 1e-6 * f.max(1.0),
            (None, None) => true,
            _ => false,
        };
        rows.push(vec![
            batch.to_string(),
            pruned_vars.to_string(),
            full_vars.to_string(),
            format!("{:.2}", pruned_us / 1000.0),
            format!("{:.2}", full_us / 1000.0),
            if same { "yes".into() } else { "NO".into() },
        ]);
        csv.push(vec![
            batch.to_string(),
            pruned_vars.to_string(),
            full_vars.to_string(),
            format!("{pruned_us}"),
            format!("{full_us}"),
            same.to_string(),
        ]);
        assert!(same, "pruning changed the optimum — theorem violated");
    }
    print_table(
        "Ablation — Pareto pruning vs full configuration enumeration (3 kernels, 16 MiB cap)",
        &[
            "batch",
            "pruned vars",
            "full vars",
            "pruned (ms)",
            "full (ms)",
            "same optimum",
        ],
        &rows,
    );
    write_csv(
        "ablation_pruning.csv",
        &[
            "batch",
            "pruned_vars",
            "full_vars",
            "pruned_us",
            "full_us",
            "same_optimum",
        ],
        &csv,
    );
    println!("\nPruning never changes the optimum (the §III-C1 proof) while shrinking the ILP.");
}
