//! Fig. 14: how WD divides a 120 MiB global workspace among AlexNet's
//! kernels (P100, N=256).
//!
//! Paper headline: conv2 and conv3 kernels receive 93.7% of the workspace;
//! conv4/conv5 get under 3 MiB each even though faster configurations
//! exist for them — the ILP buys speed where it is cheapest per byte.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_bench::{kernel_label, mib, print_table, write_csv, MIB};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{alexnet, setup_network};
use ucudnn_gpu_model::p100_sxm2;

fn main() {
    let net = alexnet(256);
    let total = 120 * MIB;
    let handle = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::All,
            workspace_limit_bytes: total,
            mode: OptimizerMode::Wd,
            ..Default::default()
        },
    );
    setup_network(&handle, &net).unwrap();
    let plan = handle.wd_plan().expect("WD plan must exist after setup");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut conv23 = 0usize;
    for a in &plan.assignments {
        let label = kernel_label(&net, &a.kernel);
        let ws = a.config.workspace_bytes();
        if label.starts_with("conv2") || label.starts_with("conv3") {
            conv23 += ws;
        }
        rows.push(vec![
            label.clone(),
            mib(ws),
            format!(
                "{:.1}%",
                100.0 * ws as f64 / plan.total_workspace_bytes.max(1) as f64
            ),
            format!("{:.3}", a.config.time_us() / 1000.0),
            a.config.describe(),
        ]);
        csv.push(vec![
            label,
            ws.to_string(),
            a.offset_bytes.to_string(),
            format!("{}", a.config.time_us()),
            a.config.describe().replace(',', ";"),
        ]);
    }
    print_table(
        "Fig. 14 — WD workspace division of AlexNet (P100, N=256, 120 MiB total)",
        &["kernel", "WS (MiB)", "share", "time (ms)", "configuration"],
        &rows,
    );
    write_csv(
        "fig14_wd_division.csv",
        &[
            "kernel",
            "ws_bytes",
            "offset_bytes",
            "time_us",
            "configuration",
        ],
        &csv,
    );
    println!(
        "\nallocated {} MiB of {} MiB; conv2+conv3 share = {:.1}% (paper: 93.7%)",
        mib(plan.total_workspace_bytes),
        mib(total),
        100.0 * conv23 as f64 / plan.total_workspace_bytes.max(1) as f64
    );
    println!(
        "ILP: {} binary variables, {} B&B nodes, solved in {:.2} ms",
        plan.ilp_variables,
        plan.ilp_nodes,
        plan.ilp_solve_us / 1000.0
    );
}
