//! `explore` — inspect the optimizer's reasoning for an arbitrary
//! convolution layer: per-algorithm benchmark table, the WR division under
//! each policy, and the desirable-configuration front.
//!
//! ```text
//! cargo run --release -p ucudnn-bench --bin explore -- \
//!     [N] [C] [H] [K] [R] [pad] [stride] [ws_mib] [device]
//! cargo run --release -p ucudnn-bench --bin explore -- 256 64 27 192 5 2 1 64 p100
//! ```

use ucudnn::{desirable_set, optimize_wr, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_bench::{mib, print_table, MIB};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::{k80, p100_sxm2, v100_sxm2};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() {
    let (n, c, hw) = (arg(1, 256), arg(2, 64), arg(3, 27));
    let (k, r, pad, stride) = (arg(4, 192), arg(5, 5), arg(6, 2), arg(7, 1));
    let ws = arg(8, 64) * MIB;
    let device = match std::env::args().nth(9).as_deref() {
        Some("k80") => k80(),
        Some("v100") => v100_sxm2(),
        _ => p100_sxm2(),
    };
    let g = ConvGeometry::with_square(
        Shape4::new(n, c, hw, hw),
        FilterShape::new(k, c, r, r),
        pad,
        stride,
    );
    println!(
        "layer: {g}\ndevice: {}, workspace limit {}MiB\n",
        device.name,
        ws / MIB
    );

    let handle = CudnnHandle::simulated(device);
    let cache = BenchCache::new();

    for op in ConvOp::ALL {
        let key = KernelKey::new(op, &g);
        // Benchmark table at the full batch.
        let entries = cache.get_or_bench(&handle, &key);
        let rows: Vec<Vec<String>> = entries
            .iter()
            .map(|e| {
                vec![
                    e.algo.to_string(),
                    format!("{:.3}", e.time_us / 1000.0),
                    mib(e.memory_bytes),
                    if e.memory_bytes <= ws {
                        "yes".into()
                    } else {
                        "no".into()
                    },
                ]
            })
            .collect();
        print_table(
            &format!("{op} — algorithms at batch {n}"),
            &["algorithm", "time (ms)", "WS (MiB)", "fits limit"],
            &rows,
        );

        // WR plans per policy.
        let mut plan_rows = Vec::new();
        for policy in [
            BatchSizePolicy::Undivided,
            BatchSizePolicy::PowerOfTwo,
            BatchSizePolicy::All,
        ] {
            let r = optimize_wr(&handle, &cache, &key, ws, policy, false).unwrap();
            plan_rows.push(vec![
                policy.name().to_string(),
                format!("{:.3}", r.config.time_us() / 1000.0),
                mib(r.config.workspace_bytes()),
                r.config.describe(),
            ]);
        }
        print_table(
            &format!("{op} — WR plans under {} MiB", ws / MIB),
            &["policy", "time (ms)", "WS (MiB)", "division"],
            &plan_rows,
        );

        // Desirable front (capped for readability).
        let front = desirable_set(&handle, &cache, &key, ws, BatchSizePolicy::PowerOfTwo);
        println!("{op} desirable front ({} points, powerOfTwo):", front.len());
        for cfg in &front {
            println!(
                "  {:>9} MiB  {:>9.3} ms  {}",
                mib(cfg.workspace_bytes()),
                cfg.time_us() / 1000.0,
                cfg
            );
        }
        println!();
    }
}
