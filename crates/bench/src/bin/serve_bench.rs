//! Serving benchmark: SLO-aware dynamic micro-batching against the two
//! fixed baselines (DESIGN.md §12).
//!
//! The latency table `t*(m)` comes from the real pipeline — the AlexNet
//! conv2 forward kernel's benchmarked Pareto front on the simulated
//! P100-SXM2 via [`ucudnn::forward_latency_table`] — and all three policies
//! replay the *same* seeded Poisson load through the deterministic
//! discrete-event simulator ([`ucudnn_serve::run_sim`]):
//!
//! * **dynamic** — the tentpole scheduler: fire/wait/shed from
//!   [`ucudnn::plan_batch`] under the per-request deadline;
//! * **fixed1** — every request alone, arrival order (no coalescing);
//! * **fixedmax** — classic static batching: wait for a full batch.
//!
//! Results go to stdout and `BENCH_serve.json` (override with `--out`).
//! The committed JSON backs README's Serving section: dynamic ≥ 1.3× the
//! fixed-batch-1 throughput at equal SLO, zero violations among admitted
//! requests, and a byte-identical decision log across two runs (asserted
//! here, recorded as `"deterministic"`). `--smoke` shrinks the offered load
//! for CI; `--tcp-smoke` additionally drives one request through the real
//! threaded server's TCP line-protocol front-end on loopback.
//!
//! `--reopt` adds the online re-optimization experiment (DESIGN.md §13): a
//! 2× device slowdown at t=50ms on a single worker at 20k rps / 20ms SLO,
//! frozen-plan baseline vs. the drift-detecting re-optimizer. The committed
//! `reopt` section backs the headline claim: the frozen plan sheds, the
//! re-optimizer detects, hot-swaps, and finishes with zero SLO violations
//! after re-convergence — byte-identically across runs.

use std::sync::Arc;
use ucudnn::json::{num, obj, Value};
use ucudnn::{forward_latency_table, BatchSizePolicy, BenchCache, KernelKey, ServeOptions};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::{p100_sxm2, Perturbation};
use ucudnn_serve::{
    run_reopt_sim, run_sim, BatchPolicy, BatchRunner as _, RealModelRunner, ReoptConfig,
    ReoptOutcome, ReoptSimConfig, Scheduler, Server, SimConfig, SimOutcome, TcpFrontend,
};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

/// Load-generator seed: the only entropy source; fixed so the committed
/// JSON is reproducible byte-for-byte.
const SEED: u64 = 2018;
/// Per-request deadline budget, microseconds.
const SLO_US: f64 = 20_000.0;
/// Offered load, requests per second. ~5× the fixed-batch-1 capacity of
/// two workers on this table (t*(1) ≈ 534 µs ⇒ ~3.7k rps), comfortably
/// inside the dynamic policy's batched capacity (~60k rps) — the regime
/// where batching economics, not raw compute, decide throughput.
const RATE_RPS: f64 = 20_000.0;
const WORKERS: usize = 2;
const QUEUE_CAP: usize = 256;
const MAX_BATCH: usize = 32;

fn policy_row(out: &SimOutcome, policy: BatchPolicy) -> Value {
    let pct = out.latencies.try_percentiles();
    let q = |v: Option<f64>| v.map(num).unwrap_or(Value::Null);
    obj([
        ("name", Value::Str(policy.name().to_string())),
        ("completed", num(out.completed as f64)),
        (
            "shed",
            obj([
                ("queue_full", num(out.shed.queue_full as f64)),
                (
                    "deadline_infeasible",
                    num(out.shed.deadline_infeasible as f64),
                ),
                ("exec_failed", num(out.shed.exec_failed as f64)),
                ("draining", num(out.shed.draining as f64)),
                ("total", num(out.shed.total() as f64)),
            ]),
        ),
        ("violations", num(out.violations as f64)),
        ("throughput_rps", num(out.throughput_rps())),
        ("mean_batch", num(out.mean_batch())),
        ("p50_us", q(pct.as_ref().map(|p| p.p50_us))),
        ("p95_us", q(pct.as_ref().map(|p| p.p95_us))),
        ("p99_us", q(pct.as_ref().map(|p| p.p99_us))),
        (
            "mean_us",
            q((out.completed > 0).then(|| out.latencies.mean())),
        ),
    ])
}

fn reopt_lane_row(out: &ReoptOutcome) -> Value {
    let pct = out.latencies.try_percentiles();
    let q = |v: Option<f64>| v.map(num).unwrap_or(Value::Null);
    obj([
        ("completed", num(out.completed as f64)),
        (
            "shed",
            obj([
                ("queue_full", num(out.shed.queue_full as f64)),
                (
                    "deadline_infeasible",
                    num(out.shed.deadline_infeasible as f64),
                ),
                ("total", num(out.shed.total() as f64)),
            ]),
        ),
        ("violations", num(out.violations as f64)),
        ("violations_post_swap", num(out.violations_post_swap as f64)),
        ("stale_detections", num(out.stale_detections as f64)),
        ("plan_swaps", num(out.swaps as f64)),
        ("final_plan_version", num(out.final_version as f64)),
        ("detect_time_us", q(out.detect_time_us)),
        ("swap_time_us", q(out.swap_time_us)),
        ("p50_us", q(pct.as_ref().map(|p| p.p50_us))),
        ("p99_us", q(pct.as_ref().map(|p| p.p99_us))),
    ])
}

/// The online re-optimization experiment: one worker, a 2× mid-run device
/// slowdown, frozen plan vs. drift-detecting re-optimizer on the same seeded
/// load. Pure virtual-clock computation, so the full 4000-request run is
/// cheap enough to keep even under `--smoke`.
fn reopt_experiment(table: &[(usize, f64)]) -> Value {
    const REOPT_WORKERS: usize = 1;
    const REOPT_REQUESTS: usize = 4_000;
    const PERTURB_AT_US: f64 = 50_000.0;
    const PERTURB_FACTOR: f64 = 2.0;
    const REBENCH_LATENCY_US: f64 = 5_000.0;
    // Deep queue: admission control must not mask the stale plan. With a
    // shallow queue the wait is capped below the violation threshold and the
    // damage shows only as queue_full sheds; at depth 1024 the frozen plan
    // keeps *promising* deadlines the 2x-slower device cannot meet (fired
    // batches land past the SLO), while the re-optimized plan knows the true
    // t*(m) and converts those doomed fires into honest deadline sheds.
    const REOPT_QUEUE_CAP: usize = 1024;
    let lane = |reopt: Option<ReoptConfig>| ReoptSimConfig {
        seed: SEED,
        slo_us: SLO_US,
        queue_cap: REOPT_QUEUE_CAP,
        workers: REOPT_WORKERS,
        max_batch: MAX_BATCH,
        arrival_rate_rps: RATE_RPS,
        requests: REOPT_REQUESTS,
        base_table: table.to_vec(),
        perturb: Perturbation::new(PERTURB_AT_US, PERTURB_FACTOR),
        reopt,
        rebench_latency_us: REBENCH_LATENCY_US,
    };
    let frozen_cfg = lane(None);
    let reopt_cfg = lane(Some(ReoptConfig::default()));
    let frozen = run_reopt_sim(&frozen_cfg);
    let reopt = run_reopt_sim(&reopt_cfg);
    // The reproducibility gate, same as the policy lanes: byte-identical
    // fire/shed/drift/swap logs on a same-seed replay.
    assert_eq!(
        frozen.log,
        run_reopt_sim(&frozen_cfg).log,
        "frozen replay diverged"
    );
    assert_eq!(
        reopt.log,
        run_reopt_sim(&reopt_cfg).log,
        "reopt replay diverged"
    );

    println!("\nre-optimization under a {PERTURB_FACTOR}x slowdown at t={PERTURB_AT_US}us:");
    println!(
        "  frozen: completed={} shed={} violations={}",
        frozen.completed,
        frozen.shed.total(),
        frozen.violations
    );
    println!(
        "  reopt:  completed={} shed={} violations={} (post-swap: {}) \
         detections={} swaps={} detect_t={:.0}us swap_t={:.0}us",
        reopt.completed,
        reopt.shed.total(),
        reopt.violations,
        reopt.violations_post_swap,
        reopt.stale_detections,
        reopt.swaps,
        reopt.detect_time_us.unwrap_or(f64::NAN),
        reopt.swap_time_us.unwrap_or(f64::NAN),
    );

    // The headline gates.
    assert!(
        frozen.shed.total() > 0,
        "the frozen plan must shed under the post-drift overload"
    );
    assert!(
        frozen.violations > 0,
        "the stale plan must break deadline promises it can no longer keep"
    );
    assert_eq!(frozen.swaps, 0, "the frozen lane must never swap");
    assert!(
        reopt.stale_detections >= 1,
        "the detector must flag the 2x drift"
    );
    assert!(reopt.swaps >= 1, "a re-benchmarked plan must land");
    assert_eq!(
        reopt.violations_post_swap, 0,
        "after re-convergence the re-optimized lane must serve violation-free"
    );
    for out in [&frozen, &reopt] {
        assert_eq!(
            out.completed + out.shed.total(),
            REOPT_REQUESTS as u64,
            "ticket accounting must balance"
        );
    }

    obj([
        ("workers", num(REOPT_WORKERS as f64)),
        ("requests", num(REOPT_REQUESTS as f64)),
        ("queue_cap", num(REOPT_QUEUE_CAP as f64)),
        (
            "perturb",
            obj([
                ("at_us", num(PERTURB_AT_US)),
                ("factor", num(PERTURB_FACTOR)),
            ]),
        ),
        ("rebench_latency_us", num(REBENCH_LATENCY_US)),
        (
            "detector",
            obj([
                (
                    "window_samples",
                    num(ReoptConfig::default().window_samples as f64),
                ),
                ("p50_ratio", num(ReoptConfig::default().p50_ratio)),
                (
                    "consecutive",
                    num(f64::from(ReoptConfig::default().consecutive)),
                ),
            ]),
        ),
        ("frozen", reopt_lane_row(&frozen)),
        ("reopt", reopt_lane_row(&reopt)),
        ("deterministic", Value::Bool(true)),
    ])
}

/// One round-trip through the real threaded server's TCP front-end on
/// loopback — the CI smoke for the non-simulated path.
fn tcp_smoke() {
    use std::io::{BufRead, BufReader, Write};
    let runner = Arc::new(RealModelRunner::new(CudnnHandle::real_cpu(), 5, 4));
    let opts = ServeOptions {
        slo_us: 2_000_000.0,
        queue_cap: 64,
        workers: 2,
        max_batch: 4,
    };
    let server = Arc::new(Server::start(runner.clone(), &opts));
    let tcp = TcpFrontend::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let mut stream = std::net::TcpStream::connect(tcp.local_addr()).expect("connect loopback");
    let input = (0..runner.sample_len())
        .map(|j| format!("{}", (j % 7) as f32 * 0.1))
        .collect::<Vec<_>>()
        .join(",");
    writeln!(stream, "{{\"id\":1,\"input\":[{input}]}}").expect("send request line");
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .expect("read response line");
    let v = Value::parse(line.trim()).expect("response must be valid JSON");
    assert_eq!(
        v.get("ok"),
        Some(&Value::Bool(true)),
        "loopback request must succeed: {line}"
    );
    println!("[tcp-smoke] ok: {}", line.trim());
    drop(stream);
    tcp.stop();
    server.drain();
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let want_tcp = args.iter().any(|a| a == "--tcp-smoke");
    let want_reopt = args.iter().any(|a| a == "--reopt");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let requests = if smoke { 600 } else { 4_000 };

    // The demo model's serving table: AlexNet conv2 forward, benchmarked on
    // the simulated P100 across power-of-two micro-batch sizes.
    let g = ConvGeometry::with_square(
        Shape4::new(MAX_BATCH, 64, 27, 27),
        FilterShape::new(192, 64, 5, 5),
        2,
        1,
    );
    let handle = CudnnHandle::simulated(p100_sxm2());
    let table = forward_latency_table(
        &handle,
        &BenchCache::new(),
        &[KernelKey::new(ConvOp::Forward, &g)],
        BatchSizePolicy::PowerOfTwo,
        MAX_BATCH,
        512 << 20,
    );
    assert!(
        !table.is_empty(),
        "the demo kernel must have feasible sizes"
    );
    println!("latency table (AlexNet conv2 fwd, simulated P100):");
    for &(m, t) in &table {
        println!(
            "  t*({m:>2}) = {t:>8.2} us  ({:.2} us/sample)",
            t / m as f64
        );
    }

    let policies = [
        BatchPolicy::Dynamic,
        BatchPolicy::FixedOne,
        BatchPolicy::FixedMax,
    ];
    let mut outcomes = Vec::new();
    for policy in policies {
        let sched = Scheduler::new(table.clone(), SLO_US, MAX_BATCH, policy);
        let cfg = SimConfig {
            seed: SEED,
            slo_us: SLO_US,
            queue_cap: QUEUE_CAP,
            workers: WORKERS,
            max_batch: MAX_BATCH,
            arrival_rate_rps: RATE_RPS,
            requests,
            policy,
        };
        let out = run_sim(&sched, &cfg);
        // The reproducibility gate: same seed + same worker count must give
        // a byte-identical batch/shed log.
        let again = run_sim(&sched, &cfg);
        assert_eq!(out.log, again.log, "{} replay diverged", policy.name());
        outcomes.push((policy, out));
    }

    println!(
        "\n{:<10} {:>9} {:>6} {:>10} {:>14} {:>10} {:>9} {:>9}",
        "policy", "completed", "shed", "violations", "throughput", "mean_bat", "p50 us", "p99 us"
    );
    for (policy, out) in &outcomes {
        let pct = out.latencies.try_percentiles();
        println!(
            "{:<10} {:>9} {:>6} {:>10} {:>11.1}rps {:>10.2} {:>9.1} {:>9.1}",
            policy.name(),
            out.completed,
            out.shed.total(),
            out.violations,
            out.throughput_rps(),
            out.mean_batch(),
            pct.as_ref().map_or(0.0, |p| p.p50_us),
            pct.as_ref().map_or(0.0, |p| p.p99_us),
        );
    }

    let dynamic = &outcomes[0].1;
    let fixed1 = &outcomes[1].1;
    assert_eq!(
        dynamic.violations, 0,
        "dynamic batching must never violate the SLO for admitted requests"
    );
    let speedup = dynamic.throughput_rps() / fixed1.throughput_rps();
    println!("\ndynamic vs fixed1 throughput: {speedup:.2}x");
    assert!(
        speedup >= 1.3,
        "acceptance gate: dynamic must beat fixed-batch-1 by >= 1.3x, got {speedup:.3}"
    );

    let reopt_section = want_reopt.then(|| reopt_experiment(&table));

    let mut doc = obj([
        ("bench", Value::Str("serve".to_string())),
        ("smoke", Value::Bool(smoke)),
        ("seed", num(SEED as f64)),
        ("slo_us", num(SLO_US)),
        ("arrival_rate_rps", num(RATE_RPS)),
        ("workers", num(WORKERS as f64)),
        ("queue_cap", num(QUEUE_CAP as f64)),
        ("max_batch", num(MAX_BATCH as f64)),
        ("requests", num(requests as f64)),
        (
            "latency_table_us",
            Value::Arr(
                table
                    .iter()
                    .map(|&(m, t)| Value::Arr(vec![num(m as f64), num(t)]))
                    .collect(),
            ),
        ),
        (
            "policies",
            Value::Arr(
                outcomes
                    .iter()
                    .map(|(policy, out)| policy_row(out, *policy))
                    .collect(),
            ),
        ),
        ("speedup_vs_fixed1", num(speedup)),
        ("deterministic", Value::Bool(true)),
    ]);
    if let (Value::Obj(fields), Some(section)) = (&mut doc, reopt_section) {
        fields.push(("reopt".to_string(), section));
    }
    let body = doc.to_json() + "\n";
    if let Some(dir) = std::path::Path::new(&out_path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("cannot create output directory");
    }
    std::fs::write(&out_path, body).expect("cannot write benchmark JSON");
    println!("[json] wrote {out_path}");

    if want_tcp {
        tcp_smoke();
    }
}
