//! Serving benchmark: SLO-aware dynamic micro-batching against the two
//! fixed baselines (DESIGN.md §12).
//!
//! The latency table `t*(m)` comes from the real pipeline — the AlexNet
//! conv2 forward kernel's benchmarked Pareto front on the simulated
//! P100-SXM2 via [`ucudnn::forward_latency_table`] — and all three policies
//! replay the *same* seeded Poisson load through the deterministic
//! discrete-event simulator ([`ucudnn_serve::run_sim`]):
//!
//! * **dynamic** — the tentpole scheduler: fire/wait/shed from
//!   [`ucudnn::plan_batch`] under the per-request deadline;
//! * **fixed1** — every request alone, arrival order (no coalescing);
//! * **fixedmax** — classic static batching: wait for a full batch.
//!
//! Results go to stdout and `BENCH_serve.json` (override with `--out`).
//! The committed JSON backs README's Serving section: dynamic ≥ 1.3× the
//! fixed-batch-1 throughput at equal SLO, zero violations among admitted
//! requests, and a byte-identical decision log across two runs (asserted
//! here, recorded as `"deterministic"`). `--smoke` shrinks the offered load
//! for CI; `--tcp-smoke` additionally drives one request through the real
//! threaded server's TCP line-protocol front-end on loopback.
//!
//! `--reopt` adds the online re-optimization experiment (DESIGN.md §13): a
//! 2× device slowdown at t=50ms on a single worker at 20k rps / 20ms SLO,
//! frozen-plan baseline vs. the drift-detecting re-optimizer. The committed
//! `reopt` section backs the headline claim: the frozen plan sheds, the
//! re-optimizer detects, hot-swaps, and finishes with zero SLO violations
//! after re-convergence — byte-identically across runs. Both lanes also run
//! a multi-window SLO burn-rate monitor (DESIGN.md §14): the frozen lane's
//! sustained post-drift burn must fire an `slo_alert` at a replay-stable
//! virtual timestamp.
//!
//! `--ingress` adds the C10k ingress experiment (DESIGN.md §15), a
//! `connections` axis on top of the request axis. The committed `ingress`
//! section comes from the deterministic churn + fan-in simulator
//! ([`ucudnn_serve::run_ingress_sim`]): a nominal lane (10k idle
//! connections + 20k rps through the dynamic policy — zero pauses, zero
//! sheds, zero violations) and a burst lane (20× overload against a shallow
//! queue — admission pauses absorb it, admitted requests still meet the
//! SLO), byte-identical across replays. The same flag also drives the
//! *live* gate on real sockets: the epoll reactor must hold ≥5k idle
//! loopback connections (fd-budget permitting; the attempt raises
//! `RLIMIT_NOFILE` first) while pipelined traffic completes with zero sheds
//! and zero SLO violations. Live numbers are printed and asserted, not
//! committed — the JSON stays reproducible byte-for-byte.
//!
//! `--telemetry-smoke` exercises the live telemetry plane end to end: a
//! traced real server behind the TCP front-end, ~12 requests, and two
//! `STATS` scrapes whose exposition is asserted (required series present,
//! counters monotone) and written under the results directory together with
//! the JSONL trace. `--metrics-dump <path>` additionally writes the final
//! exposition to `<path>`.

use std::sync::Arc;
use ucudnn::json::{num, obj, Value};
use ucudnn::{
    arbitrate_fleet_budget, fleet_budget_candidates, forward_latency_table, BatchSizePolicy,
    BenchCache, FleetRouterPolicy, IngressOptions, KernelKey, Registry, ReplicaCandidates,
    ServeOptions, TraceConfig,
};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::{k80, p100_sxm2, v100_sxm2, Perturbation};
use ucudnn_serve::{
    run_fleet_sim, run_ingress_sim, run_reopt_sim, run_sim, sys, BatchPolicy, BatchRunner as _,
    BurnConfig, FleetMetrics, FleetOutcome, FleetReplicaConfig, FleetSimConfig, IngressOutcome,
    IngressSimConfig, RealModelRunner, ReoptConfig, ReoptOutcome, ReoptSimConfig, ReplicaFailure,
    Scheduler, Server, SimConfig, SimOutcome, TcpFrontend,
};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

/// Load-generator seed: the only entropy source; fixed so the committed
/// JSON is reproducible byte-for-byte.
const SEED: u64 = 2018;
/// Per-request deadline budget, microseconds.
const SLO_US: f64 = 20_000.0;
/// Offered load, requests per second. ~5× the fixed-batch-1 capacity of
/// two workers on this table (t*(1) ≈ 534 µs ⇒ ~3.7k rps), comfortably
/// inside the dynamic policy's batched capacity (~60k rps) — the regime
/// where batching economics, not raw compute, decide throughput.
const RATE_RPS: f64 = 20_000.0;
const WORKERS: usize = 2;
const QUEUE_CAP: usize = 256;
const MAX_BATCH: usize = 32;

fn policy_row(out: &SimOutcome, policy: BatchPolicy) -> Value {
    let pct = out.latencies.try_percentiles();
    let q = |v: Option<f64>| v.map(num).unwrap_or(Value::Null);
    obj([
        ("name", Value::Str(policy.name().to_string())),
        ("completed", num(out.completed as f64)),
        (
            "shed",
            obj([
                ("queue_full", num(out.shed.queue_full as f64)),
                (
                    "deadline_infeasible",
                    num(out.shed.deadline_infeasible as f64),
                ),
                ("exec_failed", num(out.shed.exec_failed as f64)),
                ("draining", num(out.shed.draining as f64)),
                ("total", num(out.shed.total() as f64)),
            ]),
        ),
        ("violations", num(out.violations as f64)),
        ("throughput_rps", num(out.throughput_rps())),
        ("mean_batch", num(out.mean_batch())),
        ("p50_us", q(pct.as_ref().map(|p| p.p50_us))),
        ("p95_us", q(pct.as_ref().map(|p| p.p95_us))),
        ("p99_us", q(pct.as_ref().map(|p| p.p99_us))),
        (
            "mean_us",
            q((out.completed > 0).then(|| out.latencies.mean())),
        ),
    ])
}

fn reopt_lane_row(out: &ReoptOutcome) -> Value {
    let pct = out.latencies.try_percentiles();
    let q = |v: Option<f64>| v.map(num).unwrap_or(Value::Null);
    obj([
        ("completed", num(out.completed as f64)),
        (
            "shed",
            obj([
                ("queue_full", num(out.shed.queue_full as f64)),
                (
                    "deadline_infeasible",
                    num(out.shed.deadline_infeasible as f64),
                ),
                ("total", num(out.shed.total() as f64)),
            ]),
        ),
        ("violations", num(out.violations as f64)),
        ("violations_post_swap", num(out.violations_post_swap as f64)),
        ("stale_detections", num(out.stale_detections as f64)),
        ("plan_swaps", num(out.swaps as f64)),
        ("final_plan_version", num(out.final_version as f64)),
        ("detect_time_us", q(out.detect_time_us)),
        ("swap_time_us", q(out.swap_time_us)),
        ("slo_alerts", num(out.slo_alerts as f64)),
        ("first_alert_us", q(out.first_alert_us)),
        ("p50_us", q(pct.as_ref().map(|p| p.p50_us))),
        ("p99_us", q(pct.as_ref().map(|p| p.p99_us))),
    ])
}

/// The online re-optimization experiment: one worker, a 2× mid-run device
/// slowdown, frozen plan vs. drift-detecting re-optimizer on the same seeded
/// load. Pure virtual-clock computation, so the full 4000-request run is
/// cheap enough to keep even under `--smoke`.
fn reopt_experiment(table: &[(usize, f64)]) -> Value {
    const REOPT_WORKERS: usize = 1;
    const REOPT_REQUESTS: usize = 4_000;
    const PERTURB_AT_US: f64 = 50_000.0;
    const PERTURB_FACTOR: f64 = 2.0;
    const REBENCH_LATENCY_US: f64 = 5_000.0;
    // Deep queue: admission control must not mask the stale plan. With a
    // shallow queue the wait is capped below the violation threshold and the
    // damage shows only as queue_full sheds; at depth 1024 the frozen plan
    // keeps *promising* deadlines the 2x-slower device cannot meet (fired
    // batches land past the SLO), while the re-optimized plan knows the true
    // t*(m) and converts those doomed fires into honest deadline sheds.
    const REOPT_QUEUE_CAP: usize = 1024;
    // Burn monitor sized for the sim's ~200 ms horizon: 20 ms fast window,
    // 100 ms slow window, 1% budget. Both lanes watch through the same
    // config — the monitor is pure observation, so serving decisions (and
    // the frozen-vs-reopt comparison) are untouched.
    const BURN_BUDGET: f64 = 0.01;
    const BURN_FAST_US: f64 = 20_000.0;
    const BURN_SLOW_US: f64 = 100_000.0;
    let burn = BurnConfig {
        budget: BURN_BUDGET,
        fast_us: BURN_FAST_US,
        slow_us: BURN_SLOW_US,
        threshold: 1.0,
    };
    let lane = |reopt: Option<ReoptConfig>| ReoptSimConfig {
        seed: SEED,
        slo_us: SLO_US,
        queue_cap: REOPT_QUEUE_CAP,
        workers: REOPT_WORKERS,
        max_batch: MAX_BATCH,
        arrival_rate_rps: RATE_RPS,
        requests: REOPT_REQUESTS,
        base_table: table.to_vec(),
        perturb: Perturbation::new(PERTURB_AT_US, PERTURB_FACTOR),
        reopt,
        rebench_latency_us: REBENCH_LATENCY_US,
        burn: Some(burn),
    };
    let frozen_cfg = lane(None);
    let reopt_cfg = lane(Some(ReoptConfig::default()));
    let frozen = run_reopt_sim(&frozen_cfg);
    let reopt = run_reopt_sim(&reopt_cfg);
    // The reproducibility gate, same as the policy lanes: byte-identical
    // fire/shed/drift/swap logs on a same-seed replay.
    assert_eq!(
        frozen.log,
        run_reopt_sim(&frozen_cfg).log,
        "frozen replay diverged"
    );
    assert_eq!(
        reopt.log,
        run_reopt_sim(&reopt_cfg).log,
        "reopt replay diverged"
    );

    println!("\nre-optimization under a {PERTURB_FACTOR}x slowdown at t={PERTURB_AT_US}us:");
    println!(
        "  frozen: completed={} shed={} violations={}",
        frozen.completed,
        frozen.shed.total(),
        frozen.violations
    );
    println!(
        "  reopt:  completed={} shed={} violations={} (post-swap: {}) \
         detections={} swaps={} detect_t={:.0}us swap_t={:.0}us",
        reopt.completed,
        reopt.shed.total(),
        reopt.violations,
        reopt.violations_post_swap,
        reopt.stale_detections,
        reopt.swaps,
        reopt.detect_time_us.unwrap_or(f64::NAN),
        reopt.swap_time_us.unwrap_or(f64::NAN),
    );
    println!(
        "  burn:   frozen alerts={} first_t={:.0}us | reopt alerts={} first_t={:.0}us",
        frozen.slo_alerts,
        frozen.first_alert_us.unwrap_or(f64::NAN),
        reopt.slo_alerts,
        reopt.first_alert_us.unwrap_or(f64::NAN),
    );

    // The headline gates.
    assert!(
        frozen.shed.total() > 0,
        "the frozen plan must shed under the post-drift overload"
    );
    assert!(
        frozen.violations > 0,
        "the stale plan must break deadline promises it can no longer keep"
    );
    assert_eq!(frozen.swaps, 0, "the frozen lane must never swap");
    assert!(
        reopt.stale_detections >= 1,
        "the detector must flag the 2x drift"
    );
    assert!(reopt.swaps >= 1, "a re-benchmarked plan must land");
    assert_eq!(
        reopt.violations_post_swap, 0,
        "after re-convergence the re-optimized lane must serve violation-free"
    );
    // The observability gate: the sustained post-drift burn on the frozen
    // plan must page, after the drift exists, at a replay-stable timestamp
    // (the log byte-identity above already pins the exact microsecond).
    assert!(
        frozen.slo_alerts >= 1,
        "the frozen lane's sustained burn must fire an slo_alert"
    );
    let first_alert = frozen
        .first_alert_us
        .expect("an alert implies a first-alert timestamp");
    assert!(
        first_alert >= PERTURB_AT_US,
        "no alert may fire before the drift exists (got t={first_alert:.0}us)"
    );
    for out in [&frozen, &reopt] {
        assert_eq!(
            out.completed + out.shed.total(),
            REOPT_REQUESTS as u64,
            "ticket accounting must balance"
        );
    }

    obj([
        ("workers", num(REOPT_WORKERS as f64)),
        ("requests", num(REOPT_REQUESTS as f64)),
        ("queue_cap", num(REOPT_QUEUE_CAP as f64)),
        (
            "perturb",
            obj([
                ("at_us", num(PERTURB_AT_US)),
                ("factor", num(PERTURB_FACTOR)),
            ]),
        ),
        ("rebench_latency_us", num(REBENCH_LATENCY_US)),
        (
            "burn",
            obj([
                ("budget", num(BURN_BUDGET)),
                ("fast_us", num(BURN_FAST_US)),
                ("slow_us", num(BURN_SLOW_US)),
            ]),
        ),
        (
            "detector",
            obj([
                (
                    "window_samples",
                    num(ReoptConfig::default().window_samples as f64),
                ),
                ("p50_ratio", num(ReoptConfig::default().p50_ratio)),
                (
                    "consecutive",
                    num(f64::from(ReoptConfig::default().consecutive)),
                ),
            ]),
        ),
        ("frozen", reopt_lane_row(&frozen)),
        ("reopt", reopt_lane_row(&reopt)),
        ("deterministic", Value::Bool(true)),
    ])
}

fn ingress_lane_row(rate_rps: f64, queue_cap: usize, out: &IngressOutcome) -> Value {
    let pct = out.latencies.try_percentiles();
    let q = |v: Option<f64>| v.map(num).unwrap_or(Value::Null);
    obj([
        ("rate_rps", num(rate_rps)),
        ("queue_cap", num(queue_cap as f64)),
        ("completed", num(out.completed as f64)),
        ("shed_queue_full", num(out.shed.queue_full as f64)),
        ("shed_total", num(out.shed.total() as f64)),
        ("violations", num(out.violations as f64)),
        ("admission_pauses", num(out.admission_pauses as f64)),
        ("buffered_peak", num(out.buffered_peak as f64)),
        ("max_buffer_wait_us", num(out.max_buffer_wait_us)),
        ("conns_opened", num(out.conns_opened as f64)),
        ("conns_rejected", num(out.conns_rejected as f64)),
        ("peak_conns", num(out.peak_conns as f64)),
        ("throughput_rps", num(out.throughput_rps())),
        ("mean_batch", num(out.mean_batch())),
        ("p50_us", q(pct.as_ref().map(|p| p.p50_us))),
        ("p99_us", q(pct.as_ref().map(|p| p.p99_us))),
    ])
}

/// The C10k `connections` axis, simulated: the reactor's backpressure
/// policies (admission pause before the shed ladder, the listener cap,
/// kernel-buffer absorption) replayed on the virtual clock. Two lanes share
/// one seed: nominal fan-in (10k idle connections, 20k rps) and a 20×
/// burst against a shallow queue.
fn ingress_experiment(table: &[(usize, f64)], smoke: bool) -> Value {
    const IDLE_CONNS: usize = 10_000;
    const CHURN_CYCLES: usize = 1_000;
    const CHURN_RATE_CPS: f64 = 2_000.0;
    const CHURN_HOLD_US: f64 = 5_000.0;
    const MAX_CONNS: usize = 16_384;
    const KERNEL_BUF: usize = 4_096;
    const BURST_RATE_RPS: f64 = 400_000.0;
    const BURST_QUEUE_CAP: usize = 32;
    let requests = if smoke { 2_000 } else { 4_000 };
    let sched = Scheduler::new(table.to_vec(), SLO_US, MAX_BATCH, BatchPolicy::Dynamic);
    let base = IngressSimConfig {
        seed: SEED,
        slo_us: SLO_US,
        queue_cap: QUEUE_CAP,
        workers: WORKERS,
        max_batch: MAX_BATCH,
        policy: BatchPolicy::Dynamic,
        arrival_rate_rps: RATE_RPS,
        requests,
        idle_conns: IDLE_CONNS,
        churn_cycles: CHURN_CYCLES,
        churn_rate_cps: CHURN_RATE_CPS,
        churn_hold_us: CHURN_HOLD_US,
        max_conns: MAX_CONNS,
        kernel_buf: KERNEL_BUF,
    };
    let burst_cfg = IngressSimConfig {
        arrival_rate_rps: BURST_RATE_RPS,
        queue_cap: BURST_QUEUE_CAP,
        requests: 4_000,
        ..base.clone()
    };
    let nominal = run_ingress_sim(&sched, &base);
    let burst = run_ingress_sim(&sched, &burst_cfg);
    // The reproducibility gate, same as every other lane.
    assert_eq!(
        nominal.log,
        run_ingress_sim(&sched, &base).log,
        "nominal ingress replay diverged"
    );
    assert_eq!(
        burst.log,
        run_ingress_sim(&sched, &burst_cfg).log,
        "burst ingress replay diverged"
    );

    println!("\ningress (connections axis, {IDLE_CONNS} idle + {CHURN_CYCLES} churn):");
    println!(
        "  nominal {:>7.0} rps: completed={} pauses={} shed={} violations={} peak_conns={}",
        RATE_RPS,
        nominal.completed,
        nominal.admission_pauses,
        nominal.shed.total(),
        nominal.violations,
        nominal.peak_conns,
    );
    println!(
        "  burst   {:>7.0} rps: completed={} pauses={} buffered_peak={} shed={} violations={}",
        BURST_RATE_RPS,
        burst.completed,
        burst.admission_pauses,
        burst.buffered_peak,
        burst.shed.total(),
        burst.violations,
    );

    // The headline gates. Nominal: the fan-in must be invisible — no pause,
    // no shed-by-accident, every deadline kept, p99 inside the SLO.
    assert_eq!(nominal.admission_pauses, 0, "nominal load must not pause");
    assert_eq!(nominal.shed.total(), 0, "nominal load must not shed");
    assert_eq!(nominal.violations, 0, "nominal load must not violate");
    assert_eq!(nominal.completed, requests as u64);
    assert!(nominal.peak_conns >= IDLE_CONNS, "the C10k floor must hold");
    let p99 = nominal
        .latencies
        .try_percentiles()
        .expect("completions imply percentiles")
        .p99_us;
    assert!(
        p99 <= SLO_US,
        "nominal ingress p99 must sit inside the {SLO_US}us SLO, got {p99:.1}us"
    );
    // Burst: backpressure engages before the shed ladder and admitted
    // requests still meet their deadlines.
    assert!(burst.admission_pauses > 0, "the burst must park admission");
    assert_eq!(
        burst.violations, 0,
        "pauses delay admission; they never break the deadline contract"
    );
    assert_eq!(
        burst.completed + burst.shed.total(),
        4_000,
        "every offered request is accounted for"
    );

    obj([
        ("slo_us", num(SLO_US)),
        ("workers", num(WORKERS as f64)),
        ("max_batch", num(MAX_BATCH as f64)),
        ("requests", num(requests as f64)),
        ("idle_conns", num(IDLE_CONNS as f64)),
        ("churn_cycles", num(CHURN_CYCLES as f64)),
        ("churn_rate_cps", num(CHURN_RATE_CPS)),
        ("churn_hold_us", num(CHURN_HOLD_US)),
        ("max_conns", num(MAX_CONNS as f64)),
        ("kernel_buf", num(KERNEL_BUF as f64)),
        ("nominal", ingress_lane_row(RATE_RPS, QUEUE_CAP, &nominal)),
        (
            "burst",
            ingress_lane_row(BURST_RATE_RPS, BURST_QUEUE_CAP, &burst),
        ),
        ("deterministic", Value::Bool(true)),
    ])
}

/// The live half of the `--ingress` gate: real sockets against the epoll
/// reactor. Holds as many idle loopback connections as the fd budget
/// allows (target 10k, hard floor 5k) while pipelined traffic on a few
/// active connections completes with zero sheds and zero SLO violations.
/// Printed and asserted, never committed: wall-clock numbers belong to the
/// machine, the committed JSON stays deterministic.
fn ingress_live(smoke: bool) {
    use std::io::{BufRead, BufReader, Write};
    const ACTIVE_CONNS: usize = 4;
    let target_idle = if smoke { 5_000 } else { 10_000 };
    let active_requests = if smoke { 400 } else { 1_000 };

    let limit = sys::raise_nofile_limit().unwrap_or(1_024);
    // Each held connection costs two fds in-process (client + server end);
    // keep headroom for the listener, wakers, and whatever the harness has
    // open.
    let budget = (limit.saturating_sub(512) / 2) as usize;
    let idle = target_idle.min(budget);
    if idle < target_idle {
        println!(
            "[ingress-live] fd limit {limit} clamps idle connections: {target_idle} -> {idle}"
        );
    }
    assert!(
        idle >= 5_000,
        "the C10k gate needs >=5k held connections; fd limit {limit} allows only {idle}"
    );

    let runner = Arc::new(RealModelRunner::new(CudnnHandle::real_cpu(), 5, 8));
    let opts = ServeOptions {
        slo_us: 2_000_000.0,
        queue_cap: 256,
        workers: 2,
        max_batch: 8,
    };
    let server = Arc::new(Server::start(runner.clone(), &opts));
    let io = IngressOptions {
        max_conns: idle + 64,
        loops: 2,
        backend: None,
    };
    let tcp = TcpFrontend::start_with(Arc::clone(&server), "127.0.0.1:0", &io).expect("bind");
    let addr = tcp.local_addr();
    let backend = if sys::epoll_supported() {
        "epoll"
    } else {
        "poll"
    };

    let mut held = Vec::with_capacity(idle);
    for i in 0..idle {
        held.push(std::net::TcpStream::connect(addr).expect("idle connect"));
        if (i + 1) % 2_500 == 0 {
            println!("[ingress-live] holding {} connections...", i + 1);
        }
    }

    // Active traffic rides on top of the idle floor: pipelined frames on a
    // few extra connections, answered in order.
    let input = (0..runner.sample_len())
        .map(|j| format!("{}", (j % 7) as f32 * 0.1))
        .collect::<Vec<_>>()
        .join(",");
    let per_conn = active_requests / ACTIVE_CONNS;
    for c in 0..ACTIVE_CONNS {
        let mut s = std::net::TcpStream::connect(addr).expect("active connect");
        let mut r = BufReader::new(s.try_clone().unwrap());
        let mut frame = String::new();
        for i in 0..per_conn {
            frame.push_str(&format!(
                "{{\"id\":{},\"input\":[{input}]}}\n",
                c * per_conn + i
            ));
        }
        s.write_all(frame.as_bytes()).expect("send pipelined frame");
        for i in 0..per_conn {
            let mut line = String::new();
            r.read_line(&mut line).expect("read response");
            let v = Value::parse(line.trim()).expect("response must be valid JSON");
            assert_eq!(
                v.get("ok"),
                Some(&Value::Bool(true)),
                "active request {i} on conn {c} must succeed under the idle floor: {line}"
            );
        }
    }

    // The ledger and the SLO gates, from the server's own instruments.
    let active_now = tcp.active_connections();
    assert!(
        active_now >= idle,
        "the reactor must still hold the idle floor: {active_now} < {idle}"
    );
    let m = server.metrics();
    assert_eq!(m.shed_total(), 0, "nominal live load must not shed");
    assert_eq!(m.violations.get(), 0, "admitted requests must meet the SLO");
    assert!(m.completed.get() >= (per_conn * ACTIVE_CONNS) as u64);
    let p99 = m
        .latency
        .try_quantile(0.99)
        .expect("completions imply a p99");
    assert!(
        p99 <= opts.slo_us,
        "live p99 {p99:.0}us must sit inside the {}us SLO",
        opts.slo_us
    );
    println!(
        "[ingress-live] ok ({backend}): held {active_now} conns, {} active requests, \
         p99={p99:.0}us, sheds=0, violations=0",
        per_conn * ACTIVE_CONNS
    );

    drop(held);
    tcp.stop();
    server.drain();
}

/// One round-trip through the real threaded server's TCP front-end on
/// loopback — the CI smoke for the non-simulated path.
fn tcp_smoke() {
    use std::io::{BufRead, BufReader, Write};
    let runner = Arc::new(RealModelRunner::new(CudnnHandle::real_cpu(), 5, 4));
    let opts = ServeOptions {
        slo_us: 2_000_000.0,
        queue_cap: 64,
        workers: 2,
        max_batch: 4,
    };
    let server = Arc::new(Server::start(runner.clone(), &opts));
    let tcp = TcpFrontend::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let mut stream = std::net::TcpStream::connect(tcp.local_addr()).expect("connect loopback");
    let input = (0..runner.sample_len())
        .map(|j| format!("{}", (j % 7) as f32 * 0.1))
        .collect::<Vec<_>>()
        .join(",");
    writeln!(stream, "{{\"id\":1,\"input\":[{input}]}}").expect("send request line");
    let mut line = String::new();
    BufReader::new(stream.try_clone().unwrap())
        .read_line(&mut line)
        .expect("read response line");
    let v = Value::parse(line.trim()).expect("response must be valid JSON");
    assert_eq!(
        v.get("ok"),
        Some(&Value::Bool(true)),
        "loopback request must succeed: {line}"
    );
    println!("[tcp-smoke] ok: {}", line.trim());
    drop(stream);
    tcp.stop();
    server.drain();
}

/// Issue one `STATS` scrape on an open connection and collect the reply up
/// to (and including) its `# EOF` terminator.
fn scrape_stats(
    writer: &mut std::net::TcpStream,
    reader: &mut std::io::BufReader<std::net::TcpStream>,
) -> String {
    use std::io::{BufRead, Write};
    writeln!(writer, "STATS").expect("send STATS");
    let mut out = String::new();
    loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).expect("read scrape line") > 0,
            "connection closed mid-scrape"
        );
        let done = line.trim() == "# EOF";
        out.push_str(&line);
        if done {
            return out;
        }
    }
}

/// The first sample-valued line for `name` in an exposition, parsed.
fn scraped_value(scrape: &str, name: &str) -> f64 {
    scrape
        .lines()
        .find_map(|l| {
            l.strip_prefix(name)
                .and_then(|rest| rest.trim().parse::<f64>().ok())
        })
        .unwrap_or_else(|| panic!("series {name:?} missing from scrape"))
}

/// The live-telemetry smoke: a traced real server behind the TCP front-end,
/// scraped via `STATS` before and after a burst of requests. Asserts the
/// exposition contract and that the trace reconstructs request 0's
/// admission→batch→response timeline.
fn telemetry_smoke(metrics_dump: Option<&str>) {
    use std::io::{BufReader, Write};
    const REQUESTS: usize = 12;
    let dir = ucudnn_bench::results_dir();
    let trace_path = dir.join("serve_trace.jsonl");
    let session = ucudnn::trace::session(TraceConfig {
        path: Some(trace_path.clone()),
        ..TraceConfig::default()
    });

    let runner = Arc::new(RealModelRunner::new(CudnnHandle::real_cpu(), 5, 4));
    let opts = ServeOptions {
        slo_us: 2_000_000.0,
        queue_cap: 64,
        workers: 2,
        max_batch: 4,
    };
    let server = Arc::new(Server::start(runner.clone(), &opts));
    let tcp = TcpFrontend::start(Arc::clone(&server), "127.0.0.1:0").expect("bind loopback");
    let stream = std::net::TcpStream::connect(tcp.local_addr()).expect("connect loopback");
    let mut writer = stream.try_clone().expect("clone stream");
    let mut reader = BufReader::new(stream);

    let first = scrape_stats(&mut writer, &mut reader);
    let input = (0..runner.sample_len())
        .map(|j| format!("{}", (j % 7) as f32 * 0.1))
        .collect::<Vec<_>>()
        .join(",");
    for i in 0..REQUESTS {
        writeln!(writer, "{{\"id\":{i},\"input\":[{input}]}}").expect("send request");
        let mut line = String::new();
        std::io::BufRead::read_line(&mut reader, &mut line).expect("read response");
        let v = Value::parse(line.trim()).expect("response must be valid JSON");
        assert_eq!(
            v.get("ok"),
            Some(&Value::Bool(true)),
            "request {i} must succeed: {line}"
        );
    }
    let second = scrape_stats(&mut writer, &mut reader);
    std::fs::write(dir.join("telemetry_scrape1.txt"), &first).expect("write scrape 1");
    std::fs::write(dir.join("telemetry_scrape2.txt"), &second).expect("write scrape 2");

    // The exposition contract: the series the dashboards key on are live…
    for series in [
        "# TYPE ucudnn_serve_queue_depth gauge",
        "ucudnn_serve_shed_total{reason=\"queue_full\"}",
        "ucudnn_serve_shed_total{reason=\"deadline_infeasible\"}",
        "ucudnn_serve_shed_total{reason=\"exec_failed\"}",
        "ucudnn_serve_shed_total{reason=\"draining\"}",
        "ucudnn_serve_plan_version ",
        "ucudnn_slo_alert_active ",
        "# ALERT slo_burn ",
        "ucudnn_serve_latency_us_count ",
        "ucudnn_telemetry_dropped_total ",
    ] {
        assert!(second.contains(series), "scrape missing {series:?}");
    }
    // …and counters are monotone across scrapes, with the burst accounted.
    for name in [
        "ucudnn_serve_submitted_total ",
        "ucudnn_serve_completed_total ",
    ] {
        let (before, after) = (scraped_value(&first, name), scraped_value(&second, name));
        assert!(
            after >= before + REQUESTS as f64,
            "{name}: {before} -> {after} must cover the {REQUESTS}-request burst"
        );
    }
    assert_eq!(scraped_value(&second, "ucudnn_serve_plan_version "), 1.0);

    if let Some(path) = metrics_dump {
        if let Some(parent) = std::path::Path::new(path)
            .parent()
            .filter(|d| !d.as_os_str().is_empty())
        {
            std::fs::create_dir_all(parent).expect("cannot create dump directory");
        }
        std::fs::write(path, server.exposition()).expect("cannot write metrics dump");
        println!("[telemetry] wrote {path}");
    }

    drop(writer);
    drop(reader);
    tcp.stop();
    server.drain();
    let trace = session.finish();
    let timeline = ucudnn_bench::report::request_timeline(&trace, 0)
        .expect("request 0 must have a timeline in the trace");
    assert!(
        timeline.contains("submit") && timeline.contains("complete"),
        "the timeline must span admission to response:\n{timeline}"
    );
    println!(
        "[telemetry-smoke] ok: {REQUESTS} requests, 2 scrapes, trace at {}",
        trace_path.display()
    );
}

fn fleet_lane_row(out: &FleetOutcome) -> Value {
    let pct = out.latencies.try_percentiles();
    let q = |v: Option<f64>| v.map(num).unwrap_or(Value::Null);
    obj([
        ("completed", num(out.completed as f64)),
        (
            "shed",
            obj([
                ("queue_full", num(out.shed.queue_full as f64)),
                (
                    "deadline_infeasible",
                    num(out.shed.deadline_infeasible as f64),
                ),
                ("exec_failed", num(out.shed.exec_failed as f64)),
                ("draining", num(out.shed.draining as f64)),
                ("total", num(out.shed.total() as f64)),
            ]),
        ),
        ("violations", num(out.violations as f64)),
        ("requeued", num(out.requeued as f64)),
        ("throughput_rps", num(out.throughput_rps())),
        ("mean_batch", num(out.mean_batch())),
        ("p50_us", q(pct.as_ref().map(|p| p.p50_us))),
        ("p99_us", q(pct.as_ref().map(|p| p.p99_us))),
        (
            "per_replica",
            Value::Arr(
                out.per_replica
                    .iter()
                    .map(|r| {
                        obj([
                            ("name", Value::Str(r.name.clone())),
                            ("routed", num(r.routed as f64)),
                            ("completed", num(r.completed as f64)),
                            ("shed", num(r.shed as f64)),
                            ("batches", num(r.batches as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// The fleet-tier experiment (DESIGN.md §16): a 3-device heterogeneous
/// fleet (K80 + P100 + V100), each replica serving from its *own*
/// per-device latency table built under the workspace share a global-budget
/// ILP arbiter granted it, at 100k+ rps under the 20 ms SLO.
///
/// Three deterministic lanes share one seed:
/// * `feasibility` — the SLO-aware router: dispatch where the deadline
///   stays feasible, earliest estimated finish first;
/// * `least_loaded` — the join-shortest-queue baseline, rate-blind;
/// * `failover` — the feasibility router with the P100 replica killed
///   mid-run: its queue re-routes to the survivors, zero tickets lost.
///
/// Gates: zero violations on every lane, the feasibility router sheds
/// strictly less than least-loaded, byte-identical replays, and balanced
/// ticket accounting through the failure.
fn fleet_experiment() -> Value {
    const FLEET_WORKERS: usize = 2;
    const FLEET_QUEUE_CAP: usize = 2048;
    // Offered load: ≥100k rps and ~1.2–1.4× the arbitrated fleet's service
    // capacity — the moderate-overload regime a fleet is provisioned for,
    // where rate-aware routing visibly beats queue-depth routing.
    const FLEET_RATE_RPS: f64 = 220_000.0;
    const GLOBAL_BUDGET: usize = 768 << 20;
    const FAIL_AT_US: f64 = 15_000.0;
    // Pure virtual-clock computation (like the reopt experiment), so the
    // full 20k-request run is cheap enough to keep even under `--smoke` —
    // and the shed-count gap between the routers only emerges once the
    // backlog outgrows the slow replica's deadline-feasible depth, which
    // needs the full horizon.
    let requests = 20_000;

    // Per-device candidate tables: the same demo kernel benchmarked on
    // each device card at every candidate workspace share. The zero-byte
    // share (implicit-GEMM only) keeps the arbitration feasible under any
    // budget.
    let g = ConvGeometry::with_square(
        Shape4::new(MAX_BATCH, 64, 27, 27),
        FilterShape::new(192, 64, 5, 5),
        2,
        1,
    );
    let kernels = [KernelKey::new(ConvOp::Forward, &g)];
    let shares: [usize; 5] = [0, 64 << 20, 128 << 20, 256 << 20, 512 << 20];
    let cards = [("k80", k80()), ("p100", p100_sxm2()), ("v100", v100_sxm2())];
    let candidates: Vec<ReplicaCandidates> = cards
        .iter()
        .map(|(name, dev)| {
            let handle = CudnnHandle::simulated(dev.clone());
            ReplicaCandidates {
                name: name.to_string(),
                candidates: fleet_budget_candidates(
                    &handle,
                    &BenchCache::new(),
                    &kernels,
                    BatchSizePolicy::PowerOfTwo,
                    MAX_BATCH,
                    &shares,
                ),
            }
        })
        .collect();
    let plan =
        arbitrate_fleet_budget(&candidates, GLOBAL_BUDGET).expect("fleet arbitration succeeds");
    println!(
        "\nfleet arbiter: {} MiB global budget, {} vars, {} nodes, {:.0} us",
        GLOBAL_BUDGET >> 20,
        plan.ilp_variables,
        plan.ilp_nodes,
        plan.ilp_solve_us
    );
    for s in &plan.shares {
        println!(
            "  {:<5} granted {:>4} MiB  best {:>7.2} us/sample  (t*(1)={:.0}us t*({})={:.0}us)",
            s.replica,
            s.ws_limit_bytes >> 20,
            s.per_sample_us,
            s.table.first().map_or(f64::NAN, |&(_, t)| t),
            s.table.last().map_or(0, |&(m, _)| m),
            s.table.last().map_or(f64::NAN, |&(_, t)| t),
        );
    }
    assert!(
        plan.total_granted_bytes <= GLOBAL_BUDGET,
        "the arbiter must respect the global budget"
    );

    let replicas: Vec<FleetReplicaConfig> = plan
        .shares
        .iter()
        .map(|s| FleetReplicaConfig {
            name: s.replica.clone(),
            table: s.table.clone(),
            workers: FLEET_WORKERS,
            queue_cap: FLEET_QUEUE_CAP,
        })
        .collect();
    let lane = |policy: FleetRouterPolicy, fail: Option<ReplicaFailure>| FleetSimConfig {
        seed: SEED,
        slo_us: SLO_US,
        max_batch: MAX_BATCH,
        arrival_rate_rps: FLEET_RATE_RPS,
        requests,
        policy,
        replicas: replicas.clone(),
        fail,
    };
    let feas_cfg = lane(FleetRouterPolicy::Feasibility, None);
    let jsq_cfg = lane(FleetRouterPolicy::LeastLoaded, None);
    let failover_cfg = lane(
        FleetRouterPolicy::Feasibility,
        Some(ReplicaFailure {
            replica: 1,
            at_us: FAIL_AT_US,
        }),
    );
    let feas = run_fleet_sim(&feas_cfg);
    let jsq = run_fleet_sim(&jsq_cfg);
    let failover = run_fleet_sim(&failover_cfg);
    // The reproducibility gate: byte-identical event logs on same-seed
    // replays, for every lane.
    assert_eq!(
        feas.log,
        run_fleet_sim(&feas_cfg).log,
        "feasibility replay diverged"
    );
    assert_eq!(
        jsq.log,
        run_fleet_sim(&jsq_cfg).log,
        "least_loaded replay diverged"
    );
    assert_eq!(
        failover.log,
        run_fleet_sim(&failover_cfg).log,
        "failover replay diverged"
    );

    println!(
        "\nfleet: k80+p100+v100, {} req at {:.0}k rps, {:.0} ms SLO:",
        requests,
        FLEET_RATE_RPS / 1e3,
        SLO_US / 1e3
    );
    for (name, out) in [
        ("feasibility", &feas),
        ("least_loaded", &jsq),
        ("failover", &failover),
    ] {
        println!(
            "  {:<12} completed={:>6} shed={:>5} (qf {} di {} drain {}) violations={} \
             requeued={} tput={:.0}rps",
            name,
            out.completed,
            out.shed.total(),
            out.shed.queue_full,
            out.shed.deadline_infeasible,
            out.shed.draining,
            out.violations,
            out.requeued,
            out.throughput_rps()
        );
        for r in &out.per_replica {
            println!(
                "    {:<5} routed={:>6} completed={:>6} shed={:>5} batches={:>5}",
                r.name, r.routed, r.completed, r.shed, r.batches
            );
        }
    }

    // Per-replica instruments ride the closed-vocabulary registry path.
    let registry = Registry::new();
    let card_names: Vec<&str> = cards.iter().map(|(n, _)| *n).collect();
    let metrics = FleetMetrics::with_registry(registry.clone(), &card_names);
    feas.export(&metrics);
    let exposition = registry.expose();
    for name in &card_names {
        assert!(
            exposition.contains(&format!("ucudnn_fleet_routed_total{{replica=\"{name}\"}}")),
            "exposition must carry a routed series for every replica"
        );
    }
    assert_eq!(
        registry.dropped(),
        0,
        "configured replica names must be inside the label vocabulary"
    );

    // The headline gates.
    // Acceptance floor: the fleet bench must offer 100k+ rps.
    const _: () = assert!(FLEET_RATE_RPS >= 100_000.0);
    assert_eq!(
        feas.violations, 0,
        "the feasibility router must never violate the SLO for admitted requests"
    );
    assert_eq!(jsq.violations, 0);
    assert_eq!(failover.violations, 0);
    assert!(
        feas.shed.total() < jsq.shed.total(),
        "the feasibility router must shed less than least-loaded ({} vs {})",
        feas.shed.total(),
        jsq.shed.total()
    );
    for (name, out) in [
        ("feasibility", &feas),
        ("least_loaded", &jsq),
        ("failover", &failover),
    ] {
        assert_eq!(
            out.completed + out.shed.total(),
            requests as u64,
            "{name}: ticket accounting must balance"
        );
    }
    // Failure semantics: the dead replica's backlog re-routes or sheds on
    // the drain rung — and the fleet keeps serving on the survivors.
    assert!(
        failover.log.iter().any(|l| l.starts_with("fail ")),
        "the failover lane must log the replica death"
    );
    assert!(
        failover.per_replica[0].completed + failover.per_replica[2].completed > 0,
        "survivors must keep serving after the failure"
    );

    obj([
        ("workers_per_replica", num(FLEET_WORKERS as f64)),
        ("queue_cap_per_replica", num(FLEET_QUEUE_CAP as f64)),
        ("arrival_rate_rps", num(FLEET_RATE_RPS)),
        ("requests", num(requests as f64)),
        ("slo_us", num(SLO_US)),
        (
            "arbiter",
            obj([
                ("global_budget_bytes", num(GLOBAL_BUDGET as f64)),
                ("total_granted_bytes", num(plan.total_granted_bytes as f64)),
                ("ilp_variables", num(plan.ilp_variables as f64)),
                ("ilp_nodes", num(plan.ilp_nodes as f64)),
                (
                    "shares",
                    Value::Arr(
                        plan.shares
                            .iter()
                            .map(|s| {
                                obj([
                                    ("replica", Value::Str(s.replica.clone())),
                                    ("ws_limit_bytes", num(s.ws_limit_bytes as f64)),
                                    ("per_sample_us", num(s.per_sample_us)),
                                ])
                            })
                            .collect(),
                    ),
                ),
            ]),
        ),
        (
            "failure",
            obj([("replica", num(1.0)), ("at_us", num(FAIL_AT_US))]),
        ),
        ("feasibility", fleet_lane_row(&feas)),
        ("least_loaded", fleet_lane_row(&jsq)),
        ("failover", fleet_lane_row(&failover)),
        ("deterministic", Value::Bool(true)),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let want_tcp = args.iter().any(|a| a == "--tcp-smoke");
    let want_reopt = args.iter().any(|a| a == "--reopt");
    let want_ingress = args.iter().any(|a| a == "--ingress");
    let want_fleet = args.iter().any(|a| a == "--fleet");
    let want_telemetry = args.iter().any(|a| a == "--telemetry-smoke");
    let metrics_dump = args
        .iter()
        .position(|a| a == "--metrics-dump")
        .map(|i| args[i + 1].clone());
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone())
        .unwrap_or_else(|| "BENCH_serve.json".to_string());
    let requests = if smoke { 600 } else { 4_000 };

    // The demo model's serving table: AlexNet conv2 forward, benchmarked on
    // the simulated P100 across power-of-two micro-batch sizes.
    let g = ConvGeometry::with_square(
        Shape4::new(MAX_BATCH, 64, 27, 27),
        FilterShape::new(192, 64, 5, 5),
        2,
        1,
    );
    let handle = CudnnHandle::simulated(p100_sxm2());
    let table = forward_latency_table(
        &handle,
        &BenchCache::new(),
        &[KernelKey::new(ConvOp::Forward, &g)],
        BatchSizePolicy::PowerOfTwo,
        MAX_BATCH,
        512 << 20,
    );
    assert!(
        !table.is_empty(),
        "the demo kernel must have feasible sizes"
    );
    println!("latency table (AlexNet conv2 fwd, simulated P100):");
    for &(m, t) in &table {
        println!(
            "  t*({m:>2}) = {t:>8.2} us  ({:.2} us/sample)",
            t / m as f64
        );
    }

    let policies = [
        BatchPolicy::Dynamic,
        BatchPolicy::FixedOne,
        BatchPolicy::FixedMax,
    ];
    let mut outcomes = Vec::new();
    for policy in policies {
        let sched = Scheduler::new(table.clone(), SLO_US, MAX_BATCH, policy);
        let cfg = SimConfig {
            seed: SEED,
            slo_us: SLO_US,
            queue_cap: QUEUE_CAP,
            workers: WORKERS,
            max_batch: MAX_BATCH,
            arrival_rate_rps: RATE_RPS,
            requests,
            policy,
        };
        let out = run_sim(&sched, &cfg);
        // The reproducibility gate: same seed + same worker count must give
        // a byte-identical batch/shed log.
        let again = run_sim(&sched, &cfg);
        assert_eq!(out.log, again.log, "{} replay diverged", policy.name());
        outcomes.push((policy, out));
    }

    println!(
        "\n{:<10} {:>9} {:>6} {:>10} {:>14} {:>10} {:>9} {:>9}",
        "policy", "completed", "shed", "violations", "throughput", "mean_bat", "p50 us", "p99 us"
    );
    for (policy, out) in &outcomes {
        let pct = out.latencies.try_percentiles();
        println!(
            "{:<10} {:>9} {:>6} {:>10} {:>11.1}rps {:>10.2} {:>9.1} {:>9.1}",
            policy.name(),
            out.completed,
            out.shed.total(),
            out.violations,
            out.throughput_rps(),
            out.mean_batch(),
            pct.as_ref().map_or(0.0, |p| p.p50_us),
            pct.as_ref().map_or(0.0, |p| p.p99_us),
        );
    }

    let dynamic = &outcomes[0].1;
    let fixed1 = &outcomes[1].1;
    assert_eq!(
        dynamic.violations, 0,
        "dynamic batching must never violate the SLO for admitted requests"
    );
    let speedup = dynamic.throughput_rps() / fixed1.throughput_rps();
    println!("\ndynamic vs fixed1 throughput: {speedup:.2}x");
    assert!(
        speedup >= 1.3,
        "acceptance gate: dynamic must beat fixed-batch-1 by >= 1.3x, got {speedup:.3}"
    );

    let reopt_section = want_reopt.then(|| reopt_experiment(&table));
    let ingress_section = want_ingress.then(|| ingress_experiment(&table, smoke));
    let fleet_section = want_fleet.then(fleet_experiment);

    let mut doc = obj([
        ("bench", Value::Str("serve".to_string())),
        ("smoke", Value::Bool(smoke)),
        ("seed", num(SEED as f64)),
        ("slo_us", num(SLO_US)),
        ("arrival_rate_rps", num(RATE_RPS)),
        ("workers", num(WORKERS as f64)),
        ("queue_cap", num(QUEUE_CAP as f64)),
        ("max_batch", num(MAX_BATCH as f64)),
        ("requests", num(requests as f64)),
        (
            "latency_table_us",
            Value::Arr(
                table
                    .iter()
                    .map(|&(m, t)| Value::Arr(vec![num(m as f64), num(t)]))
                    .collect(),
            ),
        ),
        (
            "policies",
            Value::Arr(
                outcomes
                    .iter()
                    .map(|(policy, out)| policy_row(out, *policy))
                    .collect(),
            ),
        ),
        ("speedup_vs_fixed1", num(speedup)),
        ("deterministic", Value::Bool(true)),
    ]);
    if let Value::Obj(fields) = &mut doc {
        if let Some(section) = reopt_section {
            fields.push(("reopt".to_string(), section));
        }
        if let Some(section) = ingress_section {
            fields.push(("ingress".to_string(), section));
        }
        if let Some(section) = fleet_section {
            fields.push(("fleet".to_string(), section));
        }
    }
    let body = doc.to_json() + "\n";
    if let Some(dir) = std::path::Path::new(&out_path)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("cannot create output directory");
    }
    std::fs::write(&out_path, body).expect("cannot write benchmark JSON");
    println!("[json] wrote {out_path}");

    if want_ingress {
        ingress_live(smoke);
    }
    if want_tcp {
        tcp_smoke();
    }
    if want_telemetry || metrics_dump.is_some() {
        telemetry_smoke(metrics_dump.as_deref());
    }
}
