//! Fig. 8: the desirable configurations (Pareto front) of AlexNet's conv2
//! forward kernel — P100, mini-batch 256, 120 MiB workspace cap.

use ucudnn::{desirable_set, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_bench::{mib, print_table, write_csv, MIB};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_framework::alexnet;
use ucudnn_gpu_model::p100_sxm2;

fn main() {
    let net = alexnet(256);
    let g2 = net.conv_geometry(net.conv_layers()[1]);
    let key = KernelKey::new(ConvOp::Forward, &g2);
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();

    let front = desirable_set(&handle, &cache, &key, 120 * MIB, BatchSizePolicy::All);

    let rows: Vec<Vec<String>> = front
        .iter()
        .map(|c| {
            vec![
                mib(c.workspace_bytes()),
                format!("{:.3}", c.time_us() / 1000.0),
                c.micros.len().to_string(),
                c.describe(),
            ]
        })
        .collect();
    print_table(
        "Fig. 8 — desirable configurations of conv2 Forward (P100, N=256, cap 120 MiB)",
        &["WS (MiB)", "time (ms)", "#micro", "configuration"],
        &rows,
    );
    let csv: Vec<Vec<String>> = front
        .iter()
        .map(|c| {
            vec![
                c.workspace_bytes().to_string(),
                format!("{}", c.time_us()),
                c.micros.len().to_string(),
                c.describe().replace(',', ";"),
            ]
        })
        .collect();
    write_csv(
        "fig08_pareto.csv",
        &["ws_bytes", "time_us", "micros", "configuration"],
        &csv,
    );

    println!(
        "\nFront size: {} (paper: the largest AlexNet desirable set was 68 entries).",
        front.len()
    );
    println!(
        "Endpoints: slowest/smallest = {} @ {} MiB; fastest/largest = {} @ {} MiB.",
        front.first().map(|c| c.describe()).unwrap_or_default(),
        mib(front.first().map(|c| c.workspace_bytes()).unwrap_or(0)),
        front.last().map(|c| c.describe()).unwrap_or_default(),
        mib(front.last().map(|c| c.workspace_bytes()).unwrap_or(0)),
    );
}
