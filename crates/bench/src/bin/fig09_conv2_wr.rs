//! Fig. 9 / §IV-A: WR optimization of AlexNet conv2 forward under a
//! 64 MiB workspace — undivided vs powerOfTwo vs all.
//!
//! Paper headline numbers on P100: cuDNN picks a GEMM-family algorithm
//! (4.3 KiB workspace); FFT needs 213 MiB undivided but fits at micro-batch
//! 32 (48.9 MiB); `all` reaches 2.33× over `undivided`.

use ucudnn::{optimize_wr, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_bench::{mib, print_table, write_csv, MIB};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_framework::alexnet;
use ucudnn_gpu_model::{p100_sxm2, workspace_bytes, ConvAlgo};

fn main() {
    let net = alexnet(256);
    let g2 = net.conv_geometry(net.conv_layers()[1]);
    let key = KernelKey::new(ConvOp::Forward, &g2);
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();

    // The §IV-A workspace anatomy of FFT on conv2.
    let fft_full = workspace_bytes(ConvAlgo::Fft, ConvOp::Forward, &g2).unwrap();
    let fft_32 = workspace_bytes(ConvAlgo::Fft, ConvOp::Forward, &g2.with_batch(32)).unwrap();
    println!(
        "conv2 FFT workspace: {} MiB undivided, {} MiB at micro-batch 32",
        mib(fft_full),
        mib(fft_32)
    );
    println!("(paper: 213 MiB undivided, 48.9 MiB at micro-batch 32)");

    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut undivided_us = 0.0;
    for policy in [
        BatchSizePolicy::Undivided,
        BatchSizePolicy::PowerOfTwo,
        BatchSizePolicy::All,
    ] {
        let r = optimize_wr(&handle, &cache, &key, 64 * MIB, policy, false).unwrap();
        if policy == BatchSizePolicy::Undivided {
            undivided_us = r.config.time_us();
        }
        let speedup = undivided_us / r.config.time_us();
        rows.push(vec![
            policy.name().to_string(),
            format!("{:.3}", r.config.time_us() / 1000.0),
            mib(r.config.workspace_bytes()),
            format!("{:.2}x", speedup),
            r.config.describe(),
        ]);
        csv.push(vec![
            policy.name().to_string(),
            format!("{}", r.config.time_us()),
            r.config.workspace_bytes().to_string(),
            format!("{}", speedup),
            r.config.describe().replace(',', ";"),
        ]);
    }
    print_table(
        "Fig. 9 — conv2 Forward under WR, 64 MiB (P100, N=256)",
        &[
            "policy",
            "time (ms)",
            "WS (MiB)",
            "speedup",
            "configuration",
        ],
        &rows,
    );
    write_csv(
        "fig09_conv2_wr.csv",
        &["policy", "time_us", "ws_bytes", "speedup", "configuration"],
        &csv,
    );
    println!("\n(paper: all reaches 2.33x over undivided on this kernel)");
}
