//! Table I: the evaluation environment — the three modeled GPUs.

use ucudnn_bench::{print_table, write_csv};
use ucudnn_gpu_model::all_devices;

fn main() {
    let rows: Vec<Vec<String>> = all_devices()
        .iter()
        .map(|d| {
            vec![
                d.name.clone(),
                format!("{:.2}", d.sp_tflops),
                format!("{:.0}", d.mem_gib),
                format!("{:.0}", d.mem_bw_gbps),
                d.sm_count.to_string(),
                format!("{:.0}", d.launch_overhead_us),
            ]
        })
        .collect();
    let header = [
        "GPU",
        "SP TFlop/s",
        "Mem (GiB)",
        "BW (GB/s)",
        "SMs",
        "launch (us)",
    ];
    print_table("Table I — modeled evaluation devices", &header, &rows);
    write_csv("table1_devices.csv", &header, &rows);
    println!("\nPaper Table I: K80 (8.73 SP TFlop/s dual-die board), P100-SXM2 (10.6), V100-SXM2 (15.7).");
    println!(
        "The K80 entry models a single GK210 die, which is what one framework process drives."
    );
}
