//! Fig. 12: per-layer memory consumption of AlexNet (N=256) and ResNet-18
//! (N=128) on P100 — cuDNN with a roomy 512 MiB per-layer limit vs μ-cuDNN
//! with 64 MiB.
//!
//! Paper headline: μ-cuDNN cuts per-layer memory by up to 3.43× (AlexNet)
//! and 2.73× (ResNet-18) with negligible (1.17×) slowdown.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_bench::{mib, print_table, write_csv, MIB};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{
    alexnet, memory_report, resnet18, setup_network, time_iteration, totals, BaselineCudnn,
    LayerMemory, NetworkDef,
};
use ucudnn_gpu_model::p100_sxm2;

fn dedup_unique_conv_and_fc(report: Vec<LayerMemory>) -> Vec<LayerMemory> {
    // Fig. 12 shows "unique convolutional layers and fc layers"; collapse
    // identically-shaped replicas (ResNet) by keeping the first of each
    // (activation, param, workspace) signature per kind.
    let mut seen = std::collections::HashSet::new();
    report
        .into_iter()
        .filter(|l| l.kind == "conv" || l.kind == "fc")
        .filter(|l| seen.insert((l.kind, l.activation_bytes, l.param_bytes, l.workspace_bytes)))
        .collect()
}

fn main() {
    let cases: Vec<NetworkDef> = vec![alexnet(256), resnet18(128)];
    for net in cases {
        // cuDNN baseline at 512 MiB per layer.
        let base = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 512 * MIB);
        setup_network(&base, &net).unwrap();
        let t_base = time_iteration(&base, &net).unwrap().total_us();
        let rb = memory_report(&base, &net);

        // μ-cuDNN at 64 MiB per layer.
        let mu = UcudnnHandle::new(
            CudnnHandle::simulated(p100_sxm2()),
            UcudnnOptions {
                policy: BatchSizePolicy::All,
                workspace_limit_bytes: 64 * MIB,
                mode: OptimizerMode::Wr,
                ..Default::default()
            },
        );
        setup_network(&mu, &net).unwrap();
        let t_mu = time_iteration(&mu, &net).unwrap().total_us();
        let rm = memory_report(&mu, &net);

        let ub = dedup_unique_conv_and_fc(rb.clone());
        let um = dedup_unique_conv_and_fc(rm.clone());
        let mut rows = Vec::new();
        let mut csv = Vec::new();
        let mut max_ratio = 1.0f64;
        for (b, m) in ub.iter().zip(&um) {
            let ratio = b.total() as f64 / m.total() as f64;
            max_ratio = max_ratio.max(ratio);
            rows.push(vec![
                b.name.clone(),
                mib(b.activation_bytes),
                mib(b.param_bytes),
                mib(b.workspace_bytes),
                mib(m.workspace_bytes),
                format!("{:.2}x", ratio),
            ]);
            csv.push(vec![
                b.name.clone(),
                b.activation_bytes.to_string(),
                b.param_bytes.to_string(),
                b.workspace_bytes.to_string(),
                m.workspace_bytes.to_string(),
                format!("{ratio}"),
            ]);
        }
        print_table(
            &format!(
                "Fig. 12 — {} (N={}): per-layer memory, cuDNN@512MiB vs ucuDNN@64MiB",
                net.name,
                net.batch()
            ),
            &[
                "layer",
                "act (MiB)",
                "param (MiB)",
                "WS cuDNN (MiB)",
                "WS ucuDNN (MiB)",
                "layer reduction",
            ],
            &rows,
        );
        let file = format!(
            "fig12_memory_{}.csv",
            net.name.to_lowercase().replace(['-', ' '], "_")
        );
        write_csv(
            &file,
            &[
                "layer",
                "act_bytes",
                "param_bytes",
                "ws_cudnn",
                "ws_ucudnn",
                "reduction",
            ],
            &csv,
        );

        let (tb, tm) = (totals(&rb), totals(&rm));
        println!(
            "totals: workspace {} MiB -> {} MiB ({:.2}x); max per-layer reduction {:.2}x; slowdown {:.2}x",
            mib(tb.workspace),
            mib(tm.workspace),
            tb.workspace as f64 / tm.workspace.max(1) as f64,
            max_ratio,
            t_mu / t_base,
        );
    }
    println!("\n(paper: up to 3.43x (AlexNet) and 2.73x (ResNet-18) per-layer reduction at 1.17x slowdown)");
}
