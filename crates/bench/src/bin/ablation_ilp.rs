//! Ablation: the branch-and-bound ILP solver vs exhaustive enumeration on
//! the WD multiple-choice knapsack — correctness cross-check plus solve-time
//! scaling (the GLPK-replacement justification of DESIGN.md §2).

use ucudnn::{desirable_set, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_bench::{print_table, write_csv, MIB};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_framework::alexnet;
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_lp::{Item, MckInstance};

fn main() {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let cache = BenchCache::new();
    // Kernels from AlexNet at a modest batch so exhaustive search stays
    // tractable (product of group sizes).
    let net = alexnet(32);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for num_kernels in [2usize, 3, 4, 5] {
        let kernels: Vec<KernelKey> = net
            .conv_layers()
            .into_iter()
            .take(num_kernels)
            .map(|id| KernelKey::new(ConvOp::Forward, &net.conv_geometry(id)))
            .collect();
        let cap = 32 * MIB;
        let groups: Vec<Vec<Item>> = kernels
            .iter()
            .map(|k| {
                desirable_set(&handle, &cache, k, cap, BatchSizePolicy::PowerOfTwo)
                    .iter()
                    .map(|c| Item {
                        cost: c.time_us(),
                        weight: c.workspace_bytes() as f64,
                    })
                    .collect()
            })
            .collect();
        let vars: usize = groups.iter().map(Vec::len).sum();
        let space: usize = groups.iter().map(Vec::len).product();
        let inst = MckInstance {
            groups,
            capacity: (cap + cap / 2) as f64,
        };

        let t0 = std::time::Instant::now();
        let bb = inst.solve();
        let bb_us = t0.elapsed().as_secs_f64() * 1e6;
        let t0 = std::time::Instant::now();
        let ex = inst.solve_exhaustive();
        let ex_us = t0.elapsed().as_secs_f64() * 1e6;

        let (bb_v, ex_v) = match (&bb, &ex) {
            (Some((_, a)), Some((_, b))) => (*a, *b),
            _ => panic!("both solvers must find a solution"),
        };
        assert!(
            (bb_v - ex_v).abs() <= 1e-6 * ex_v.max(1.0),
            "B&B != exhaustive"
        );
        rows.push(vec![
            num_kernels.to_string(),
            vars.to_string(),
            space.to_string(),
            format!("{:.3}", bb_us / 1000.0),
            format!("{:.3}", ex_us / 1000.0),
            format!("{:.2}", bb_v / 1000.0),
        ]);
        csv.push(vec![
            num_kernels.to_string(),
            vars.to_string(),
            space.to_string(),
            format!("{bb_us}"),
            format!("{ex_us}"),
            format!("{bb_v}"),
        ]);
    }
    print_table(
        "Ablation — branch-and-bound ILP vs exhaustive enumeration",
        &[
            "kernels",
            "0-1 vars",
            "search space",
            "B&B (ms)",
            "exhaustive (ms)",
            "optimum (ms)",
        ],
        &rows,
    );
    write_csv(
        "ablation_ilp.csv",
        &[
            "kernels",
            "vars",
            "space",
            "bb_us",
            "exhaustive_us",
            "optimum_us",
        ],
        &csv,
    );
    println!(
        "\nBoth are exact; B&B scales to the full-network instances exhaustive search cannot."
    );
}
