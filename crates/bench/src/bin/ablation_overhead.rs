//! Ablation: kernel-launch overhead sensitivity.
//!
//! Micro-batching trades algorithmic speed for extra kernel launches and
//! redundant filter transforms. This sweep varies the modeled per-launch
//! overhead and reports the WR optimizer's chosen division and its speedup —
//! showing where fine division stops paying (the design constraint the DP
//! navigates implicitly).

use ucudnn::{optimize_wr_metered, BatchSizePolicy, BenchCache, KernelKey, OptimizerMetrics};
use ucudnn_bench::{print_table, write_csv, MIB};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

fn main() {
    let g = ConvGeometry::with_square(
        Shape4::new(256, 64, 27, 27),
        FilterShape::new(192, 64, 5, 5),
        2,
        1,
    );
    let key = KernelKey::new(ConvOp::Forward, &g);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut sample_json = String::new();
    for overhead_us in [0.0f64, 2.0, 8.0, 32.0, 128.0, 512.0, 2048.0] {
        let mut device = p100_sxm2();
        device.launch_overhead_us = overhead_us;
        let handle = CudnnHandle::simulated(device);
        let cache = BenchCache::new();
        let metrics = OptimizerMetrics::new();
        let undiv = optimize_wr_metered(
            &handle,
            &cache,
            &key,
            64 * MIB,
            BatchSizePolicy::Undivided,
            false,
            Some(&metrics),
        )
        .unwrap();
        let all = optimize_wr_metered(
            &handle,
            &cache,
            &key,
            64 * MIB,
            BatchSizePolicy::All,
            false,
            Some(&metrics),
        )
        .unwrap();
        metrics.add_kernels(2);
        // Per-kernel counts elided: policy=all benchmarks every micro-batch
        // size, which would print hundreds of rows here.
        sample_json = metrics.to_json(
            cache.stats(),
            &[],
            handle.faults_injected(),
            handle.exec_cache_stats(),
        );
        let t = metrics.timings();
        rows.push(vec![
            format!("{overhead_us}"),
            all.config.micros.len().to_string(),
            all.config.describe(),
            format!("{:.3}", all.config.time_us() / 1000.0),
            format!("{:.2}x", undiv.config.time_us() / all.config.time_us()),
            format!("{}/{}", t.benchmark_us, t.dp_us),
        ]);
        csv.push(vec![
            format!("{overhead_us}"),
            all.config.micros.len().to_string(),
            all.config.describe().replace(',', ";"),
            format!("{}", all.config.time_us()),
            format!("{}", undiv.config.time_us() / all.config.time_us()),
        ]);
    }
    print_table(
        "Ablation — launch-overhead sensitivity (conv2 forward, 64 MiB, P100 variant)",
        &[
            "launch (us)",
            "#micro",
            "division",
            "time (ms)",
            "speedup vs undivided",
            "bench/DP (us)",
        ],
        &rows,
    );
    write_csv(
        "ablation_overhead.csv",
        &["launch_us", "micros", "division", "time_us", "speedup"],
        &csv,
    );
    println!("\nAs overhead grows the DP chooses coarser divisions and the gain shrinks to 1.0x.");
    let path = ucudnn_bench::results_dir().join("ablation_overhead_metrics.json");
    std::fs::write(&path, &sample_json).expect("cannot write metrics JSON");
    println!("[json] wrote {}", path.display());
    println!("\nMetrics JSON (last row):\n{sample_json}");

    tracing_overhead(&key);
}

/// A/B the trace instrumentation on the WR optimizer: the disabled path is
/// one relaxed atomic load per emit site (expected well under 1% of
/// optimization wall clock); an active session pays for building and
/// buffering the events.
fn tracing_overhead(key: &KernelKey) {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let reps = 20;
    let run = || {
        let start = std::time::Instant::now();
        for _ in 0..reps {
            let cache = BenchCache::new();
            optimize_wr_metered(
                &handle,
                &cache,
                key,
                64 * MIB,
                BatchSizePolicy::All,
                false,
                None,
            )
            .unwrap();
        }
        start.elapsed().as_secs_f64() * 1e6 / f64::from(reps)
    };
    let disabled_us = run();
    let session = ucudnn::trace::session(ucudnn::TraceConfig::default());
    let enabled_us = run();
    let trace = session.finish();
    println!(
        "\nTracing overhead on WR optimize (conv2, policy=all, {reps} reps):\n\
         disabled {disabled_us:.1} us/opt, session active {enabled_us:.1} us/opt \
         ({:+.2}% while collecting {} events/opt)",
        (enabled_us / disabled_us - 1.0) * 100.0,
        trace.events.len() / reps as usize
    );
}
