//! Fig. 10: AlexNet forward+backward iteration time on K80 / P100 / V100
//! with 8 / 64 / 512 MiB per-kernel workspace and the three batch-size
//! policies (u = undivided = plain cuDNN, p = powerOfTwo, a = all).
//!
//! Paper headline speedups of `all` over `undivided` at 64 MiB:
//! K80 1.81× iteration (2.10× convolutions), P100 1.40× (1.63×),
//! V100 1.47× (1.63×); no improvement at 8 MiB; parity at 512 MiB.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_bench::{mib, print_table, write_csv, MIB};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{alexnet, time_command};
use ucudnn_gpu_model::{k80, p100_sxm2, v100_sxm2};

fn main() {
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    // Per-layer rows for the stacked-bar rendering of the paper's figure.
    let mut layer_csv: Vec<Vec<String>> = Vec::new();
    for (device, batch) in [(k80(), 256usize), (p100_sxm2(), 256), (v100_sxm2(), 1024)] {
        let net = alexnet(batch);
        for limit_mib in [8usize, 64, 512] {
            let mut undivided = (0.0f64, 0.0f64);
            for policy in [
                BatchSizePolicy::Undivided,
                BatchSizePolicy::PowerOfTwo,
                BatchSizePolicy::All,
            ] {
                let handle = UcudnnHandle::new(
                    CudnnHandle::simulated(device.clone()),
                    UcudnnOptions {
                        policy,
                        workspace_limit_bytes: limit_mib * MIB,
                        mode: OptimizerMode::Wr,
                        ..Default::default()
                    },
                );
                let r = time_command(&handle, &net, 1).expect("time command failed");
                for l in &r.timing.layers {
                    layer_csv.push(vec![
                        device.name.clone(),
                        format!("{}", limit_mib * MIB),
                        policy.name().to_string(),
                        l.name.clone(),
                        l.kind.to_string(),
                        format!("{}", l.forward_us),
                        format!("{}", l.backward_us),
                    ]);
                }
                if policy == BatchSizePolicy::Undivided {
                    undivided = (r.timing.total_us(), r.timing.conv_us());
                }
                let su_total = undivided.0 / r.timing.total_us();
                let su_conv = undivided.1 / r.timing.conv_us();
                rows.push(vec![
                    device.name.clone(),
                    format!("{limit_mib}"),
                    policy.name().to_string(),
                    format!("{:.2}", r.timing.forward_us() / 1000.0),
                    format!("{:.2}", r.timing.backward_us() / 1000.0),
                    format!("{:.2}", r.timing.total_us() / 1000.0),
                    format!("{:.2}", r.timing.conv_us() / 1000.0),
                    format!("{:.2}x", su_total),
                    format!("{:.2}x", su_conv),
                    mib(r.workspace_bytes),
                ]);
                csv.push(vec![
                    device.name.clone(),
                    format!("{}", limit_mib * MIB),
                    policy.name().to_string(),
                    format!("{}", r.timing.forward_us()),
                    format!("{}", r.timing.backward_us()),
                    format!("{}", r.timing.total_us()),
                    format!("{}", r.timing.conv_us()),
                    format!("{su_total}"),
                    format!("{su_conv}"),
                    format!("{}", r.workspace_bytes),
                ]);
            }
        }
    }
    print_table(
        "Fig. 10 — AlexNet WR (batch 256 on K80/P100, 1024 on V100)",
        &[
            "device",
            "WS (MiB)",
            "policy",
            "fwd (ms)",
            "bwd (ms)",
            "total (ms)",
            "conv (ms)",
            "speedup",
            "conv spdup",
            "alloc WS (MiB)",
        ],
        &rows,
    );
    write_csv(
        "fig10_alexnet_layers.csv",
        &[
            "device",
            "ws_bytes",
            "policy",
            "layer",
            "kind",
            "forward_us",
            "backward_us",
        ],
        &layer_csv,
    );
    write_csv(
        "fig10_alexnet_wr.csv",
        &[
            "device",
            "ws_bytes",
            "policy",
            "fwd_us",
            "bwd_us",
            "total_us",
            "conv_us",
            "speedup_total",
            "speedup_conv",
            "alloc_ws_bytes",
        ],
        &csv,
    );
    println!("\n(paper at 64 MiB, all vs undivided: K80 1.81x/2.10x, P100 1.40x/1.63x, V100 1.47x/1.63x;");
    println!(" no gain at 8 MiB; parity at 512 MiB with ~4x the workspace memory)");
}
