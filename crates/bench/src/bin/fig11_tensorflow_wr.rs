//! Fig. 11: TensorFlow-style evaluation on P100 — AlexNet (N=256),
//! ResNet-50 (N=64) and DenseNet-40 k=40 (N=256) under 8 / 64 / 512 MiB
//! per-kernel workspace limits.
//!
//! Paper headline at 64 MiB: 1.24× for AlexNet, 1.06× for ResNet-50.
//! (TensorFlow passes no workspace limit through its benchmark path, so the
//! paper — like this binary — supplies the limits to μ-cuDNN directly.)

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_bench::{print_table, write_csv, MIB};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{alexnet, densenet40, resnet50, time_command, NetworkDef};
use ucudnn_gpu_model::p100_sxm2;

fn main() {
    let nets: Vec<NetworkDef> = vec![alexnet(256), resnet50(64), densenet40(256, 40)];
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for net in &nets {
        for limit_mib in [8usize, 64, 512] {
            let mut undivided = 0.0f64;
            for policy in [
                BatchSizePolicy::Undivided,
                BatchSizePolicy::PowerOfTwo,
                BatchSizePolicy::All,
            ] {
                let handle = UcudnnHandle::new(
                    CudnnHandle::simulated(p100_sxm2()),
                    UcudnnOptions {
                        policy,
                        workspace_limit_bytes: limit_mib * MIB,
                        mode: OptimizerMode::Wr,
                        ..Default::default()
                    },
                );
                let r = time_command(&handle, net, 1).expect("time command failed");
                if policy == BatchSizePolicy::Undivided {
                    undivided = r.timing.total_us();
                }
                let speedup = undivided / r.timing.total_us();
                rows.push(vec![
                    net.name.clone(),
                    net.batch().to_string(),
                    format!("{limit_mib}"),
                    policy.name().to_string(),
                    format!("{:.2}", r.timing.total_us() / 1000.0),
                    format!("{:.2}", r.timing.conv_us() / 1000.0),
                    format!("{:.2}x", speedup),
                ]);
                csv.push(vec![
                    net.name.clone(),
                    net.batch().to_string(),
                    format!("{}", limit_mib * MIB),
                    policy.name().to_string(),
                    format!("{}", r.timing.total_us()),
                    format!("{}", r.timing.conv_us()),
                    format!("{speedup}"),
                ]);
            }
        }
    }
    print_table(
        "Fig. 11 — TensorFlow-style networks on P100",
        &[
            "network",
            "batch",
            "WS (MiB)",
            "policy",
            "total (ms)",
            "conv (ms)",
            "speedup",
        ],
        &rows,
    );
    write_csv(
        "fig11_tensorflow_wr.csv",
        &[
            "network", "batch", "ws_bytes", "policy", "total_us", "conv_us", "speedup",
        ],
        &csv,
    );
    println!("\n(paper at 64 MiB: AlexNet 1.24x, ResNet-50 1.06x)");
}
