//! Hot-path kernel benchmark: the packed/planned execution substrate
//! against the retained naive references.
//!
//! Each row times one kernel two ways on identical inputs:
//!
//! * **naive** — the reference path kept for exactly this purpose
//!   (`sgemm_ref` triple loops, scalar per-tile Winograd transforms with
//!   16/36 separate naive GEMMs, plan-free FFT that rebuilds tables and
//!   filter spectra on every call);
//! * **fast** — the register-blocked packed GEMM with a warm
//!   [`ucudnn_conv::EnginePlan`], i.e. what a layer's second and later
//!   micro-batches execute.
//!
//! Results go to stdout and to `BENCH_hotpath.json` (override with
//! `--out <path>`): per-kernel GFLOP/s for both paths plus the speedup.
//! `--smoke` shrinks repetitions for CI. The committed JSON at the repo
//! root backs the numbers quoted in README's Performance section.

use std::time::Instant;
use ucudnn_conv::gemm::{sgemm, sgemm_ref, Trans};
use ucudnn_conv::{fft_conv, im2col_gemm, winograd, winograd_f4};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4, Tensor};

/// One benchmarked kernel: label, shape note, FLOPs per call, and the two
/// timed closures.
struct Kernel<'a> {
    name: &'static str,
    shape: String,
    flops: f64,
    naive: Box<dyn FnMut() + 'a>,
    fast: Box<dyn FnMut() + 'a>,
}

struct Row {
    name: &'static str,
    shape: String,
    flops: f64,
    naive_us: f64,
    fast_us: f64,
}

impl Row {
    fn naive_gflops(&self) -> f64 {
        self.flops / self.naive_us / 1e3
    }
    fn fast_gflops(&self) -> f64 {
        self.flops / self.fast_us / 1e3
    }
    fn speedup(&self) -> f64 {
        self.naive_us / self.fast_us
    }
}

/// Best-of-`reps` wall times of an interleaved naive/fast pair, in
/// microseconds. Interleaving means both paths see the same background
/// noise, and minimum time is the standard noise-robust estimator on a
/// shared machine (noise only ever adds time).
fn time_pair_us(reps: usize, naive: &mut dyn FnMut(), fast: &mut dyn FnMut()) -> (f64, f64) {
    let one = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        start.elapsed().as_secs_f64() * 1e6
    };
    // Warm-up: populates plans/caches so "fast" measures the steady state.
    one(naive);
    one(fast);
    let (mut best_naive, mut best_fast) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..reps.max(1) {
        best_naive = best_naive.min(one(naive));
        best_fast = best_fast.min(one(fast));
    }
    (best_naive, best_fast)
}

fn filled(len: usize, seed: usize) -> Vec<f32> {
    // Deterministic, non-degenerate values in roughly [-1, 1].
    (0..len)
        .map(|i| {
            let v = ((i * 2654435761 + seed * 40503) % 2048) as f32;
            v / 1024.0 - 1.0
        })
        .collect()
}

fn json_escape_free(s: &str) -> &str {
    assert!(
        !s.contains(['"', '\\']) && s.is_ascii(),
        "labels must not need JSON escaping: {s}"
    );
    s
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let out = args
        .iter()
        .position(|a| a == "--out")
        .map(|i| args[i + 1].clone())
        .unwrap_or_else(|| "BENCH_hotpath.json".to_string());
    let reps = if smoke { 9 } else { 12 };

    // ResNet-shaped 3x3 layer (conv2_x: 64 ch, 56x56) at micro-batch 8 —
    // the acceptance-gate kernel — plus the raw GEMM it lowers to and the
    // other planned engines.
    let g_resnet = ConvGeometry::with_square(
        Shape4::new(8, 64, 56, 56),
        FilterShape::new(64, 64, 3, 3),
        1,
        1,
    );
    // VGG-shaped 3x3 layer: more channels, smaller image.
    let g_vgg = ConvGeometry::with_square(
        Shape4::new(8, 256, 14, 14),
        FilterShape::new(256, 256, 3, 3),
        1,
        1,
    );

    let mut rows: Vec<Row> = Vec::new();
    {
        // Raw GEMM at the ResNet lowering shape: K x CRS @ CRS x HoWo.
        let (m, k, n) = (64, 64 * 9, 56 * 56);
        let a = filled(m * k, 1);
        let b = filled(k * n, 2);
        let mut c = vec![0.0f32; m * n];
        let mut kernels = vec![Kernel {
            name: "sgemm",
            shape: format!("{m}x{n}x{k}"),
            flops: 2.0 * (m * n * k) as f64,
            naive: Box::new({
                let (a, b) = (a.clone(), b.clone());
                let mut c = c.clone();
                move || sgemm_ref(Trans::No, Trans::No, m, n, k, 1.0, &a, &b, 0.0, &mut c)
            }),
            fast: Box::new(move || sgemm(Trans::No, Trans::No, m, n, k, 1.0, &a, &b, 0.0, &mut c)),
        }];

        for (tag, g) in [("resnet3x3", &g_resnet), ("vgg3x3", &g_vgg)] {
            let conv_kernels = planned_conv_kernels(tag, g);
            kernels.extend(conv_kernels);
        }

        for kern in &mut kernels {
            let (naive_us, fast_us) = time_pair_us(reps, &mut kern.naive, &mut kern.fast);
            rows.push(Row {
                name: kern.name,
                shape: kern.shape.clone(),
                flops: kern.flops,
                naive_us,
                fast_us,
            });
        }
    }

    println!(
        "{:<28} {:>16} {:>12} {:>12} {:>12} {:>9}",
        "kernel", "shape", "naive GF/s", "fast GF/s", "fast us", "speedup"
    );
    for r in &rows {
        println!(
            "{:<28} {:>16} {:>12.2} {:>12.2} {:>12.1} {:>8.2}x",
            r.name,
            r.shape,
            r.naive_gflops(),
            r.fast_gflops(),
            r.fast_us,
            r.speedup()
        );
    }

    let body: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\"name\": \"{}\", \"shape\": \"{}\", \"flops\": {}, \
                 \"naive_us\": {:.3}, \"fast_us\": {:.3}, \
                 \"naive_gflops\": {:.3}, \"fast_gflops\": {:.3}, \
                 \"speedup\": {:.3}}}",
                json_escape_free(r.name),
                json_escape_free(&r.shape),
                r.flops,
                r.naive_us,
                r.fast_us,
                r.naive_gflops(),
                r.fast_gflops(),
                r.speedup()
            )
        })
        .collect();
    let doc = format!(
        "{{\n  \"bench\": \"hotpath\",\n  \"smoke\": {},\n  \"kernels\": [\n{}\n  ]\n}}\n",
        smoke,
        body.join(",\n")
    );
    if let Some(dir) = std::path::Path::new(&out)
        .parent()
        .filter(|d| !d.as_os_str().is_empty())
    {
        std::fs::create_dir_all(dir).expect("cannot create output directory");
    }
    std::fs::write(&out, doc).expect("cannot write benchmark JSON");
    println!("[json] wrote {out}");
}

/// Build the naive/fast kernel pairs for the planned conv engines on `g`.
fn planned_conv_kernels(tag: &'static str, g: &ConvGeometry) -> Vec<Kernel<'static>> {
    let g = *g;
    let x = Tensor::random(g.input, 11).as_slice().to_vec();
    let w = Tensor::random(g.filter.as_shape4(), 12).as_slice().to_vec();
    let y_len = g.output().len();
    let macs = g.macs() as f64;
    let mut kernels = Vec::new();

    // im2col+GEMM forward: naive = im2col + sgemm_ref per sample (the
    // pre-substrate path), fast = warm plan + packed GEMM.
    {
        let (xa, wa) = (x.clone(), w.clone());
        let mut y = vec![0.0f32; y_len];
        let mut ws = vec![0.0f32; im2col_gemm::workspace_floats(&g)];
        let naive = Box::new(move || {
            let (k, crs) = (g.filter.k, g.input.c * g.filter.r * g.filter.s);
            let howo = g.out_h() * g.out_w();
            let in_sample = g.input.sample_len();
            for ni in 0..g.input.n {
                let col = &mut ws[..crs * howo];
                ucudnn_conv::im2col::im2col(&g, &xa[ni * in_sample..(ni + 1) * in_sample], col);
                sgemm_ref(
                    Trans::No,
                    Trans::No,
                    k,
                    howo,
                    crs,
                    1.0,
                    &wa,
                    col,
                    0.0,
                    &mut y[ni * k * howo..(ni + 1) * k * howo],
                );
            }
        });
        let (xa, wa) = (x.clone(), w.clone());
        let mut y = vec![0.0f32; y_len];
        let mut ws = vec![0.0f32; im2col_gemm::workspace_floats(&g)];
        let mut plan = ucudnn_conv::plan::GemmPlan::default();
        let fast = Box::new(move || {
            im2col_gemm::forward_with_plan(&g, &xa, &wa, &mut y, 1.0, 0.0, &mut ws, &mut plan);
        });
        kernels.push(Kernel {
            name: match tag {
                "resnet3x3" => "im2col_fwd_resnet3x3",
                _ => "im2col_fwd_vgg3x3",
            },
            shape: format!("{g}"),
            flops: 2.0 * macs,
            naive,
            fast,
        });
    }

    // Winograd F(2x2) forward: naive = scalar per-tile transforms and 16
    // separate naive GEMMs, fast = strip-vectorized transforms writing
    // ξ-major packed panels into one batched prepacked GEMM, warm plan.
    if winograd::supports(&g) {
        let (xa, wa) = (x.clone(), w.clone());
        let mut y = vec![0.0f32; y_len];
        let mut ws = vec![0.0f32; winograd::workspace_floats(&g)];
        let naive =
            Box::new(move || winograd::forward_ref(&g, &xa, &wa, &mut y, 1.0, 0.0, &mut ws));
        let (xa, wa) = (x.clone(), w.clone());
        let mut y = vec![0.0f32; y_len];
        let mut ws = vec![0.0f32; winograd::workspace_floats(&g)];
        let mut plan = ucudnn_conv::plan::WinogradPlan::default();
        let fast = Box::new(move || {
            winograd::forward_with_plan(&g, &xa, &wa, &mut y, 1.0, 0.0, &mut ws, &mut plan);
        });
        kernels.push(Kernel {
            name: match tag {
                "resnet3x3" => "winograd_fwd_resnet3x3",
                _ => "winograd_fwd_vgg3x3",
            },
            shape: format!("{g}"),
            flops: 2.0 * macs,
            naive,
            fast,
        });
    }

    // Winograd F(4x4) forward (same 3x3/stride-1 support set as F(2x2)).
    if winograd::supports(&g) {
        let (xa, wa) = (x.clone(), w.clone());
        let mut y = vec![0.0f32; y_len];
        let mut ws = vec![0.0f32; winograd_f4::workspace_floats(&g)];
        let naive =
            Box::new(move || winograd_f4::forward_ref(&g, &xa, &wa, &mut y, 1.0, 0.0, &mut ws));
        let (xa, wa) = (x.clone(), w.clone());
        let mut y = vec![0.0f32; y_len];
        let mut ws = vec![0.0f32; winograd_f4::workspace_floats(&g)];
        let mut plan = ucudnn_conv::plan::WinogradPlan::default();
        let fast = Box::new(move || {
            winograd_f4::forward_with_plan(&g, &xa, &wa, &mut y, 1.0, 0.0, &mut ws, &mut plan);
        });
        kernels.push(Kernel {
            name: match tag {
                "resnet3x3" => "winograd4_fwd_resnet3x3",
                _ => "winograd4_fwd_vgg3x3",
            },
            shape: format!("{g}"),
            flops: 2.0 * macs,
            naive,
            fast,
        });
    }

    // FFT forward: naive = plan-free (tables + filter spectra rebuilt per
    // call), fast = warm plan reusing both.
    if fft_conv::supports(&g) {
        let (xa, wa) = (x.clone(), w.clone());
        let mut y = vec![0.0f32; y_len];
        let mut ws = vec![0.0f32; fft_conv::workspace_floats(&g, fft_conv::FftOp::Forward)];
        let naive = Box::new(move || {
            fft_conv::forward(&g, &xa, &wa, &mut y, 1.0, 0.0, &mut ws).unwrap();
        });
        let (xa, wa) = (x, w);
        let mut y = vec![0.0f32; y_len];
        let mut ws = vec![0.0f32; fft_conv::workspace_floats(&g, fft_conv::FftOp::Forward)];
        let mut plan = ucudnn_conv::plan::FftPlan::default();
        let fast = Box::new(move || {
            fft_conv::forward_with_plan(&g, &xa, &wa, &mut y, 1.0, 0.0, &mut ws, &mut plan)
                .unwrap();
        });
        kernels.push(Kernel {
            name: match tag {
                "resnet3x3" => "fft_fwd_resnet3x3",
                _ => "fft_fwd_vgg3x3",
            },
            shape: format!("{g}"),
            flops: 2.0 * macs,
            naive,
            fast,
        });
    }

    kernels
}
