//! §IV-B: optimization cost — benchmarking plus DP time per policy.
//!
//! Paper headline on P100 with 64 MiB: `all` takes 34.16 s, `powerOfTwo`
//! 3.82 s (a ~9× gap driven by the O(B) vs O(log B) benchmark counts).
//! Our substrate's "benchmarks" are model queries, so the absolute numbers
//! are microseconds — the *ratio* and the benchmark counts are the
//! reproducible quantities.

use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_bench::{print_table, write_csv, MIB};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{alexnet, setup_network};
use ucudnn_gpu_model::p100_sxm2;

fn main() {
    let net = alexnet(256);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut all_wall = 0.0f64;
    let mut p2_wall = 0.0f64;
    for policy in [
        BatchSizePolicy::Undivided,
        BatchSizePolicy::PowerOfTwo,
        BatchSizePolicy::All,
    ] {
        let handle = UcudnnHandle::new(
            CudnnHandle::simulated(p100_sxm2()),
            UcudnnOptions {
                policy,
                workspace_limit_bytes: 64 * MIB,
                mode: OptimizerMode::Wr,
                ..Default::default()
            },
        );
        let start = std::time::Instant::now();
        setup_network(&handle, &net).unwrap();
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        match policy {
            BatchSizePolicy::All => all_wall = wall_us,
            BatchSizePolicy::PowerOfTwo => p2_wall = wall_us,
            BatchSizePolicy::Undivided => {}
        }
        let stats = handle.cache_stats();
        rows.push(vec![
            policy.name().to_string(),
            format!("{}", stats.misses),
            format!("{}", stats.hits),
            format!("{:.2}", wall_us / 1000.0),
            format!("{:.2}", handle.optimization_wall_us() / 1000.0),
        ]);
        csv.push(vec![
            policy.name().to_string(),
            stats.misses.to_string(),
            stats.hits.to_string(),
            format!("{wall_us}"),
            format!("{}", handle.optimization_wall_us()),
        ]);
    }
    print_table(
        "Optimization cost — AlexNet WR setup on P100, 64 MiB",
        &[
            "policy",
            "benchmarks run",
            "cache hits",
            "setup wall (ms)",
            "opt wall (ms)",
        ],
        &rows,
    );
    write_csv(
        "opt_time.csv",
        &[
            "policy",
            "benchmarks",
            "cache_hits",
            "setup_wall_us",
            "opt_wall_us",
        ],
        &csv,
    );
    println!(
        "\nall / powerOfTwo setup-time ratio: {:.1}x (paper: 34.16 s / 3.82 s = 8.9x)",
        all_wall / p2_wall.max(1e-9)
    );

    thread_sweep(&net);
}

/// Parallel whole-network optimization: the same AlexNet setup fanned over
/// 1/2/4/8 worker threads. Plans are byte-identical at every width (the
/// determinism guarantee); only the wall clock changes — it drops when the
/// host has cores to run the workers on, and degrades to time-slicing
/// overhead on a single-core box (hence the parallelism line below).
fn thread_sweep(net: &ucudnn_framework::NetworkDef) {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    let mut seq_wall = 0.0f64;
    let mut seq_plans: Vec<(String, String)> = Vec::new();
    let mut metrics_json = String::new();
    for threads in [1usize, 2, 4, 8] {
        let handle = UcudnnHandle::new(
            CudnnHandle::simulated(p100_sxm2()),
            UcudnnOptions {
                policy: BatchSizePolicy::All,
                workspace_limit_bytes: 64 * MIB,
                mode: OptimizerMode::Wr,
                opt_threads: threads,
                ..Default::default()
            },
        );
        let start = std::time::Instant::now();
        setup_network(&handle, net).unwrap();
        let wall_us = start.elapsed().as_secs_f64() * 1e6;
        let plans: Vec<(String, String)> = handle
            .memory_report()
            .into_iter()
            .map(|(k, c, _)| (format!("{k}"), c.describe()))
            .collect();
        if threads == 1 {
            seq_wall = wall_us;
            seq_plans = plans.clone();
        }
        if threads == 4 {
            metrics_json = handle.metrics_json();
        }
        let t = handle.metrics().timings();
        let stats = handle.cache_stats();
        rows.push(vec![
            threads.to_string(),
            format!("{:.2}", wall_us / 1000.0),
            format!("{:.2}x", seq_wall / wall_us.max(1e-9)),
            format!("{:.2}", t.benchmark_us as f64 / 1000.0),
            format!("{:.2}", t.dp_us as f64 / 1000.0),
            format!("{}/{}", stats.hits, stats.misses),
            if plans == seq_plans {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
        csv.push(vec![
            threads.to_string(),
            format!("{wall_us}"),
            format!("{}", t.benchmark_us),
            format!("{}", t.dp_us),
            stats.hits.to_string(),
            stats.misses.to_string(),
            (plans == seq_plans).to_string(),
        ]);
    }
    println!("\navailable parallelism: {cores} core(s)");
    print_table(
        "Parallel whole-network optimization — AlexNet WR setup (policy=all)",
        &[
            "threads",
            "setup wall (ms)",
            "speedup",
            "bench Σthread (ms)",
            "DP Σthread (ms)",
            "hits/misses",
            "plans = 1-thread",
        ],
        &rows,
    );
    write_csv(
        "opt_time_threads.csv",
        &[
            "threads",
            "setup_wall_us",
            "bench_us",
            "dp_us",
            "cache_hits",
            "cache_misses",
            "plans_match",
        ],
        &csv,
    );
    let path = ucudnn_bench::results_dir().join("opt_time_metrics.json");
    std::fs::write(&path, &metrics_json).expect("cannot write metrics JSON");
    println!("[json] wrote {}", path.display());
    println!("\nMetrics JSON (4 threads):\n{metrics_json}");
}
