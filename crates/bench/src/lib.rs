//! Shared plumbing for the figure/table reproduction binaries.
//!
//! Every binary prints the paper-equivalent rows/series to stdout and also
//! writes a CSV under `results/` (override with `UCUDNN_RESULTS_DIR`) so
//! EXPERIMENTS.md can reference machine-readable outputs.

pub mod report;

use std::io::Write;
use std::path::PathBuf;
use ucudnn::KernelKey;
use ucudnn_framework::NetworkDef;

/// One mebibyte.
pub const MIB: usize = 1024 * 1024;

/// Where CSV outputs go.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("UCUDNN_RESULTS_DIR").unwrap_or_else(|_| "results".to_string());
    let p = PathBuf::from(dir);
    std::fs::create_dir_all(&p).expect("cannot create results directory");
    p
}

/// Write a CSV file into the results directory.
pub fn write_csv(name: &str, header: &[&str], rows: &[Vec<String>]) {
    let path = results_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("cannot create CSV");
    writeln!(f, "{}", header.join(",")).unwrap();
    for r in rows {
        writeln!(f, "{}", r.join(",")).unwrap();
    }
    println!("[csv] wrote {}", path.display());
}

/// Print an aligned table.
pub fn print_table(title: &str, header: &[&str], rows: &[Vec<String>]) {
    println!("\n== {title} ==");
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, c) in r.iter().enumerate() {
            widths[i] = widths[i].max(c.len());
        }
    }
    let fmt_row = |cells: Vec<String>| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    println!(
        "{}",
        fmt_row(header.iter().map(|s| s.to_string()).collect())
    );
    for r in rows {
        println!("{}", fmt_row(r.clone()));
    }
}

/// Human label for a kernel: the conv layer's name plus the op shorthand
/// the paper uses in Fig. 14 (F / BD / BF).
pub fn kernel_label(net: &NetworkDef, key: &KernelKey) -> String {
    let op = match key.op {
        ucudnn::OpKind::Forward => "F",
        ucudnn::OpKind::BackwardData => "BD",
        ucudnn::OpKind::BackwardFilter => "BF",
    };
    for id in net.conv_layers() {
        let g = net.conv_geometry(id);
        if g == key.geometry() {
            return format!("{} {}", net.nodes()[id].name, op);
        }
    }
    format!("{key}")
}

/// Format microseconds as milliseconds with 3 decimals.
pub fn ms(us: f64) -> String {
    format!("{:.3}", us / 1000.0)
}

/// Format bytes as MiB with 1 decimal.
pub fn mib(bytes: usize) -> String {
    format!("{:.1}", bytes as f64 / MIB as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_helpers() {
        assert_eq!(ms(1500.0), "1.500");
        assert_eq!(mib(64 * MIB), "64.0");
    }

    #[test]
    fn kernel_labels_resolve_layer_names() {
        let net = ucudnn_framework::alexnet(32);
        let id = net.conv_layers()[1];
        let g = net.conv_geometry(id);
        let key = KernelKey::new(ucudnn_cudnn_sim::ConvOp::Forward, &g);
        assert_eq!(kernel_label(&net, &key), "conv2 F");
    }
}
