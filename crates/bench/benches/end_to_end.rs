//! Criterion bench of the whole harness: simulated AlexNet iterations
//! (setup + timed execution) — guards against regressions in the framework
//! driver and the wrapper's per-call overhead.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucudnn::{BatchSizePolicy, OptimizerMode, UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_framework::{alexnet, setup_network, time_iteration, BaselineCudnn};
use ucudnn_gpu_model::p100_sxm2;

const MIB: usize = 1024 * 1024;

fn bench_iteration(c: &mut Criterion) {
    let net = alexnet(256);
    let mut group = c.benchmark_group("simulated_iteration");

    let base = BaselineCudnn::new(CudnnHandle::simulated(p100_sxm2()), 64 * MIB);
    setup_network(&base, &net).unwrap();
    group.bench_function(BenchmarkId::new("baseline", "alexnet256"), |b| {
        b.iter(|| time_iteration(&base, &net).unwrap())
    });

    let mu = UcudnnHandle::new(
        CudnnHandle::simulated(p100_sxm2()),
        UcudnnOptions {
            policy: BatchSizePolicy::PowerOfTwo,
            workspace_limit_bytes: 64 * MIB,
            mode: OptimizerMode::Wr,
            ..Default::default()
        },
    );
    setup_network(&mu, &net).unwrap();
    group.bench_function(BenchmarkId::new("ucudnn_wr_p2", "alexnet256"), |b| {
        b.iter(|| time_iteration(&mu, &net).unwrap())
    });
    group.finish();
}

fn bench_setup(c: &mut Criterion) {
    let net = alexnet(256);
    let mut group = c.benchmark_group("network_setup");
    group.sample_size(10);
    for policy in [
        BatchSizePolicy::Undivided,
        BatchSizePolicy::PowerOfTwo,
        BatchSizePolicy::All,
    ] {
        group.bench_function(BenchmarkId::new("wr", policy.name()), |b| {
            b.iter(|| {
                // Fresh handle each time: measures cold optimization cost.
                let h = UcudnnHandle::new(
                    CudnnHandle::simulated(p100_sxm2()),
                    UcudnnOptions {
                        policy,
                        workspace_limit_bytes: 64 * MIB,
                        mode: OptimizerMode::Wr,
                        ..Default::default()
                    },
                );
                setup_network(&h, &net).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_iteration, bench_setup);
criterion_main!(benches);
