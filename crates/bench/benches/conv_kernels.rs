//! Criterion benches of the real CPU convolution engines: regression
//! tracking for the substrate's kernels (direct, GEMM, FFT, Winograd).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucudnn_conv::{exec, supports, workspace_floats, ConvOp, EngineKind};
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4, Tensor};

fn conv_geometries() -> Vec<(&'static str, ConvGeometry)> {
    vec![
        (
            "conv2-like-8x32x27",
            ConvGeometry::with_square(
                Shape4::new(8, 32, 27, 27),
                FilterShape::new(32, 32, 5, 5),
                2,
                1,
            ),
        ),
        (
            "res3x3-8x16x28",
            ConvGeometry::with_square(
                Shape4::new(8, 16, 28, 28),
                FilterShape::new(16, 16, 3, 3),
                1,
                1,
            ),
        ),
    ]
}

fn bench_forward(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_forward");
    for (name, g) in conv_geometries() {
        let x = Tensor::random(g.input, 1);
        let w = Tensor::random(g.filter.as_shape4(), 2);
        for engine in EngineKind::ALL {
            if !supports(engine, ConvOp::Forward, &g) {
                continue;
            }
            let mut y = Tensor::zeros(g.output());
            let mut ws = vec![0.0f32; workspace_floats(engine, ConvOp::Forward, &g)];
            group.bench_with_input(BenchmarkId::new(format!("{engine:?}"), name), &g, |b, g| {
                b.iter(|| {
                    exec(
                        engine,
                        ConvOp::Forward,
                        g,
                        x.as_slice(),
                        w.as_slice(),
                        y.as_mut_slice(),
                        1.0,
                        0.0,
                        &mut ws,
                    )
                    .unwrap()
                })
            });
        }
    }
    group.finish();
}

fn bench_backward_filter(c: &mut Criterion) {
    let mut group = c.benchmark_group("conv_backward_filter");
    let (name, g) = &conv_geometries()[1];
    let x = Tensor::random(g.input, 3);
    let dy = Tensor::random(g.output(), 4);
    for engine in [EngineKind::Direct, EngineKind::Gemm, EngineKind::Fft] {
        if !supports(engine, ConvOp::BackwardFilter, g) {
            continue;
        }
        let mut dw = Tensor::zeros(g.filter.as_shape4());
        let mut ws = vec![0.0f32; workspace_floats(engine, ConvOp::BackwardFilter, g)];
        group.bench_with_input(BenchmarkId::new(format!("{engine:?}"), name), g, |b, g| {
            b.iter(|| {
                exec(
                    engine,
                    ConvOp::BackwardFilter,
                    g,
                    x.as_slice(),
                    dy.as_slice(),
                    dw.as_mut_slice(),
                    1.0,
                    0.0,
                    &mut ws,
                )
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_forward, bench_backward_filter);
criterion_main!(benches);
