//! Criterion benches of the optimizer itself: WR dynamic programming,
//! desirable-set construction (Pareto fronts) and the WD ILP — the costs
//! §IV-B attributes to μ-cuDNN's setup phase.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ucudnn::{desirable_set, optimize_wd, optimize_wr, BatchSizePolicy, BenchCache, KernelKey};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_gpu_model::p100_sxm2;
use ucudnn_tensor::{ConvGeometry, FilterShape, Shape4};

const MIB: usize = 1024 * 1024;

fn conv2(n: usize) -> KernelKey {
    let g = ConvGeometry::with_square(
        Shape4::new(n, 64, 27, 27),
        FilterShape::new(192, 64, 5, 5),
        2,
        1,
    );
    KernelKey::new(ConvOp::Forward, &g)
}

fn bench_wr(c: &mut Criterion) {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let mut group = c.benchmark_group("wr_dp");
    for (policy, batch) in [
        (BatchSizePolicy::PowerOfTwo, 256usize),
        (BatchSizePolicy::All, 256),
        (BatchSizePolicy::All, 1024),
    ] {
        // Warm cache outside the measurement so the bench isolates the DP
        // (benchmarks themselves are covered by the cache-stats bench).
        let cache = BenchCache::new();
        optimize_wr(&handle, &cache, &conv2(batch), 64 * MIB, policy, false).unwrap();
        group.bench_with_input(
            BenchmarkId::new(policy.name(), batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    optimize_wr(&handle, &cache, &conv2(batch), 64 * MIB, policy, false).unwrap()
                })
            },
        );
    }
    group.finish();
}

fn bench_pareto(c: &mut Criterion) {
    let handle = CudnnHandle::simulated(p100_sxm2());
    let mut group = c.benchmark_group("desirable_set");
    group.sample_size(10);
    for batch in [64usize, 256] {
        let cache = BenchCache::new();
        desirable_set(
            &handle,
            &cache,
            &conv2(batch),
            120 * MIB,
            BatchSizePolicy::PowerOfTwo,
        );
        group.bench_with_input(
            BenchmarkId::new("powerOfTwo", batch),
            &batch,
            |b, &batch| {
                b.iter(|| {
                    desirable_set(
                        &handle,
                        &cache,
                        &conv2(batch),
                        120 * MIB,
                        BatchSizePolicy::PowerOfTwo,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_wd_ilp(c: &mut Criterion) {
    let handle = CudnnHandle::simulated(p100_sxm2());
    // An AlexNet-flavoured kernel set.
    let kernels: Vec<KernelKey> = {
        let net_geoms = [
            (64usize, 27usize, 192usize, 5usize, 2usize),
            (192, 13, 384, 3, 1),
            (384, 13, 256, 3, 1),
            (256, 13, 256, 3, 1),
        ];
        net_geoms
            .iter()
            .flat_map(|&(c_in, hw, k, r, pad)| {
                let g = ConvGeometry::with_square(
                    Shape4::new(64, c_in, hw, hw),
                    FilterShape::new(k, c_in, r, r),
                    pad,
                    1,
                );
                ConvOp::ALL.map(|op| KernelKey::new(op, &g))
            })
            .collect()
    };
    let mut group = c.benchmark_group("wd_ilp");
    group.sample_size(10);
    for total_mib in [64usize, 512] {
        let cache = BenchCache::new();
        optimize_wd(
            &handle,
            &cache,
            &kernels,
            total_mib * MIB,
            BatchSizePolicy::PowerOfTwo,
        )
        .unwrap();
        group.bench_with_input(
            BenchmarkId::new("alexnet_kernels", total_mib),
            &total_mib,
            |b, &total_mib| {
                b.iter(|| {
                    optimize_wd(
                        &handle,
                        &cache,
                        &kernels,
                        total_mib * MIB,
                        BatchSizePolicy::PowerOfTwo,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_wr, bench_pareto, bench_wd_ilp);
criterion_main!(benches);
