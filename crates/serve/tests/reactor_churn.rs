//! Connection-churn soak: 1k connect/request/disconnect cycles with live
//! pipelined traffic riding alongside, then a leak audit — the process must
//! return to its pre-churn file-descriptor count and the reactor must join
//! all of its threads on stop.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ucudnn::{IngressOptions, ServeOptions};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_serve::{BatchRunner, RealModelRunner, Server, TcpFrontend};

fn sample(i: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|j| ((i * 31 + j) % 17) as f32 * 0.05)
        .collect()
}

fn request_line(id: usize, len: usize) -> String {
    let input = sample(id, len)
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"id\":{id},\"input\":[{input}]}}\n")
}

#[cfg(target_os = "linux")]
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").expect("procfs").count()
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn churn_1k_cycles_with_live_traffic_leaks_nothing() {
    const CYCLES: usize = 1_000;

    let runner = Arc::new(RealModelRunner::new(CudnnHandle::real_cpu(), 31, 8));
    let len = runner.sample_len();
    let server = Arc::new(Server::start(
        runner,
        &ServeOptions {
            slo_us: 2_000_000.0,
            queue_cap: 256,
            workers: 2,
            max_batch: 8,
        },
    ));
    let tcp = TcpFrontend::start_with(
        Arc::clone(&server),
        "127.0.0.1:0",
        &IngressOptions {
            max_conns: 1024,
            loops: 2,
            backend: None,
        },
    )
    .expect("bind");
    let addr = tcp.local_addr();

    // Warm both event loops (round-robin placement) so their pollers exist,
    // then take the baseline fd count. (read_dir itself holds one fd; it
    // does so in both measurements, so the comparison is exact.)
    for i in 0..2 {
        let mut s = TcpStream::connect(addr).expect("warmup connect");
        let mut r = BufReader::new(s.try_clone().unwrap());
        s.write_all(request_line(i, len).as_bytes()).unwrap();
        let mut resp = String::new();
        r.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"ok\":true"), "warmup failed: {resp}");
    }
    assert!(
        wait_until(Duration::from_secs(5), || tcp.active_connections() == 0),
        "warmup connections never closed"
    );
    #[cfg(target_os = "linux")]
    let fd_baseline = open_fds();

    // A long-lived connection pipelining traffic for the whole soak: churn
    // must not disturb an unrelated conversation.
    let stop_live = Arc::new(AtomicBool::new(false));
    let live = {
        let stop = Arc::clone(&stop_live);
        let line = request_line(999, len);
        std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            let mut r = BufReader::new(s.try_clone().unwrap());
            let mut served = 0u64;
            while !stop.load(Ordering::Relaxed) {
                s.write_all(line.as_bytes()).unwrap();
                let mut resp = String::new();
                r.read_line(&mut resp).unwrap();
                assert!(
                    resp.contains("\"ok\":true"),
                    "live traffic failed mid-churn: {resp}"
                );
                served += 1;
            }
            served
        })
    };

    for i in 0..CYCLES {
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut r = BufReader::new(s.try_clone().unwrap());
        s.write_all(request_line(i, len).as_bytes()).unwrap();
        let mut resp = String::new();
        r.read_line(&mut resp).unwrap();
        assert!(resp.contains("\"ok\":true"), "cycle {i} failed: {resp}");
        // Alternate orderly and abrupt teardown so both close paths churn.
        if i % 2 == 0 {
            let _ = s.shutdown(std::net::Shutdown::Both);
        }
        drop(s);
    }

    stop_live.store(true, Ordering::Relaxed);
    let live_served = live.join().expect("live traffic thread");
    assert!(live_served > 0, "the live connection never served");

    let m = server.metrics();
    assert!(
        m.conn_accepted.get() >= (CYCLES + 1) as u64,
        "accept ledger undercounts: {}",
        m.conn_accepted.get()
    );
    assert_eq!(m.conn_rejected.get(), 0);
    assert_eq!(m.shed_total(), 0, "churn at this rate must not shed");

    // Every churned connection must leave the reactor's ledger...
    assert!(
        wait_until(Duration::from_secs(10), || tcp.active_connections() == 0),
        "connections leaked in the ledger: {}",
        tcp.active_connections()
    );
    // ...and every kernel resource must come back.
    #[cfg(target_os = "linux")]
    assert!(
        wait_until(Duration::from_secs(10), || open_fds() == fd_baseline),
        "fd leak: baseline {fd_baseline}, now {} ({:?})",
        open_fds(),
        std::fs::read_dir("/proc/self/fd")
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| {
                let p = e.path();
                format!(
                    "{}->{}",
                    p.display(),
                    std::fs::read_link(&p)
                        .map(|t| t.display().to_string())
                        .unwrap_or_default()
                )
            })
            .collect::<Vec<_>>()
    );

    // stop() must join the loop threads and release the listener + wakers.
    #[cfg(target_os = "linux")]
    let fd_with_frontend = open_fds();
    tcp.stop();
    #[cfg(target_os = "linux")]
    assert!(
        open_fds() < fd_with_frontend,
        "stop() must close the listener and per-loop fds"
    );
    server.drain();
}
