//! End-to-end tests of the threaded server: real CPU numerics through the
//! μ-cuDNN wrapper, concurrent submitters, graceful drain, fault injection,
//! and the TCP front-end.

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ucudnn::ServeOptions;
use ucudnn_cudnn_sim::{CudnnHandle, FaultPlan, FaultSite, FaultTarget};
use ucudnn_serve::{BatchRunner, RealModelRunner, ServeMetrics, Server, ShedReason, TcpFrontend};

fn opts() -> ServeOptions {
    ServeOptions {
        slo_us: 2_000_000.0, // generous: these tests assert behaviour, not speed
        queue_cap: 256,
        workers: 2,
        max_batch: 8,
    }
}

fn sample(i: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|j| ((i * 31 + j) % 17) as f32 * 0.05)
        .collect()
}

#[test]
fn concurrent_submitters_all_complete_with_correct_outputs() {
    let runner = Arc::new(RealModelRunner::new(CudnnHandle::real_cpu(), 7, 8));
    let server = Arc::new(Server::start(runner.clone(), &opts()));
    let n_req = 48;
    let len = runner.sample_len();

    let mut handles = Vec::new();
    for t in 0..4 {
        let server = Arc::clone(&server);
        handles.push(std::thread::spawn(move || {
            let mut out = Vec::new();
            for i in 0..n_req / 4 {
                let idx = t * (n_req / 4) + i;
                let ticket = server.submit(sample(idx, len)).expect("admitted");
                out.push((idx, ticket.wait().expect("completed")));
            }
            out
        }));
    }
    let mut responses = Vec::new();
    for h in handles {
        responses.extend(h.join().unwrap());
    }
    assert_eq!(responses.len(), n_req);

    // Batch membership must not change the answer: every response matches
    // the same request run alone, up to f32 rounding (different batch
    // sizes reassociate the GEMM sums, so exact equality is not the
    // contract — agreement to float tolerance is).
    for (idx, resp) in &responses {
        let solo = runner.run(1, &sample(*idx, len)).unwrap();
        assert_eq!(resp.output.len(), solo.len());
        for (k, (got, want)) in resp.output.iter().zip(&solo).enumerate() {
            assert!(
                (got - want).abs() <= 1e-4 * want.abs().max(1.0),
                "request {idx} (batch {}), logit {k}: {got} vs solo {want}",
                resp.batch
            );
        }
        assert!(resp.latency_us >= 0.0);
        assert!(resp.batch >= 1 && resp.batch <= 8);
    }

    let metrics = server.metrics();
    assert_eq!(metrics.completed.get(), n_req as u64);
    assert_eq!(metrics.shed_total(), 0);
    assert!(metrics.batches.get() >= 1);
    // The shared plan cache saw every batch size the scheduler fired.
    let stats = runner.provider().inner().exec_cache_stats();
    assert!(stats.hits > 0, "plan cache must be reused across requests");
    server.drain();
}

#[test]
fn drain_finishes_queued_work_and_refuses_new_work() {
    let runner = Arc::new(RealModelRunner::new(CudnnHandle::real_cpu(), 3, 4));
    let server = Server::start(runner.clone(), &opts());
    let len = runner.sample_len();
    let tickets: Vec<_> = (0..12)
        .map(|i| server.submit(sample(i, len)).expect("admitted"))
        .collect();
    server.drain();
    // Everything admitted before the drain resolves successfully.
    for t in tickets {
        t.wait().expect("drained work must complete");
    }
    // New work is refused with the drain verdict.
    match server.submit(sample(0, len)) {
        Err(ShedReason::Draining) => {}
        Err(other) => panic!("expected Draining, got {other:?}"),
        Ok(_) => panic!("expected Draining, got an admitted ticket"),
    }
    assert!(server.metrics_json().contains("\"draining\":1"));
}

#[test]
fn transient_faults_are_retried_within_budget() {
    // Every execution-site fault key fails twice, then succeeds; the
    // wrapper's retry budget equals the plan's transient_tries, so the
    // serving path must absorb every fault without shedding anything.
    let handle = CudnnHandle::real_cpu().with_faults(FaultPlan {
        targets: vec![FaultTarget {
            site: Some(FaultSite::Execution),
            ..FaultTarget::any()
        }],
        transient_tries: 2,
        ..FaultPlan::default()
    });
    let runner = Arc::new(RealModelRunner::new(handle, 11, 4));
    let server = Server::start(runner.clone(), &opts());
    let len = runner.sample_len();
    let tickets: Vec<_> = (0..10)
        .map(|i| server.submit(sample(i, len)).expect("admitted"))
        .collect();
    for t in tickets {
        t.wait()
            .expect("transient faults must be retried to success");
    }
    assert!(
        runner.provider().inner().faults_injected() > 0,
        "the plan must actually have fired"
    );
    let m = server.metrics();
    assert_eq!(m.shed_total(), 0);
    server.drain();
}

/// A runner that permanently fails one micro-batch size — the serving-side
/// stand-in for a persistent `CUDNN_STATUS_EXECUTION_FAILED` on a specific
/// plan.
struct FaultyRunner {
    inner: RealModelRunner,
    poisoned: usize,
    failures: AtomicU64,
}

impl BatchRunner for FaultyRunner {
    fn sample_len(&self) -> usize {
        self.inner.sample_len()
    }
    fn output_len(&self) -> usize {
        self.inner.output_len()
    }
    fn batch_sizes(&self) -> Vec<usize> {
        self.inner.batch_sizes()
    }
    fn run(&self, n: usize, inputs: &[f32]) -> Result<Vec<f32>, String> {
        if n == self.poisoned {
            self.failures.fetch_add(1, Ordering::Relaxed);
            return Err(format!("injected permanent fault at micro-batch {n}"));
        }
        self.inner.run(n, inputs)
    }
    fn latency_table(&self) -> Vec<(usize, f64)> {
        self.inner.latency_table()
    }
}

#[test]
fn permanent_faults_shed_only_the_affected_micro_batch() {
    let runner = Arc::new(FaultyRunner {
        inner: RealModelRunner::new(CudnnHandle::real_cpu(), 5, 8),
        poisoned: 8,
        failures: AtomicU64::new(0),
    });
    let server = Server::start(runner.clone(), &opts());
    let len = runner.sample_len();
    // Submit in waves; some will coalesce to the poisoned size 8, others
    // ride smaller micro-batches and must succeed.
    let tickets: Vec<_> = (0..40)
        .map(|i| server.submit(sample(i, len)).expect("admitted"))
        .collect();
    let mut ok = 0u64;
    let mut exec_failed = 0u64;
    for t in tickets {
        match t.wait() {
            Ok(_) => ok += 1,
            Err(ShedReason::ExecFailed) => exec_failed += 1,
            Err(other) => panic!("unexpected shed reason {other:?}"),
        }
    }
    assert_eq!(ok + exec_failed, 40);
    // The server survived the faults: whatever was shed is tallied, the
    // rest completed, and the degradation counter moved iff faults fired.
    let m: Arc<ServeMetrics> = server.metrics();
    assert_eq!(m.completed.get(), ok);
    assert_eq!(m.shed_exec_failed.get(), exec_failed);
    let fired = runner.failures.load(Ordering::Relaxed);
    assert_eq!(
        fired > 0,
        exec_failed > 0,
        "sheds must correspond to injected failures"
    );
    assert_eq!(m.degradations.get() > 0, fired > 0);
    // The server is still serving after the faults.
    server
        .submit(sample(99, len))
        .expect("admitted")
        .wait()
        .expect("post-fault request must complete");
    server.drain();
}

#[test]
fn tcp_frontend_serves_the_line_protocol() {
    let runner = Arc::new(RealModelRunner::new(CudnnHandle::real_cpu(), 13, 4));
    let server = Arc::new(Server::start(runner.clone(), &opts()));
    let tcp = TcpFrontend::start(Arc::clone(&server), "127.0.0.1:0").expect("bind");
    let addr = tcp.local_addr();

    let mut stream = std::net::TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let len = runner.sample_len();

    for i in 0..3 {
        let input = sample(i, len)
            .iter()
            .map(|v| format!("{v}"))
            .collect::<Vec<_>>()
            .join(",");
        writeln!(stream, "{{\"id\":{i},\"input\":[{input}]}}").unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = ucudnn::json::Value::parse(line.trim()).expect("valid response JSON");
        assert_eq!(v.get("id").unwrap().as_u64(), Some(i as u64));
        assert_eq!(v.get("ok"), Some(&ucudnn::json::Value::Bool(true)));
        let argmax = v.get("argmax").unwrap().as_usize().unwrap();
        assert!(argmax < runner.output_len());
    }

    // Malformed lines answer with an error instead of dropping the link.
    writeln!(stream, "this is not json").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = ucudnn::json::Value::parse(line.trim()).unwrap();
    assert_eq!(v.get("ok"), Some(&ucudnn::json::Value::Bool(false)));
    assert_eq!(v.get("error").unwrap().as_str(), Some("bad_json"));

    writeln!(stream, "{{\"id\":9,\"input\":[1.0]}}").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = ucudnn::json::Value::parse(line.trim()).unwrap();
    assert_eq!(v.get("error").unwrap().as_str(), Some("bad_input_len"));

    drop(stream);
    tcp.stop();
    server.drain();
}
