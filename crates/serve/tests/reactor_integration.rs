//! End-to-end tests of the ingress reactor: framing across partial reads,
//! pipelining through the per-connection sequencer, STATS interleaving,
//! write/admission backpressure, the connection cap, backend parity, and
//! graceful drain.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};
use ucudnn::json::Value;
use ucudnn::{IngressBackend, IngressOptions, ServeOptions};
use ucudnn_cudnn_sim::CudnnHandle;
use ucudnn_serve::{BatchRunner, RealModelRunner, Server, TcpFrontend};

fn opts() -> ServeOptions {
    ServeOptions {
        slo_us: 2_000_000.0, // generous: these tests assert behaviour, not speed
        queue_cap: 256,
        workers: 2,
        max_batch: 8,
    }
}

fn ingress(loops: usize) -> IngressOptions {
    IngressOptions {
        max_conns: 1024,
        loops,
        backend: None,
    }
}

fn sample(i: usize, len: usize) -> Vec<f32> {
    (0..len)
        .map(|j| ((i * 31 + j) % 17) as f32 * 0.05)
        .collect()
}

fn request_line(id: usize, len: usize) -> String {
    let input = sample(id, len)
        .iter()
        .map(|v| format!("{v}"))
        .collect::<Vec<_>>()
        .join(",");
    format!("{{\"id\":{id},\"input\":[{input}]}}\n")
}

fn real_frontend(seed: u64, io: &IngressOptions) -> (Arc<Server>, TcpFrontend, usize) {
    let runner = Arc::new(RealModelRunner::new(CudnnHandle::real_cpu(), seed, 8));
    let len = runner.sample_len();
    let server = Arc::new(Server::start(runner, &opts()));
    let tcp = TcpFrontend::start_with(Arc::clone(&server), "127.0.0.1:0", io).expect("bind");
    (server, tcp, len)
}

fn wait_until(deadline: Duration, mut cond: impl FnMut() -> bool) -> bool {
    let end = Instant::now() + deadline;
    while Instant::now() < end {
        if cond() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    cond()
}

#[test]
fn partial_lines_reassemble_across_reads() {
    let (server, tcp, len) = real_frontend(21, &ingress(1));
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // One request dribbled in three writes with pauses: the reactor must
    // buffer the partial frame across readiness events.
    let line = request_line(5, len);
    let bytes = line.as_bytes();
    for chunk in [
        &bytes[..7],
        &bytes[7..bytes.len() - 3],
        &bytes[bytes.len() - 3..],
    ] {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(20));
    }
    let mut resp = String::new();
    reader.read_line(&mut resp).unwrap();
    let v = Value::parse(resp.trim()).expect("valid response");
    assert_eq!(v.get("id").unwrap().as_u64(), Some(5));
    assert_eq!(v.get("ok"), Some(&Value::Bool(true)));

    drop(stream);
    tcp.stop();
    server.drain();
}

#[test]
fn pipelined_requests_answer_strictly_in_order() {
    let (server, tcp, len) = real_frontend(22, &ingress(2));
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // One write carrying 16 requests: the batcher may complete them out of
    // order across micro-batches, but the sequencer must emit responses in
    // request order.
    let mut frame = String::new();
    for i in 0..16 {
        frame.push_str(&request_line(i, len));
    }
    stream.write_all(frame.as_bytes()).unwrap();
    for i in 0..16 {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = Value::parse(line.trim()).expect("valid response");
        assert_eq!(v.get("id").unwrap().as_u64(), Some(i as u64), "order broke");
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }

    drop(stream);
    tcp.stop();
    server.drain();
}

#[test]
fn stats_interleaves_mid_stream_in_slot_order() {
    let (server, tcp, len) = real_frontend(23, &ingress(1));
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // request, STATS, request — pipelined in one write. The exposition is
    // instant while the requests batch through workers, so only the
    // sequencer keeps it in its slot between the two responses.
    let frame = format!("{}STATS\n{}", request_line(0, len), request_line(1, len));
    stream.write_all(frame.as_bytes()).unwrap();

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Value::parse(line.trim()).expect("first response");
    assert_eq!(v.get("id").unwrap().as_u64(), Some(0));

    // The multi-line exposition, terminated by "# EOF".
    let mut saw_metric = false;
    loop {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        if l.starts_with("ucudnn_serve_conn_accepted_total") {
            saw_metric = true;
        }
        assert!(
            !l.starts_with('{'),
            "response leaked into the exposition: {l}"
        );
        if l.trim() == "# EOF" {
            break;
        }
    }
    assert!(saw_metric, "exposition must include ingress counters");

    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let v = Value::parse(line.trim()).expect("second response");
    assert_eq!(v.get("id").unwrap().as_u64(), Some(1));

    drop(stream);
    tcp.stop();
    server.drain();
}

#[test]
fn a_slow_reader_trips_write_backpressure_and_loses_nothing() {
    let (server, tcp, _len) = real_frontend(24, &ingress(1));
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();

    // Thousands of pipelined STATS with no reader: the outbound buffer
    // crosses the high-water mark, read interest parks, kernel buffers
    // absorb the rest of the request frame.
    const N: usize = 4_000;
    let frame = "STATS\n".repeat(N);
    stream.write_all(frame.as_bytes()).unwrap();
    let m = server.metrics();
    assert!(
        wait_until(Duration::from_secs(10), || m.conn_write_backpressure.get()
            > 0),
        "write backpressure never tripped"
    );

    // Now read: every exposition arrives, complete and in order, as the
    // park/unpark cycle drains the backlog.
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut eofs = 0;
    while eofs < N {
        let mut l = String::new();
        assert!(reader.read_line(&mut l).unwrap() > 0, "stream ended early");
        if l.trim() == "# EOF" {
            eofs += 1;
        }
    }
    assert_eq!(eofs, N);

    drop(stream);
    drop(reader);
    tcp.stop();
    server.drain();
}

/// A deliberately slow runner: each micro-batch holds a worker long enough
/// for the admission queue to fill under a pipelined burst.
struct SlowRunner;

impl BatchRunner for SlowRunner {
    fn sample_len(&self) -> usize {
        4
    }
    fn output_len(&self) -> usize {
        2
    }
    fn batch_sizes(&self) -> Vec<usize> {
        vec![1, 2, 4]
    }
    fn run(&self, n: usize, _inputs: &[f32]) -> Result<Vec<f32>, String> {
        std::thread::sleep(Duration::from_millis(3));
        Ok(vec![0.5; n * 2])
    }
    fn latency_table(&self) -> Vec<(usize, f64)> {
        vec![(1, 3_000.0), (2, 3_100.0), (4, 3_200.0)]
    }
}

#[test]
fn a_full_admission_queue_parks_reads_instead_of_shedding() {
    let server = Arc::new(Server::start(
        Arc::new(SlowRunner),
        &ServeOptions {
            slo_us: 10_000_000.0,
            queue_cap: 4,
            workers: 1,
            max_batch: 4,
        },
    ));
    let tcp = TcpFrontend::start_with(Arc::clone(&server), "127.0.0.1:0", &ingress(1)).unwrap();
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());

    // 64 pipelined requests against a queue of 4 over a slow worker: the
    // reactor must pause admission (kernel buffers hold the surplus) and
    // trickle everything through with zero sheds.
    const N: usize = 64;
    let mut frame = String::new();
    for i in 0..N {
        frame.push_str(&format!("{{\"id\":{i},\"input\":[0.1,0.2,0.3,0.4]}}\n"));
    }
    stream.write_all(frame.as_bytes()).unwrap();
    for i in 0..N {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = Value::parse(line.trim()).expect("valid response");
        assert_eq!(v.get("id").unwrap().as_u64(), Some(i as u64));
        assert_eq!(
            v.get("ok"),
            Some(&Value::Bool(true)),
            "request {i} was shed: {line}"
        );
    }
    let m = server.metrics();
    assert!(
        m.conn_admission_pause.get() > 0,
        "the burst must have parked read interest at least once"
    );
    assert_eq!(
        m.shed_total(),
        0,
        "backpressure must precede the shed ladder"
    );
    assert_eq!(m.completed.get(), N as u64);

    drop(stream);
    tcp.stop();
    server.drain();
}

#[test]
fn the_connection_cap_rejects_at_the_listener() {
    let (server, tcp, len) = real_frontend(
        25,
        &IngressOptions {
            max_conns: 2,
            loops: 1,
            backend: None,
        },
    );
    let m = server.metrics();
    let mut keep: Vec<TcpStream> = Vec::new();
    for i in 0..2 {
        let mut s = TcpStream::connect(tcp.local_addr()).unwrap();
        let mut r = BufReader::new(s.try_clone().unwrap());
        s.write_all(request_line(i, len).as_bytes()).unwrap();
        let mut line = String::new();
        r.read_line(&mut line).unwrap();
        assert!(line.contains("\"ok\":true"), "conn {i} must serve: {line}");
        keep.push(s);
    }
    // The third connection is dropped before any protocol state exists.
    let mut third = TcpStream::connect(tcp.local_addr()).unwrap();
    assert!(
        wait_until(Duration::from_secs(5), || m.conn_rejected.get() > 0),
        "the cap never rejected"
    );
    third
        .set_read_timeout(Some(Duration::from_secs(5)))
        .unwrap();
    let mut buf = [0u8; 16];
    match third.read(&mut buf) {
        Ok(0) => {} // clean close
        Ok(n) => panic!("rejected connection served {n} bytes"),
        Err(_) => {} // reset — also a refusal
    }
    // Freeing a slot re-opens the door.
    drop(keep.pop());
    assert!(
        wait_until(Duration::from_secs(5), || m.conn_active.get() < 2.0),
        "closed connection never left the ledger"
    );
    let mut s = TcpStream::connect(tcp.local_addr()).unwrap();
    let mut r = BufReader::new(s.try_clone().unwrap());
    s.write_all(request_line(7, len).as_bytes()).unwrap();
    let mut line = String::new();
    r.read_line(&mut line).unwrap();
    assert!(
        line.contains("\"ok\":true"),
        "freed slot must serve: {line}"
    );

    drop(s);
    drop(keep);
    tcp.stop();
    server.drain();
}

#[test]
fn the_poll_backend_serves_the_identical_protocol() {
    let (server, tcp, len) = real_frontend(
        26,
        &IngressOptions {
            max_conns: 64,
            loops: 2,
            backend: Some(IngressBackend::Poll),
        },
    );
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let frame = format!("{}STATS\n{}", request_line(0, len), request_line(1, len));
    stream.write_all(frame.as_bytes()).unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"id\":0") && line.contains("\"ok\":true"));
    loop {
        let mut l = String::new();
        reader.read_line(&mut l).unwrap();
        if l.trim() == "# EOF" {
            break;
        }
    }
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("\"id\":1") && line.contains("\"ok\":true"));

    drop(stream);
    tcp.stop();
    server.drain();
}

#[test]
fn an_unterminated_final_line_is_served_on_eof() {
    let (server, tcp, len) = real_frontend(28, &ingress(1));
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    // A terminated request pipelined with a final fragment missing its
    // newline, then half-close: the old thread-per-connection front-end
    // served the trailing fragment, so the reactor must answer both.
    let frame = format!("{}{}", request_line(0, len), request_line(1, len));
    stream.write_all(frame.trim_end().as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    let mut reader = BufReader::new(stream);
    for i in 0..2u64 {
        let mut resp = String::new();
        assert!(
            reader.read_line(&mut resp).unwrap() > 0,
            "response {i} never arrived"
        );
        let v = Value::parse(resp.trim()).expect("valid response");
        assert_eq!(v.get("id").unwrap().as_u64(), Some(i));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }
    // Everything owed was delivered; the connection must then close
    // cleanly rather than linger idle.
    let mut rest = String::new();
    assert_eq!(reader.read_line(&mut rest).unwrap(), 0, "conn lingered");

    tcp.stop();
    server.drain();
}

#[test]
fn completion_driven_write_pause_does_not_kill_live_senders() {
    // Regression for the phantom-HUP race: a completion delivered through
    // the loop inbox can push a connection's outbound buffer over the
    // high-water mark and park its read interest mid-tick. Under the old
    // inbox-before-events ordering, a data-arrival readiness event
    // captured in the same wait batch then matched "readable while reads
    // parked" — the unmaskable-HUP signature — and the live connection was
    // torn down as a write error. The amplifier here: each round pipelines
    // one slow submit followed by a pile of STATS verbs, whose multi-KB
    // expositions queue in the reorder buffer *behind* the pending submit;
    // the submit's inbox completion then releases them all at once, so one
    // Complete message grows `out` by hundreds of KB while the writer half
    // keeps the socket's inbound side non-empty.
    let server = Arc::new(Server::start(
        Arc::new(SlowRunner),
        &ServeOptions {
            slo_us: 60_000_000.0,
            queue_cap: 4096,
            workers: 2,
            max_batch: 4,
        },
    ));
    let tcp = TcpFrontend::start_with(Arc::clone(&server), "127.0.0.1:0", &ingress(1)).unwrap();
    // Size the STATS pile so one released round crosses the 256 KiB
    // high-water mark on its own.
    let stats_per_round = 1 + 300 * 1024 / server.exposition().len();
    const CONNS: usize = 8;
    const ROUNDS: usize = 40;
    let mut clients = Vec::new();
    for _ in 0..CONNS {
        let addr = tcp.local_addr();
        clients.push(std::thread::spawn(move || {
            let mut stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let w = std::thread::spawn(move || {
                let mut round = "{\"id\":7,\"input\":[0.1,0.2,0.3,0.4]}\n".to_string();
                round.push_str(&"STATS\n".repeat(stats_per_round));
                for _ in 0..ROUNDS {
                    stream.write_all(round.as_bytes()).unwrap();
                    // Just under the submit's 3 ms service time: the next
                    // round's bytes arrive while the previous completion is
                    // being delivered.
                    std::thread::sleep(Duration::from_millis(2));
                }
                stream
            });
            // Read continuously: each drain below the low-water mark
            // re-arms read interest, so every round produces a fresh
            // park transition racing a fresh data arrival.
            for round in 0..ROUNDS {
                let mut line = String::new();
                assert!(
                    reader.read_line(&mut line).unwrap() > 0,
                    "connection died at round {round}"
                );
                let v = Value::parse(line.trim()).expect("valid response");
                assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
                let mut eofs = 0;
                while eofs < stats_per_round {
                    let mut l = String::new();
                    assert!(
                        reader.read_line(&mut l).unwrap() > 0,
                        "connection died mid-exposition at round {round}"
                    );
                    if l.trim() == "# EOF" {
                        eofs += 1;
                    }
                }
            }
            drop(w.join().unwrap());
        }));
    }
    for c in clients {
        c.join().expect("client thread panicked");
    }
    let m = server.metrics();
    assert!(
        m.conn_write_backpressure.get() > 0,
        "the STATS pile must trip the write high-water mark"
    );
    assert_eq!(
        m.conn_write_err.get(),
        0,
        "a live connection was torn down as dead"
    );
    assert_eq!(m.completed.get(), (CONNS * ROUNDS) as u64);

    tcp.stop();
    server.drain();
}

#[test]
fn data_arriving_during_admission_pause_is_not_mistaken_for_hangup() {
    // Regression: a readable event captured while EV_READ was armed used
    // to be reclassified as a hangup when an inbox completion parked the
    // read interest in the same wait batch — tearing down a live
    // connection precisely under queue-full backpressure. Dribble writes
    // against a full queue while responses flow; the connection must
    // survive with every response delivered in order.
    let server = Arc::new(Server::start(
        Arc::new(SlowRunner),
        &ServeOptions {
            slo_us: 10_000_000.0,
            queue_cap: 2,
            workers: 1,
            max_batch: 2,
        },
    ));
    let tcp = TcpFrontend::start_with(Arc::clone(&server), "127.0.0.1:0", &ingress(1)).unwrap();
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    const N: usize = 48;
    let writer = std::thread::spawn(move || {
        for i in 0..N {
            stream
                .write_all(format!("{{\"id\":{i},\"input\":[0.1,0.2,0.3,0.4]}}\n").as_bytes())
                .unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
        stream
    });
    for i in 0..N {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "connection died at response {i}"
        );
        let v = Value::parse(line.trim()).expect("valid response");
        assert_eq!(v.get("id").unwrap().as_u64(), Some(i as u64));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
    }
    let stream = writer.join().unwrap();
    let m = server.metrics();
    assert_eq!(
        m.conn_write_err.get(),
        0,
        "a live connection was torn down as dead"
    );
    assert_eq!(m.completed.get(), N as u64);

    drop(stream);
    drop(reader);
    tcp.stop();
    server.drain();
}

#[test]
fn half_close_delivers_everything_owed_then_closes() {
    let (server, tcp, len) = real_frontend(27, &ingress(1));
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    let mut frame = String::new();
    for i in 0..8 {
        frame.push_str(&request_line(i, len));
    }
    stream.write_all(frame.as_bytes()).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();

    // EOF with eight requests in flight: the connection must finish all
    // eight responses before closing its side.
    let mut reader = BufReader::new(stream);
    let mut got = 0;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let v = Value::parse(line.trim()).expect("valid response");
        assert_eq!(v.get("id").unwrap().as_u64(), Some(got as u64));
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        got += 1;
    }
    assert_eq!(got, 8, "half-close must not drop owed responses");

    tcp.stop();
    server.drain();
}

#[test]
fn stop_drains_in_flight_responses_before_closing() {
    let server = Arc::new(Server::start(
        Arc::new(SlowRunner),
        &ServeOptions {
            slo_us: 10_000_000.0,
            queue_cap: 64,
            workers: 1,
            max_batch: 4,
        },
    ));
    let tcp = TcpFrontend::start_with(Arc::clone(&server), "127.0.0.1:0", &ingress(1)).unwrap();
    let mut stream = TcpStream::connect(tcp.local_addr()).unwrap();
    const N: usize = 8;
    let mut frame = String::new();
    for i in 0..N {
        frame.push_str(&format!("{{\"id\":{i},\"input\":[0.1,0.2,0.3,0.4]}}\n"));
    }
    stream.write_all(frame.as_bytes()).unwrap();
    // Let the reactor ingest and submit the burst, then stop mid-flight:
    // the drain must deliver every admitted response before closing.
    let m = server.metrics();
    assert!(wait_until(Duration::from_secs(5), || m.submitted.get() >= 1));
    tcp.stop();
    let mut reader = BufReader::new(stream);
    let mut got = 0u64;
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let v = Value::parse(line.trim()).expect("valid response");
        assert_eq!(v.get("ok"), Some(&Value::Bool(true)));
        got += 1;
    }
    assert_eq!(
        got,
        m.completed.get(),
        "every request completed by the server must reach the socket"
    );
    assert!(got >= 1, "the drain must have delivered something");
    server.drain();
}
