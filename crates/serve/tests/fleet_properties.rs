//! Property tests for the fleet tier (DESIGN.md §16): SLO safety under
//! arbitrary heterogeneous loads, zero ticket loss across replica
//! failures, and bit-reproducibility of the dispatch log.

use proptest::prelude::*;
use ucudnn::FleetRouterPolicy;
use ucudnn_serve::{run_fleet_sim, FleetReplicaConfig, FleetSimConfig, ReplicaFailure};

/// A replica latency table with launch-overhead economics
/// (`t(m) = overhead + per_sample * m` over power-of-two sizes), plus a
/// deterministic per-entry wobble so batching sweet spots differ per seed.
fn table_for(
    max_batch: usize,
    overhead: f64,
    per_sample: f64,
    wobble_seed: u64,
) -> Vec<(usize, f64)> {
    let mut rng = proptest::TestRng::new(wobble_seed.max(1));
    let mut sizes = Vec::new();
    let mut m = 1;
    while m < max_batch {
        sizes.push(m);
        m *= 2;
    }
    sizes.push(max_batch);
    sizes
        .into_iter()
        .map(|m| {
            let wobble = 1.0 + 0.2 * rng.next_f64();
            (m, (overhead + per_sample * m as f64) * wobble)
        })
        .collect()
}

/// A heterogeneous fleet whose speed ratios are themselves randomized: each
/// replica's per-sample cost scales up from the previous one's.
fn fleet_for(
    replicas: usize,
    max_batch: usize,
    base_per_sample: f64,
    spread: f64,
    queue_cap: usize,
    seed: u64,
) -> Vec<FleetReplicaConfig> {
    (0..replicas)
        .map(|i| {
            let scale = 1.0 + spread * i as f64;
            FleetReplicaConfig {
                name: format!("dev{i}"),
                table: table_for(
                    max_batch,
                    100.0 * scale,
                    base_per_sample * scale,
                    seed.wrapping_add(i as u64),
                ),
                workers: 2,
                queue_cap,
            }
        })
        .collect()
}

fn policies() -> impl Strategy<Value = FleetRouterPolicy> {
    prop_oneof![
        Just(FleetRouterPolicy::Feasibility),
        Just(FleetRouterPolicy::LeastLoaded),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The fleet-wide SLO-safety invariant: whatever the load, fleet shape,
    /// or routing policy, no admitted request ever finishes past its
    /// deadline — overload becomes typed sheds — and every offered request
    /// is accounted for exactly once across completions and sheds.
    #[test]
    fn admitted_requests_never_violate_the_slo(
        seed in 1u64..1_000_000,
        policy in policies(),
        replicas in 1usize..5,
        spread in 0.0f64..3.0,
        per_sample in 2.0f64..40.0,
        slo_us in 4_000.0f64..50_000.0,
        rate in 1_000.0f64..300_000.0,
        queue_cap in 8usize..256,
        requests in 100usize..400,
    ) {
        let max_batch = 16;
        let cfg = FleetSimConfig {
            seed,
            slo_us,
            max_batch,
            arrival_rate_rps: rate,
            requests,
            policy,
            replicas: fleet_for(replicas, max_batch, per_sample, spread, queue_cap, seed),
            fail: None,
        };
        let out = run_fleet_sim(&cfg);
        prop_assert_eq!(out.violations, 0);
        prop_assert_eq!(out.completed + out.shed.total(), requests as u64);
        // Per-replica accounting closes too: everything routed to a replica
        // either completed there or was shed with a typed reason.
        for r in &out.per_replica {
            prop_assert_eq!(r.routed, r.completed + r.shed);
        }
    }

    /// Zero ticket loss across a replica failure: kill an arbitrary replica
    /// at an arbitrary time; its queued tickets re-route to survivors or
    /// shed with a typed reason, the global accounting still closes, and
    /// the dead replica never fires again after the failure instant.
    #[test]
    fn replica_failure_loses_zero_tickets(
        seed in 1u64..1_000_000,
        policy in policies(),
        replicas in 2usize..5,
        rate in 20_000.0f64..250_000.0,
        fail_replica_pick in 0usize..5,
        fail_at_us in 1_000.0f64..40_000.0,
    ) {
        let max_batch = 16;
        let requests = 300;
        let fail_replica = fail_replica_pick % replicas;
        let cfg = FleetSimConfig {
            seed,
            slo_us: 20_000.0,
            max_batch,
            arrival_rate_rps: rate,
            requests,
            policy,
            replicas: fleet_for(replicas, max_batch, 10.0, 1.5, 64, seed),
            fail: Some(ReplicaFailure { replica: fail_replica, at_us: fail_at_us }),
        };
        let out = run_fleet_sim(&cfg);
        prop_assert_eq!(out.violations, 0);
        prop_assert_eq!(out.completed + out.shed.total(), requests as u64);
        // A re-routed ticket is counted as routed on both the dead replica
        // and its survivor, so the fleet-wide ledger closes modulo the
        // requeue count — nothing vanishes, nothing is double-resolved.
        let routed: u64 = out.per_replica.iter().map(|r| r.routed).sum();
        let resolved: u64 = out.per_replica.iter().map(|r| r.completed + r.shed).sum();
        prop_assert_eq!(routed, resolved + out.requeued);
        // No dispatch on the dead replica after its failure line.
        let dead = format!("replica={}", cfg.replicas[fail_replica].name);
        let mut failed = false;
        for line in &out.log {
            if line.starts_with("fail ") && line.contains(&dead) {
                failed = true;
            } else if failed {
                prop_assert!(
                    !(line.starts_with("fire") && line.contains(&dead)),
                    "dead replica fired after failure: {}", line
                );
            }
        }
    }

    /// Reproducibility: the same seed and replica set give byte-identical
    /// dispatch logs on replay; a different seed diverges (so the log
    /// reflects the load, not a constant).
    #[test]
    fn same_seed_and_fleet_is_byte_identical(
        seed in 1u64..1_000_000,
        policy in policies(),
        replicas in 1usize..4,
        rate in 5_000.0f64..150_000.0,
    ) {
        let max_batch = 16;
        let cfg = FleetSimConfig {
            seed,
            slo_us: 20_000.0,
            max_batch,
            arrival_rate_rps: rate,
            requests: 250,
            policy,
            replicas: fleet_for(replicas, max_batch, 8.0, 1.0, 64, seed),
            fail: None,
        };
        let a = run_fleet_sim(&cfg);
        let b = run_fleet_sim(&cfg);
        prop_assert_eq!(&a.log, &b.log);
        prop_assert_eq!(&a.batch_sizes, &b.batch_sizes);
        prop_assert_eq!(a.shed, b.shed);
        let c = run_fleet_sim(&FleetSimConfig { seed: seed + 1, ..cfg.clone() });
        prop_assert!(a.log != c.log, "different seed must produce a different load");
    }
}
