//! End-to-end online re-optimization on the *threaded* server: a runner
//! whose real execution time drifts mid-test, the drift detector watching
//! wall-clock micro-batch times, the background re-benchmark worker, and
//! the atomic plan hot-swap — all through the public `Server` API.
//!
//! Thresholds are deliberately generous (10× drift against a 3× detection
//! ratio, 10ms base latency) so host-timing noise cannot flip the verdict.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use ucudnn::ServeOptions;
use ucudnn_serve::{BatchRunner, ReoptConfig, Server};

/// Base execution time; large against OS sleep jitter.
const BASE_US: u64 = 10_000;
/// The mid-test slowdown multiplier.
const DRIFT: usize = 10;

/// A model that sleeps for `BASE_US * factor` per micro-batch, with a
/// declared latency table at the *current* factor — so `rebench()` observes
/// the drifted device exactly like a real re-benchmark would.
struct SleepRunner {
    factor: AtomicUsize,
}

impl SleepRunner {
    fn new() -> Self {
        Self {
            factor: AtomicUsize::new(1),
        }
    }
    fn current_us(&self) -> u64 {
        BASE_US * self.factor.load(Ordering::Relaxed) as u64
    }
}

impl BatchRunner for SleepRunner {
    fn sample_len(&self) -> usize {
        1
    }
    fn output_len(&self) -> usize {
        1
    }
    fn batch_sizes(&self) -> Vec<usize> {
        vec![1]
    }
    fn run(&self, n: usize, inputs: &[f32]) -> Result<Vec<f32>, String> {
        assert_eq!(inputs.len(), n);
        std::thread::sleep(Duration::from_micros(self.current_us()));
        Ok(inputs.to_vec())
    }
    fn latency_table(&self) -> Vec<(usize, f64)> {
        vec![(1, self.current_us() as f64)]
    }
}

fn opts() -> ServeOptions {
    ServeOptions {
        slo_us: 60_000_000.0,
        queue_cap: 64,
        workers: 1,
        max_batch: 1,
    }
}

fn detector() -> ReoptConfig {
    ReoptConfig {
        enabled: true,
        window_samples: 2,
        p50_ratio: 3.0,
        consecutive: 1,
    }
}

#[test]
fn drift_on_the_threaded_server_triggers_a_background_hot_swap() {
    let runner = Arc::new(SleepRunner::new());
    let as_dyn: Arc<dyn BatchRunner> = Arc::clone(&runner) as _;
    let server = Server::start_with_reopt(as_dyn, &opts(), Some(detector()));
    assert_eq!(server.plan_version(), 1);
    assert_eq!(server.plan_provenance().source, "startup");

    // Healthy phase: on-table requests must not trip the detector.
    for i in 0..3 {
        let resp = server
            .submit(vec![i as f32])
            .expect("admit")
            .wait()
            .expect("healthy request completes");
        assert_eq!(resp.plan_version, 1);
    }

    // Drift: the device becomes 10x slower than the v1 table promises.
    runner.factor.store(DRIFT, Ordering::Relaxed);
    let deadline = Instant::now() + Duration::from_secs(20);
    let metrics = server.metrics();
    let mut swapped = false;
    for i in 0..30 {
        server
            .submit(vec![i as f32])
            .expect("admit")
            .wait()
            .expect("drifted request still completes");
        // The swap lands asynchronously in the rebench worker; give it a
        // moment after each completed observation.
        let wait_until = Instant::now() + Duration::from_millis(500);
        while Instant::now() < wait_until {
            if metrics.plan_swaps.get() >= 1 {
                swapped = true;
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        if swapped || Instant::now() > deadline {
            break;
        }
    }
    assert!(swapped, "the drift must produce a background hot-swap");
    assert!(metrics.stale_detections.get() >= 1);
    assert!(server.plan_version() >= 2);
    let prov = server.plan_provenance();
    assert_eq!(prov.source, "rebench");
    assert!(prov.generation >= 2);

    // Post-swap: the new table matches the drifted device, responses carry
    // the new generation, and serving never stopped.
    let resp = server
        .submit(vec![99.0])
        .expect("admit after swap")
        .wait()
        .expect("post-swap request completes");
    assert!(resp.plan_version >= 2, "got v{}", resp.plan_version);
    server.drain();
}

#[test]
fn trigger_rebench_swaps_synchronously_even_without_the_background_loop() {
    let runner = Arc::new(SleepRunner::new());
    // No reopt config: no detector, no worker — explicit control only.
    let server = Server::start(Arc::clone(&runner) as Arc<dyn BatchRunner>, &opts());
    assert_eq!(server.plan_version(), 1);

    runner.factor.store(DRIFT, Ordering::Relaxed);
    let version = server.trigger_rebench().expect("synchronous re-benchmark");
    assert_eq!(version, 2);
    assert_eq!(server.plan_version(), 2);
    let prov = server.plan_provenance();
    assert_eq!((prov.generation, prov.source.as_str()), (2, "rebench"));
    let m = server.metrics();
    assert_eq!(m.plan_swaps.get(), 1);
    assert_eq!(m.plan_version.get(), 2.0);

    let resp = server
        .submit(vec![1.0])
        .expect("admit")
        .wait()
        .expect("request completes on the swapped plan");
    assert_eq!(resp.plan_version, 2);
    server.drain();
}

#[test]
fn swap_plan_rejects_an_unusable_table_and_keeps_the_old_plan() {
    let server = Server::start(Arc::new(SleepRunner::new()), &opts());
    // Every size above max_batch=1: filtered to empty, must be refused.
    let err = server
        .swap_plan(vec![(4, 100.0), (8, 200.0)])
        .expect_err("an empty post-filter table cannot be installed");
    assert!(err.contains("empty"), "unexpected error: {err}");
    assert_eq!(server.plan_version(), 1, "the old plan must stay live");
    assert_eq!(
        server.metrics().reopt_failed.get(),
        1,
        "the failure must be counted"
    );
    // And serving still works.
    let resp = server
        .submit(vec![1.0])
        .expect("admit")
        .wait()
        .expect("request completes");
    assert_eq!(resp.plan_version, 1);
    server.drain();
}
