//! Hot-swap safety under concurrency: the epoch pointer never tears, every
//! response is consistent with the plan generation stamped on it, and
//! ticket accounting balances while swaps race the serving path.

use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use ucudnn::ServeOptions;
use ucudnn_serve::{BatchRunner, Server};

// ---------------------------------------------------------------------------
// Epoch-pointer property: no torn (tag, table) pairs.

/// The table a writer publishes under `tag` — any mismatch a reader
/// observes between the tag and the derived rows is a torn read.
fn derived_table(tag: u64) -> Vec<(usize, f64)> {
    (1..=4usize)
        .map(|m| {
            (
                m * ((tag % 7) as usize + 1),
                (tag % 100_000) as f64 * 10.0 + m as f64,
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Readers hammering an `Epoch` while writers publish tagged tables
    /// never observe a table that disagrees with its tag, and the version
    /// sequence each reader sees is monotone.
    #[test]
    fn concurrent_swaps_never_tear_the_published_plan(
        tag_seed in 1u64..1_000_000,
        writers in 1usize..4,
        stores_per_writer in 1usize..30,
    ) {
        let epoch = Arc::new(parking_lot::Epoch::new((tag_seed, derived_table(tag_seed))));
        let stop = Arc::new(AtomicBool::new(false));
        let readers: Vec<_> = (0..3)
            .map(|_| {
                let epoch = Arc::clone(&epoch);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut last_version = 0u64;
                    let mut checks = 0u64;
                    while !stop.load(Ordering::Relaxed) || checks == 0 {
                        let cur = epoch.load();
                        let (tag, table) = cur.value();
                        assert_eq!(
                            table,
                            &derived_table(*tag),
                            "torn read: table disagrees with its tag"
                        );
                        assert!(cur.version() >= last_version, "version went backwards");
                        last_version = cur.version();
                        checks += 1;
                    }
                })
            })
            .collect();
        let writer_handles: Vec<_> = (0..writers)
            .map(|w| {
                let epoch = Arc::clone(&epoch);
                std::thread::spawn(move || {
                    for i in 0..stores_per_writer {
                        let tag = tag_seed
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add((w * 1000 + i) as u64);
                        epoch.store((tag, derived_table(tag)));
                    }
                })
            })
            .collect();
        for h in writer_handles {
            h.join().unwrap();
        }
        stop.store(true, Ordering::Relaxed);
        for h in readers {
            h.join().unwrap();
        }
        prop_assert_eq!(
            epoch.version(),
            1 + (writers * stores_per_writer) as u64,
            "every store must land exactly once"
        );
    }
}

// ---------------------------------------------------------------------------
// Server-level property: responses are consistent with their stamped plan
// generation while swaps race submissions.

/// Identity model: one f32 in, one f32 out, no real compute — the test is
/// about scheduling metadata, not numerics.
struct IdentityRunner;

/// Micro-batch sizes of odd plan generations (the startup table is v1).
const SIZES_ODD: [usize; 4] = [1, 2, 4, 8];
/// Micro-batch sizes of even plan generations.
const SIZES_EVEN: [usize; 2] = [1, 3];

fn table_for_version(version: u64) -> Vec<(usize, f64)> {
    let sizes: &[usize] = if version % 2 == 1 {
        &SIZES_ODD
    } else {
        &SIZES_EVEN
    };
    sizes
        .iter()
        .map(|&m| (m, 100.0 + 10.0 * m as f64))
        .collect()
}

impl BatchRunner for IdentityRunner {
    fn sample_len(&self) -> usize {
        1
    }
    fn output_len(&self) -> usize {
        1
    }
    fn batch_sizes(&self) -> Vec<usize> {
        SIZES_ODD.to_vec()
    }
    fn run(&self, n: usize, inputs: &[f32]) -> Result<Vec<f32>, String> {
        assert_eq!(inputs.len(), n);
        Ok(inputs.to_vec())
    }
    fn latency_table(&self) -> Vec<(usize, f64)> {
        table_for_version(1)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// While a swapper thread flips the plan between two size vocabularies,
    /// every completed request reports a plan version that existed and a
    /// micro-batch size drawn from *that* version's table — a torn or
    /// half-applied swap would pair a version with the other vocabulary.
    /// Ticket accounting balances exactly: admitted = completed + shed.
    #[test]
    fn responses_match_the_plan_generation_that_fired_them(
        swaps in 1u64..12,
        requests in 16usize..120,
    ) {
        let server = Arc::new(Server::start(
            Arc::new(IdentityRunner),
            &ServeOptions {
                slo_us: 60_000_000.0,
                queue_cap: 4096,
                workers: 2,
                max_batch: 8,
            },
        ));
        prop_assert_eq!(server.plan_version(), 1);

        let swapper = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                for i in 0..swaps {
                    let next_version = 2 + i; // swap_plan bumps 1 -> 2 -> ...
                    server
                        .swap_plan(table_for_version(next_version))
                        .expect("swap a valid table");
                    std::thread::yield_now();
                }
            })
        };

        // Submit everything first so batches actually coalesce, then wait.
        let tickets: Vec<_> = (0..requests)
            .map(|i| server.submit(vec![i as f32]))
            .collect();
        let mut completed = 0u64;
        let mut shed = 0u64;
        for t in tickets {
            match t {
                Err(_) => shed += 1,
                Ok(ticket) => match ticket.wait() {
                    Err(_) => shed += 1,
                    Ok(resp) => {
                        completed += 1;
                        let valid: &[usize] = if resp.plan_version % 2 == 1 {
                            &SIZES_ODD
                        } else {
                            &SIZES_EVEN
                        };
                        prop_assert!(
                            valid.contains(&resp.batch),
                            "micro size {} invalid for plan v{} (vocab {:?})",
                            resp.batch, resp.plan_version, valid
                        );
                        prop_assert!(
                            resp.plan_version >= 1 && resp.plan_version <= 1 + swaps,
                            "plan v{} never existed", resp.plan_version
                        );
                    }
                },
            }
        }
        swapper.join().unwrap();
        prop_assert_eq!(completed + shed, requests as u64, "ticket accounting");
        prop_assert_eq!(server.plan_version(), 1 + swaps);
        let m = server.metrics();
        prop_assert_eq!(m.submitted.get(), requests as u64);
        prop_assert_eq!(m.completed.get(), completed);
        prop_assert_eq!(m.shed_total(), shed);
        prop_assert_eq!(m.plan_swaps.get(), swaps);
        server.drain();
    }
}
