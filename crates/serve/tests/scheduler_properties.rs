//! Property tests for the serving scheduler and its deterministic
//! simulation: SLO safety, policy conformance, and bit-reproducibility
//! across randomized latency tables and load shapes.

use proptest::prelude::*;
use ucudnn::BatchSizePolicy;
use ucudnn_serve::{run_sim, BatchPolicy, Scheduler, SimConfig};

/// A latency table over `policy`'s candidate sizes with launch-overhead
/// economics: `t(m) = overhead + per_sample * m`, plus a deterministic
/// per-entry wobble so algorithm-switch-style non-monotonicity shows up.
fn table_for(
    policy: BatchSizePolicy,
    max_batch: usize,
    overhead: f64,
    per_sample: f64,
    wobble_seed: u64,
) -> Vec<(usize, f64)> {
    let mut rng = proptest::TestRng::new(wobble_seed.max(1));
    policy
        .candidate_sizes(max_batch)
        .into_iter()
        .map(|m| {
            let wobble = 1.0 + 0.2 * rng.next_f64();
            (m, (overhead + per_sample * m as f64) * wobble)
        })
        .collect()
}

fn policies() -> impl Strategy<Value = BatchSizePolicy> {
    prop_oneof![
        Just(BatchSizePolicy::All),
        Just(BatchSizePolicy::PowerOfTwo),
        Just(BatchSizePolicy::Undivided),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The SLO-safety invariant of the tentpole: whatever the load, the
    /// dynamic scheduler never lets an *admitted* request finish past its
    /// deadline — overload turns into sheds, not violations — and every
    /// offered request is accounted for exactly once.
    #[test]
    fn dynamic_never_violates_the_slo(
        seed in 1u64..1_000_000,
        overhead in 50.0f64..400.0,
        per_sample in 2.0f64..40.0,
        slo_us in 2_000.0f64..50_000.0,
        rate in 500.0f64..200_000.0,
        workers in 1usize..4,
        queue_cap in 8usize..128,
        requests in 50usize..250,
    ) {
        let max_batch = 16;
        let table = table_for(BatchSizePolicy::PowerOfTwo, max_batch, overhead, per_sample, seed);
        let sched = Scheduler::new(table, slo_us, max_batch, BatchPolicy::Dynamic);
        let cfg = SimConfig {
            seed, slo_us, queue_cap, workers, max_batch,
            arrival_rate_rps: rate, requests, policy: BatchPolicy::Dynamic,
        };
        let out = run_sim(&sched, &cfg);
        prop_assert_eq!(out.violations, 0);
        prop_assert_eq!(out.completed + out.shed.total(), requests as u64);
    }

    /// Policy conformance: every fired micro-batch size is a candidate of
    /// the batch-size policy that built the table, and no coalesced batch
    /// exceeds `UCUDNN_SERVE_MAX_BATCH`.
    #[test]
    fn batches_respect_the_policy_and_the_cap(
        seed in 1u64..1_000_000,
        policy in policies(),
        max_batch in 2usize..32,
        rate in 1_000.0f64..100_000.0,
    ) {
        let table = table_for(policy, max_batch, 100.0, 10.0, seed);
        let candidates = policy.candidate_sizes(max_batch);
        let sched = Scheduler::new(table, 30_000.0, max_batch, BatchPolicy::Dynamic);
        let cfg = SimConfig {
            seed, slo_us: 30_000.0, queue_cap: 64, workers: 2, max_batch,
            arrival_rate_rps: rate, requests: 120, policy: BatchPolicy::Dynamic,
        };
        let out = run_sim(&sched, &cfg);
        for &b in &out.batch_sizes {
            prop_assert!(b <= max_batch, "batch {} exceeds cap {}", b, max_batch);
        }
        // Fired compositions appear in the log as micros=a+b+c; every part
        // must be a policy candidate.
        for line in out.log.iter().filter(|l| l.starts_with("fire")) {
            let micros = line
                .split("micros=")
                .nth(1)
                .and_then(|r| r.split_whitespace().next())
                .expect("fire lines carry micros");
            for part in micros.split('+') {
                let m: usize = part.parse().expect("numeric micro size");
                prop_assert!(
                    candidates.contains(&m),
                    "micro {} not a candidate of {:?}", m, candidates
                );
            }
        }
    }

    /// Reproducibility: the same seed and worker count give byte-identical
    /// batch compositions and shed decisions; a different seed diverges
    /// (so the log actually reflects the load, not a constant).
    #[test]
    fn same_seed_same_workers_is_byte_identical(
        seed in 1u64..1_000_000,
        workers in 1usize..4,
        rate in 2_000.0f64..80_000.0,
    ) {
        let max_batch = 16;
        let table = table_for(BatchSizePolicy::PowerOfTwo, max_batch, 150.0, 8.0, seed);
        let sched = Scheduler::new(table, 15_000.0, max_batch, BatchPolicy::Dynamic);
        let cfg = SimConfig {
            seed, slo_us: 15_000.0, queue_cap: 64, workers, max_batch,
            arrival_rate_rps: rate, requests: 150, policy: BatchPolicy::Dynamic,
        };
        let a = run_sim(&sched, &cfg);
        let b = run_sim(&sched, &cfg);
        prop_assert_eq!(&a.log, &b.log);
        prop_assert_eq!(&a.batch_sizes, &b.batch_sizes);
        prop_assert_eq!(a.shed, b.shed);
        let c = run_sim(&sched, &SimConfig { seed: seed + 1, ..cfg.clone() });
        prop_assert!(a.log != c.log, "different seed must produce a different load");
    }

    /// Overload behaviour: drive the queue far past capacity; the dynamic
    /// policy must shed (backpressure working) while still never violating
    /// the SLO for anything it chose to serve.
    #[test]
    fn overload_sheds_instead_of_violating(
        seed in 1u64..1_000_000,
        queue_cap in 4usize..32,
    ) {
        let max_batch = 8;
        let table = table_for(BatchSizePolicy::All, max_batch, 300.0, 30.0, seed);
        let sched = Scheduler::new(table, 5_000.0, max_batch, BatchPolicy::Dynamic);
        let cfg = SimConfig {
            seed, slo_us: 5_000.0, queue_cap, workers: 1, max_batch,
            arrival_rate_rps: 500_000.0, requests: 400, policy: BatchPolicy::Dynamic,
        };
        let out = run_sim(&sched, &cfg);
        prop_assert!(out.shed.total() > 0, "this load must overwhelm one worker");
        prop_assert_eq!(out.violations, 0);
        prop_assert_eq!(out.completed + out.shed.total(), 400);
    }
}
