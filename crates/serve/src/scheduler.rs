//! The dynamic micro-batching scheduler: when a worker is free and requests
//! are queued, decide whether to fire now, wait for more arrivals, or shed.
//!
//! The decision core is [`ucudnn::plan_batch`] — the WR dynamic program
//! with the workspace limit swapped for the oldest request's remaining
//! deadline (DESIGN.md §12). This module adds the *wait* dimension: firing
//! a small batch now wastes the sub-linear batch economics, waiting too
//! long violates the SLO. The rule is throughput-greedy and deterministic:
//! wait for the next arrival exactly when the plan it would enable has
//! strictly higher throughput than the plan available now and the oldest
//! deadline still holds at that arrival time.

use ucudnn::{plan_batch, SloDecision};

/// Which batching policy a serving lane runs — the dynamic scheduler or
/// one of the two fixed baselines `serve_bench` compares against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// SLO-aware dynamic micro-batching (the tentpole).
    Dynamic,
    /// Fire every request alone, in arrival order (no coalescing).
    FixedOne,
    /// Wait for a full `max_batch` before firing (classic static batching).
    FixedMax,
}

impl BatchPolicy {
    /// Stable spelling for logs and bench JSON.
    pub fn name(&self) -> &'static str {
        match self {
            BatchPolicy::Dynamic => "dynamic",
            BatchPolicy::FixedOne => "fixed1",
            BatchPolicy::FixedMax => "fixedmax",
        }
    }
}

/// What the scheduler tells the worker to do at one opportunity.
#[derive(Debug, Clone, PartialEq)]
pub enum Action {
    /// Pop the `decision.batch` oldest requests and execute them now.
    Fire(SloDecision),
    /// Do nothing until the given absolute time (the next arrival), then
    /// reconsider.
    WaitUntil(f64),
    /// The oldest request cannot meet its deadline under any plan: shed it
    /// and reconsider the rest.
    ShedOldest,
}

/// The scheduler: the latency table plus the policy knobs.
#[derive(Debug, Clone)]
pub struct Scheduler {
    table: Vec<(usize, f64)>,
    slo_us: f64,
    max_batch: usize,
    policy: BatchPolicy,
}

impl Scheduler {
    /// Build a scheduler over a `t*(m)` latency table (see
    /// [`ucudnn::forward_latency_table`]).
    pub fn new(
        table: Vec<(usize, f64)>,
        slo_us: f64,
        max_batch: usize,
        policy: BatchPolicy,
    ) -> Self {
        Self {
            table,
            slo_us,
            max_batch,
            policy,
        }
    }

    /// The per-request deadline budget.
    pub fn slo_us(&self) -> f64 {
        self.slo_us
    }

    /// The coalesced-batch cap.
    pub fn max_batch(&self) -> usize {
        self.max_batch
    }

    /// The policy this scheduler runs.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// The latency table.
    pub fn table(&self) -> &[(usize, f64)] {
        &self.table
    }

    /// Unconstrained best execution time for a batch of `n` (no deadline) —
    /// used by the fixed baselines and for wait-time estimation.
    /// (`plan_batch` rejects non-finite budgets, so "no deadline" is spelled
    /// `f64::MAX`.)
    pub fn exec_us(&self, n: usize) -> Option<f64> {
        plan_batch(&self.table, n, n, f64::MAX).map(|d| d.exec_us)
    }

    /// Decide at absolute time `now_us` for a non-empty queue.
    ///
    /// `arrivals` are the queued requests' arrival times, oldest first
    /// (deadline of request `i` is `arrivals[i] + slo_us`); `next_arrival`
    /// is the next future submission when known (the deterministic
    /// simulator knows it; the threaded server passes `None` and handles
    /// waiting with condvar timeouts).
    ///
    /// # Panics
    /// Panics when `arrivals` is empty — an idle lane has nothing to decide.
    pub fn decide(&self, now_us: f64, arrivals: &[f64], next_arrival: Option<f64>) -> Action {
        assert!(!arrivals.is_empty(), "decide() needs a non-empty queue");
        let q = arrivals.len();
        let deadline = arrivals[0] + self.slo_us;
        match self.policy {
            BatchPolicy::Dynamic => {
                let Some(cur) = plan_batch(&self.table, q, self.max_batch, deadline - now_us)
                else {
                    return Action::ShedOldest;
                };
                if q < self.max_batch {
                    if let Some(na) = next_arrival {
                        // Waiting is useful only if the plan enabled by one
                        // more request is strictly faster per request *and*
                        // still meets the oldest deadline when fired at the
                        // arrival instant.
                        let wait_start = now_us.max(na);
                        if let Some(fut) =
                            plan_batch(&self.table, q + 1, self.max_batch, deadline - wait_start)
                        {
                            if fut.throughput > cur.throughput {
                                return Action::WaitUntil(na);
                            }
                        }
                    }
                }
                Action::Fire(cur)
            }
            BatchPolicy::FixedOne => {
                let Some(d) = plan_batch(&self.table, 1, 1, deadline - now_us) else {
                    return Action::ShedOldest;
                };
                Action::Fire(d)
            }
            BatchPolicy::FixedMax => {
                if q < self.max_batch {
                    if let Some(na) = next_arrival {
                        // Static batching waits for a full batch no matter
                        // what the deadline says — its signature failure.
                        return Action::WaitUntil(na);
                    }
                }
                let n = q.min(self.max_batch);
                let Some(d) = plan_batch(&self.table, n, n, f64::MAX) else {
                    return Action::ShedOldest;
                };
                if d.exec_us > deadline - now_us {
                    return Action::ShedOldest;
                }
                Action::Fire(d)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sched(policy: BatchPolicy) -> Scheduler {
        // t(m) = 12 + m: sub-linear per sample.
        let table = vec![1usize, 2, 4, 8]
            .into_iter()
            .map(|m| (m, 12.0 + m as f64))
            .collect();
        Scheduler::new(table, 100.0, 8, policy)
    }

    #[test]
    fn dynamic_fires_a_full_queue_immediately() {
        let s = sched(BatchPolicy::Dynamic);
        let arrivals = vec![0.0; 8];
        match s.decide(10.0, &arrivals, Some(11.0)) {
            Action::Fire(d) => assert_eq!(d.batch, 8),
            a => panic!("expected Fire, got {a:?}"),
        }
    }

    #[test]
    fn dynamic_waits_for_a_better_plan_when_slack_allows() {
        let s = sched(BatchPolicy::Dynamic);
        // One queued request with lots of slack; another arrives soon:
        // coalescing two (t=14, 7/req) beats firing one (t=13).
        match s.decide(1.0, &[0.0], Some(2.0)) {
            Action::WaitUntil(t) => assert_eq!(t, 2.0),
            a => panic!("expected WaitUntil, got {a:?}"),
        }
    }

    #[test]
    fn dynamic_fires_rather_than_miss_the_deadline() {
        let s = sched(BatchPolicy::Dynamic);
        // Slack is 99−85=14 at the arrival instant: enough for t(2)=14 —
        // but at 95 slack is 4 < t(1): must fire now, not wait.
        match s.decide(86.0, &[0.0], Some(95.0)) {
            Action::Fire(d) => assert_eq!(d.batch, 1),
            a => panic!("expected Fire, got {a:?}"),
        }
    }

    #[test]
    fn dynamic_sheds_the_hopeless_oldest() {
        let s = sched(BatchPolicy::Dynamic);
        // Deadline was 100; at t=99 even t(1)=13 cannot fit.
        assert_eq!(s.decide(99.0, &[0.0], None), Action::ShedOldest);
    }

    #[test]
    fn fixed_one_never_coalesces() {
        let s = sched(BatchPolicy::FixedOne);
        match s.decide(0.0, &[0.0; 8], Some(1.0)) {
            Action::Fire(d) => assert_eq!(d.batch, 1),
            a => panic!("expected Fire, got {a:?}"),
        }
    }

    #[test]
    fn fixed_max_waits_even_when_waiting_is_fatal() {
        let s = sched(BatchPolicy::FixedMax);
        // 7 queued, deadline imminent — static batching still waits.
        match s.decide(95.0, &[0.0; 7], Some(200.0)) {
            Action::WaitUntil(t) => assert_eq!(t, 200.0),
            a => panic!("expected WaitUntil, got {a:?}"),
        }
        // And once full, the expired oldest is shed.
        assert_eq!(s.decide(95.0, &[0.0; 8], None), Action::ShedOldest);
    }
}
