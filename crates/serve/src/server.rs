//! The threaded in-process inference server.
//!
//! A bounded submission queue feeds a pool of worker threads; each worker
//! asks the [`Scheduler`] what to do, coalesces queued requests into a
//! micro-batched forward pass, and resolves per-request tickets. The
//! execution path is the real one: every coalesced batch runs through a
//! [`crate::BatchRunner`], and the bundled [`RealModelRunner`] drives
//! `RealExecutor::forward` over a `UcudnnHandle`, so concurrent batches of
//! different sizes hit the batch-normalized execution-plan cache and the
//! fault-injection machinery exactly like training does.
//!
//! Synchronization uses `std::sync::{Mutex, Condvar}` (not the workspace's
//! parking_lot shim) because workers need `wait_timeout` for the coalescing
//! window.

use crate::metrics::ServeMetrics;
use crate::reopt::{DriftDetector, ReoptConfig};
use crate::request::{RequestId, Response, ShedReason};
use crate::scheduler::{Action, BatchPolicy, Scheduler};
use crate::slo_monitor::{BurnConfig, BurnMonitor};
use parking_lot::{Epoch, Versioned};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use ucudnn::json;
use ucudnn::telemetry::{ring_from_env, Registry};
use ucudnn::{ServeOptions, TableProvenance};

/// Longest the real server will hold a request for coalescing company past
/// its arrival, microseconds. Without an arrival oracle, waiting is only
/// worth a bounded window: under load the queue fills within it anyway, and
/// a lone request must not burn its whole SLO budget hoping for a batch
/// mate (firing at the deadline's edge is a race against timer overshoot).
const MAX_COALESCE_WAIT_US: f64 = 1_000.0;

/// A model the server can execute, batch-size by batch-size.
///
/// `run` is called once per *micro-batch* of a fired batch, with sizes drawn
/// from [`BatchRunner::batch_sizes`] — the serving-level mirror of μ-cuDNN's
/// micro-batch replay.
pub trait BatchRunner: Send + Sync + 'static {
    /// `f32` elements per input sample.
    fn sample_len(&self) -> usize;
    /// `f32` elements per output sample.
    fn output_len(&self) -> usize;
    /// Batch sizes this runner can execute (the latency table's sizes).
    fn batch_sizes(&self) -> Vec<usize>;
    /// Execute a micro-batch of `n` samples (`inputs.len() == n *
    /// sample_len()`), returning `n * output_len()` outputs.
    ///
    /// # Errors
    /// A human-readable execution failure; the server sheds the affected
    /// micro-batch and keeps running.
    fn run(&self, n: usize, inputs: &[f32]) -> Result<Vec<f32>, String>;
    /// Measured execution latency `t*(m)` for each supported batch size,
    /// microseconds.
    fn latency_table(&self) -> Vec<(usize, f64)>;
    /// Re-measure the latency table after the drift detector flagged the
    /// current one stale. Called off the serving path (a background worker
    /// or an explicit [`Server::trigger_rebench`]) while requests keep
    /// flowing on the old plan; the result is hot-swapped in atomically.
    ///
    /// The default re-measures via [`BatchRunner::latency_table`]; runners
    /// with a benchmark cache should invalidate the stale kernels first
    /// (see [`ucudnn::rebench_latency_table`]).
    ///
    /// # Errors
    /// A human-readable re-benchmark failure; the server keeps the old plan
    /// live and counts `reopt_failed`.
    fn rebench(&self) -> Result<Vec<(usize, f64)>, String> {
        Ok(self.latency_table())
    }
    /// The runner's own telemetry registry, if it has one (the bundled
    /// [`RealModelRunner`] exposes its `UcudnnHandle`'s optimizer/cache
    /// instruments). The server composes it into the `STATS` exposition.
    fn telemetry(&self) -> Option<Registry> {
        None
    }
}

/// One published plan generation: the scheduler (latency table plus policy
/// knobs) and the provenance of the table it was built from. Generations
/// are immutable once published through the [`Epoch`] pointer — a swap
/// publishes a *new* `PlanState`, it never mutates a live one.
#[derive(Debug)]
pub struct PlanState {
    /// The scheduler over this generation's latency table.
    pub sched: Scheduler,
    /// Where the table came from (startup vs. which re-benchmark).
    pub provenance: TableProvenance,
}

/// Wake-up channel for the background re-benchmark worker.
struct ReoptSignal {
    state: Mutex<ReoptCommand>,
    cv: Condvar,
}

#[derive(Default)]
struct ReoptCommand {
    rebench: bool,
    stop: bool,
}

/// One queued request.
struct Pending {
    id: RequestId,
    arrival_us: f64,
    input: Vec<f32>,
    waiter: Waiter,
}

/// Shared resolution slot of one submitted request.
pub(crate) struct TicketState {
    slot: Mutex<Option<Result<Response, ShedReason>>>,
    cv: Condvar,
}

/// How one queued request's outcome is delivered: a blocking [`Ticket`]
/// (the original synchronous path) or a completion callback (the reactor
/// path — the event loop must never park a thread per request).
pub(crate) enum Waiter {
    /// Resolve into the ticket's slot and wake the waiting thread.
    Ticket(Arc<TicketState>),
    /// Invoke the callback with the outcome. Callbacks run on a server
    /// worker thread and must be cheap and non-blocking with respect to the
    /// server's own locks (the reactor's only touches its loop inbox).
    Callback(Box<dyn FnOnce(Result<Response, ShedReason>) + Send + 'static>),
}

impl Waiter {
    fn resolve(self, result: Result<Response, ShedReason>) {
        match self {
            Waiter::Ticket(t) => {
                *t.slot.lock().unwrap() = Some(result);
                t.cv.notify_all();
            }
            Waiter::Callback(cb) => cb(result),
        }
    }
}

/// A handle to one in-flight request; wait on it for the response.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Block until the request completes or is shed.
    ///
    /// # Errors
    /// The shed reason, when the server refused or dropped the request.
    ///
    /// # Panics
    /// Panics if the server dropped the ticket without resolving it (a
    /// server bug, not a load condition).
    pub fn wait(self) -> Result<Response, ShedReason> {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.state.cv.wait(slot).unwrap();
        }
    }
}

struct QueueState {
    queue: VecDeque<Pending>,
    draining: bool,
}

struct Inner {
    runner: Arc<dyn BatchRunner>,
    /// The live plan, behind an epoch pointer: workers `load()` it wait-free
    /// at each scheduling opportunity, re-benchmarks `store()` a new
    /// generation, and in-flight batches keep the `&Versioned<PlanState>`
    /// they fired under until they resolve their tickets.
    plan: Epoch<PlanState>,
    metrics: Arc<ServeMetrics>,
    detector: Mutex<DriftDetector>,
    /// The SLO error-budget burn monitor, fed by every shed and completion.
    burn: Mutex<BurnMonitor>,
    reopt: Option<Arc<ReoptSignal>>,
    state: Mutex<QueueState>,
    cv: Condvar,
    queue_cap: usize,
    epoch: Instant,
    next_id: AtomicU64,
}

impl Inner {
    fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }

    /// Feed one outcome (`bad` = shed or SLO violation) to the burn
    /// monitor, mirror the burn state into the gauges, and emit an
    /// `slo_alert` trace event on each inactive→active transition.
    fn observe_outcome(&self, now_us: f64, bad: bool) {
        let (alert, fast, slow, active) = {
            let mut b = self.burn.lock().unwrap();
            let alert = b.observe(now_us, bad);
            let (fast, slow) = b.burn_rates();
            (alert, fast, slow, b.active())
        };
        self.metrics.burn_fast.set(fast);
        self.metrics.burn_slow.set(slow);
        self.metrics
            .slo_alert_active
            .set(if active { 1.0 } else { 0.0 });
        if let Some(a) = alert {
            self.metrics.slo_alerts.inc();
            ucudnn::trace::event("serve", "slo_alert", || {
                (
                    "slo".to_string(),
                    json::obj([
                        ("at_us", json::num(a.at_us)),
                        ("fast_burn", json::num(a.fast_burn)),
                        ("slow_burn", json::num(a.slow_burn)),
                    ]),
                )
            });
        }
    }
}

/// The serving frontend: submission, drain, metrics.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
    reopt_worker: Mutex<Option<std::thread::JoinHandle<()>>>,
}

impl Server {
    /// Start a server: `opts.workers` threads over a shared bounded queue,
    /// scheduling with the runner's measured latency table. No online
    /// re-optimization — the startup plan serves until drain (equivalent to
    /// [`Server::start_with_reopt`] with `None`).
    pub fn start(runner: Arc<dyn BatchRunner>, opts: &ServeOptions) -> Self {
        Self::start_with_reopt(runner, opts, None)
    }

    /// Start a server with the online re-optimization loop (DESIGN.md §13):
    /// every executed micro-batch feeds the drift detector, a flagged plan
    /// wakes a background re-benchmark worker, and a successful re-benchmark
    /// hot-swaps a new plan generation while serving continues.
    ///
    /// `reopt: None` (or a config with `enabled: false`) starts without the
    /// detector or the worker; [`Server::swap_plan`] and
    /// [`Server::trigger_rebench`] still work for explicit control.
    ///
    /// # Panics
    /// Panics when the runner's table has no batch size within
    /// `opts.max_batch` — a misconfigured deployment, not a load condition.
    pub fn start_with_reopt(
        runner: Arc<dyn BatchRunner>,
        opts: &ServeOptions,
        reopt: Option<ReoptConfig>,
    ) -> Self {
        let table: Vec<(usize, f64)> = runner
            .latency_table()
            .into_iter()
            .filter(|&(m, _)| m <= opts.max_batch)
            .collect();
        assert!(
            !table.is_empty(),
            "runner supports no batch size within UCUDNN_SERVE_MAX_BATCH"
        );
        let sched = Scheduler::new(table, opts.slo_us, opts.max_batch, BatchPolicy::Dynamic);
        let detector_cfg = reopt.unwrap_or(ReoptConfig {
            enabled: false,
            ..ReoptConfig::default()
        });
        let reopt_on = detector_cfg.enabled;
        // Telemetry configuration is read at construction: a malformed
        // value is a misconfigured deployment, not a load condition.
        let ring = ring_from_env().expect("UCUDNN_TELEMETRY_RING must be a positive integer");
        let burn_cfg = BurnConfig::from_env()
            .expect("UCUDNN_SLO_BUDGET / UCUDNN_BURN_WINDOWS must be well-formed");
        let metrics = Arc::new(ServeMetrics::with_registry(Registry::with_ring(ring)));
        let inner = Arc::new(Inner {
            runner,
            plan: Epoch::new(PlanState {
                sched,
                provenance: TableProvenance::startup(),
            }),
            metrics,
            detector: Mutex::new(DriftDetector::new(detector_cfg)),
            burn: Mutex::new(BurnMonitor::new(burn_cfg)),
            reopt: reopt_on.then(|| {
                Arc::new(ReoptSignal {
                    state: Mutex::new(ReoptCommand::default()),
                    cv: Condvar::new(),
                })
            }),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            queue_cap: opts.queue_cap,
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
        });
        inner.metrics.plan_version.set(inner.plan.version() as f64);
        let workers = (0..opts.workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn serve worker")
            })
            .collect();
        let reopt_worker = inner.reopt.is_some().then(|| {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("serve-rebench".to_string())
                .spawn(move || rebench_loop(&inner))
                .expect("spawn rebench worker")
        });
        Self {
            inner,
            workers: Mutex::new(workers),
            reopt_worker: Mutex::new(reopt_worker),
        }
    }

    /// Submit one input sample; returns a [`Ticket`] to wait on, or the
    /// admission-control verdict.
    ///
    /// # Errors
    /// [`ShedReason::QueueFull`] under backpressure, [`ShedReason::Draining`]
    /// after [`Server::drain`] began.
    ///
    /// # Panics
    /// Panics when `input.len()` does not match the runner's sample length.
    pub fn submit(&self, input: Vec<f32>) -> Result<Ticket, ShedReason> {
        let ticket = Arc::new(TicketState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        let state = Arc::clone(&ticket);
        self.submit_inner(input, move || Waiter::Ticket(state))?;
        Ok(Ticket { state: ticket })
    }

    /// Submit one input sample with a completion callback instead of a
    /// blocking ticket — the reactor's delivery path. On `Ok`, the callback
    /// will be invoked exactly once (on a server worker thread) with the
    /// response or the shed verdict. On `Err`, the request was refused at
    /// admission and **the callback is never invoked** — the caller still
    /// owns the refusal and renders it inline, which is what keeps the
    /// reactor's per-connection response sequencing single-sourced.
    ///
    /// # Errors
    /// [`ShedReason::QueueFull`] under backpressure, [`ShedReason::Draining`]
    /// after [`Server::drain`] began.
    ///
    /// # Panics
    /// Panics when `input.len()` does not match the runner's sample length.
    pub fn submit_with<F>(&self, input: Vec<f32>, cb: F) -> Result<RequestId, ShedReason>
    where
        F: FnOnce(Result<Response, ShedReason>) + Send + 'static,
    {
        self.submit_inner(input, move || Waiter::Callback(Box::new(cb)))
    }

    /// Shared admission path: mint an id, run the shed ladder, and only on
    /// admission materialize the waiter and enqueue.
    fn submit_inner(
        &self,
        input: Vec<f32>,
        make: impl FnOnce() -> Waiter,
    ) -> Result<RequestId, ShedReason> {
        assert_eq!(
            input.len(),
            self.inner.runner.sample_len(),
            "input length must match the model's sample length"
        );
        let m = &self.inner.metrics;
        m.submitted.inc();
        let id = RequestId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let arrival_us = self.inner.now_us();
        let mut st = self.inner.state.lock().unwrap();
        for (refused, reason) in [
            (st.draining, ShedReason::Draining),
            (
                st.queue.len() >= self.inner.queue_cap,
                ShedReason::QueueFull,
            ),
        ] {
            if refused {
                m.shed(reason);
                drop(st);
                ucudnn::trace::event("serve", "shed", || {
                    (
                        id.trace_key(),
                        json::obj([("reason", json::Value::Str(reason.name().to_string()))]),
                    )
                });
                self.inner.observe_outcome(arrival_us, true);
                return Err(reason);
            }
        }
        st.queue.push_back(Pending {
            id,
            arrival_us,
            input,
            waiter: make(),
        });
        m.set_queue_depth(st.queue.len() as u64);
        drop(st);
        self.inner.cv.notify_one();
        ucudnn::trace::event("serve", "submit", || {
            (
                id.trace_key(),
                json::obj([("arrival_us", json::num(arrival_us))]),
            )
        });
        Ok(id)
    }

    /// The admission queue's capacity (`UCUDNN_SERVE_QUEUE_CAP`) — the
    /// reactor sizes its backpressure thresholds off this.
    pub fn queue_cap(&self) -> usize {
        self.inner.queue_cap
    }

    /// Instantaneous admission-queue depth. Advisory: the depth can change
    /// the moment the lock drops — callers use it as a backpressure *hint*
    /// (pause/resume read interest), never as an admission guarantee.
    pub fn queue_depth(&self) -> usize {
        self.inner.state.lock().unwrap().queue.len()
    }

    /// `f32` elements per input sample (the runner's input geometry).
    pub fn sample_len(&self) -> usize {
        self.inner.runner.sample_len()
    }

    /// Shared metrics handle (live counters).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// The metrics snapshot as a JSON string (companion to
    /// `UcudnnHandle::metrics_json`).
    pub fn metrics_json(&self) -> String {
        self.inner.metrics.to_json().to_json()
    }

    /// The full live Prometheus-style exposition served by the TCP `STATS`
    /// verb and written by `--metrics-dump`: the serving instruments, the
    /// runner's core-library registry (optimizer/cache/fault series, when
    /// the runner has one — no hand-copied keys), the combined
    /// `telemetry_dropped` self-metric, an `# ALERT` section with the burn
    /// state, and the `# EOF` terminator. Each call also pushes a
    /// timestamped ring snapshot into every serving series.
    pub fn exposition(&self) -> String {
        let now = self.inner.now_us();
        let serve_reg = self.inner.metrics.registry();
        serve_reg.snapshot(now);
        let mut out = String::new();
        serve_reg.expose_into(&mut out);
        let mut dropped = serve_reg.dropped();
        if let Some(core_reg) = self.inner.runner.telemetry() {
            core_reg.expose_into(&mut out);
            dropped += core_reg.dropped();
        }
        Registry::expose_dropped_into(&mut out, dropped);
        {
            let b = self.inner.burn.lock().unwrap();
            let (fast, slow) = b.burn_rates();
            let cfg = b.config();
            out.push_str(&format!(
                "# ALERT slo_burn active={} fired={} fast={} slow={} budget={} fast_window_us={} slow_window_us={}\n",
                u8::from(b.active()),
                b.alerts_fired(),
                json::num(fast).to_json(),
                json::num(slow).to_json(),
                json::num(cfg.budget).to_json(),
                json::num(cfg.fast_us).to_json(),
                json::num(cfg.slow_us).to_json(),
            ));
        }
        out.push_str("# EOF\n");
        out
    }

    /// The ring-buffered window history of the serving registry as JSON
    /// (companion to [`Server::exposition`] for offline dumps).
    pub fn telemetry_history_json(&self) -> String {
        self.inner.metrics.registry().history_json().to_json()
    }

    /// The live plan generation (1 = the startup plan, +1 per hot-swap).
    pub fn plan_version(&self) -> u64 {
        self.inner.plan.version()
    }

    /// Provenance of the live plan's latency table.
    pub fn plan_provenance(&self) -> TableProvenance {
        self.inner.plan.load().provenance.clone()
    }

    /// Atomically hot-swap a new latency table in as the next plan
    /// generation, returning its version. Workers pick it up at their next
    /// scheduling opportunity; in-flight batches finish on the generation
    /// they fired under. The drift detector is reset so it judges the new
    /// table against fresh observations only.
    ///
    /// # Errors
    /// When `table` has no batch size within the server's `max_batch` — the
    /// old plan stays live.
    pub fn swap_plan(&self, table: Vec<(usize, f64)>) -> Result<u64, String> {
        install_table(&self.inner, table)
    }

    /// Run one re-benchmark cycle *synchronously* on the calling thread:
    /// [`BatchRunner::rebench`], then hot-swap on success. Serving continues
    /// on the old plan throughout. Returns the new plan version.
    ///
    /// This is the deterministic handle for tests and operators; the
    /// detector-driven path goes through the background worker instead.
    ///
    /// # Errors
    /// The runner's re-benchmark error, or an unusable (empty after the
    /// `max_batch` filter) table; either way `reopt_failed` is counted and
    /// the old plan stays live.
    pub fn trigger_rebench(&self) -> Result<u64, String> {
        do_rebench(&self.inner)
    }

    /// Stop admitting, finish everything already queued, and join the
    /// workers. Every outstanding ticket is resolved before this returns;
    /// idempotent, and also runs on drop.
    pub fn drain(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.draining = true;
        }
        self.inner.cv.notify_all();
        if let Some(sig) = &self.inner.reopt {
            sig.state.lock().unwrap().stop = true;
            sig.cv.notify_all();
        }
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
        if let Some(w) = self.reopt_worker.lock().unwrap().take() {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(inner: &Inner, worker: usize) {
    let mut st = inner.state.lock().unwrap();
    loop {
        if st.queue.is_empty() {
            if st.draining {
                return;
            }
            st = inner.cv.wait(st).unwrap();
            continue;
        }
        // Pin this opportunity's plan generation: the decision and the
        // execution below both use it, even if a hot-swap lands in between.
        let plan = inner.plan.load();
        let now = inner.now_us();
        let arrivals: Vec<f64> = st.queue.iter().map(|p| p.arrival_us).collect();
        match plan.sched.decide(now, &arrivals, None) {
            Action::Fire(decision) => {
                // The live server has no arrival oracle, so the coalescing
                // window is a bounded condvar wait: if more slack remains
                // than the next-larger plan needs, sleep a sliver of it and
                // re-decide; a timeout means no one came — fire what we
                // have.
                if !st.draining && decision.batch < plan.sched.max_batch() {
                    if let Some(wait_us) = coalesce_wait_us(&plan.sched, now, &arrivals) {
                        let dur = Duration::from_nanos((wait_us * 1e3) as u64);
                        let (guard, timeout) = inner.cv.wait_timeout(st, dur).unwrap();
                        st = guard;
                        if !timeout.timed_out() || st.queue.len() > arrivals.len() {
                            continue; // new work or drain: re-decide
                        }
                        // Timed out with the same queue: fall through and
                        // fire the decision we already validated — but the
                        // clock moved, so re-plan at the new instant.
                        continue;
                    }
                }
                let batch: Vec<Pending> = st.queue.drain(..decision.batch).collect();
                inner.metrics.set_queue_depth(st.queue.len() as u64);
                drop(st);
                execute_batch(inner, worker, plan, &decision.micros, batch);
                inner.cv.notify_one();
                st = inner.state.lock().unwrap();
            }
            Action::ShedOldest => {
                // The queue can only have shrunk if another worker raced us
                // between the snapshot and here; nothing to shed then.
                let Some(p) = st.queue.pop_front() else {
                    continue;
                };
                inner.metrics.set_queue_depth(st.queue.len() as u64);
                inner.metrics.shed(ShedReason::DeadlineInfeasible);
                inner.metrics.degradations.inc();
                ucudnn::trace::event("serve", "shed", || {
                    (
                        p.id.trace_key(),
                        json::obj([(
                            "reason",
                            json::Value::Str(ShedReason::DeadlineInfeasible.name().to_string()),
                        )]),
                    )
                });
                inner.observe_outcome(now, true);
                p.waiter.resolve(Err(ShedReason::DeadlineInfeasible));
            }
            Action::WaitUntil(_) => unreachable!("no arrival oracle was given"),
        }
    }
}

/// How long a worker may wait for coalescing company, or `None` to fire
/// immediately: the next-larger plan must beat the current one, still fit
/// the oldest deadline with room for its own execution, and the oldest
/// request must still be inside its bounded batching window.
fn coalesce_wait_us(sched: &Scheduler, now: f64, arrivals: &[f64]) -> Option<f64> {
    let q = arrivals.len();
    let oldest = arrivals[0];
    // The batching window caps how long the oldest request is held overall,
    // so firing always happens with nearly the full SLO budget left.
    let window_left = oldest + MAX_COALESCE_WAIT_US - now;
    if window_left <= 1.0 {
        return None;
    }
    let deadline = oldest + sched.slo_us();
    let cur = ucudnn::plan_batch(sched.table(), q, sched.max_batch(), deadline - now)?;
    let bigger = ucudnn::plan_batch(sched.table(), q + 1, sched.max_batch(), deadline - now)?;
    if bigger.throughput <= cur.throughput {
        return None;
    }
    // Leave the bigger plan enough slack to actually run after the wait.
    let slack = (deadline - now - bigger.exec_us) * 0.5;
    (slack > 1.0).then(|| slack.min(window_left))
}

/// Wake the background re-benchmark worker (no-op when re-opt is off).
fn request_rebench(inner: &Inner) {
    if let Some(sig) = &inner.reopt {
        sig.state.lock().unwrap().rebench = true;
        sig.cv.notify_one();
    }
}

/// The background re-benchmark worker: park until the drift detector (or
/// drain) wakes it, then run one re-benchmark cycle off the serving path.
fn rebench_loop(inner: &Inner) {
    let sig = inner.reopt.as_ref().expect("rebench worker needs a signal");
    loop {
        {
            let mut cmd = sig.state.lock().unwrap();
            while !cmd.rebench && !cmd.stop {
                cmd = sig.cv.wait(cmd).unwrap();
            }
            if cmd.stop {
                return;
            }
            cmd.rebench = false;
        }
        let _ = do_rebench(inner);
    }
}

/// One re-benchmark cycle: re-measure via [`BatchRunner::rebench`] (the
/// expensive part, no server locks held), then atomically install the new
/// table. Failures leave the old plan live and count `reopt_failed`.
fn do_rebench(inner: &Inner) -> Result<u64, String> {
    match inner.runner.rebench() {
        Ok(table) => install_table(inner, table),
        Err(err) => {
            inner.metrics.reopt_failed.inc();
            ucudnn::trace::event("serve", "reopt_failed", || {
                (
                    "rebench".to_string(),
                    json::obj([("error", json::Value::Str(err.clone()))]),
                )
            });
            Err(err)
        }
    }
}

/// Publish `table` as the next plan generation through the epoch pointer.
fn install_table(inner: &Inner, table: Vec<(usize, f64)>) -> Result<u64, String> {
    let old = inner.plan.load();
    let max_batch = old.sched.max_batch();
    let table: Vec<(usize, f64)> = table.into_iter().filter(|&(m, _)| m <= max_batch).collect();
    if table.is_empty() {
        inner.metrics.reopt_failed.inc();
        return Err("re-benchmark produced an empty latency table".to_string());
    }
    let refreshed = table.len();
    let next = PlanState {
        sched: Scheduler::new(table, old.sched.slo_us(), max_batch, old.sched.policy()),
        provenance: old.provenance.rebenched(refreshed),
    };
    let version = inner.plan.store(next);
    inner.metrics.plan_swaps.inc();
    inner.metrics.plan_version.set(version as f64);
    inner.detector.lock().unwrap().reset();
    ucudnn::trace::event("serve", "plan_swap", || {
        (
            format!("v{version}"),
            json::obj([("refreshed_sizes", json::num(refreshed as f64))]),
        )
    });
    // Wake any worker parked in a coalescing wait so the new plan takes
    // effect at the next opportunity, not after a stale timeout.
    inner.cv.notify_all();
    Ok(version)
}

/// Run one fired batch, micro-batch by micro-batch, and resolve tickets.
/// `plan` is the generation the batch was scheduled under: its table is the
/// drift detector's expectation, and its version is stamped on responses.
fn execute_batch(
    inner: &Inner,
    worker: usize,
    plan: &Versioned<PlanState>,
    micros: &[usize],
    batch: Vec<Pending>,
) {
    let total: usize = micros.iter().sum();
    debug_assert_eq!(total, batch.len(), "micros must tile the batch");
    let _span = ucudnn::trace::span("serve", "batch", || {
        (
            format!("worker{worker}"),
            json::obj([
                ("batch", json::num(batch.len() as f64)),
                (
                    "micros",
                    json::Value::Arr(micros.iter().map(|&m| json::num(m as f64)).collect()),
                ),
                (
                    "ids",
                    json::Value::Arr(batch.iter().map(|p| json::num(p.id.0 as f64)).collect()),
                ),
            ]),
        )
    });
    inner.metrics.fired(batch.len());
    let sample = inner.runner.sample_len();
    let mut it = batch.into_iter();
    for &m in micros {
        let chunk: Vec<Pending> = it.by_ref().take(m).collect();
        let mut inputs = Vec::with_capacity(m * sample);
        for p in &chunk {
            inputs.extend_from_slice(&p.input);
        }
        let exec_start = Instant::now();
        // A short (or long) output vector from a buggy runner must become a
        // typed exec_failed shed for this micro-batch, not a slice panic
        // that takes the worker thread (and every queued ticket) with it.
        let result = inner.runner.run(m, &inputs).and_then(|outputs| {
            let want = m * inner.runner.output_len();
            if outputs.len() == want {
                Ok(outputs)
            } else {
                Err(format!(
                    "runner returned {} output values for micro-batch {m} (expected {want})",
                    outputs.len()
                ))
            }
        });
        match result {
            Ok(outputs) => {
                let exec_us = exec_start.elapsed().as_secs_f64() * 1e6;
                observe_micro(inner, plan, m, exec_us);
                ucudnn::trace::event("serve", "micro", || {
                    (
                        format!("worker{worker}"),
                        json::obj([
                            ("micro", json::num(m as f64)),
                            ("exec_us", json::num(exec_us)),
                            (
                                "ids",
                                json::Value::Arr(
                                    chunk.iter().map(|p| json::num(p.id.0 as f64)).collect(),
                                ),
                            ),
                        ]),
                    )
                });
                let out_len = inner.runner.output_len();
                let done = inner.now_us();
                let slo_us = plan.sched.slo_us();
                for (i, p) in chunk.into_iter().enumerate() {
                    let latency_us = done - p.arrival_us;
                    inner.metrics.complete_for(latency_us, p.id.0);
                    let violated = latency_us > slo_us;
                    if violated {
                        inner.metrics.violations.inc();
                    }
                    inner.observe_outcome(done, violated);
                    ucudnn::trace::event("serve", "complete", || {
                        (
                            p.id.trace_key(),
                            json::obj([
                                ("latency_us", json::num(latency_us)),
                                ("batch", json::num(m as f64)),
                            ]),
                        )
                    });
                    let response = Response {
                        id: p.id,
                        output: outputs[i * out_len..(i + 1) * out_len].to_vec(),
                        latency_us,
                        batch: m,
                        plan_version: plan.version(),
                    };
                    p.waiter.resolve(Ok(response));
                }
            }
            Err(err) => {
                // Permanent fault: shed only this micro-batch; the server
                // and the rest of the fired batch keep going.
                inner.metrics.degradations.inc();
                ucudnn::trace::event("serve", "exec_failed", || {
                    (
                        format!("worker{worker}"),
                        json::obj([
                            ("micro", json::num(m as f64)),
                            ("error", json::Value::Str(err.clone())),
                        ]),
                    )
                });
                let now = inner.now_us();
                for p in chunk {
                    inner.metrics.shed(ShedReason::ExecFailed);
                    ucudnn::trace::event("serve", "shed", || {
                        (
                            p.id.trace_key(),
                            json::obj([(
                                "reason",
                                json::Value::Str(ShedReason::ExecFailed.name().to_string()),
                            )]),
                        )
                    });
                    inner.observe_outcome(now, true);
                    p.waiter.resolve(Err(ShedReason::ExecFailed));
                }
            }
        }
    }
}

/// Feed one executed micro-batch to the drift detector: `observed_us`
/// against the firing plan's `t*(m)`. A drift report counts a stale
/// detection and wakes the re-benchmark worker.
fn observe_micro(inner: &Inner, plan: &Versioned<PlanState>, m: usize, observed_us: f64) {
    let Some(&(_, expected_us)) = plan.sched.table().iter().find(|&&(size, _)| size == m) else {
        return;
    };
    // Only judge the *current* plan: a batch still in flight from an older
    // generation must not re-trigger drift against a table already replaced.
    if plan.version() != inner.plan.version() {
        return;
    }
    let report = inner
        .detector
        .lock()
        .unwrap()
        .observe(m, observed_us, expected_us);
    if let Some(r) = report {
        inner.metrics.stale_detections.inc();
        ucudnn::trace::event("serve", "drift", || {
            (
                format!("m{}", r.micro),
                json::obj([
                    ("observed_p50_us", json::num(r.observed_p50_us)),
                    ("expected_us", json::num(r.expected_us)),
                    ("ratio", json::num(r.ratio)),
                ]),
            )
        });
        request_rebench(inner);
    }
}

// ---------------------------------------------------------------------------
// The real-numerics model runner.

use std::collections::HashMap;
use ucudnn::{UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_framework::{LayerSpec, NetworkDef, RealExecutor};
use ucudnn_tensor::{Shape4, Tensor};

/// A tiny CNN executed with real CPU numerics through a shared
/// [`UcudnnHandle`]: the per-batch-size networks all normalize to the same
/// batch-1 plan key, so every batch size the scheduler picks replays the
/// same cached micro-batched execution plan.
pub struct RealModelRunner {
    provider: UcudnnHandle,
    /// One instantiated network per supported batch size; identical
    /// parameters (the init RNG stream depends only on layer shapes).
    execs: HashMap<usize, RealExecutor>,
    sizes: Vec<usize>,
    sample_len: usize,
    output_len: usize,
}

/// The runner's fixed input geometry.
const C: usize = 3;
const HW: usize = 8;
const CLASSES: usize = 10;

fn tiny_net(n: usize) -> NetworkDef {
    let mut net = NetworkDef::new("serve-tiny", Shape4::new(n, C, HW, HW));
    let c1 = net.conv_relu("conv1", net.input(), 8, 3, 1, 1);
    let p1 = net.add(
        "pool1",
        LayerSpec::Pool {
            max: true,
            kernel: 2,
            stride: 2,
            pad: 0,
        },
        &[c1],
    );
    let c2 = net.conv_relu("conv2", p1, 16, 3, 1, 1);
    net.add("fc", LayerSpec::FullyConnected { out: CLASSES }, &[c2]);
    net
}

impl RealModelRunner {
    /// Build executors for every power-of-two batch size up to `max_batch`
    /// (plus `max_batch` itself) on a CPU substrate handle, register all
    /// kernels with the μ-cuDNN wrapper, and measure the latency table.
    ///
    /// The `handle` parameter lets tests attach a fault plan
    /// ([`CudnnHandle::with_faults`]) to the serving path.
    ///
    /// Panics if model registration fails; use [`Self::try_new`] where a
    /// typed error is wanted (e.g. router-facing construction paths).
    pub fn new(handle: CudnnHandle, seed: u64, max_batch: usize) -> Self {
        Self::try_new(handle, seed, max_batch).expect("serve model preparation")
    }

    /// Fallible constructor: kernel registration and optimizer finalization
    /// errors surface as [`ucudnn_framework::ProviderError`]s instead of
    /// panicking the thread that is bringing a replica up.
    pub fn try_new(
        handle: CudnnHandle,
        seed: u64,
        max_batch: usize,
    ) -> Result<Self, ucudnn_framework::ProviderError> {
        let provider = UcudnnHandle::new(handle, UcudnnOptions::default());
        let mut sizes = Vec::new();
        let mut m = 1;
        while m < max_batch {
            sizes.push(m);
            m *= 2;
        }
        sizes.push(max_batch);

        let mut kernels = Vec::new();
        let mut execs = HashMap::new();
        for &n in &sizes {
            let net = tiny_net(n);
            for id in net.conv_layers() {
                kernels.push((ConvOp::Forward, net.conv_geometry(id)));
            }
            execs.insert(n, RealExecutor::new(net, seed));
        }
        use ucudnn_framework::ConvProvider as _;
        provider.prepare(&kernels)?;
        provider.finalize()?;
        Ok(Self {
            provider,
            execs,
            sizes,
            sample_len: C * HW * HW,
            output_len: CLASSES,
        })
    }

    /// The wrapped μ-cuDNN handle (plan cache stats, optimizer metrics).
    pub fn provider(&self) -> &UcudnnHandle {
        &self.provider
    }
}

impl BatchRunner for RealModelRunner {
    fn sample_len(&self) -> usize {
        self.sample_len
    }

    fn output_len(&self) -> usize {
        self.output_len
    }

    fn batch_sizes(&self) -> Vec<usize> {
        self.sizes.clone()
    }

    fn run(&self, n: usize, inputs: &[f32]) -> Result<Vec<f32>, String> {
        let exec = self
            .execs
            .get(&n)
            .ok_or_else(|| format!("unsupported batch size {n}"))?;
        let input = Tensor::from_vec(Shape4::new(n, C, HW, HW), inputs.to_vec());
        let acts = exec
            .forward(&self.provider, &input)
            .map_err(|e| e.to_string())?;
        let last = acts
            .last()
            .ok_or_else(|| "network produced no activations".to_string())?;
        Ok(last.as_slice().to_vec())
    }

    fn telemetry(&self) -> Option<Registry> {
        Some(self.provider.telemetry())
    }

    fn latency_table(&self) -> Vec<(usize, f64)> {
        // Warm the plan/pack caches once, then take the best of three
        // measured runs per size (host timing is noisy; min is stable).
        let mut table = Vec::with_capacity(self.sizes.len());
        for &m in &self.sizes {
            let inputs = vec![0.1f32; m * self.sample_len];
            if self.run(m, &inputs).is_err() {
                continue; // faulted size: leave it out of the table
            }
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                if self.run(m, &inputs).is_err() {
                    best = f64::INFINITY;
                    break;
                }
                best = best.min(t0.elapsed().as_secs_f64() * 1e6);
            }
            if best.is_finite() {
                table.push((m, best));
            }
        }
        table
    }
}
