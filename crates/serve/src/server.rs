//! The threaded in-process inference server.
//!
//! A bounded submission queue feeds a pool of worker threads; each worker
//! asks the [`Scheduler`] what to do, coalesces queued requests into a
//! micro-batched forward pass, and resolves per-request tickets. The
//! execution path is the real one: every coalesced batch runs through a
//! [`crate::BatchRunner`], and the bundled [`RealModelRunner`] drives
//! `RealExecutor::forward` over a `UcudnnHandle`, so concurrent batches of
//! different sizes hit the batch-normalized execution-plan cache and the
//! fault-injection machinery exactly like training does.
//!
//! Synchronization uses `std::sync::{Mutex, Condvar}` (not the workspace's
//! parking_lot shim) because workers need `wait_timeout` for the coalescing
//! window.

use crate::metrics::ServeMetrics;
use crate::request::{Response, ShedReason};
use crate::scheduler::{Action, BatchPolicy, Scheduler};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use ucudnn::json;
use ucudnn::ServeOptions;

/// Longest the real server will hold a request for coalescing company past
/// its arrival, microseconds. Without an arrival oracle, waiting is only
/// worth a bounded window: under load the queue fills within it anyway, and
/// a lone request must not burn its whole SLO budget hoping for a batch
/// mate (firing at the deadline's edge is a race against timer overshoot).
const MAX_COALESCE_WAIT_US: f64 = 1_000.0;

/// A model the server can execute, batch-size by batch-size.
///
/// `run` is called once per *micro-batch* of a fired batch, with sizes drawn
/// from [`BatchRunner::batch_sizes`] — the serving-level mirror of μ-cuDNN's
/// micro-batch replay.
pub trait BatchRunner: Send + Sync + 'static {
    /// `f32` elements per input sample.
    fn sample_len(&self) -> usize;
    /// `f32` elements per output sample.
    fn output_len(&self) -> usize;
    /// Batch sizes this runner can execute (the latency table's sizes).
    fn batch_sizes(&self) -> Vec<usize>;
    /// Execute a micro-batch of `n` samples (`inputs.len() == n *
    /// sample_len()`), returning `n * output_len()` outputs.
    ///
    /// # Errors
    /// A human-readable execution failure; the server sheds the affected
    /// micro-batch and keeps running.
    fn run(&self, n: usize, inputs: &[f32]) -> Result<Vec<f32>, String>;
    /// Measured execution latency `t*(m)` for each supported batch size,
    /// microseconds.
    fn latency_table(&self) -> Vec<(usize, f64)>;
}

/// One queued request.
struct Pending {
    id: u64,
    arrival_us: f64,
    input: Vec<f32>,
    ticket: Arc<TicketState>,
}

/// Shared resolution slot of one submitted request.
struct TicketState {
    slot: Mutex<Option<Result<Response, ShedReason>>>,
    cv: Condvar,
}

/// A handle to one in-flight request; wait on it for the response.
pub struct Ticket {
    state: Arc<TicketState>,
}

impl Ticket {
    /// Block until the request completes or is shed.
    ///
    /// # Errors
    /// The shed reason, when the server refused or dropped the request.
    ///
    /// # Panics
    /// Panics if the server dropped the ticket without resolving it (a
    /// server bug, not a load condition).
    pub fn wait(self) -> Result<Response, ShedReason> {
        let mut slot = self.state.slot.lock().unwrap();
        loop {
            if let Some(r) = slot.take() {
                return r;
            }
            slot = self.state.cv.wait(slot).unwrap();
        }
    }
}

struct QueueState {
    queue: VecDeque<Pending>,
    draining: bool,
}

struct Inner {
    runner: Arc<dyn BatchRunner>,
    sched: Scheduler,
    metrics: Arc<ServeMetrics>,
    state: Mutex<QueueState>,
    cv: Condvar,
    queue_cap: usize,
    epoch: Instant,
    next_id: AtomicU64,
}

impl Inner {
    fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_secs_f64() * 1e6
    }
}

/// The serving frontend: submission, drain, metrics.
pub struct Server {
    inner: Arc<Inner>,
    workers: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

fn resolve(ticket: &Arc<TicketState>, result: Result<Response, ShedReason>) {
    *ticket.slot.lock().unwrap() = Some(result);
    ticket.cv.notify_all();
}

impl Server {
    /// Start a server: `opts.workers` threads over a shared bounded queue,
    /// scheduling with the runner's measured latency table.
    pub fn start(runner: Arc<dyn BatchRunner>, opts: &ServeOptions) -> Self {
        let table: Vec<(usize, f64)> = runner
            .latency_table()
            .into_iter()
            .filter(|&(m, _)| m <= opts.max_batch)
            .collect();
        assert!(
            !table.is_empty(),
            "runner supports no batch size within UCUDNN_SERVE_MAX_BATCH"
        );
        let sched = Scheduler::new(table, opts.slo_us, opts.max_batch, BatchPolicy::Dynamic);
        let inner = Arc::new(Inner {
            runner,
            sched,
            metrics: Arc::new(ServeMetrics::new()),
            state: Mutex::new(QueueState {
                queue: VecDeque::new(),
                draining: false,
            }),
            cv: Condvar::new(),
            queue_cap: opts.queue_cap,
            epoch: Instant::now(),
            next_id: AtomicU64::new(0),
        });
        let workers = (0..opts.workers.max(1))
            .map(|w| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&inner, w))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            inner,
            workers: Mutex::new(workers),
        }
    }

    /// Submit one input sample; returns a [`Ticket`] to wait on, or the
    /// admission-control verdict.
    ///
    /// # Errors
    /// [`ShedReason::QueueFull`] under backpressure, [`ShedReason::Draining`]
    /// after [`Server::drain`] began.
    ///
    /// # Panics
    /// Panics when `input.len()` does not match the runner's sample length.
    pub fn submit(&self, input: Vec<f32>) -> Result<Ticket, ShedReason> {
        assert_eq!(
            input.len(),
            self.inner.runner.sample_len(),
            "input length must match the model's sample length"
        );
        let m = &self.inner.metrics;
        m.submitted.fetch_add(1, Ordering::Relaxed);
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);
        let arrival_us = self.inner.now_us();
        let mut st = self.inner.state.lock().unwrap();
        if st.draining {
            m.shed(ShedReason::Draining);
            return Err(ShedReason::Draining);
        }
        if st.queue.len() >= self.inner.queue_cap {
            m.shed(ShedReason::QueueFull);
            return Err(ShedReason::QueueFull);
        }
        let ticket = Arc::new(TicketState {
            slot: Mutex::new(None),
            cv: Condvar::new(),
        });
        st.queue.push_back(Pending {
            id,
            arrival_us,
            input,
            ticket: Arc::clone(&ticket),
        });
        m.set_queue_depth(st.queue.len() as u64);
        drop(st);
        self.inner.cv.notify_one();
        ucudnn::trace::event("serve", "submit", || {
            (
                format!("req{id}"),
                json::obj([("arrival_us", json::num(arrival_us))]),
            )
        });
        Ok(Ticket { state: ticket })
    }

    /// `f32` elements per input sample (the runner's input geometry).
    pub fn sample_len(&self) -> usize {
        self.inner.runner.sample_len()
    }

    /// Shared metrics handle (live counters).
    pub fn metrics(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.inner.metrics)
    }

    /// The metrics snapshot as a JSON string (companion to
    /// `UcudnnHandle::metrics_json`).
    pub fn metrics_json(&self) -> String {
        self.inner.metrics.to_json().to_json()
    }

    /// Stop admitting, finish everything already queued, and join the
    /// workers. Every outstanding ticket is resolved before this returns;
    /// idempotent, and also runs on drop.
    pub fn drain(&self) {
        {
            let mut st = self.inner.state.lock().unwrap();
            st.draining = true;
        }
        self.inner.cv.notify_all();
        let workers = std::mem::take(&mut *self.workers.lock().unwrap());
        for w in workers {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.drain();
    }
}

fn worker_loop(inner: &Inner, worker: usize) {
    let mut st = inner.state.lock().unwrap();
    loop {
        if st.queue.is_empty() {
            if st.draining {
                return;
            }
            st = inner.cv.wait(st).unwrap();
            continue;
        }
        let now = inner.now_us();
        let arrivals: Vec<f64> = st.queue.iter().map(|p| p.arrival_us).collect();
        match inner.sched.decide(now, &arrivals, None) {
            Action::Fire(decision) => {
                // The live server has no arrival oracle, so the coalescing
                // window is a bounded condvar wait: if more slack remains
                // than the next-larger plan needs, sleep a sliver of it and
                // re-decide; a timeout means no one came — fire what we
                // have.
                if !st.draining && decision.batch < inner.sched.max_batch() {
                    if let Some(wait_us) = coalesce_wait_us(inner, now, &arrivals) {
                        let dur = Duration::from_nanos((wait_us * 1e3) as u64);
                        let (guard, timeout) = inner.cv.wait_timeout(st, dur).unwrap();
                        st = guard;
                        if !timeout.timed_out() || st.queue.len() > arrivals.len() {
                            continue; // new work or drain: re-decide
                        }
                        // Timed out with the same queue: fall through and
                        // fire the decision we already validated — but the
                        // clock moved, so re-plan at the new instant.
                        continue;
                    }
                }
                let batch: Vec<Pending> = st.queue.drain(..decision.batch).collect();
                inner.metrics.set_queue_depth(st.queue.len() as u64);
                drop(st);
                execute_batch(inner, worker, &decision.micros, batch);
                inner.cv.notify_one();
                st = inner.state.lock().unwrap();
            }
            Action::ShedOldest => {
                let p = st.queue.pop_front().expect("non-empty queue");
                inner.metrics.set_queue_depth(st.queue.len() as u64);
                inner.metrics.shed(ShedReason::DeadlineInfeasible);
                inner.metrics.degradations.fetch_add(1, Ordering::Relaxed);
                ucudnn::trace::event("serve", "shed", || {
                    (
                        format!("req{}", p.id),
                        json::obj([(
                            "reason",
                            json::Value::Str(ShedReason::DeadlineInfeasible.name().to_string()),
                        )]),
                    )
                });
                resolve(&p.ticket, Err(ShedReason::DeadlineInfeasible));
            }
            Action::WaitUntil(_) => unreachable!("no arrival oracle was given"),
        }
    }
}

/// How long a worker may wait for coalescing company, or `None` to fire
/// immediately: the next-larger plan must beat the current one, still fit
/// the oldest deadline with room for its own execution, and the oldest
/// request must still be inside its bounded batching window.
fn coalesce_wait_us(inner: &Inner, now: f64, arrivals: &[f64]) -> Option<f64> {
    let q = arrivals.len();
    let oldest = arrivals[0];
    // The batching window caps how long the oldest request is held overall,
    // so firing always happens with nearly the full SLO budget left.
    let window_left = oldest + MAX_COALESCE_WAIT_US - now;
    if window_left <= 1.0 {
        return None;
    }
    let deadline = oldest + inner.sched.slo_us();
    let cur = ucudnn::plan_batch(
        inner.sched.table(),
        q,
        inner.sched.max_batch(),
        deadline - now,
    )?;
    let bigger = ucudnn::plan_batch(
        inner.sched.table(),
        q + 1,
        inner.sched.max_batch(),
        deadline - now,
    )?;
    if bigger.throughput <= cur.throughput {
        return None;
    }
    // Leave the bigger plan enough slack to actually run after the wait.
    let slack = (deadline - now - bigger.exec_us) * 0.5;
    (slack > 1.0).then(|| slack.min(window_left))
}

/// Run one fired batch, micro-batch by micro-batch, and resolve tickets.
fn execute_batch(inner: &Inner, worker: usize, micros: &[usize], batch: Vec<Pending>) {
    let total: usize = micros.iter().sum();
    debug_assert_eq!(total, batch.len(), "micros must tile the batch");
    let _span = ucudnn::trace::span("serve", "batch", || {
        (
            format!("worker{worker}"),
            json::obj([
                ("batch", json::num(batch.len() as f64)),
                (
                    "micros",
                    json::Value::Arr(micros.iter().map(|&m| json::num(m as f64)).collect()),
                ),
            ]),
        )
    });
    inner.metrics.fired(batch.len());
    let sample = inner.runner.sample_len();
    let mut it = batch.into_iter();
    for &m in micros {
        let chunk: Vec<Pending> = it.by_ref().take(m).collect();
        let mut inputs = Vec::with_capacity(m * sample);
        for p in &chunk {
            inputs.extend_from_slice(&p.input);
        }
        match inner.runner.run(m, &inputs) {
            Ok(outputs) => {
                let out_len = inner.runner.output_len();
                let done = inner.now_us();
                for (i, p) in chunk.into_iter().enumerate() {
                    let latency_us = done - p.arrival_us;
                    inner.metrics.complete(latency_us);
                    ucudnn::trace::event("serve", "complete", || {
                        (
                            format!("req{}", p.id),
                            json::obj([
                                ("latency_us", json::num(latency_us)),
                                ("batch", json::num(m as f64)),
                            ]),
                        )
                    });
                    resolve(
                        &p.ticket,
                        Ok(Response {
                            id: p.id,
                            output: outputs[i * out_len..(i + 1) * out_len].to_vec(),
                            latency_us,
                            batch: m,
                        }),
                    );
                }
            }
            Err(err) => {
                // Permanent fault: shed only this micro-batch; the server
                // and the rest of the fired batch keep going.
                inner.metrics.degradations.fetch_add(1, Ordering::Relaxed);
                ucudnn::trace::event("serve", "exec_failed", || {
                    (
                        format!("worker{worker}"),
                        json::obj([
                            ("micro", json::num(m as f64)),
                            ("error", json::Value::Str(err.clone())),
                        ]),
                    )
                });
                for p in chunk {
                    inner.metrics.shed(ShedReason::ExecFailed);
                    resolve(&p.ticket, Err(ShedReason::ExecFailed));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The real-numerics model runner.

use std::collections::HashMap;
use ucudnn::{UcudnnHandle, UcudnnOptions};
use ucudnn_cudnn_sim::{ConvOp, CudnnHandle};
use ucudnn_framework::{LayerSpec, NetworkDef, RealExecutor};
use ucudnn_tensor::{Shape4, Tensor};

/// A tiny CNN executed with real CPU numerics through a shared
/// [`UcudnnHandle`]: the per-batch-size networks all normalize to the same
/// batch-1 plan key, so every batch size the scheduler picks replays the
/// same cached micro-batched execution plan.
pub struct RealModelRunner {
    provider: UcudnnHandle,
    /// One instantiated network per supported batch size; identical
    /// parameters (the init RNG stream depends only on layer shapes).
    execs: HashMap<usize, RealExecutor>,
    sizes: Vec<usize>,
    sample_len: usize,
    output_len: usize,
}

/// The runner's fixed input geometry.
const C: usize = 3;
const HW: usize = 8;
const CLASSES: usize = 10;

fn tiny_net(n: usize) -> NetworkDef {
    let mut net = NetworkDef::new("serve-tiny", Shape4::new(n, C, HW, HW));
    let c1 = net.conv_relu("conv1", net.input(), 8, 3, 1, 1);
    let p1 = net.add(
        "pool1",
        LayerSpec::Pool {
            max: true,
            kernel: 2,
            stride: 2,
            pad: 0,
        },
        &[c1],
    );
    let c2 = net.conv_relu("conv2", p1, 16, 3, 1, 1);
    net.add("fc", LayerSpec::FullyConnected { out: CLASSES }, &[c2]);
    net
}

impl RealModelRunner {
    /// Build executors for every power-of-two batch size up to `max_batch`
    /// (plus `max_batch` itself) on a CPU substrate handle, register all
    /// kernels with the μ-cuDNN wrapper, and measure the latency table.
    ///
    /// The `handle` parameter lets tests attach a fault plan
    /// ([`CudnnHandle::with_faults`]) to the serving path.
    pub fn new(handle: CudnnHandle, seed: u64, max_batch: usize) -> Self {
        let provider = UcudnnHandle::new(handle, UcudnnOptions::default());
        let mut sizes = Vec::new();
        let mut m = 1;
        while m < max_batch {
            sizes.push(m);
            m *= 2;
        }
        sizes.push(max_batch);

        let mut kernels = Vec::new();
        let mut execs = HashMap::new();
        for &n in &sizes {
            let net = tiny_net(n);
            for id in net.conv_layers() {
                kernels.push((ConvOp::Forward, net.conv_geometry(id)));
            }
            execs.insert(n, RealExecutor::new(net, seed));
        }
        use ucudnn_framework::ConvProvider as _;
        provider
            .prepare(&kernels)
            .expect("serve model registration");
        provider.finalize().expect("serve model finalization");
        Self {
            provider,
            execs,
            sizes,
            sample_len: C * HW * HW,
            output_len: CLASSES,
        }
    }

    /// The wrapped μ-cuDNN handle (plan cache stats, optimizer metrics).
    pub fn provider(&self) -> &UcudnnHandle {
        &self.provider
    }
}

impl BatchRunner for RealModelRunner {
    fn sample_len(&self) -> usize {
        self.sample_len
    }

    fn output_len(&self) -> usize {
        self.output_len
    }

    fn batch_sizes(&self) -> Vec<usize> {
        self.sizes.clone()
    }

    fn run(&self, n: usize, inputs: &[f32]) -> Result<Vec<f32>, String> {
        let exec = self
            .execs
            .get(&n)
            .ok_or_else(|| format!("unsupported batch size {n}"))?;
        let input = Tensor::from_vec(Shape4::new(n, C, HW, HW), inputs.to_vec());
        let acts = exec
            .forward(&self.provider, &input)
            .map_err(|e| e.to_string())?;
        Ok(acts.last().expect("non-empty network").as_slice().to_vec())
    }

    fn latency_table(&self) -> Vec<(usize, f64)> {
        // Warm the plan/pack caches once, then take the best of three
        // measured runs per size (host timing is noisy; min is stable).
        let mut table = Vec::with_capacity(self.sizes.len());
        for &m in &self.sizes {
            let inputs = vec![0.1f32; m * self.sample_len];
            if self.run(m, &inputs).is_err() {
                continue; // faulted size: leave it out of the table
            }
            let mut best = f64::INFINITY;
            for _ in 0..3 {
                let t0 = Instant::now();
                if self.run(m, &inputs).is_err() {
                    best = f64::INFINITY;
                    break;
                }
                best = best.min(t0.elapsed().as_secs_f64() * 1e6);
            }
            if best.is_finite() {
                table.push((m, best));
            }
        }
        table
    }
}
