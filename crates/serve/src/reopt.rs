//! Online re-optimization: drift detection over windowed latency
//! percentiles.
//!
//! The WR planner trusts the latency table `t*(m)` it was given at startup.
//! Devices drift — thermal throttling, contention, MPS neighbors — and a
//! stale table makes the scheduler either shed requests it could serve or
//! promise deadlines it can no longer keep. The [`DriftDetector`] watches
//! every executed micro-batch, compares the *windowed* p50 of observed
//! execution times per micro-batch size against the table's expectation
//! (windowed, not cumulative — [`StreamingHistogram::take_window`] exists
//! precisely so late drift is not averaged away), and flags a size stale
//! when the deviation exceeds a configurable ratio for K consecutive
//! windows. One flagged size is enough to re-benchmark: the whole table
//! came from the same device, so one drifted kernel means the rest are
//! suspect too.

use std::collections::BTreeMap;
use ucudnn::EnvError;
use ucudnn_framework::StreamingHistogram;

/// Configuration of the re-optimization loop, read from `UCUDNN_REOPT_*`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReoptConfig {
    /// Master switch (`UCUDNN_REOPT`): when false the detector never fires
    /// and no re-benchmark worker is spawned.
    pub enabled: bool,
    /// Samples per drift window (`UCUDNN_REOPT_WINDOW`): the detector
    /// closes a window and judges its p50 every this many observations of a
    /// micro-batch size.
    pub window_samples: usize,
    /// Deviation ratio that breaches a window (`UCUDNN_REOPT_RATIO`): a
    /// window is a breach when observed p50 / expected falls outside
    /// `[1/ratio, ratio]`.
    pub p50_ratio: f64,
    /// Consecutive breached windows required to flag staleness
    /// (`UCUDNN_REOPT_CONSECUTIVE`) — one window can be noise; K in a row
    /// is drift.
    pub consecutive: u32,
}

impl Default for ReoptConfig {
    fn default() -> Self {
        Self {
            enabled: true,
            window_samples: 8,
            p50_ratio: 1.5,
            consecutive: 2,
        }
    }
}

impl ReoptConfig {
    /// Build a config from a key-lookup function (testable, like
    /// `ServeOptions::from_lookup`). Unset keys keep their defaults;
    /// malformed values are errors, not silent fallbacks.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_lookup(
        lookup: impl Fn(&str) -> Option<String>,
    ) -> core::result::Result<Self, EnvError> {
        let mut cfg = ReoptConfig::default();
        if let Some(v) = lookup("UCUDNN_REOPT") {
            cfg.enabled = match v.trim() {
                "1" | "true" => true,
                "0" | "false" => false,
                _ => {
                    return Err(EnvError {
                        variable: "UCUDNN_REOPT",
                        value: v,
                    })
                }
            };
        }
        if let Some(v) = lookup("UCUDNN_REOPT_WINDOW") {
            cfg.window_samples =
                v.trim()
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or(EnvError {
                        variable: "UCUDNN_REOPT_WINDOW",
                        value: v,
                    })?;
        }
        if let Some(v) = lookup("UCUDNN_REOPT_RATIO") {
            cfg.p50_ratio = v
                .trim()
                .parse::<f64>()
                .ok()
                .filter(|r| r.is_finite() && *r > 1.0)
                .ok_or(EnvError {
                    variable: "UCUDNN_REOPT_RATIO",
                    value: v,
                })?;
        }
        if let Some(v) = lookup("UCUDNN_REOPT_CONSECUTIVE") {
            cfg.consecutive = v
                .trim()
                .parse::<u32>()
                .ok()
                .filter(|&n| n >= 1)
                .ok_or(EnvError {
                    variable: "UCUDNN_REOPT_CONSECUTIVE",
                    value: v,
                })?;
        }
        Ok(cfg)
    }

    /// Build a config from the process environment.
    ///
    /// # Errors
    /// [`EnvError`] naming the malformed variable.
    pub fn from_env() -> core::result::Result<Self, EnvError> {
        Self::from_lookup(|k| std::env::var(k).ok())
    }
}

/// What the detector concluded when it flagged a micro-batch size stale.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftReport {
    /// The flagged micro-batch size.
    pub micro: usize,
    /// Windowed p50 of observed execution times, microseconds.
    pub observed_p50_us: f64,
    /// The plan table's expectation `t*(micro)`, microseconds.
    pub expected_us: f64,
    /// `observed_p50_us / expected_us`.
    pub ratio: f64,
}

/// Per-micro-batch-size window state.
#[derive(Debug)]
struct MicroWindow {
    hist: StreamingHistogram,
    /// Consecutive breached windows so far.
    breaches: u32,
}

/// Windowed-percentile drift detector. Single-owner (`&mut self`): the
/// serve path funnels per-micro observations through whatever lock already
/// guards its metrics, and the sim owns one directly.
#[derive(Debug)]
pub struct DriftDetector {
    cfg: ReoptConfig,
    windows: BTreeMap<usize, MicroWindow>,
}

impl DriftDetector {
    /// A detector with no observations.
    pub fn new(cfg: ReoptConfig) -> Self {
        Self {
            cfg,
            windows: BTreeMap::new(),
        }
    }

    /// The configuration the detector judges by.
    pub fn config(&self) -> &ReoptConfig {
        &self.cfg
    }

    /// Record one executed micro-batch of size `micro`: `observed_us` is
    /// what it actually took, `expected_us` the current plan table's
    /// `t*(micro)`. Closes a window every `window_samples` observations of
    /// this size and returns a [`DriftReport`] when the windowed p50 has
    /// deviated beyond the ratio for `consecutive` windows.
    ///
    /// Disabled detectors ([`ReoptConfig::enabled`] false) observe nothing.
    pub fn observe(
        &mut self,
        micro: usize,
        observed_us: f64,
        expected_us: f64,
    ) -> Option<DriftReport> {
        if !self.cfg.enabled || !expected_us.is_finite() || expected_us <= 0.0 {
            return None;
        }
        let w = self.windows.entry(micro).or_insert_with(|| MicroWindow {
            hist: StreamingHistogram::new(),
            breaches: 0,
        });
        w.hist.record(observed_us);
        if w.hist.window_count() < self.cfg.window_samples as u64 {
            return None;
        }
        let window = w.hist.take_window();
        let p50 = window.try_quantile(0.5)?;
        let ratio = p50 / expected_us;
        let breach = ratio > self.cfg.p50_ratio || ratio < 1.0 / self.cfg.p50_ratio;
        if !breach {
            w.breaches = 0;
            return None;
        }
        w.breaches += 1;
        if w.breaches < self.cfg.consecutive {
            return None;
        }
        w.breaches = 0;
        Some(DriftReport {
            micro,
            observed_p50_us: p50,
            expected_us,
            ratio,
        })
    }

    /// Forget all window state — called after a plan swap, so the detector
    /// judges the *new* table against fresh observations instead of mixing
    /// pre-swap samples into post-swap windows.
    pub fn reset(&mut self) {
        self.windows.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(window: usize, ratio: f64, consecutive: u32) -> ReoptConfig {
        ReoptConfig {
            enabled: true,
            window_samples: window,
            p50_ratio: ratio,
            consecutive,
        }
    }

    #[test]
    fn default_config_and_env_parsing() {
        let d = ReoptConfig::default();
        assert!(d.enabled);
        assert_eq!((d.window_samples, d.p50_ratio, d.consecutive), (8, 1.5, 2));
        assert_eq!(ReoptConfig::from_lookup(|_| None).unwrap(), d);
        let c = ReoptConfig::from_lookup(|k| {
            Some(
                match k {
                    "UCUDNN_REOPT" => "0",
                    "UCUDNN_REOPT_WINDOW" => "16",
                    "UCUDNN_REOPT_RATIO" => "2.5",
                    "UCUDNN_REOPT_CONSECUTIVE" => "3",
                    _ => return None,
                }
                .to_string(),
            )
        })
        .unwrap();
        assert!(!c.enabled);
        assert_eq!((c.window_samples, c.p50_ratio, c.consecutive), (16, 2.5, 3));
    }

    #[test]
    fn malformed_reopt_vars_error_loudly() {
        for (key, bad) in [
            ("UCUDNN_REOPT", "maybe"),
            ("UCUDNN_REOPT_WINDOW", "0"),
            ("UCUDNN_REOPT_RATIO", "1.0"), // must be > 1
            ("UCUDNN_REOPT_RATIO", "inf"),
            ("UCUDNN_REOPT_CONSECUTIVE", "0"),
        ] {
            let e = ReoptConfig::from_lookup(|k| (k == key).then(|| bad.to_string())).unwrap_err();
            assert_eq!(e.variable, key, "{key}={bad}");
        }
    }

    #[test]
    fn detector_fires_after_k_consecutive_breached_windows() {
        let mut d = DriftDetector::new(cfg(4, 1.5, 2));
        // First window: 2x slow — breach #1, but not yet K.
        for _ in 0..4 {
            assert_eq!(d.observe(8, 200.0, 100.0), None);
        }
        // Second window: first 3 samples close no window...
        for _ in 0..3 {
            assert_eq!(d.observe(8, 200.0, 100.0), None);
        }
        // ...the 4th closes breach #2 and fires.
        let report = d.observe(8, 200.0, 100.0).expect("drift flagged");
        assert_eq!(report.micro, 8);
        assert_eq!(report.expected_us, 100.0);
        assert!((report.ratio - 2.0).abs() < 0.1, "ratio {}", report.ratio);
    }

    #[test]
    fn a_clean_window_resets_the_breach_streak() {
        let mut d = DriftDetector::new(cfg(2, 1.5, 2));
        // Breach window...
        d.observe(4, 300.0, 100.0);
        assert_eq!(d.observe(4, 300.0, 100.0), None);
        // ...then a clean one: streak back to zero...
        d.observe(4, 100.0, 100.0);
        assert_eq!(d.observe(4, 100.0, 100.0), None);
        // ...so the next breach window alone still does not fire.
        d.observe(4, 300.0, 100.0);
        assert_eq!(d.observe(4, 300.0, 100.0), None);
        // A second consecutive breach window does.
        d.observe(4, 300.0, 100.0);
        assert!(d.observe(4, 300.0, 100.0).is_some());
    }

    #[test]
    fn on_table_latencies_never_fire() {
        let mut d = DriftDetector::new(cfg(4, 1.5, 1));
        // Small wobble (±20%) stays inside the 1.5 ratio band.
        for i in 0..1000u64 {
            let wobble = 1.0 + 0.2 * if i % 2 == 0 { 1.0 } else { -1.0 };
            assert_eq!(
                d.observe(16, 100.0 * wobble, 100.0),
                None,
                "false positive at sample {i}"
            );
        }
    }

    #[test]
    fn speedups_are_drift_too() {
        // A device that got *faster* (recovered from throttling) also makes
        // the table stale — the planner is leaving throughput on the table.
        let mut d = DriftDetector::new(cfg(2, 1.5, 1));
        d.observe(8, 40.0, 100.0);
        let report = d.observe(8, 40.0, 100.0).expect("speedup flagged");
        assert!(report.ratio < 1.0 / 1.5);
    }

    #[test]
    fn sizes_are_tracked_independently() {
        let mut d = DriftDetector::new(cfg(2, 1.5, 1));
        // Size 8 drifts; size 16 is healthy. Only 8 fires.
        d.observe(8, 300.0, 100.0);
        d.observe(16, 200.0, 200.0);
        d.observe(16, 200.0, 200.0);
        let r = d.observe(8, 300.0, 100.0).expect("size 8 fires");
        assert_eq!(r.micro, 8);
        assert_eq!(d.observe(16, 200.0, 200.0), None);
    }

    #[test]
    fn reset_forgets_partial_windows_and_streaks() {
        let mut d = DriftDetector::new(cfg(2, 1.5, 2));
        d.observe(8, 300.0, 100.0);
        d.observe(8, 300.0, 100.0); // breach #1
        d.observe(8, 300.0, 100.0); // half of the would-be breach #2
        d.reset();
        // Post-reset the streak and partial window are gone: two full
        // breach windows are needed again.
        d.observe(8, 300.0, 100.0);
        assert_eq!(d.observe(8, 300.0, 100.0), None, "only breach #1");
        d.observe(8, 300.0, 100.0);
        assert!(d.observe(8, 300.0, 100.0).is_some());
    }

    #[test]
    fn disabled_detector_never_fires() {
        let mut d = DriftDetector::new(ReoptConfig {
            enabled: false,
            ..cfg(1, 1.1, 1)
        });
        for _ in 0..100 {
            assert_eq!(d.observe(8, 10_000.0, 1.0), None);
        }
    }
}
